"""F5 — Fig 5: regional mobility (five high-density regions).

Regenerates the weekly gyration/entropy series per region against the
national week-9 baseline.
"""

from repro.core.mobility_series import regional_mobility
from repro.core.report import render_series_block


def test_fig5_regional_series(benchmark, feeds, metrics):
    series = benchmark(regional_mobility, metrics, feeds)
    for metric in ("gyration", "entropy"):
        panel = series[metric]
        print()
        print(
            render_series_block(
                f"Fig 5 — regional {metric} (% vs national week 9)",
                panel.x,
                panel.values,
            )
        )

    gyration = series["gyration"]
    entropy = series["entropy"]
    # Paper: London covers smaller areas (gyration below national) but
    # moves less predictably (entropy above national).
    assert gyration.at_week("Inner London", 9) < -5
    assert entropy.at_week("Inner London", 9) > 3
    # Every region drops sharply in weeks 13-14.
    for region in gyration.values:
        assert (
            gyration.at_week(region, 14) < gyration.at_week(region, 9) - 20
        )
    # London relaxes more than the Midlands by weeks 18-19.
    london = gyration.at_week("Inner London", 19) - gyration.at_week(
        "Inner London", 14
    )
    midlands = gyration.at_week("West Midlands", 19) - gyration.at_week(
        "West Midlands", 14
    )
    assert london > midlands
