"""AB3 — ablation: home-detection threshold and window sensitivity.

The paper fixes "≥14 nights during February". This ablation sweeps the
night threshold and the window length and reports detection yield and
census-validation quality at each point — showing the paper's operating
point sits on a plateau.
"""

from repro.core.home import detect_homes
from repro.core.validation import validate_against_census


def test_home_detection_sensitivity(benchmark, feeds):
    def sweep():
        rows = []
        for min_nights in (7, 10, 14, 18, 22):
            homes = detect_homes(feeds, min_nights=min_nights)
            if homes.detected.sum() < 100:
                rows.append((min_nights, homes.detection_rate, float("nan")))
                continue
            validation = validate_against_census(feeds, homes)
            rows.append(
                (min_nights, homes.detection_rate, validation.r_squared)
            )
        return rows

    rows = benchmark(sweep)
    print("\nAB3 — home-detection sensitivity (February window)")
    print(f"{'min nights':>10} {'yield':>8} {'census r²':>10}")
    for min_nights, rate, r2 in rows:
        print(f"{min_nights:>10d} {rate:>8.2f} {r2:>10.3f}")

    yields = {row[0]: row[1] for row in rows}
    # Yield decreases monotonically with the threshold.
    assert yields[7] >= yields[14] >= yields[22]
    # The paper's operating point keeps both yield and fit quality high.
    paper_row = next(row for row in rows if row[0] == 14)
    assert paper_row[1] > 0.55
    assert paper_row[2] > 0.7


def test_window_length_sensitivity(feeds):
    full = detect_homes(feeds)
    half_window = feeds.calendar.february_days[:14]
    half = detect_homes(feeds, min_nights=14, window_days=half_window)
    # With a 14-day window and a 14-night threshold, only users
    # observed every night qualify: the yield collapses.
    assert half.detection_rate < full.detection_rate * 0.5
