"""AB5 — policy dose-response: restriction depth vs network impact.

Sweeps the lockdown restriction level (0 = no order, 0.5 = half-hearted,
1.0 = the calibrated 2020 order) and verifies the model responds
monotonically: the deeper the confinement, the larger the mobility and
downlink drops and the larger the at-home shift. The voice surge, by
contrast, is triggered by the *phases themselves* (announcements), so
it barely moves with depth — matching the intuition the paper offers.
"""

import pytest

from repro.core import CovidImpactStudy
from repro.mobility.pandemic import PandemicTimeline
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator

LEVELS = (0.0, 0.5, 1.0)


def run_level(level: float) -> dict:
    timeline = PandemicTimeline(
        declared_level=0.12 * level,
        distancing_level=0.45 * level,
        closures_level=0.62 * level,
        lockdown_level=1.0 * level,
        adherence_decay_per_day=0.004 * level,
    )
    config = SimulationConfig.tiny(seed=2020).with_overrides(
        timeline=timeline
    )
    study = CovidImpactStudy(Simulator(config).run())
    summary = study.summary()
    return {
        "level": level,
        "gyration": summary["gyration_change_lockdown_pct"],
        "dl": summary["dl_volume_min_pct"],
        "voice": summary["voice_volume_peak_pct"],
    }


def test_policy_dose_response(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_level(level) for level in LEVELS],
        rounds=1, iterations=1,
    )
    print("\nAB5 — restriction depth sweep (tiny scale)")
    print(f"{'level':>6}{'gyration':>10}{'DL min':>9}{'voice':>8}")
    for row in rows:
        print(
            f"{row['level']:>6.1f}{row['gyration']:>10.1f}"
            f"{row['dl']:>9.1f}{row['voice']:>8.1f}"
        )
    gyration = [row["gyration"] for row in rows]
    dl = [row["dl"] for row in rows]
    voice = [row["voice"] for row in rows]
    # Mobility and downlink deepen monotonically with restriction depth.
    assert gyration[0] > gyration[1] > gyration[2]
    assert dl[0] > dl[2]
    # The zero-restriction world barely moves.
    assert gyration[0] > -12.0
    # The voice surge is announcement-driven: present at every nonzero
    # depth, absent only without the phases (level 0 keeps phases but
    # zeroes behaviour, so the surge persists by construction).
    assert voice[1] > 100.0 and voice[2] > 100.0
