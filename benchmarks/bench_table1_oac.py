"""T1 — Table 1: the geodemographic cluster catalog and its labelling.

Regenerates the paper's Table 1 and benchmarks the synthetic-UK build
that assigns an OAC supergroup to every postcode district.
"""

from repro.geo import build_uk_geography, oac_table


def test_table1_catalog(benchmark):
    table = benchmark(oac_table)
    print("\nTable 1 — Geodemographic clusters (2011 OAC)")
    print("-" * 60)
    for name, definition in table:
        print(f"{name:<30} {definition}")
    assert len(table) == 8
    names = {name for name, __ in table}
    assert names == {
        "Rural Residents", "Cosmopolitans", "Ethnicity Central",
        "Multicultural Metropolitans", "Urbanites", "Suburbanites",
        "Constrained City Dwellers", "Hard-pressed Living",
    }


def test_geography_labelling(benchmark):
    geography = benchmark(build_uk_geography, seed=2020)
    labelled = {d.oac for d in geography.districts}
    assert len(labelled) == 8  # every supergroup appears somewhere
