"""Engine benchmarks: world construction and full simulation runs.

Not a paper figure — tracks the cost of the substrate itself so that
regressions in the simulator show up alongside the analysis numbers.
"""

from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator, build_world


def test_build_world(benchmark):
    config = SimulationConfig.tiny(seed=2020)
    world = benchmark(build_world, config)
    assert world.agents.num_users > 1000


def test_full_tiny_run(benchmark):
    config = SimulationConfig.tiny(seed=2020)

    def run():
        return Simulator(config).run()

    feeds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(feeds.radio_kpis) > 0


def test_single_day_dwell(benchmark):
    world = build_world(SimulationConfig.small(seed=2020))
    dwell = benchmark(world.trajectories.day_dwell, 50)
    assert dwell.dwell_s.shape[0] == world.agents.num_users
