"""Collate benchmarks/results/*.json into one markdown table.

Thin wrapper over :mod:`repro.benchreport` (also reachable as
``python -m repro bench-summary``), kept next to the benchmarks so CI
can run it without knowing the CLI::

    python benchmarks/collate.py                      # print the table
    python benchmarks/collate.py --out summary.md     # write it
    python benchmarks/collate.py --check baseline/    # fail on gate
                                                      # regressions
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import benchreport  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results",
        default=str(Path(__file__).resolve().parent / "results"),
        help="directory of bench result JSONs",
    )
    parser.add_argument(
        "--out", default=None, help="write the markdown table here"
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE_DIR",
        help="fail (exit 1) on gate regressions vs this baseline",
    )
    parser.add_argument(
        "--band", type=float, default=15.0,
        help="tolerance band for --check, percent (default: 15)",
    )
    args = parser.parse_args(argv)

    table = benchreport.summarize(args.results)
    if args.out:
        Path(args.out).write_text(table + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(table)

    if args.check is None:
        return 0
    fresh = benchreport.metric_rows(
        benchreport.collect_results(args.results)
    )
    baseline = benchreport.metric_rows(
        benchreport.collect_results(args.check)
    )
    if not baseline:
        print(f"no baseline results under {args.check}; nothing to check")
        return 0
    failures = benchreport.check_regressions(
        fresh, baseline, band_pct=args.band
    )
    for failure in failures:
        print(f"REGRESSION: {failure}")
    if failures:
        return 1
    print(f"no gate regressions vs {args.check} (band {args.band:g}%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
