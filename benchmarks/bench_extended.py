"""EXT — beyond-paper analyses: significance, graphs, growth framings.

Not paper figures, but the checks a reviewer would ask for: are the
reported shifts statistically significant, what does the mobility graph
do, and do the paper's "years of growth" framings hold on the measured
numbers?
"""

import datetime as dt

from repro.core.annual_context import contextualize_summary
from repro.core.mobility_graph import build_mobility_graph, graph_summary
from repro.core.significance import shift_table

SHIFT_METRICS = (
    "dl_volume_mb", "ul_volume_mb", "dl_active_users",
    "radio_load_pct", "voice_volume_mb", "connected_users",
)


def test_shift_significance(benchmark, study):
    table = benchmark(shift_table, study.labeled_kpis, SHIFT_METRICS)
    print("\nEXT — lockdown vs week-9 distribution shifts")
    print(f"{'metric':<22}{'direction':>10}{'MW p':>12}{'KS p':>12}")
    for row in table:
        print(
            f"{row.metric:<22}{row.direction:>10}"
            f"{row.mannwhitney_p:>12.2e}{row.ks_p:>12.2e}"
        )
    by_metric = {row.metric: row for row in table}
    # The paper's signed findings are all statistically significant;
    # the uplink 'little change' is the one non-finding.
    assert by_metric["dl_volume_mb"].direction == "down"
    assert by_metric["dl_volume_mb"].significant
    assert by_metric["voice_volume_mb"].direction == "up"
    assert by_metric["voice_volume_mb"].significant
    assert by_metric["radio_load_pct"].direction == "down"
    assert by_metric["ul_volume_mb"].direction in ("flat", "up")


def test_mobility_graph_collapse(benchmark, feeds):
    calendar = feeds.calendar
    before_day = calendar.day_of(dt.date(2020, 2, 25))
    during_day = calendar.day_of(dt.date(2020, 3, 31))

    def build_both():
        return (
            build_mobility_graph(feeds, before_day),
            build_mobility_graph(feeds, during_day),
        )

    before, during = benchmark.pedantic(build_both, rounds=2, iterations=1)
    summary_before = graph_summary(before, before_day)
    summary_during = graph_summary(during, during_day)
    print("\nEXT — mobility graph before/during lockdown")
    for label, summary in (
        ("before", summary_before), ("during", summary_during),
    ):
        print(
            f"{label:<8} edges={summary.num_edges:>7} "
            f"trips={summary.total_trip_weight:>9.0f} "
            f"mean edge={summary.mean_edge_length_km:5.1f} km"
        )
    assert (
        summary_during.total_trip_weight
        < summary_before.total_trip_weight * 0.8
    )
    assert (
        summary_during.mean_edge_length_km
        < summary_before.mean_edge_length_km
    )


def test_growth_framings(study):
    context = contextualize_summary(study.summary())
    print(
        f"\nEXT — growth framings: data rewound "
        f"{context['data_years_rewound']:.1f} years (paper: one year); "
        f"voice surge = {context['voice_years_of_growth']:.1f} years "
        "(paper: seven years)"
    )
    assert 0.5 < context["data_years_rewound"] < 2.0
    assert 5.0 < context["voice_years_of_growth"] < 9.5
