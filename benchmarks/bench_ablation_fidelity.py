"""AB2 — ablation: event-mode vs dwell-mode measurement fidelity.

The large-scale analyses run on dwell aggregates; the paper's actual
probes see raw signalling. This ablation runs a small population with
event emission, sessionizes the raw feed, and benchmarks + verifies the
two measurement paths producing the same mobility metrics.
"""

import numpy as np
import pytest

from repro.core import mobility_entropy, sessionize_events
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator


@pytest.fixture(scope="module")
def event_feeds():
    config = SimulationConfig(
        num_users=400, target_site_count=60, seed=2020,
        emit_signaling=True,
    )
    return Simulator(config).run()


def test_sessionization_throughput(benchmark, event_feeds):
    events = event_feeds.signaling[20]
    out = benchmark(sessionize_events, events)
    assert len(out) > 0
    print(
        f"\nAB2 — sessionized {len(events)} events into {len(out)} "
        "(user, tower) dwell records"
    )


def test_event_mode_matches_dwell_mode(event_feeds):
    mobility = event_feeds.mobility
    sites = mobility.anchor_sites
    gaps = []
    for day in (5, 20, 60):
        events = event_feeds.signaling[day]
        recovered_frame = sessionize_events(events)
        user_index = {
            int(u): i for i, u in enumerate(mobility.user_ids)
        }
        recovered = np.zeros_like(mobility.dwell(day), dtype=np.float64)
        for user, site, seconds in zip(
            recovered_frame["user_id"],
            recovered_frame["site_id"],
            recovered_frame["dwell_s"],
        ):
            row = user_index[int(user)]
            slots = np.flatnonzero(sites[row] == site)
            assert slots.size > 0, "event at a non-anchor tower"
            recovered[row, slots[0]] += seconds

        truth = mobility.dwell(day).astype(np.float64)
        event_entropy = mobility_entropy(recovered, sites)
        truth_entropy = mobility_entropy(truth, sites)
        gaps.append(
            np.abs(event_entropy - truth_entropy).mean()
        )
    print(f"\nAB2 — mean entropy gap per day: {np.round(gaps, 5)}")
    assert max(gaps) < 0.01
