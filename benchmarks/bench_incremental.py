"""Incremental live-run analysis benchmark: day N+1 re-analysis, gated.

The tentpole claim of live-operator mode: after ``Run.advance(1)``
lands one new day in a run's columnar partition, re-analyzing the run
must cost the *new* day, not the whole window.  The already-seen
prefix is served from its per-range cache artifacts
(:mod:`repro.analysis.mobility`), so incremental re-analysis of day
N+1 — daily mobility metrics, home detection, labeled KPIs — must be
**at least 5x faster than a from-scratch recompute at 20k agents**,
while staying bitwise identical to it.

The unguarded numbers recorded alongside: the wall time of the
``advance(1)`` itself (simulate + append commit) and the latency of a
``repro summary`` refresh right after it (what ``repro watch`` pays
per reprint — the docs/LIVE.md latency budget).

Results land as JSON in ``benchmarks/results/incremental.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_incremental.py -q
"""

import io
import json
import os
import time
from pathlib import Path

import numpy as np

from repro import api
from repro.cli import main
from repro.core.home import detect_homes
from repro.core.performance import label_kpis
from repro.core.statistics import compute_daily_metrics
from repro.simulation.config import SimulationConfig

RESULTS_PATH = Path(__file__).parent / "results" / "incremental.json"

BENCH_USERS = 20_000
BENCH_SITES = 220
BENCH_SEED = 2020
#: Simulated prefix before the measured advance.  Past the lockdown
#: date (day 49), so the summary/verdict refresh is computable; the
#: run stays live afterwards (< the 98-day horizon): freezing would
#: compact the partition to one segment and there would be nothing
#: incremental left to measure.
BENCH_PREFIX_DAYS = 70

#: Acceptance floor for full-recompute / incremental re-analysis.
MIN_INCREMENTAL_SPEEDUP = 5.0


def _cli(argv) -> str:
    out = io.StringIO()
    code = main(argv, out=out)
    assert code == 0, out.getvalue()
    return out.getvalue()


def _config():
    return SimulationConfig.tiny(seed=BENCH_SEED).with_overrides(
        num_users=BENCH_USERS,
        target_site_count=BENCH_SITES,
    )


def _analysis(study):
    """The three incrementally-composed artifacts, materialized."""
    return study.metrics, study.homes, study.labeled_kpis


def bench_incremental(rundir: Path) -> dict:
    start = time.perf_counter()
    run = api.simulate(_config(), rundir, days=BENCH_PREFIX_DAYS)
    simulate_s = time.perf_counter() - start

    # Populate the prefix's range artifacts (the operator's steady
    # state: analysis has been run at least once before the new day).
    start = time.perf_counter()
    _analysis(run.study())
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    run.advance(1)
    advance_s = time.perf_counter() - start
    assert not run.frozen()

    # The measured claim: re-analysis after one appended day.  Only
    # the new one-day range computes; the prefix days come from their
    # range artifacts.
    start = time.perf_counter()
    metrics, homes, labeled = _analysis(run.study())
    incremental_s = time.perf_counter() - start

    # The baseline: the same three artifacts from scratch, no cache.
    feeds = run.feeds
    start = time.perf_counter()
    full_metrics = compute_daily_metrics(feeds)
    full_homes = detect_homes(feeds)
    full_labeled = label_kpis(feeds)
    full_s = time.perf_counter() - start

    bitwise = bool(
        np.array_equal(metrics.entropy, full_metrics.entropy)
        and np.array_equal(metrics.gyration_km, full_metrics.gyration_km)
        and np.array_equal(homes.home_site, full_homes.home_site)
        and np.array_equal(
            homes.nights_observed, full_homes.nights_observed
        )
        and all(
            np.array_equal(labeled[name], full_labeled[name])
            for name in labeled.column_names
        )
    )

    # What a `repro watch` reprint pays right after another advance:
    # summary + verdict recompute over the memory-mapped partition
    # with every prior day range served from the cache.
    run.advance(1)
    start = time.perf_counter()
    _cli(["summary", str(rundir), "--lazy"])
    refresh_s = time.perf_counter() - start

    return {
        "users": BENCH_USERS,
        "prefix_days": BENCH_PREFIX_DAYS,
        "simulate_seconds": simulate_s,
        "cold_analysis_seconds": cold_s,
        "advance_seconds": advance_s,
        "incremental_seconds": incremental_s,
        "full_recompute_seconds": full_s,
        "incremental_speedup": full_s / incremental_s,
        "bitwise_identical": bitwise,
        "summary_refresh_seconds": refresh_s,
    }


def test_incremental_bench(tmp_path):
    report = {
        "seed": BENCH_SEED,
        "cpu_count": os.cpu_count(),
        "incremental": bench_incremental(tmp_path / "run"),
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    data = report["incremental"]
    print("\nIncremental live-run analysis benchmark")
    print(
        f"  {data['users']} users: simulate {data['prefix_days']} days "
        f"{data['simulate_seconds']:.2f}s, cold analysis "
        f"{data['cold_analysis_seconds']:.2f}s"
    )
    print(
        f"  advance(1) {data['advance_seconds']:.2f}s; re-analysis "
        f"{data['incremental_seconds']:.3f}s vs full recompute "
        f"{data['full_recompute_seconds']:.3f}s "
        f"({data['incremental_speedup']:.1f}x)"
    )
    print(
        f"  post-advance summary refresh (watch latency): "
        f"{data['summary_refresh_seconds']:.2f}s"
    )

    assert data["bitwise_identical"], (
        "incremental analysis diverged from the from-scratch recompute"
    )
    assert data["incremental_speedup"] >= MIN_INCREMENTAL_SPEEDUP, (
        f"incremental re-analysis only {data['incremental_speedup']:.1f}x "
        f"faster than full recompute (< {MIN_INCREMENTAL_SPEEDUP}x)"
    )


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        test_incremental_bench(Path(scratch))
