"""F12 — Fig 12: London network performance per geodemographic cluster.

Regenerates the London-only cluster series: the Cosmopolitan collapse
(matching EC/WC) and the Multicultural uplink increase.
"""

from repro.core.performance import performance_series
from repro.core.report import render_series_block

METRICS = ("dl_volume_mb", "ul_volume_mb", "dl_active_users",
           "user_dl_throughput_mbps")


def _panels(feeds, labeled):
    return {
        metric: performance_series(
            feeds, metric, grouping="oac",
            restrict_county="Inner London", labeled=labeled,
        )
        for metric in METRICS
    }


def test_fig12_london_cluster_panels(benchmark, feeds, labeled):
    panels = benchmark(_panels, feeds, labeled)
    for metric, series in panels.items():
        print()
        print(
            render_series_block(
                f"Fig 12 — London {metric} per cluster (% vs week 9)",
                series.weeks,
                series.values,
            )
        )

    dl = panels["dl_volume_mb"]
    ul = panels["ul_volume_mb"]
    # Only the three London clusters appear (§5.2).
    assert set(dl.values) <= {
        "Cosmopolitans", "Ethnicity Central",
        "Multicultural Metropolitans",
    }
    # Cosmopolitans fall sharpest (the EC/WC signature).
    cosmo = dl.minimum("Cosmopolitans")[1]
    for cluster in dl.values:
        assert cosmo <= dl.minimum(cluster)[1] + 1e-9
    assert cosmo < -40
    # Multicultural areas gain uplink during lockdown.
    name = "Multicultural Metropolitans"
    if name in ul.values:
        assert ul.values[name][ul.weeks >= 13].max() > 5
