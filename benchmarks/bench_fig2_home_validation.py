"""F2 — Fig 2: home detection validated against census populations.

Regenerates the inferred-vs-census LAD regression (paper: r² = 0.955)
and benchmarks the nighttime home-detection pass over February.
"""

from repro.core import detect_homes, validate_against_census


def test_fig2_home_detection(benchmark, feeds):
    homes = benchmark(detect_homes, feeds)
    print(
        f"\nFig 2 — detected homes for {int(homes.detected.sum())} of "
        f"{homes.user_ids.size} users "
        f"(rate {homes.detection_rate:.2f}; paper: 16M of 22M ≈ 0.73)"
    )
    assert 0.55 < homes.detection_rate < 0.95


def test_fig2_census_regression(benchmark, feeds, study):
    validation = benchmark(validate_against_census, feeds, study.homes)
    table = validation.table.sort_by("census_population", descending=True)
    print("\nFig 2 — inferred vs census population (top LADs)")
    print(table.head(10).to_pretty())
    print(
        f"linear fit: slope={validation.slope:.5f} "
        f"r²={validation.r_squared:.3f} (paper: 0.955)"
    )
    assert validation.r_squared > 0.75
    assert validation.slope > 0
