"""AB1 — ablation: the printed eq. 2 vs the standard gyration formula.

DESIGN.md documents that the paper's printed radius-of-gyration formula
is dimensionally inconsistent; all figures use the corrected
time-weighted form. This ablation quantifies how much the choice
matters for the headline result.
"""

import numpy as np

from repro.core.statistics import compute_daily_metrics
from repro.core.baseline import daily_pct_change, weekly_mean
from repro.core.report import render_series_block


def _national_weekly(feeds, mode):
    metrics = compute_daily_metrics(feeds, gyration_mode=mode)
    calendar = feeds.calendar
    days = np.flatnonzero(calendar.weeks >= 9)
    weeks_of_day = calendar.weeks[days]
    change = daily_pct_change(
        metrics.daily_mean("gyration")[days], weeks_of_day
    )
    return weekly_mean(change, weeks_of_day)


def test_gyration_formula_ablation(benchmark, feeds):
    weeks, weighted = _national_weekly(feeds, "weighted")
    __, paper = benchmark(_national_weekly, feeds, "paper")
    print()
    print(
        render_series_block(
            "AB1 — national gyration % change: corrected vs printed eq. 2",
            weeks,
            {"weighted (used)": weighted, "paper (literal)": paper},
        )
    )
    # The corrected form captures the collapse ...
    lockdown = weeks >= 13
    assert weighted[lockdown].min() < -35
    # ... while the literal printed formula does not measure distance at
    # all: it is dominated by the number of visited towers and the raw
    # coordinate magnitudes, and under lockdown it moves the *opposite*
    # way. This is the quantitative argument (recorded in DESIGN.md)
    # for reading eq. 2 as the standard time-weighted form.
    gap = np.abs(weighted - paper)[lockdown].max()
    print(f"max lockdown-week divergence: {gap:.1f} pp")
    assert gap > 50.0
