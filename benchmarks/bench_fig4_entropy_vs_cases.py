"""F4 — Fig 4: entropy change vs cumulative confirmed cases.

Regenerates the scatter (printed as case-decile means) and the
correlation statistics behind the paper's "mobility does not track case
counts" takeaway.
"""

import numpy as np

from repro.core.correlation import entropy_cases_correlation
from repro.core.mobility_series import national_mobility


def test_fig4_scatter(benchmark, feeds, metrics):
    national = national_mobility(metrics, feeds)
    result = benchmark(entropy_cases_correlation, national, feeds)

    print("\nFig 4 — entropy change vs cumulative cases")
    print("-" * 52)
    buckets = np.percentile(result.cumulative_cases, np.arange(0, 101, 20))
    for low, high in zip(buckets[:-1], buckets[1:]):
        mask = (result.cumulative_cases >= low) & (
            result.cumulative_cases <= high
        )
        print(
            f"cases {low:>9.0f}..{high:>9.0f} : "
            f"{result.entropy_change_pct[mask].mean():+6.1f}%"
        )
    print(
        f"pearson r pre-declaration = "
        f"{result.pearson_r_pre_declaration:+.3f} (paper: none)"
    )
    print(f"pearson r pre-lockdown    = {result.pearson_r_pre_lockdown:+.3f}")

    # While cases grew but nothing was announced, mobility did not move.
    assert abs(result.pearson_r_pre_declaration) < 0.45
    # The entropy drop begins only after the declaration (~1000 cases).
    early = result.entropy_change_pct[result.cumulative_cases < 500]
    assert abs(early.mean()) < 10.0
