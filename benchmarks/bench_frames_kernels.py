"""Frame kernel sweep: vectorized segment kernels vs the naive oracle.

Times the hot frames/baseline reductions — grouped order statistics,
joins, pivot, weekly percentile deltas — at 1e5–1e6 rows in both modes
(``REPRO_FRAMES_NAIVE=1`` vs the vectorized default), verifies the
outputs are bitwise identical, and records seconds + speedups as JSON
next to ``parallel_scaling.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_frames_kernels.py -q

The shapes mirror a country-scale KPI feed: ~rows/10 groups (cells ×
days), a lookup-table join fanning labels onto every observation, and a
15-week study window.
"""

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.core.baseline import weekly_median_delta
from repro.frames import Frame, group_by, join, pivot

SIZES = (100_000, 316_000, 1_000_000)
RESULTS_PATH = Path(__file__).parent / "results" / "frames_kernels.json"
BENCH_SEED = 2020

# Acceptance floor: the vectorized path must beat the naive loops by at
# least this factor for grouped median and join at the largest size.
MIN_SPEEDUP = 5.0
GATED_OPERATIONS = ("grouped_median", "join_inner")


@contextmanager
def naive_mode():
    previous = os.environ.get("REPRO_FRAMES_NAIVE")
    os.environ["REPRO_FRAMES_NAIVE"] = "1"
    try:
        yield
    finally:
        if previous is None:
            del os.environ["REPRO_FRAMES_NAIVE"]
        else:
            os.environ["REPRO_FRAMES_NAIVE"] = previous


def make_feed(rows: int) -> dict:
    """Synthetic KPI-shaped columns: dense cell keys, float metrics."""
    rng = np.random.default_rng(BENCH_SEED)
    num_cells = max(rows // 10, 1)
    cells = rng.integers(0, num_cells, rows)
    lookup_cells = np.arange(num_cells)
    return {
        "frame": Frame(
            {
                "cell": cells,
                "day": rng.integers(0, 100, rows),
                "volume": rng.lognormal(3.0, 1.0, rows),
            }
        ),
        "lookup": Frame(
            {
                "cell": lookup_cells,
                "county": rng.integers(0, 50, num_cells).astype(str),
            }
        ),
        "weeks": rng.integers(9, 24, rows),
        "values": rng.lognormal(3.0, 1.0, rows),
        "pivot": Frame(
            {
                "row": rng.integers(0, 1_000, rows),
                "col": rng.integers(0, 30, rows),
                "val": rng.normal(size=rows),
            }
        ),
    }


def operations(feed: dict) -> dict:
    frame, lookup = feed["frame"], feed["lookup"]
    return {
        "grouped_median": lambda: group_by(frame, "cell").agg(
            med=("volume", "median")
        ),
        "grouped_p90": lambda: group_by(frame, "cell").agg(
            p90=("volume", ("percentile", 90))
        ),
        "grouped_nunique": lambda: group_by(frame, "cell").agg(
            days=("day", "nunique")
        ),
        "join_inner": lambda: join(frame, lookup, on="cell"),
        "join_left": lambda: join(frame, lookup, on="cell", how="left"),
        "pivot_sum": lambda: pivot(
            feed["pivot"], index="row", columns="col", values="val"
        ),
        "weekly_median_delta": lambda: weekly_median_delta(
            feed["values"], feed["weeks"]
        ),
    }


def identical(left, right) -> bool:
    """Bitwise equality for frames or (weeks, values) tuples."""
    if isinstance(left, Frame):
        if left.column_names != right.column_names:
            return False
        return all(
            left[name].dtype == right[name].dtype
            and np.array_equal(left[name], right[name])
            for name in left.column_names
        )
    return all(np.array_equal(a, b) for a, b in zip(left, right))


def timed(operation) -> tuple[float, object]:
    start = time.perf_counter()
    result = operation()
    return time.perf_counter() - start, result


def run_sweep() -> dict:
    rows_report = []
    for size in SIZES:
        feed = make_feed(size)
        for name, operation in operations(feed).items():
            vectorized_s, vectorized = timed(operation)
            with naive_mode():
                naive_s, naive = timed(operation)
            rows_report.append(
                {
                    "operation": name,
                    "rows": size,
                    "naive_seconds": naive_s,
                    "vectorized_seconds": vectorized_s,
                    "speedup": naive_s / vectorized_s,
                    "bitwise_identical": identical(vectorized, naive),
                }
            )
    return {
        "seed": BENCH_SEED,
        "cpu_count": os.cpu_count(),
        "sizes": list(SIZES),
        "sweep": rows_report,
    }


def test_frames_kernel_sweep():
    """Sweep all kernels; record JSON; gate the headline speedups."""
    report = run_sweep()
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print("\nFrame kernel sweep (naive vs vectorized)")
    print(f"{'operation':>20}{'rows':>10}{'naive s':>10}{'vect s':>10}"
          f"{'speedup':>9}  identical")
    for row in report["sweep"]:
        print(
            f"{row['operation']:>20}{row['rows']:>10}"
            f"{row['naive_seconds']:>10.3f}{row['vectorized_seconds']:>10.3f}"
            f"{row['speedup']:>8.1f}x  {row['bitwise_identical']}"
        )

    assert all(row["bitwise_identical"] for row in report["sweep"]), (
        "vectorized kernels diverged from the naive oracle"
    )
    largest = [row for row in report["sweep"] if row["rows"] == SIZES[-1]]
    for row in largest:
        if row["operation"] in GATED_OPERATIONS:
            assert row["speedup"] >= MIN_SPEEDUP, (
                f"{row['operation']} at {row['rows']} rows: "
                f"{row['speedup']:.1f}x < {MIN_SPEEDUP}x"
            )


if __name__ == "__main__":
    test_frames_kernel_sweep()
