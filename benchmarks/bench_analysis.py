"""Analysis-path benchmark: cold vs warm CLI, batched vs per-day kernels.

Two claims are measured and gated:

1. **The artifact cache.**  A warm ``analyze`` — every artifact served
   from ``<run>/cache/analysis/`` keyed on the manifest digests, no
   feeds loaded — must be at least 5x faster than the cold run that
   populated it, with *byte-identical* printed output.
2. **Adaptive batched daily metrics.**  ``compute_daily_metrics``
   batches days into one kernel call only where the per-call numpy
   overhead dominates (small populations); at large populations the
   automatic path is the per-day loop, because flattening was a
   measured ~0.99x loss there.  Both the small-population win and the
   large-population routing decision are measured, and every path must
   reproduce the per-day oracle bitwise.

Results land as JSON in ``benchmarks/results/analysis.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_analysis.py -q
"""

import io
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.cli import main
from repro.core.statistics import (
    _BATCH_TARGET_BYTES,
    _MIN_AUTO_BATCH_DAYS,
    _compute_daily_metrics_loop,
    compute_daily_metrics,
)
from repro.io import load_feeds

RESULTS_PATH = Path(__file__).parent / "results" / "analysis.json"
BENCH_SEED = 2020
BENCH_USERS = 2_000
SMALL_USERS = 60

#: Floor for the small-population batched speedup — the scale the
#: batching exists for (measured ~3x at 60 users on the dev box).
MIN_SMALL_BATCH_SPEEDUP = 1.2

#: Acceptance floor for the warm/cold analyze ratio.  In practice the
#: warm path is orders of magnitude faster (it reads one NPZ entry
#: instead of loading feeds and recomputing 15 artifacts); 5x is the
#: contract.
MIN_WARM_SPEEDUP = 5.0


def _cli(argv) -> str:
    out = io.StringIO()
    code = main(argv, out=out)
    assert code == 0, out.getvalue()
    return out.getvalue()


def bench_cache(rundir: Path) -> dict:
    _cli([
        "simulate", "--preset", "tiny", "--seed", str(BENCH_SEED),
        "--users", str(BENCH_USERS), "--out", str(rundir),
    ])

    start = time.perf_counter()
    cold_text = _cli(["analyze", str(rundir)])
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm_text = _cli(["analyze", str(rundir)])
    warm_s = time.perf_counter() - start

    start = time.perf_counter()
    nocache_text = _cli(["analyze", str(rundir), "--no-cache"])
    nocache_s = time.perf_counter() - start

    store = rundir / "cache" / "analysis"
    entries = list(store.glob("*.npz"))
    return {
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "no_cache_seconds": nocache_s,
        "warm_speedup": cold_s / warm_s,
        "byte_identical": warm_text == cold_text == nocache_text,
        "cache_entries": len(entries),
        "cache_bytes": sum(path.stat().st_size for path in entries),
    }


def _auto_path(feeds) -> str:
    """The path ``compute_daily_metrics`` picks with no ``batch_days``."""
    k = feeds.mobility.anchor_sites.shape[1]
    per_day = max(feeds.mobility.num_users * k * 8, 1)
    auto = max(1, _BATCH_TARGET_BYTES // per_day)
    return "loop" if auto < _MIN_AUTO_BATCH_DAYS else "batched"


def bench_batched_metrics(rundir: Path) -> dict:
    """Time the per-day oracle vs the auto and forced-batch paths."""
    feeds = load_feeds(rundir)
    # Warm both paths once (allocator, page faults) before timing.
    compute_daily_metrics(feeds, batch_days=1)

    start = time.perf_counter()
    loop = _compute_daily_metrics_loop(feeds, "weighted", 20)
    loop_s = time.perf_counter() - start

    start = time.perf_counter()
    auto = compute_daily_metrics(feeds)
    auto_s = time.perf_counter() - start

    # Forced flattening, regardless of the adaptive gate — what the
    # auto path did before the gate existed.
    start = time.perf_counter()
    forced = compute_daily_metrics(feeds, batch_days=8)
    forced_s = time.perf_counter() - start

    return {
        "users": feeds.mobility.num_users,
        "days": feeds.mobility.num_days,
        "auto_path": _auto_path(feeds),
        "loop_seconds": loop_s,
        "auto_seconds": auto_s,
        "forced_batched_seconds": forced_s,
        "auto_speedup": loop_s / auto_s,
        "forced_batched_speedup": loop_s / forced_s,
        "bitwise_identical": bool(
            np.array_equal(loop.entropy, auto.entropy)
            and np.array_equal(loop.gyration_km, auto.gyration_km)
            and np.array_equal(loop.entropy, forced.entropy)
            and np.array_equal(loop.gyration_km, forced.gyration_km)
        ),
    }


def bench_small_population(small_rundir: Path) -> dict:
    """The scale the batching exists for: tiny per-day kernel calls."""
    _cli([
        "simulate", "--preset", "tiny", "--seed", str(BENCH_SEED),
        "--users", str(SMALL_USERS), "--out", str(small_rundir),
    ])
    feeds = load_feeds(small_rundir)
    compute_daily_metrics(feeds, batch_days=1)  # warm

    start = time.perf_counter()
    loop = _compute_daily_metrics_loop(feeds, "weighted", 20)
    loop_s = time.perf_counter() - start

    start = time.perf_counter()
    auto = compute_daily_metrics(feeds)
    auto_s = time.perf_counter() - start

    return {
        "users": feeds.mobility.num_users,
        "days": feeds.mobility.num_days,
        "auto_path": _auto_path(feeds),
        "loop_seconds": loop_s,
        "auto_seconds": auto_s,
        "auto_speedup": loop_s / auto_s,
        "bitwise_identical": bool(
            np.array_equal(loop.entropy, auto.entropy)
            and np.array_equal(loop.gyration_km, auto.gyration_km)
        ),
    }


def test_analysis_bench(tmp_path):
    rundir = tmp_path / "run"
    report = {
        "seed": BENCH_SEED,
        "users": BENCH_USERS,
        "cpu_count": os.cpu_count(),
        "cache": bench_cache(rundir),
        "batched_metrics": bench_batched_metrics(rundir),
        "batched_metrics_small": bench_small_population(tmp_path / "small"),
        "batching_decision": (
            "kept, gated adaptively: populations whose automatic batch "
            "size falls below _MIN_AUTO_BATCH_DAYS route to the per-day "
            "loop (flattening was a measured ~0.99x loss at 2k users); "
            "small populations keep the batch path, where per-call "
            "overhead dominates and batching wins ~3x"
        ),
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    cache = report["cache"]
    metrics = report["batched_metrics"]
    small = report["batched_metrics_small"]
    print("\nAnalysis pipeline benchmark")
    print(
        f"  analyze: cold {cache['cold_seconds']:.3f}s -> warm "
        f"{cache['warm_seconds']:.3f}s ({cache['warm_speedup']:.1f}x), "
        f"--no-cache {cache['no_cache_seconds']:.3f}s, "
        f"{cache['cache_entries']} entries / {cache['cache_bytes']} B"
    )
    print(
        f"  daily metrics ({metrics['users']} users, auto path "
        f"{metrics['auto_path']}): loop {metrics['loop_seconds']:.3f}s, "
        f"auto {metrics['auto_seconds']:.3f}s "
        f"({metrics['auto_speedup']:.2f}x), forced batch "
        f"{metrics['forced_batched_seconds']:.3f}s "
        f"({metrics['forced_batched_speedup']:.2f}x)"
    )
    print(
        f"  daily metrics ({small['users']} users, auto path "
        f"{small['auto_path']}): loop {small['loop_seconds'] * 1e3:.2f}ms, "
        f"auto {small['auto_seconds'] * 1e3:.2f}ms "
        f"({small['auto_speedup']:.2f}x)"
    )

    assert cache["byte_identical"], (
        "cold, warm and --no-cache analyze output diverged"
    )
    assert cache["cache_entries"] > 0
    assert cache["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm analyze only {cache['warm_speedup']:.1f}x faster "
        f"than cold (< {MIN_WARM_SPEEDUP}x)"
    )
    assert metrics["bitwise_identical"], (
        "batched daily metrics diverged from the per-day oracle"
    )
    assert small["bitwise_identical"], (
        "small-population batched metrics diverged from the oracle"
    )
    # The routing decision itself: big populations take the loop, small
    # ones the batch — and the batch must actually win where it is used.
    assert metrics["auto_path"] == "loop"
    assert small["auto_path"] == "batched"
    assert small["auto_speedup"] >= MIN_SMALL_BATCH_SPEEDUP, (
        f"small-population batching only {small['auto_speedup']:.2f}x "
        f"(< {MIN_SMALL_BATCH_SPEEDUP}x)"
    )


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        test_analysis_bench(Path(scratch))
