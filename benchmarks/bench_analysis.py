"""Analysis-path benchmark: cold vs warm CLI, batched vs per-day kernels.

Two claims are measured and gated:

1. **The artifact cache.**  A warm ``analyze`` — every artifact served
   from ``<run>/cache/analysis/`` keyed on the manifest digests, no
   feeds loaded — must be at least 5x faster than the cold run that
   populated it, with *byte-identical* printed output.
2. **Batched daily metrics.**  ``compute_daily_metrics`` flattening
   several days per kernel call must reproduce the per-day oracle
   bitwise (the speedup itself is recorded, not gated: at benchmark
   scale it is bounded by cache locality, not call overhead).

Results land as JSON in ``benchmarks/results/analysis.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_analysis.py -q
"""

import io
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.cli import main
from repro.core.statistics import (
    _compute_daily_metrics_loop,
    compute_daily_metrics,
)
from repro.io import load_feeds

RESULTS_PATH = Path(__file__).parent / "results" / "analysis.json"
BENCH_SEED = 2020
BENCH_USERS = 2_000

#: Acceptance floor for the warm/cold analyze ratio.  In practice the
#: warm path is orders of magnitude faster (it reads one NPZ entry
#: instead of loading feeds and recomputing 15 artifacts); 5x is the
#: contract.
MIN_WARM_SPEEDUP = 5.0


def _cli(argv) -> str:
    out = io.StringIO()
    code = main(argv, out=out)
    assert code == 0, out.getvalue()
    return out.getvalue()


def bench_cache(rundir: Path) -> dict:
    _cli([
        "simulate", "--preset", "tiny", "--seed", str(BENCH_SEED),
        "--users", str(BENCH_USERS), "--out", str(rundir),
    ])

    start = time.perf_counter()
    cold_text = _cli(["analyze", str(rundir)])
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm_text = _cli(["analyze", str(rundir)])
    warm_s = time.perf_counter() - start

    start = time.perf_counter()
    nocache_text = _cli(["analyze", str(rundir), "--no-cache"])
    nocache_s = time.perf_counter() - start

    store = rundir / "cache" / "analysis"
    entries = list(store.glob("*.npz"))
    return {
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "no_cache_seconds": nocache_s,
        "warm_speedup": cold_s / warm_s,
        "byte_identical": warm_text == cold_text == nocache_text,
        "cache_entries": len(entries),
        "cache_bytes": sum(path.stat().st_size for path in entries),
    }


def bench_batched_metrics(rundir: Path) -> dict:
    feeds = load_feeds(rundir)
    # Warm both paths once (allocator, page faults) before timing.
    compute_daily_metrics(feeds, batch_days=1)

    start = time.perf_counter()
    loop = _compute_daily_metrics_loop(feeds, "weighted", 20)
    loop_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = compute_daily_metrics(feeds)
    batched_s = time.perf_counter() - start

    return {
        "users": feeds.mobility.num_users,
        "days": feeds.mobility.num_days,
        "loop_seconds": loop_s,
        "batched_seconds": batched_s,
        "speedup": loop_s / batched_s,
        "bitwise_identical": bool(
            np.array_equal(loop.entropy, batched.entropy)
            and np.array_equal(loop.gyration_km, batched.gyration_km)
        ),
    }


def test_analysis_bench(tmp_path):
    rundir = tmp_path / "run"
    report = {
        "seed": BENCH_SEED,
        "users": BENCH_USERS,
        "cpu_count": os.cpu_count(),
        "cache": bench_cache(rundir),
        "batched_metrics": bench_batched_metrics(rundir),
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    cache = report["cache"]
    metrics = report["batched_metrics"]
    print("\nAnalysis pipeline benchmark")
    print(
        f"  analyze: cold {cache['cold_seconds']:.3f}s -> warm "
        f"{cache['warm_seconds']:.3f}s ({cache['warm_speedup']:.1f}x), "
        f"--no-cache {cache['no_cache_seconds']:.3f}s, "
        f"{cache['cache_entries']} entries / {cache['cache_bytes']} B"
    )
    print(
        f"  daily metrics: loop {metrics['loop_seconds']:.3f}s, batched "
        f"{metrics['batched_seconds']:.3f}s ({metrics['speedup']:.2f}x)"
    )

    assert cache["byte_identical"], (
        "cold, warm and --no-cache analyze output diverged"
    )
    assert cache["cache_entries"] > 0
    assert cache["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm analyze only {cache['warm_speedup']:.1f}x faster "
        f"than cold (< {MIN_WARM_SPEEDUP}x)"
    )
    assert metrics["bitwise_identical"], (
        "batched daily metrics diverged from the per-day oracle"
    )


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        test_analysis_bench(Path(scratch))
