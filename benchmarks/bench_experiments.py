"""Experiment-grid benchmark: cold vs warm grid reruns.

One claim is measured and gated: a warm rerun of a persisted
(scenario × seed) grid — every cell's ``cell.json`` digest matching,
every run *loaded* instead of simulated, every analysis artifact
served from the run's content-addressed cache — must be at least 5x
faster than the cold run that populated it, with a **byte-identical**
comparative report.

Results land as JSON in ``benchmarks/results/experiments.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_experiments.py -q
"""

import json
import os
import time
from pathlib import Path

from repro.datasets.runcache import clear_memo
from repro.experiments import ExperimentSpec, run_grid
from repro.experiments.grid import CELL_SIDECAR

RESULTS_PATH = Path(__file__).parent / "results" / "experiments.json"
BENCH_SCENARIOS = ("no_intervention", "second_wave")
BENCH_SEEDS = (1, 2)
BENCH_USERS = 800

#: Acceptance floor for the warm/cold grid ratio.  In practice the
#: warm rerun is far faster (it loads six small run directories and
#: reads cached NPZ artifacts instead of simulating six worlds and
#: computing their studies); 5x is the contract.
MIN_WARM_SPEEDUP = 5.0


def _grid(workdir: Path) -> tuple[str, float, dict]:
    """One full grid pass: (report text, seconds, action tally)."""
    clear_memo()  # the point is the *persistent* path, not the memo
    actions: dict = {"simulated": 0, "reused": 0}

    def progress(scenario: str, seed: int, action: str) -> None:
        actions[action] += 1

    spec = ExperimentSpec(
        scenarios=BENCH_SCENARIOS,
        seeds=BENCH_SEEDS,
        preset="tiny",
        num_users=BENCH_USERS,
        workdir=workdir,
    )
    start = time.perf_counter()
    result = run_grid(spec, progress=progress)
    report = result.report()
    elapsed = time.perf_counter() - start
    return report, elapsed, actions


def test_experiments_bench(tmp_path):
    workdir = tmp_path / "grid"

    cold_report, cold_s, cold_actions = _grid(workdir)
    warm_report, warm_s, warm_actions = _grid(workdir)

    cells = list(workdir.glob(f"*/{CELL_SIDECAR}"))
    report = {
        "scenarios": list(BENCH_SCENARIOS),
        "seeds": list(BENCH_SEEDS),
        "users": BENCH_USERS,
        "cpu_count": os.cpu_count(),
        "cells": len(cells),
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "warm_speedup": cold_s / warm_s,
        "cold_actions": cold_actions,
        "warm_actions": warm_actions,
        "byte_identical": warm_report == cold_report,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print("\nExperiment grid benchmark")
    print(
        f"  grid ({len(cells)} cells, {BENCH_USERS} users/cell): cold "
        f"{cold_s:.3f}s -> warm {warm_s:.3f}s "
        f"({report['warm_speedup']:.1f}x)"
    )
    print(
        f"  cell fates: cold {cold_actions}, warm {warm_actions}"
    )

    expected_cells = (len(BENCH_SCENARIOS) + 1) * len(BENCH_SEEDS)
    assert len(cells) == expected_cells
    assert cold_actions == {"simulated": expected_cells, "reused": 0}
    assert warm_actions == {"simulated": 0, "reused": expected_cells}
    assert report["byte_identical"], (
        "warm grid report diverged from the cold run's bytes"
    )
    assert report["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm grid only {report['warm_speedup']:.1f}x faster than "
        f"cold (< {MIN_WARM_SPEEDUP}x)"
    )


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        test_experiments_bench(Path(scratch))
