"""S24 — §2.4: RAT time shares (75% of connected time on 4G)."""

import pytest

from repro.core.rat_usage import rat_time_share


def test_rat_time_share(benchmark, feeds):
    shares = benchmark(rat_time_share, feeds.rat_time)
    print("\n§2.4 — connected-time share per RAT")
    for rat, share in sorted(shares.items()):
        print(f"  {rat:<4} {share:6.1%}")
    assert shares["4G"] == pytest.approx(0.75, abs=0.03)
    assert sum(shares.values()) == pytest.approx(1.0)
