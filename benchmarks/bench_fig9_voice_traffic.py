"""F9 — Fig 9: conversational-voice traffic (QCI = 1).

Regenerates the four voice panels — volume, simultaneous users, UL and
DL packet loss — including the interconnect congestion incident and its
operational resolution.
"""

from repro.core.report import render_series_block
from repro.core.voice_analysis import voice_series


def test_fig9_voice_panels(benchmark, feeds, labeled):
    panels = benchmark(voice_series, feeds, labeled=labeled)
    for metric, series in panels.items():
        print()
        print(
            render_series_block(
                f"Fig 9 — {metric} (% vs week 9)",
                series.weeks,
                series.values,
            )
        )

    volume = panels["voice_volume_mb"]
    users = panels["voice_users"]
    dl_loss = panels["voice_dl_loss_rate"]
    ul_loss = panels["voice_ul_loss_rate"]

    # +140% volume spike at week 12 with matching simultaneous users.
    peak_week, peak = volume.maximum("UK")
    assert peak_week in (12, 13)
    assert 100 < peak < 200
    assert users.maximum("UK")[1] > 80

    # DL loss: >+100% spike in weeks 10-12, then below normal.
    loss_week, loss_peak = dl_loss.maximum("UK")
    assert 10 <= loss_week <= 12
    assert loss_peak > 100
    assert dl_loss.values["UK"][-1] < 0

    # UL loss decreases with the quieter radio network.
    assert ul_loss.values["UK"][ul_loss.weeks >= 14].mean() < 0

    # §4.2 also reports "a significant increase of its top 90
    # percentile value" for voice volume.
    from repro.core.voice_analysis import voice_series as _vs

    p90 = _vs(feeds, percentile=90.0, labeled=labeled)["voice_volume_mb"]
    print()
    print(
        render_series_block(
            "Fig 9 (aux) — voice volume, 90th percentile",
            p90.weeks, p90.values,
        )
    )
    assert p90.maximum("UK")[1] > 80

    upgrade = feeds.interconnect_upgrade_day
    assert upgrade is not None
    date = feeds.calendar.date_of(upgrade)
    print(
        f"\ninterconnect capacity upgrade landed {date} "
        f"(week {date.isocalendar().week}) — the §4.2 'rapid response'"
    )
