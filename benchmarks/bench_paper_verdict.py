"""The overall reproduction verdict: every paper target, one table.

Scores the benchmark run's summary against the machine-readable target
bands (``repro.core.paper_targets``) — the condensed form of
EXPERIMENTS.md.
"""

from repro.core.paper_targets import evaluate_summary, render_verdicts


def test_paper_verdict(benchmark, study):
    summary = study.summary()
    verdicts = benchmark(evaluate_summary, summary)
    print("\n" + render_verdicts(verdicts))
    passed = sum(verdict.passed for verdict in verdicts)
    assert passed / len(verdicts) >= 0.85
