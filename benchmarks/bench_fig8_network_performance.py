"""F8 — Fig 8: the six-panel network-performance characterization.

Regenerates, for the UK and the five high-density regions, the weekly
median delta series of every data-traffic KPI (all bearers QCI 1–8):
downlink/uplink volume, active DL users, per-user DL throughput, cell
resource utilization and total connected users.
"""

from repro.core.performance import PERF_METRICS, performance_series
from repro.core.report import render_series_block


def _all_panels(feeds, labeled):
    return {
        metric: performance_series(
            feeds, metric, grouping="county", labeled=labeled
        )
        for metric in PERF_METRICS
    }


def test_fig8_all_panels(benchmark, feeds, labeled):
    panels = benchmark(_all_panels, feeds, labeled)
    for metric, series in panels.items():
        print()
        print(
            render_series_block(
                f"Fig 8 — {metric} (% vs week 9)",
                series.weeks,
                series.values,
            )
        )

    dl = panels["dl_volume_mb"]
    ul = panels["ul_volume_mb"]
    users = panels["dl_active_users"]
    throughput = panels["user_dl_throughput_mbps"]
    load = panels["radio_load_pct"]

    # Paper §4.1 shape checks.
    assert 3 < dl.at_week("UK", 10) < 15  # +8% bump in week 10
    week, value = dl.minimum("UK")
    assert week >= 13 and -35 < value < -15  # −24% trough
    lockdown_ul = ul.values["UK"][ul.weeks >= 13]
    assert lockdown_ul.min() > -12 and lockdown_ul.max() < 10
    assert users.minimum("UK")[1] < -10  # active users fall
    assert -18 < throughput.minimum("UK")[1] < -4  # ~−10%, app-limited
    assert -30 < load.minimum("UK")[1] < -8  # ~−15% radio load

    # Regional ordering (§4.3): Inner London falls hardest; Outer
    # London least among the London pair.
    assert dl.minimum("Inner London")[1] < dl.minimum("UK")[1]
    assert dl.minimum("Inner London")[1] < dl.minimum("Outer London")[1]


def test_fig8_percentile_band(benchmark, feeds, labeled):
    """The 90th-percentile band the paper mentions for active users."""
    p90 = benchmark(
        performance_series,
        feeds,
        "dl_active_users",
        grouping="national",
        percentile=90.0,
        labeled=labeled,
    )
    print()
    print(
        render_series_block(
            "Fig 8 (aux) — dl_active_users 90th percentile",
            p90.weeks,
            p90.values,
        )
    )
    # The upper percentile also reduces during lockdown (§4.1).
    assert p90.values["UK"][p90.weeks >= 14].mean() < 0
