"""Out-of-core scale benchmark: simulate → analyze at 1M+ agents, gated.

The columnar feed store's claim (:mod:`repro.io.columnar`): population
size is bounded by disk, not RAM.  This bench drives the whole
lifecycle — streamed simulate → atomic save → lazy load → streamed
``compute_daily_metrics`` — with **each phase in its own subprocess**
so ``ru_maxrss`` measures that phase alone, and gates three promises:

- peak RSS of every phase stays under a fixed budget (the analyze
  phase never assembles the full population in memory);
- the streamed analysis sustains a minimum user-days/sec rate;
- its output is *bitwise* identical to the ``REPRO_STORE_NAIVE=1``
  eager oracle (compared by SHA-256 of the result arrays).

Two sizes share the machinery: a CI smoke at 30k agents, and the
full ``-m slow`` run at 1,000,000 agents (~3 minutes of simulate).
Results land as JSON in ``benchmarks/results/scale.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_scale.py -q            # smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_scale.py -q -m slow    # 1M agents
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

RESULTS_PATH = Path(__file__).parent / "results" / "scale.json"
_REPO_ROOT = Path(__file__).parent.parent

GIB = 1024**3

#: Benchmark sizes.  Budgets are hard gates on subprocess peak RSS —
#: generous against today's measurements (simulate ~1.2 GiB, analyze
#: ~0.3 GiB at 1M agents) but far below what eager full-population
#: assembly would need at paper scale, so a regression that quietly
#: materializes the whole feed trips them.
SIZES = {
    "smoke": {
        "users": 30_000,
        "days": 4,
        "shards": 4,
        "sites": 300,
        "simulate_rss_budget": int(1.5 * GIB),
        "analyze_rss_budget": int(1.0 * GIB),
        "min_user_days_per_sec": 5_000,
    },
    "million": {
        "users": 1_000_000,
        "days": 4,
        "shards": 8,
        "sites": 600,
        # Streamed analyze measures ~0.83 GiB (mostly resident pages of
        # the 300 MB mapped payload); the eager oracle needs ~1.54 GiB,
        # so this budget sits between the two — bounded-memory
        # streaming passes, full-population assembly fails.
        "simulate_rss_budget": int(2.0 * GIB),
        "analyze_rss_budget": int(1.25 * GIB),
        "min_user_days_per_sec": 50_000,
    },
}

BENCH_SEED = 7


# ---------------------------------------------------------------------------
# Child phases (run via ``python benchmarks/bench_scale.py <phase> ...``)
# ---------------------------------------------------------------------------


def _config(users: int, days: int, shards: int, sites: int):
    import datetime as dt

    from repro.simulation.clock import StudyCalendar
    from repro.simulation.config import SimulationConfig

    calendar = StudyCalendar(
        first_day=dt.date(2020, 2, 24), num_days=days
    )
    return SimulationConfig(
        num_users=users,
        target_site_count=sites,
        seed=BENCH_SEED,
        calendar=calendar,
    ).with_parallelism(shards)


def _digest(array) -> str:
    import hashlib

    import numpy as np

    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def _peak_rss_bytes() -> int:
    import resource

    usage = resource.getrusage(resource.RUSAGE_SELF)
    return int(usage.ru_maxrss) * 1024  # Linux reports KiB


def _phase_simulate(rundir: Path, size: dict) -> dict:
    import time

    from repro.io import save_feeds
    from repro.simulation.engine import Simulator

    config = _config(
        size["users"], size["days"], size["shards"], size["sites"]
    )
    start = time.perf_counter()
    feeds = Simulator(config).run(stream_dir=rundir)
    simulate_s = time.perf_counter() - start
    save_feeds(feeds, rundir)
    save_s = time.perf_counter() - start - simulate_s
    payload = sum(
        file.stat().st_size for file in (rundir / "feeds").rglob("*.npy")
    )
    return {
        "filtered_users": feeds.mobility.num_users,
        "simulate_seconds": simulate_s,
        "save_seconds": save_s,
        "feed_payload_bytes": payload,
        "peak_rss_bytes": _peak_rss_bytes(),
    }


def _phase_analyze(rundir: Path, size: dict) -> dict:
    import time

    from repro.core.statistics import compute_daily_metrics
    from repro.io import load_feeds
    from repro.io.columnar import ShardedMobilityFeed

    start = time.perf_counter()
    feeds = load_feeds(rundir, lazy=True)
    streaming = isinstance(feeds.mobility, ShardedMobilityFeed)
    metrics = compute_daily_metrics(feeds)
    elapsed = time.perf_counter() - start
    user_days = int(metrics.entropy.size)
    return {
        "streaming": streaming,
        "analyze_seconds": elapsed,
        "user_days": user_days,
        "user_days_per_sec": user_days / elapsed if elapsed else 0.0,
        "entropy_sha256": _digest(metrics.entropy),
        "gyration_sha256": _digest(metrics.gyration_km),
        "peak_rss_bytes": _peak_rss_bytes(),
    }


_PHASES = {"simulate": _phase_simulate, "analyze": _phase_analyze}


def _run_phase(phase: str, rundir: Path, size: dict, *, naive=False) -> dict:
    """Execute one phase in a fresh interpreter; return its report."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src")
    env.pop("REPRO_STORE_NAIVE", None)
    if naive:
        env["REPRO_STORE_NAIVE"] = "1"
    completed = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            phase,
            str(rundir),
            json.dumps(size),
        ],
        env=env,
        cwd=_REPO_ROOT,
        capture_output=True,
        text=True,
        check=False,
    )
    assert completed.returncode == 0, (
        f"{phase} phase failed:\n{completed.stdout}\n{completed.stderr}"
    )
    return json.loads(completed.stdout.splitlines()[-1])


def _record(label: str, report: dict) -> None:
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    existing = {}
    if RESULTS_PATH.exists():
        existing = json.loads(RESULTS_PATH.read_text())
    existing[label] = report
    RESULTS_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def _bench(label: str, tmp_path: Path) -> None:
    size = SIZES[label]
    rundir = tmp_path / "run"

    simulate = _run_phase("simulate", rundir, size)
    analyze = _run_phase("analyze", rundir, size)
    oracle = _run_phase("analyze", rundir, size, naive=True)

    bitwise = (
        analyze["entropy_sha256"] == oracle["entropy_sha256"]
        and analyze["gyration_sha256"] == oracle["gyration_sha256"]
    )
    report = {
        "config": {key: size[key] for key in ("users", "days", "shards")},
        "simulate": simulate,
        "analyze": analyze,
        "oracle": {
            "peak_rss_bytes": oracle["peak_rss_bytes"],
            "analyze_seconds": oracle["analyze_seconds"],
            "streaming": oracle["streaming"],
        },
        "bitwise_identical": bitwise,
    }
    _record(label, report)

    print(f"\nScale benchmark [{label}]")
    print(
        f"  simulate {size['users']} agents x {size['days']} days: "
        f"{simulate['simulate_seconds']:.1f}s + "
        f"{simulate['save_seconds']:.1f}s save, peak RSS "
        f"{simulate['peak_rss_bytes'] / GIB:.2f} GiB, payload "
        f"{simulate['feed_payload_bytes'] / 1e6:.0f} MB"
    )
    print(
        f"  analyze (streamed): {analyze['analyze_seconds']:.1f}s, "
        f"{analyze['user_days_per_sec']:.0f} user-days/s, peak RSS "
        f"{analyze['peak_rss_bytes'] / GIB:.2f} GiB "
        f"(oracle {oracle['peak_rss_bytes'] / GIB:.2f} GiB)"
    )

    assert analyze["streaming"], "lazy load did not produce a sharded feed"
    assert not oracle["streaming"], (
        "REPRO_STORE_NAIVE=1 did not force the eager oracle"
    )
    assert bitwise, "streamed metrics diverged from the eager oracle"
    assert simulate["peak_rss_bytes"] <= size["simulate_rss_budget"], (
        f"simulate peak RSS {simulate['peak_rss_bytes'] / GIB:.2f} GiB "
        f"over budget {size['simulate_rss_budget'] / GIB:.2f} GiB"
    )
    assert analyze["peak_rss_bytes"] <= size["analyze_rss_budget"], (
        f"analyze peak RSS {analyze['peak_rss_bytes'] / GIB:.2f} GiB "
        f"over budget {size['analyze_rss_budget'] / GIB:.2f} GiB"
    )
    assert analyze["user_days_per_sec"] >= size["min_user_days_per_sec"], (
        f"streamed analysis at {analyze['user_days_per_sec']:.0f} "
        f"user-days/s, below the {size['min_user_days_per_sec']} floor"
    )


def test_scale_smoke(tmp_path):
    _bench("smoke", tmp_path)


@pytest.mark.slow
def test_scale_million(tmp_path):
    _bench("million", tmp_path)


if __name__ == "__main__":
    _phase, _rundir, _size = sys.argv[1], Path(sys.argv[2]), sys.argv[3]
    _report = _PHASES[_phase](_rundir, json.loads(_size))
    print(json.dumps(_report))
