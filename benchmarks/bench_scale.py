"""Out-of-core scale benchmark: simulate → analyze at 1M+ agents, gated.

The columnar feed store's claim (:mod:`repro.io.columnar`): population
size is bounded by disk, not RAM.  This bench drives the whole
lifecycle — streamed simulate → atomic save → lazy load → streamed
``compute_daily_metrics`` — with **each phase in its own subprocess**
so ``ru_maxrss`` measures that phase alone, and gates three promises:

- peak RSS of every phase stays under a fixed budget (the analyze
  phase never assembles the full population in memory);
- the analyze RSS / feed-payload *ratio* stays under a per-size
  budget, so growing the payload cannot quietly grow resident memory
  in step (absolute budgets alone would mask that at small sizes);
- the streamed analysis sustains a minimum user-days/sec rate;
- its output is *bitwise* identical to the ``REPRO_STORE_NAIVE=1``
  eager oracle (compared by SHA-256 of the result arrays).

Three sizes share the machinery: a CI smoke at 30k agents, the full
``-m slow`` run at 1,000,000 agents (~3 minutes of simulate), and an
``-m slow`` events run whose signalling partition dwarfs RAM budgets —
its analyze phase streams day sessionization through windowed shard
maps and must peak *below the event payload itself*.
Results land as JSON in ``benchmarks/results/scale.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_scale.py -q            # smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_scale.py -q -m slow    # 1M agents
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

RESULTS_PATH = Path(__file__).parent / "results" / "scale.json"
_REPO_ROOT = Path(__file__).parent.parent

GIB = 1024**3

#: Benchmark sizes.  Budgets are hard gates on subprocess peak RSS —
#: generous against today's measurements (simulate ~1.2 GiB, analyze
#: ~0.3 GiB at 1M agents) but far below what eager full-population
#: assembly would need at paper scale, so a regression that quietly
#: materializes the whole feed trips them.
SIZES = {
    "smoke": {
        "users": 30_000,
        "days": 4,
        "shards": 4,
        "sites": 300,
        "signaling": False,
        "simulate_rss_budget": int(1.5 * GIB),
        "analyze_rss_budget": int(1.0 * GIB),
        # Tiny payload (~9 MB): the interpreter baseline dominates, so
        # the ratio budget is loose — it exists to catch gross leaks.
        "max_rss_payload_ratio": 30.0,
        "min_user_days_per_sec": 5_000,
    },
    "million": {
        "users": 1_000_000,
        "days": 4,
        "shards": 8,
        "sites": 600,
        "signaling": False,
        # Streamed analyze measures ~0.83 GiB (mostly resident pages of
        # the 300 MB mapped payload); the eager oracle needs ~1.54 GiB,
        # so this budget sits between the two — bounded-memory
        # streaming passes, full-population assembly fails.
        "simulate_rss_budget": int(2.0 * GIB),
        "analyze_rss_budget": int(1.25 * GIB),
        # Measured ~2.96 (resident pages + interpreter over a 300 MB
        # payload); assembly of the full population would be >= 5x.
        "max_rss_payload_ratio": 4.5,
        "min_user_days_per_sec": 50_000,
    },
    "events": {
        "users": 120_000,
        "days": 6,
        "shards": 4,
        "sites": 400,
        "signaling": True,
        "simulate_rss_budget": int(2.0 * GIB),
        "analyze_rss_budget": int(1.0 * GIB),
        # The signalling partition is ~1.8 GiB (~2.5 KB per user-day);
        # windowed consumption must keep analyze *below the payload*.
        "max_rss_payload_ratio": 1.0,
        "min_user_days_per_sec": 5_000,
    },
}

BENCH_SEED = 7


# ---------------------------------------------------------------------------
# Child phases (run via ``python benchmarks/bench_scale.py <phase> ...``)
# ---------------------------------------------------------------------------


def _config(
    users: int, days: int, shards: int, sites: int, signaling: bool = False
):
    import datetime as dt

    from repro.simulation.clock import StudyCalendar
    from repro.simulation.config import SimulationConfig

    calendar = StudyCalendar(
        first_day=dt.date(2020, 2, 24), num_days=days
    )
    return SimulationConfig(
        num_users=users,
        target_site_count=sites,
        seed=BENCH_SEED,
        calendar=calendar,
        emit_signaling=signaling,
    ).with_parallelism(shards)


def _digest(array) -> str:
    import hashlib

    import numpy as np

    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def _peak_rss_bytes() -> int:
    import resource

    usage = resource.getrusage(resource.RUSAGE_SELF)
    return int(usage.ru_maxrss) * 1024  # Linux reports KiB


def _session_bytes(frame) -> bytes:
    import numpy as np

    return b"".join(
        np.ascontiguousarray(frame[column]).tobytes()
        for column in ("user_id", "site_id", "dwell_s")
    )


def _phase_simulate(rundir: Path, size: dict) -> dict:
    import time

    from repro.io import save_feeds
    from repro.simulation.engine import Simulator

    config = _config(
        size["users"],
        size["days"],
        size["shards"],
        size["sites"],
        size.get("signaling", False),
    )
    start = time.perf_counter()
    feeds = Simulator(config).run(stream_dir=rundir)
    simulate_s = time.perf_counter() - start
    save_feeds(feeds, rundir)
    save_s = time.perf_counter() - start - simulate_s
    payload = sum(
        file.stat().st_size for file in (rundir / "feeds").rglob("*.npy")
    )
    events = sum(
        file.stat().st_size
        for file in (rundir / "feeds").rglob("events_*.npy")
    )
    return {
        "filtered_users": feeds.mobility.num_users,
        "simulate_seconds": simulate_s,
        "save_seconds": save_s,
        "feed_payload_bytes": payload,
        "event_payload_bytes": events,
        "peak_rss_bytes": _peak_rss_bytes(),
    }


def _phase_analyze(rundir: Path, size: dict) -> dict:
    import time

    from repro.core.statistics import compute_daily_metrics
    from repro.io import load_feeds
    from repro.io.columnar import ShardedMobilityFeed

    start = time.perf_counter()
    feeds = load_feeds(rundir, lazy=True)
    streaming = isinstance(feeds.mobility, ShardedMobilityFeed)
    metrics = compute_daily_metrics(feeds)
    sessions = 0
    session_sha = None
    if feeds.signaling is not None:
        # Stream the signalling partition a day at a time through
        # windowed shard maps — the whole event payload is consumed
        # while resident memory stays bounded by one day's chunks.
        # The naive oracle loads an eager per-day dict instead; both
        # paths must hash identical sessions.
        import hashlib

        from repro.core.sessionize import (
            sessionize_events,
            sessionize_events_stream,
        )

        sha = hashlib.sha256()
        for day in range(feeds.mobility.num_days):
            if isinstance(feeds.signaling, dict):
                frame = sessionize_events(feeds.signaling[day])
            else:
                frame = sessionize_events_stream(
                    feeds.signaling.chunks(day)
                )
            sessions += frame.num_rows
            sha.update(_session_bytes(frame))
        session_sha = sha.hexdigest()
    elapsed = time.perf_counter() - start
    user_days = int(metrics.entropy.size)
    return {
        "streaming": streaming,
        "analyze_seconds": elapsed,
        "user_days": user_days,
        "user_days_per_sec": user_days / elapsed if elapsed else 0.0,
        "sessions": sessions,
        "sessions_sha256": session_sha,
        "entropy_sha256": _digest(metrics.entropy),
        "gyration_sha256": _digest(metrics.gyration_km),
        "peak_rss_bytes": _peak_rss_bytes(),
    }


_PHASES = {"simulate": _phase_simulate, "analyze": _phase_analyze}


def _run_phase(phase: str, rundir: Path, size: dict, *, naive=False) -> dict:
    """Execute one phase in a fresh interpreter; return its report."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src")
    env.pop("REPRO_STORE_NAIVE", None)
    if naive:
        env["REPRO_STORE_NAIVE"] = "1"
    completed = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            phase,
            str(rundir),
            json.dumps(size),
        ],
        env=env,
        cwd=_REPO_ROOT,
        capture_output=True,
        text=True,
        check=False,
    )
    assert completed.returncode == 0, (
        f"{phase} phase failed:\n{completed.stdout}\n{completed.stderr}"
    )
    return json.loads(completed.stdout.splitlines()[-1])


def _record(label: str, report: dict) -> None:
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    existing = {}
    if RESULTS_PATH.exists():
        existing = json.loads(RESULTS_PATH.read_text())
    existing[label] = report
    RESULTS_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def _bench(label: str, tmp_path: Path) -> None:
    size = SIZES[label]
    rundir = tmp_path / "run"

    simulate = _run_phase("simulate", rundir, size)
    analyze = _run_phase("analyze", rundir, size)
    oracle = _run_phase("analyze", rundir, size, naive=True)

    bitwise = (
        analyze["entropy_sha256"] == oracle["entropy_sha256"]
        and analyze["gyration_sha256"] == oracle["gyration_sha256"]
        and analyze["sessions_sha256"] == oracle["sessions_sha256"]
    )
    rss_ratio = (
        analyze["peak_rss_bytes"] / simulate["feed_payload_bytes"]
        if simulate["feed_payload_bytes"]
        else 0.0
    )
    report = {
        "config": {key: size[key] for key in ("users", "days", "shards")},
        "simulate": simulate,
        "analyze": analyze,
        "rss_payload_ratio": rss_ratio,
        "oracle": {
            "peak_rss_bytes": oracle["peak_rss_bytes"],
            "analyze_seconds": oracle["analyze_seconds"],
            "streaming": oracle["streaming"],
        },
        "bitwise_identical": bitwise,
    }
    _record(label, report)

    print(f"\nScale benchmark [{label}]")
    print(
        f"  simulate {size['users']} agents x {size['days']} days: "
        f"{simulate['simulate_seconds']:.1f}s + "
        f"{simulate['save_seconds']:.1f}s save, peak RSS "
        f"{simulate['peak_rss_bytes'] / GIB:.2f} GiB, payload "
        f"{simulate['feed_payload_bytes'] / 1e6:.0f} MB"
    )
    print(
        f"  analyze (streamed): {analyze['analyze_seconds']:.1f}s, "
        f"{analyze['user_days_per_sec']:.0f} user-days/s, peak RSS "
        f"{analyze['peak_rss_bytes'] / GIB:.2f} GiB "
        f"(oracle {oracle['peak_rss_bytes'] / GIB:.2f} GiB), "
        f"RSS/payload {rss_ratio:.2f}"
    )

    assert analyze["streaming"], "lazy load did not produce a sharded feed"
    assert not oracle["streaming"], (
        "REPRO_STORE_NAIVE=1 did not force the eager oracle"
    )
    assert bitwise, "streamed metrics diverged from the eager oracle"
    assert simulate["peak_rss_bytes"] <= size["simulate_rss_budget"], (
        f"simulate peak RSS {simulate['peak_rss_bytes'] / GIB:.2f} GiB "
        f"over budget {size['simulate_rss_budget'] / GIB:.2f} GiB"
    )
    assert analyze["peak_rss_bytes"] <= size["analyze_rss_budget"], (
        f"analyze peak RSS {analyze['peak_rss_bytes'] / GIB:.2f} GiB "
        f"over budget {size['analyze_rss_budget'] / GIB:.2f} GiB"
    )
    assert analyze["user_days_per_sec"] >= size["min_user_days_per_sec"], (
        f"streamed analysis at {analyze['user_days_per_sec']:.0f} "
        f"user-days/s, below the {size['min_user_days_per_sec']} floor"
    )
    assert rss_ratio <= size["max_rss_payload_ratio"], (
        f"analyze RSS is {rss_ratio:.2f}x the feed payload, over the "
        f"{size['max_rss_payload_ratio']:g}x budget"
    )
    if size.get("signaling"):
        assert simulate["event_payload_bytes"] > 0
        assert analyze["sessions"] > 0
        # The headline claim: the event payload does not fit the RSS
        # budget, yet windowed consumption analyzed all of it while
        # peaking *below the payload's own size*.
        assert (
            analyze["peak_rss_bytes"] < simulate["event_payload_bytes"]
        ), (
            f"analyze peaked at {analyze['peak_rss_bytes'] / GIB:.2f} "
            f"GiB, not below the "
            f"{simulate['event_payload_bytes'] / GIB:.2f} GiB event "
            "payload"
        )


def test_scale_smoke(tmp_path):
    _bench("smoke", tmp_path)


@pytest.mark.slow
def test_scale_million(tmp_path):
    _bench("million", tmp_path)


@pytest.mark.slow
def test_scale_events(tmp_path):
    _bench("events", tmp_path)


if __name__ == "__main__":
    _phase, _rundir, _size = sys.argv[1], Path(sys.argv[2]), sys.argv[3]
    _report = _PHASES[_phase](_rundir, json.loads(_size))
    print(json.dumps(_report))
