"""Seed-sweep robustness: the reproduction's error bars.

Runs the study across several seeds and verifies that every qualitative
takeaway keeps its sign — the reproduction does not hinge on one lucky
world draw. (Run at tiny scale; the sweep is itself the benchmark.)
"""

from repro.core.robustness import seed_sweep
from repro.simulation.config import SimulationConfig

SIGN_STABLE_METRICS = (
    "gyration_change_lockdown_pct",  # always a drop
    "entropy_change_lockdown_pct",  # always a drop
    "dl_volume_min_pct",  # always a drop
    "voice_volume_peak_pct",  # always a surge
    "voice_dl_loss_peak_pct",  # always a spike
    "radio_load_min_pct",  # always a drop
)


def test_seed_sweep(benchmark):
    result = benchmark.pedantic(
        seed_sweep,
        args=([11, 23, 37],),
        kwargs={"config_factory": SimulationConfig.tiny},
        rounds=1,
        iterations=1,
    )
    print("\nRobustness across seeds (tiny scale)")
    print(f"{'metric':<38}{'mean':>10}{'std':>8}{'min':>10}{'max':>10}")
    for row in result.to_rows():
        print(
            f"{row['metric']:<38}{row['mean']:>10.2f}{row['std']:>8.2f}"
            f"{row['min']:>10.2f}{row['max']:>10.2f}"
        )
    for metric in SIGN_STABLE_METRICS:
        assert result.stable_sign(metric), metric
    # Magnitudes stay in the reproduction bands across seeds.
    low, high = result.spread("gyration_change_lockdown_pct")
    assert -62 < low and high < -30
    low, high = result.spread("voice_volume_peak_pct")
    assert low > 110 and high < 200
