"""Shared fixtures for the benchmark harness.

One session-scoped simulation feeds every figure benchmark; the
benchmarks time the *analysis* stages (the simulation itself has its
own benchmark in ``bench_simulation.py``).

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to also see every figure's reproduced series printed as a
text panel.
"""

import pytest

from repro.core import CovidImpactStudy
from repro.core.performance import label_kpis
from repro.core.statistics import compute_daily_metrics
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator

BENCH_SEED = 2020


@pytest.fixture(scope="session")
def feeds():
    config = SimulationConfig.small(seed=BENCH_SEED)
    return Simulator(config).run()


@pytest.fixture(scope="session")
def study(feeds):
    return CovidImpactStudy(feeds)


@pytest.fixture(scope="session")
def metrics(feeds):
    return compute_daily_metrics(feeds)


@pytest.fixture(scope="session")
def labeled(feeds):
    return label_kpis(feeds)
