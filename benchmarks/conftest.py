"""Shared fixtures for the benchmark harness.

One session-scoped simulation feeds every figure benchmark; the
benchmarks time the *analysis* stages (the simulation itself has its
own benchmark in ``bench_simulation.py``).

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to also see every figure's reproduced series printed as a
text panel.
"""

import pytest

from repro.core import CovidImpactStudy
from repro.core.performance import label_kpis
from repro.core.statistics import compute_daily_metrics
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator

BENCH_SEED = 2020


def bench_config(
    *, num_shards: int = 1, workers: int = 1, **overrides
) -> SimulationConfig:
    """The benchmark configuration, with optional parallelism keys.

    ``num_shards``/``workers`` select a shard layout for the engine
    (see :mod:`repro.simulation.sharding`); any other keyword is passed
    through as a :class:`SimulationConfig` field override.
    """
    config = SimulationConfig.small(seed=BENCH_SEED)
    if overrides:
        config = config.with_overrides(**overrides)
    if num_shards != 1 or workers != 1:
        config = config.with_parallelism(num_shards, workers=workers)
    return config


@pytest.fixture(scope="session")
def feeds():
    return Simulator(bench_config()).run()


@pytest.fixture(scope="session")
def study(feeds):
    return CovidImpactStudy(feeds)


@pytest.fixture(scope="session")
def metrics(feeds):
    return compute_daily_metrics(feeds)


@pytest.fixture(scope="session")
def labeled(feeds):
    return label_kpis(feeds)
