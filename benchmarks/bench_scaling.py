"""Scaling study: how the reproduction converges with sample size.

The paper has 22M users; we sample. This bench measures how two
sampling-sensitive quantities behave as the synthetic population grows:
the Fig 2 census r² (should rise toward the paper's 0.955) and the
headline gyration drop (should be scale-stable). It also records the
simulation cost per scale, which is what a user trades off.
"""

import json
import os
import time
from pathlib import Path

import pytest

from conftest import bench_config
from repro.core import CovidImpactStudy
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator

SCALES = (1_500, 5_000, 12_000)
WORKER_SWEEP = ((1, 1), (2, 2), (4, 4))  # (num_shards, workers)
RESULTS_PATH = Path(__file__).parent / "results" / "parallel_scaling.json"


def run_scale(num_users: int) -> dict:
    config = SimulationConfig(
        num_users=num_users,
        target_site_count=max(100, num_users // 18),
        seed=2020,
    )
    study = CovidImpactStudy(Simulator(config).run())
    summary = study.summary()
    return {
        "users": num_users,
        "fig2_r2": summary["fig2_r_squared"],
        "gyration": summary["gyration_change_lockdown_pct"],
        "voice_peak": summary["voice_volume_peak_pct"],
    }


def test_scaling_convergence(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_scale(scale) for scale in SCALES],
        rounds=1, iterations=1,
    )
    print("\nScaling study (seed 2020)")
    print(f"{'users':>8}{'fig2 r²':>10}{'gyration':>10}{'voice':>8}")
    for row in rows:
        print(
            f"{row['users']:>8}{row['fig2_r2']:>10.3f}"
            f"{row['gyration']:>10.1f}{row['voice_peak']:>8.1f}"
        )
    r2 = [row["fig2_r2"] for row in rows]
    # The census fit improves with sample size (README's claim).
    assert r2[-1] > r2[0]
    assert r2[-1] > 0.85
    # Scale-stable headline results.
    gyration = [row["gyration"] for row in rows]
    assert max(gyration) - min(gyration) < 12.0
    voice = [row["voice_peak"] for row in rows]
    assert all(110 < value < 190 for value in voice)


def run_layout(num_shards: int, workers: int) -> float:
    """Wall-clock seconds of one engine run at a shard layout."""
    config = bench_config(
        num_shards=num_shards,
        workers=workers,
        num_users=3_000,
        target_site_count=200,
    )
    start = time.perf_counter()
    Simulator(config).run()
    return time.perf_counter() - start


def test_parallel_worker_sweep(benchmark):
    """Sweep workers ∈ {1, 2, 4}; record speedup over serial as JSON."""

    def sweep() -> list[dict]:
        rows = []
        for num_shards, workers in WORKER_SWEEP:
            seconds = run_layout(num_shards, workers)
            rows.append(
                {
                    "num_shards": num_shards,
                    "workers": workers,
                    "seconds": seconds,
                    "speedup_vs_serial": rows[0]["seconds"] / seconds
                    if rows
                    else 1.0,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = {
        "config": {"num_users": 3_000, "target_site_count": 200},
        "cpu_count": os.cpu_count(),
        "sweep": rows,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print("\nParallel worker sweep (speedup vs serial)")
    print(f"{'shards':>8}{'workers':>9}{'seconds':>10}{'speedup':>9}")
    for row in rows:
        print(
            f"{row['num_shards']:>8}{row['workers']:>9}"
            f"{row['seconds']:>10.2f}{row['speedup_vs_serial']:>9.2f}"
        )

    assert all(row["seconds"] > 0 for row in rows)
    # Process-pool speedup needs the cores to exist; on smaller boxes
    # the sweep still records timings but does not assert the ratio.
    if (os.cpu_count() or 1) >= 4:
        assert rows[-1]["speedup_vs_serial"] >= 1.5, (
            "workers=4 failed to reach 1.5x over serial: "
            f"{rows[-1]['speedup_vs_serial']:.2f}x"
        )
