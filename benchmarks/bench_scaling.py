"""Scaling study: how the reproduction converges with sample size.

The paper has 22M users; we sample. This bench measures how two
sampling-sensitive quantities behave as the synthetic population grows:
the Fig 2 census r² (should rise toward the paper's 0.955) and the
headline gyration drop (should be scale-stable). It also records the
simulation cost per scale, which is what a user trades off.
"""

import pytest

from repro.core import CovidImpactStudy
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator

SCALES = (1_500, 5_000, 12_000)


def run_scale(num_users: int) -> dict:
    config = SimulationConfig(
        num_users=num_users,
        target_site_count=max(100, num_users // 18),
        seed=2020,
    )
    study = CovidImpactStudy(Simulator(config).run())
    summary = study.summary()
    return {
        "users": num_users,
        "fig2_r2": summary["fig2_r_squared"],
        "gyration": summary["gyration_change_lockdown_pct"],
        "voice_peak": summary["voice_volume_peak_pct"],
    }


def test_scaling_convergence(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_scale(scale) for scale in SCALES],
        rounds=1, iterations=1,
    )
    print("\nScaling study (seed 2020)")
    print(f"{'users':>8}{'fig2 r²':>10}{'gyration':>10}{'voice':>8}")
    for row in rows:
        print(
            f"{row['users']:>8}{row['fig2_r2']:>10.3f}"
            f"{row['gyration']:>10.1f}{row['voice_peak']:>8.1f}"
        )
    r2 = [row["fig2_r2"] for row in rows]
    # The census fit improves with sample size (README's claim).
    assert r2[-1] > r2[0]
    assert r2[-1] > 0.85
    # Scale-stable headline results.
    gyration = [row["gyration"] for row in rows]
    assert max(gyration) - min(gyration) < 12.0
    voice = [row["voice_peak"] for row in rows]
    assert all(110 < value < 190 for value in voice)
