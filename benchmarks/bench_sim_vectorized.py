"""Vectorized event-generation benchmark: agents×days/sec, gated.

The tentpole claim of the simulation-kernel rewrite: the
whole-population array programs (behaviour day-states → dwell
assembly → dwell→segment flattening → signalling emission) must beat
the per-agent/per-event oracle loops behind ``REPRO_SIM_NAIVE=1`` by
**at least 2x at 20k agents** — while staying bitwise identical (that
part is enforced by ``tests/simulation/test_sim_differential.py`` and
the golden fingerprints; here a spot-check day guards the bench
itself).

The hourly KPI reduction (``add_day`` vs the 24 ``add_hour`` pushes)
is timed separately and recorded, not gated: its cost is per-cell, not
per-agent, so it rides a different axis.

Results land as JSON in ``benchmarks/results/sim_vectorized.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sim_vectorized.py -q
"""

import datetime as dt
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.mobility.trajectories import BIN_SECONDS
from repro.network.kpi import KPI_COLUMNS, KpiAccumulator
from repro.network.signaling import SignalingGenerator, segments_from_dwell
from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import build_world

RESULTS_PATH = Path(__file__).parent / "results" / "sim_vectorized.json"

BENCH_USERS = 20_000
BENCH_SITES = 220
BENCH_DAYS = 3
BENCH_SEED = 2020

#: The acceptance floor: vectorized event generation must process at
#: least this many times the agents×days/sec of the naive oracle.
MIN_SPEEDUP = 2.0


@contextmanager
def _dispatch(naive: bool):
    before = os.environ.get("REPRO_SIM_NAIVE")
    os.environ["REPRO_SIM_NAIVE"] = "1" if naive else "0"
    try:
        yield
    finally:
        if before is None:
            os.environ.pop("REPRO_SIM_NAIVE", None)
        else:
            os.environ["REPRO_SIM_NAIVE"] = before


def _event_chain_day(world, generator, day: int):
    """One day of the rewritten chain: behaviour → dwell → events."""
    dwell = world.trajectories.day_dwell(day)
    segments = segments_from_dwell(
        dwell.dwell_s,
        world.agents.anchor_sites,
        world.agents.user_ids,
        BIN_SECONDS,
    )
    feed = generator.generate_day(
        segments,
        np.random.default_rng(
            np.random.SeedSequence(entropy=BENCH_SEED, spawn_key=(11, day))
        ),
    )
    return dwell, segments, feed


def bench_event_chain(world) -> dict:
    generator = SignalingGenerator()

    timings: dict[str, float] = {}
    for label, naive in (("vectorized", False), ("naive", True)):
        with _dispatch(naive):
            _event_chain_day(world, generator, 0)  # warm caches
            start = time.perf_counter()
            events = 0
            for day in range(BENCH_DAYS):
                _, _, feed = _event_chain_day(world, generator, day)
                events += len(feed)
            timings[label] = time.perf_counter() - start

    # Bitwise spot check on one day, guarding the bench configuration
    # itself (the real guarantee lives in the differential suite).
    with _dispatch(False):
        dv, sv, fv = _event_chain_day(world, generator, 1)
    with _dispatch(True):
        dn, sn, fn = _event_chain_day(world, generator, 1)
    identical = bool(
        np.array_equal(dv.dwell_s, dn.dwell_s)
        and np.array_equal(sv.start_s, sn.start_s)
        and all(
            np.array_equal(fv[column], fn[column])
            for column in fv.column_names
        )
    )

    agent_days = BENCH_USERS * BENCH_DAYS
    return {
        "users": BENCH_USERS,
        "days": BENCH_DAYS,
        "events_per_day": events // BENCH_DAYS,
        "naive_seconds": timings["naive"],
        "vectorized_seconds": timings["vectorized"],
        "naive_agent_days_per_sec": agent_days / timings["naive"],
        "vectorized_agent_days_per_sec": agent_days
        / timings["vectorized"],
        "speedup": timings["naive"] / timings["vectorized"],
        "bitwise_identical": identical,
    }


def bench_kpi_reduction() -> dict:
    """Blocked add_day vs 24 hourly pushes, same synthetic metrics."""
    rng = np.random.default_rng(BENCH_SEED)
    cells = np.arange(BENCH_SITES, dtype=np.int64)
    postcodes = np.array([f"PC{i % 40}" for i in range(BENCH_SITES)])
    blocks = {
        name: rng.random((24, BENCH_SITES)) for name in KPI_COLUMNS
    }
    repeats = 40

    start = time.perf_counter()
    hourly = KpiAccumulator(cells, postcodes)
    for day in range(repeats):
        for hour in range(24):
            hourly.add_hour(
                day,
                hour,
                {name: blocks[name][hour] for name in KPI_COLUMNS},
            )
        hourly.finalize_day()
    hourly_s = time.perf_counter() - start

    start = time.perf_counter()
    blocked = KpiAccumulator(cells, postcodes)
    for day in range(repeats):
        blocked.add_day(day, blocks, num_hours=24)
    blocked_s = time.perf_counter() - start

    identical = True
    frame_h, frame_b = hourly.daily_frame(), blocked.daily_frame()
    for column in frame_h.column_names:
        identical = identical and bool(
            np.array_equal(frame_h[column], frame_b[column])
        )
    return {
        "cells": BENCH_SITES,
        "days": repeats,
        "hourly_seconds": hourly_s,
        "blocked_seconds": blocked_s,
        "speedup": hourly_s / blocked_s,
        "bitwise_identical": identical,
    }


def test_sim_vectorized_bench():
    calendar = StudyCalendar(
        first_day=dt.date(2020, 2, 17), num_days=max(BENCH_DAYS, 7)
    )
    world = build_world(
        SimulationConfig(
            num_users=BENCH_USERS,
            target_site_count=BENCH_SITES,
            seed=BENCH_SEED,
            calendar=calendar,
        )
    )
    report = {
        "seed": BENCH_SEED,
        "cpu_count": os.cpu_count(),
        "event_chain": bench_event_chain(world),
        "kpi_reduction": bench_kpi_reduction(),
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")

    chain = report["event_chain"]
    kpi = report["kpi_reduction"]
    print("\nVectorized event-generation benchmark")
    print(
        f"  event chain ({chain['users']} agents x {chain['days']} days, "
        f"~{chain['events_per_day']} events/day): naive "
        f"{chain['naive_seconds']:.2f}s "
        f"({chain['naive_agent_days_per_sec']:.0f} agent-days/s), "
        f"vectorized {chain['vectorized_seconds']:.2f}s "
        f"({chain['vectorized_agent_days_per_sec']:.0f} agent-days/s) "
        f"-> {chain['speedup']:.1f}x"
    )
    print(
        f"  kpi reduction ({kpi['cells']} cells x {kpi['days']} days): "
        f"hourly {kpi['hourly_seconds']:.3f}s, blocked "
        f"{kpi['blocked_seconds']:.3f}s -> {kpi['speedup']:.1f}x"
    )

    assert chain["bitwise_identical"], (
        "vectorized event chain diverged from the naive oracle"
    )
    assert kpi["bitwise_identical"], (
        "blocked KPI reduction diverged from the hourly pushes"
    )
    assert chain["speedup"] >= MIN_SPEEDUP, (
        f"vectorized event generation only "
        f"{chain['speedup']:.2f}x the naive path at "
        f"{BENCH_USERS} agents (< {MIN_SPEEDUP}x)"
    )


if __name__ == "__main__":
    test_sim_vectorized_bench()
