"""F3 — Fig 3: national daily gyration/entropy change vs week 9.

Regenerates both panels (as weekly means for readability) and
benchmarks the per-user-day metric computation — the hottest loop of
the mobility pipeline (entropy + gyration for every user × day).
"""

import numpy as np

from repro.core.baseline import weekly_mean
from repro.core.mobility_series import national_mobility
from repro.core.report import render_series_block
from repro.core.statistics import compute_daily_metrics


def test_fig3_metric_computation(benchmark, feeds):
    metrics = benchmark(compute_daily_metrics, feeds)
    assert metrics.num_days == feeds.calendar.num_days
    assert np.isfinite(metrics.entropy).all()


def test_fig3_national_series(benchmark, feeds, metrics):
    series = benchmark(national_mobility, metrics, feeds)
    weeks_of_day = feeds.calendar.weeks[series["gyration"].x]
    for metric in ("gyration", "entropy"):
        weeks, weekly = weekly_mean(
            series[metric].values["UK"], weeks_of_day
        )
        print()
        print(
            render_series_block(
                f"Fig 3 — national {metric} (% vs week 9, weekly mean)",
                weeks,
                {"UK": weekly},
            )
        )

    def week(metric, number):
        return series[metric].at_week(
            "UK", number, weeks_of_day=weeks_of_day
        )

    # Paper shape: −20% gyration by week 12, ~−50% in weeks 13-14,
    # slight recovery afterwards, entropy drop smaller than gyration.
    assert week("gyration", 12) < -8
    lockdown = min(week("gyration", 13), week("gyration", 14))
    assert -60 < lockdown < -35
    assert week("entropy", 14) > week("gyration", 14)
    assert week("gyration", 19) > lockdown
