"""F7 — Fig 7: the Inner-London → counties mobility matrix.

Regenerates the per-county daily presence matrix of detected
Inner-London residents (shown as weekly means) and checks the paper's
relocation takeaways.
"""

import numpy as np

from repro.core.relocation import relocation_matrix
from repro.core.report import sparkline


def test_fig7_matrix(benchmark, feeds, study):
    matrix = benchmark(relocation_matrix, feeds, study.homes)
    calendar = feeds.calendar
    weeks = calendar.weeks[matrix.days]
    unique_weeks = sorted(set(weeks.tolist()))

    print(
        f"\nFig 7 — presence of {matrix.num_residents} Inner-London "
        "residents per county (% vs week 9, weekly means)"
    )
    header = "".join(f"{week:>7d}" for week in unique_weeks)
    print(f"{'county':<18}{header}")
    for county in matrix.counties:
        series = matrix.county_series(county)
        weekly = np.array(
            [series[weeks == week].mean() for week in unique_weeks]
        )
        cells = "".join(f"{value:>7.0f}" for value in weekly)
        print(f"{county:<18}{cells}  {sparkline(weekly)}")

    from repro.core.report import heatmap

    print()
    print(
        heatmap(
            matrix.change_pct,
            matrix.counties,
            title="Fig 7 — heat map (darker = more residents present)",
        )
    )

    # Sustained ~10% decrease of residents present from week 13 onward.
    inner = matrix.county_series("Inner London")
    lockdown_mean = inner[weeks >= 14].mean()
    assert -18 < lockdown_mean < -4

    # Somewhere in the matrix, receiving counties show sustained gains.
    gains = [
        matrix.county_series(county)[weeks >= 14].mean()
        for county in matrix.counties[1:]
    ]
    assert max(gains) > 10

    # The pre-lockdown exodus (21-22 March) is visible as an outbound
    # spike just before the stay-at-home order.
    import datetime as dt

    exodus_day = calendar.day_of(dt.date(2020, 3, 21))
    column = int(np.flatnonzero(matrix.days == exodus_day)[0])
    assert matrix.change_pct[1:, column].max() > 25
