"""Process-parallel analysis benchmark: shard fan-out vs the serial walk.

:mod:`repro.analysis.parallel` claims the shard-streaming analysis
kernels fan across a process pool with results *bitwise* identical to
the sequential walk for any shard layout and worker count.  This bench
drives that claim end to end on one simulated world saved at three
shard layouts (the engine output is shard-count invariant, so all nine
``(shards, workers)`` combinations must agree):

- every combination's daily metrics, detected homes and headline
  summary hash to the same SHA-256 digests — and to the
  ``REPRO_ANALYSIS_SERIAL=1`` oracle's;
- at the full (``-m slow``) size — 200k agents over the nine-week
  study calendar — parallel analysis at four workers must beat the
  serial walk by >= 2x (asserted only where the cores exist, repo
  convention: timings always recorded, ratios gated when
  ``os.cpu_count() >= 4``).

Results land in ``benchmarks/results/parallel_analysis.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_analysis.py -q            # smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_analysis.py -q -m slow    # 200k agents
"""

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path

import pytest

RESULTS_PATH = Path(__file__).parent / "results" / "parallel_analysis.json"

SHARD_SWEEP = (1, 2, 4)
WORKER_SWEEP = (1, 2, 4)
BENCH_SEED = 7

#: Both sizes run the same nine-week calendar (ISO weeks 6-14, so the
#: lockdown summary numbers exist) and the same K x W grid; they differ
#: only in population.  The smoke run keeps CI honest on identity and
#: records timings; the slow run is the speedup gate.
SIZES = {
    "smoke": {"users": 12_000, "sites": 200, "min_speedup": None},
    "full": {"users": 200_000, "sites": 400, "min_speedup": 2.0},
}


def _study_config(users: int, sites: int):
    import datetime as dt

    from repro.simulation.clock import StudyCalendar
    from repro.simulation.config import SimulationConfig

    calendar = StudyCalendar(first_day=dt.date(2020, 2, 3), num_days=63)
    return SimulationConfig(
        num_users=users,
        target_site_count=sites,
        seed=BENCH_SEED,
        calendar=calendar,
    )


def _digest(*arrays) -> str:
    import numpy as np

    sha = hashlib.sha256()
    for array in arrays:
        sha.update(np.ascontiguousarray(array).tobytes())
    return sha.hexdigest()


def _summary_digest(summary: dict) -> str:
    # json round-trips float64 through its shortest repr, which is
    # bijective — bitwise-equal summaries hash equal, nothing else does.
    payload = json.dumps(summary, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def _analyze(rundir: Path, workers: int) -> dict:
    """Load lazily, run metrics -> homes -> summary; time the kernels."""
    from repro.core import CovidImpactStudy
    from repro.io import load_feeds

    feeds = load_feeds(rundir, lazy=True)
    study = CovidImpactStudy(feeds, parallel=False, workers=workers)
    start = time.perf_counter()
    metrics = study.metrics
    homes = study.homes
    analyze_s = time.perf_counter() - start
    summary = study.summary()
    summary_s = time.perf_counter() - start - analyze_s
    return {
        "workers": workers,
        "analyze_seconds": analyze_s,
        "summary_seconds": summary_s,
        "metrics_sha256": _digest(metrics.entropy, metrics.gyration_km),
        "homes_sha256": _digest(
            homes.user_ids, homes.home_site, homes.nights_observed
        ),
        "summary_sha256": _summary_digest(summary),
    }


def _analyze_serial_oracle(rundir: Path) -> dict:
    """The differential oracle: workers requested, env forces serial."""
    os.environ["REPRO_ANALYSIS_SERIAL"] = "1"
    try:
        return _analyze(rundir, workers=4)
    finally:
        os.environ.pop("REPRO_ANALYSIS_SERIAL", None)


def _bench(label: str, tmp_path: Path) -> None:
    from repro.io import save_feeds
    from repro.simulation.engine import Simulator

    size = SIZES[label]
    config = _study_config(size["users"], size["sites"])

    # One simulated world serves every shard layout: the engine output
    # is shard-count invariant, and an eager save shards by the
    # config's parallelism.  Re-tagging the config is therefore enough
    # to persist the same feeds at three layouts.
    feeds = Simulator(config).run()
    rundirs = {}
    for num_shards in SHARD_SWEEP:
        sharded = dataclasses.replace(
            feeds, config=config.with_parallelism(num_shards, workers=1)
        )
        rundirs[num_shards] = tmp_path / f"run-k{num_shards}"
        save_feeds(sharded, rundirs[num_shards])

    oracle = _analyze_serial_oracle(rundirs[max(SHARD_SWEEP)])
    reference = (
        oracle["metrics_sha256"],
        oracle["homes_sha256"],
        oracle["summary_sha256"],
    )

    sweep, mismatches = [], []
    for num_shards in SHARD_SWEEP:
        for workers in WORKER_SWEEP:
            row = _analyze(rundirs[num_shards], workers)
            row["num_shards"] = num_shards
            row["speedup_vs_serial"] = (
                oracle["analyze_seconds"] / row["analyze_seconds"]
                if row["analyze_seconds"]
                else 0.0
            )
            sweep.append(row)
            combo = (
                row["metrics_sha256"],
                row["homes_sha256"],
                row["summary_sha256"],
            )
            if combo != reference:
                mismatches.append((num_shards, workers))

    report = {
        "config": {
            "users": size["users"],
            "days": config.calendar.num_days,
            "sites": size["sites"],
        },
        "cpu_count": os.cpu_count(),
        "serial_analyze_seconds": oracle["analyze_seconds"],
        "bitwise_identical": not mismatches,
        "sweep": sweep,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    existing = {}
    if RESULTS_PATH.exists():
        existing = json.loads(RESULTS_PATH.read_text())
    existing[label] = report
    RESULTS_PATH.write_text(json.dumps(existing, indent=2) + "\n")

    print(f"\nParallel analysis sweep [{label}] "
          f"(serial oracle {oracle['analyze_seconds']:.2f}s)")
    print(f"{'shards':>8}{'workers':>9}{'analyze':>10}{'speedup':>9}")
    for row in sweep:
        print(
            f"{row['num_shards']:>8}{row['workers']:>9}"
            f"{row['analyze_seconds']:>10.2f}"
            f"{row['speedup_vs_serial']:>9.2f}"
        )

    assert not mismatches, (
        f"metrics/homes/summary digests diverged from the serial oracle "
        f"at (shards, workers) combos: {mismatches}"
    )
    gate = size["min_speedup"]
    if gate is not None and (os.cpu_count() or 1) >= 4:
        best = max(
            row["speedup_vs_serial"] for row in sweep if row["workers"] == 4
        )
        assert best >= gate, (
            f"parallel analysis at workers=4 reached only {best:.2f}x "
            f"over the serial walk (gate: {gate:.1f}x)"
        )


def test_parallel_analysis_smoke(tmp_path):
    _bench("smoke", tmp_path)


@pytest.mark.slow
def test_parallel_analysis_full(tmp_path):
    _bench("full", tmp_path)
