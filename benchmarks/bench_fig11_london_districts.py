"""F11 — Fig 11: Inner-London postal-district network performance.

Regenerates the per-district weekly series: the EC/WC collapse (−70 to
−80% traffic), and the N district detaching with stable volume and
extra active users.
"""

from repro.core.performance import performance_series
from repro.core.report import render_series_block

METRICS = ("dl_volume_mb", "ul_volume_mb", "dl_active_users",
           "connected_users", "radio_load_pct")


def _panels(feeds, labeled):
    return {
        metric: performance_series(
            feeds, metric, grouping="district_area",
            restrict_county="Inner London", labeled=labeled,
        )
        for metric in METRICS
    }


def test_fig11_district_panels(benchmark, feeds, labeled):
    panels = benchmark(_panels, feeds, labeled)
    for metric in ("dl_volume_mb", "dl_active_users", "connected_users"):
        series = panels[metric]
        print()
        print(
            render_series_block(
                f"Fig 11 — Inner London {metric} (% vs week 9)",
                series.weeks,
                dict(sorted(series.values.items())),
            )
        )

    dl = panels["dl_volume_mb"]
    users = panels["dl_active_users"]

    # Central districts collapse (paper: EC > −70%, WC > −80%).
    assert dl.minimum("EC")[1] < -55
    assert dl.minimum("WC")[1] < -55
    # The other districts fall far less.
    assert dl.minimum("SE")[1] > -55
    # N detaches: stable volume, active users up in weeks 10-14.
    assert dl.minimum("N")[1] > -30
    n_users = users.values["N"][(users.weeks >= 10) & (users.weeks <= 14)]
    assert n_users.max() > 0
