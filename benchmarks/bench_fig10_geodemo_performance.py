"""F10 — Fig 10: network performance per geodemographic cluster.

Regenerates the per-cluster weekly KPI series and the §4.4 correlation
table between total connected users and downlink volume (paper:
Cosmopolitans +0.973, Ethnicity Central +0.816, Rural Residents 0.299,
Suburbanites −0.466).
"""

from repro.core.correlation import cluster_users_volume_correlation
from repro.core.performance import performance_series
from repro.core.report import render_series_block

METRICS = ("dl_volume_mb", "ul_volume_mb", "connected_users",
           "dl_active_users")


def _panels(feeds, labeled):
    return {
        metric: performance_series(
            feeds, metric, grouping="oac", labeled=labeled
        )
        for metric in METRICS
    }


def test_fig10_cluster_panels(benchmark, feeds, labeled):
    panels = benchmark(_panels, feeds, labeled)
    for metric, series in panels.items():
        print()
        print(
            render_series_block(
                f"Fig 10 — {metric} per cluster (% vs week 9)",
                series.weeks,
                dict(sorted(series.values.items())),
            )
        )

    dl = panels["dl_volume_mb"]
    users = panels["connected_users"]
    # Rural downlink stays largely stable; Cosmopolitan areas lose a
    # large share of their users and the most downlink volume.
    assert dl.minimum("Rural Residents")[1] > -15
    assert users.minimum("Cosmopolitans")[1] < -25
    cosmo_min = dl.minimum("Cosmopolitans")[1]
    for cluster in dl.values:
        assert cosmo_min <= dl.minimum(cluster)[1] + 1e-9


def test_fig10_user_volume_correlations(benchmark, feeds, labeled):
    panels = _panels(feeds, labeled)
    correlations = benchmark(
        cluster_users_volume_correlation,
        panels["connected_users"],
        panels["dl_volume_mb"],
    )
    print("\n§4.4 — users vs DL-volume correlation per cluster")
    print("-" * 52)
    paper = {
        "Cosmopolitans": 0.973,
        "Ethnicity Central": 0.816,
        "Rural Residents": 0.299,
        "Suburbanites": -0.466,
    }
    for cluster, value in sorted(correlations.items()):
        reference = paper.get(cluster)
        note = f"(paper {reference:+.3f})" if reference is not None else ""
        print(f"{cluster:<30} {value:+.3f} {note}")

    assert correlations["Cosmopolitans"] > 0.9
    assert correlations["Ethnicity Central"] > 0.6
    assert correlations["Suburbanites"] < -0.3
