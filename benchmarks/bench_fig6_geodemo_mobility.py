"""F6 — Fig 6: mobility per geodemographic cluster.

Regenerates the weekly gyration/entropy series per 2011-OAC supergroup
against the national week-9 baseline.
"""

from repro.core.mobility_series import geodemographic_mobility
from repro.core.report import render_series_block


def test_fig6_cluster_series(benchmark, feeds, metrics):
    series = benchmark(geodemographic_mobility, metrics, feeds)
    for metric in ("gyration", "entropy"):
        panel = series[metric]
        print()
        print(
            render_series_block(
                f"Fig 6 — {metric} per OAC cluster (% vs national wk 9)",
                panel.x,
                dict(sorted(panel.values.items())),
            )
        )

    gyration = series["gyration"]
    entropy = series["entropy"]
    # Rural users range wider than average before the pandemic; dense
    # central clusters range less but less predictably.
    assert gyration.at_week("Rural Residents", 9) > 5
    assert entropy.at_week("Ethnicity Central", 9) > entropy.at_week(
        "Rural Residents", 9
    )
    # Every cluster shows the same steep drop from week 13. (The drop
    # in national-baseline points is compressed for clusters whose
    # absolute gyration is small, hence the moderate floor.)
    for cluster in gyration.values:
        drop = gyration.at_week(cluster, 14) - gyration.at_week(cluster, 9)
        assert drop < -12
