"""CSV round-trip for frames.

Feeds produced by the simulator can be persisted so the analysis stage
(or an external tool) can be run without re-simulating. The format is
plain RFC-4180-ish CSV with a header row; dtypes are inferred on read
(int, then float, then string).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

import numpy as np

from repro.frames.frame import Frame

__all__ = ["read_csv", "write_csv", "dumps_csv", "loads_csv"]


def write_csv(frame: Frame, path: str | Path) -> None:
    """Write ``frame`` to ``path`` as CSV with a header row."""
    Path(path).write_text(dumps_csv(frame), encoding="utf-8")


def dumps_csv(frame: Frame) -> str:
    """Serialize ``frame`` to a CSV string."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    names = frame.column_names
    writer.writerow(names)
    columns = [frame[name] for name in names]
    for row in zip(*(column.tolist() for column in columns)):
        writer.writerow(row)
    return buffer.getvalue()


def read_csv(path: str | Path) -> Frame:
    """Read a CSV file written by :func:`write_csv` back into a frame."""
    return loads_csv(Path(path).read_text(encoding="utf-8"))


def loads_csv(text: str) -> Frame:
    """Parse CSV text into a frame, inferring column dtypes."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        return Frame()
    raw_columns: list[list[str]] = [[] for _ in header]
    for row in reader:
        if not row:
            continue
        if len(row) != len(header):
            raise ValueError(
                f"row has {len(row)} fields, header has {len(header)}"
            )
        for cell, column in zip(row, raw_columns):
            column.append(cell)
    data = {
        name: _infer_column(values) for name, values in zip(header, raw_columns)
    }
    return Frame(data)


def _infer_column(values: list[str]) -> np.ndarray:
    for caster, dtype in ((int, np.int64), (float, np.float64)):
        try:
            return np.array([caster(value) for value in values], dtype=dtype)
        except ValueError:
            continue
    if values and all(value in ("True", "False") for value in values):
        return np.array([value == "True" for value in values], dtype=bool)
    return np.array(values, dtype=str)
