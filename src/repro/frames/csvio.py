"""CSV round-trip for frames.

Feeds produced by the simulator can be persisted so the analysis stage
(or an external tool) can be run without re-simulating. The format is
plain RFC-4180-ish CSV with a header row; dtypes are inferred on read
(int, then float, then string).

Missing values: a NaN float cell is written as an *empty* field and an
empty field in an otherwise numeric column reads back as NaN (the
column is promoted to float64 if it was integral). Bare ``nan`` /
``inf`` strings are **not** treated as numbers — a column containing
them stays a string column, so free-text columns cannot be silently
demoted to floats. (Actual ±inf values therefore do not round-trip;
the feeds never produce them.)
"""

from __future__ import annotations

import csv
import io
import math
import re
from pathlib import Path

import numpy as np

from repro.frames.frame import Frame

__all__ = ["read_csv", "write_csv", "dumps_csv", "loads_csv"]


def write_csv(frame: Frame, path: str | Path) -> None:
    """Write ``frame`` to ``path`` as CSV with a header row."""
    Path(path).write_text(dumps_csv(frame), encoding="utf-8")


def dumps_csv(frame: Frame) -> str:
    """Serialize ``frame`` to a CSV string (NaN floats become empty)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    names = frame.column_names
    writer.writerow(names)
    columns = [frame[name] for name in names]
    for row in zip(*(column.tolist() for column in columns)):
        writer.writerow(
            "" if isinstance(cell, float) and math.isnan(cell) else cell
            for cell in row
        )
    return buffer.getvalue()


def read_csv(path: str | Path) -> Frame:
    """Read a CSV file written by :func:`write_csv` back into a frame."""
    return loads_csv(Path(path).read_text(encoding="utf-8"))


def loads_csv(text: str) -> Frame:
    """Parse CSV text into a frame, inferring column dtypes."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        return Frame()
    raw_columns: list[list[str]] = [[] for _ in header]
    for row in reader:
        if not row:
            # A blank line is skippable noise for multi-column files,
            # but for a single-column file it IS a row with one empty
            # cell (that is exactly how an empty field serializes).
            if len(header) == 1:
                row = [""]
            else:
                continue
        if len(row) != len(header):
            raise ValueError(
                f"row has {len(row)} fields, header has {len(header)}"
            )
        for cell, column in zip(row, raw_columns):
            column.append(cell)
    data = {
        name: _infer_column(values) for name, values in zip(header, raw_columns)
    }
    return Frame(data)


# Strict numeric literals: plain ints, and decimal/scientific floats.
# Deliberately rejects python's permissive extras — "nan", "inf",
# "Infinity", underscore separators — so free text never parses as a
# number.
_INT_PATTERN = re.compile(r"[+-]?\d+\Z")
_FLOAT_PATTERN = re.compile(r"[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?\Z")


def _infer_column(values: list[str]) -> np.ndarray:
    present = [value for value in values if value != ""]
    if present and all(_INT_PATTERN.match(value) for value in present):
        if len(present) == len(values):
            return np.array([int(value) for value in values], dtype=np.int64)
        # Integers with gaps promote to float64 so NaN can mark holes.
        return np.array(
            [float(value) if value else np.nan for value in values],
            dtype=np.float64,
        )
    if present and all(_FLOAT_PATTERN.match(value) for value in present):
        return np.array(
            [float(value) if value else np.nan for value in values],
            dtype=np.float64,
        )
    if values and all(value in ("True", "False") for value in values):
        return np.array([value == "True" for value in values], dtype=bool)
    return np.array(values, dtype=str)
