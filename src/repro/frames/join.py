"""Equi-joins between frames.

The default implementation factorizes the key columns to dense integer
codes (integer keys with a compact value range shift to ``value - min``
without sorting; anything else goes through one ``np.unique`` over both
sides per key), stable-sorts the right side's codes once, and looks up
each left row's match range in per-code start/count tables built with
``bincount`` — a direct gather instead of a binary search per row. The
fan-out is ``repeat`` plus vectorized index arithmetic — no per-row
Python objects. Output row order is the relational order users expect:
left rows in their original order, each followed by its right matches
in right-frame order; a left join keeps unmatched left rows *in place*
(with fill values) instead of appending them at the end.

``REPRO_FRAMES_NAIVE=1`` selects the original hash join (Python tuples
per row), kept as the reference oracle for differential tests.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import telemetry
from repro.frames import kernels
from repro.frames.frame import Frame

__all__ = ["join"]

# Composite key codes are built as code * cardinality + next_code; keep
# the running product comfortably inside int64.
_MAX_CODE = np.int64(2) ** 62


def join(
    left: Frame,
    right: Frame,
    on: Sequence[str] | str,
    how: str = "inner",
    suffix: str = "_right",
) -> Frame:
    """Join two frames on equality of the ``on`` columns.

    Parameters
    ----------
    left, right:
        Frames to join. If ``right`` has several rows for a key, the
        join fans out (standard relational semantics).
    on:
        Key column name or names, present in both frames.
    how:
        ``"inner"`` (drop unmatched left rows) or ``"left"`` (keep them
        in place; right columns get a fill value: NaN for floats, -1
        for ints, ``""`` for strings).
    suffix:
        Appended to right-side non-key columns whose names collide with
        left-side columns.

    Examples
    --------
    >>> cells = Frame({"cell": ["a", "b"], "postcode": ["N1", "EC1"]})
    >>> kpis = Frame({"cell": ["a", "a", "b"], "volume": [1.0, 2.0, 9.0]})
    >>> join(kpis, cells, on="cell")["postcode"].tolist()
    ['N1', 'N1', 'EC1']
    """
    if how not in ("inner", "left"):
        raise ValueError(f"how must be 'inner' or 'left', got {how!r}")
    keys = [on] if isinstance(on, str) else list(on)
    for name in keys:
        if name not in left or name not in right:
            raise KeyError(f"join key {name!r} missing from one side")

    naive = kernels.use_naive()
    if naive:
        left_rows, right_rows = _match_naive(left, right, keys, how)
    else:
        left_rows, right_rows = _match_factorized(left, right, keys, how)
    if telemetry.enabled():
        telemetry.count("frames.join.calls")
        telemetry.count(
            "frames.join.rows_in", left.num_rows + right.num_rows
        )
        telemetry.count("frames.join.rows_out", int(left_rows.size))
        telemetry.count(
            "frames.join.naive" if naive else "frames.join.factorized"
        )
    return _gather(left, right, keys, suffix, left_rows, right_rows)


# ----------------------------------------------------------------------
# Matching: produce (left row indices, right row indices) with -1 in
# the right indices marking fill rows of a left join.
# ----------------------------------------------------------------------
def _dense_limit(total_rows: int) -> int:
    """Largest code table the matcher will allocate (8 bytes per slot)."""
    return max(4 * total_rows, 1024)


def _span_codes(
    combined: np.ndarray, limit: int
) -> tuple[np.ndarray, np.int64] | None:
    """Dense codes for an integer key via ``value - min``, skipping the
    sort a ``np.unique`` factorization would pay; ``None`` when the key
    is non-integer or its value range exceeds ``limit``."""
    if combined.dtype.kind not in "iu" or combined.size == 0:
        return None
    low, high = combined.min(), combined.max()
    span = int(high) - int(low) + 1
    if span > limit:
        return None
    return (combined - low).astype(np.int64, copy=False), np.int64(span)


def _factorize_keys(
    left: Frame, right: Frame, keys: Sequence[str]
) -> tuple[np.ndarray, np.ndarray, int]:
    """Encode the key tuple of every row as a bounded int64 code.

    Equal key tuples — on either side — get equal codes, and every code
    lies in ``[0, cardinality)`` with ``cardinality`` small enough for
    the matcher to allocate per-code tables. Integer key columns with a
    compact value range shift to ``value - min``; other columns are
    factorized with ``np.unique``. Multiple keys combine mixed-radix,
    re-compressing through ``np.unique`` whenever the radix product
    would overflow int64, and once more at the end if the product
    outgrew the dense-table budget.
    """
    split = left.num_rows
    limit = _dense_limit(split + right.num_rows)
    codes: np.ndarray | None = None
    cardinality = np.int64(1)
    for name in keys:
        combined = np.concatenate([left[name], right[name]])
        spanned = _span_codes(combined, limit)
        if spanned is not None:
            inverse, size = spanned
        else:
            uniques, inverse = np.unique(combined, return_inverse=True)
            size = np.int64(max(int(uniques.size), 1))
            inverse = inverse.astype(np.int64, copy=False)
        if codes is None:
            codes, cardinality = inverse, size
            continue
        if cardinality > _MAX_CODE // size:
            compressed, codes = np.unique(codes, return_inverse=True)
            codes = codes.astype(np.int64, copy=False)
            cardinality = np.int64(max(int(compressed.size), 1))
        codes = codes * size + inverse
        cardinality = cardinality * size
    assert codes is not None
    if int(cardinality) > limit:
        compressed, codes = np.unique(codes, return_inverse=True)
        codes = codes.astype(np.int64, copy=False)
        cardinality = np.int64(max(int(compressed.size), 1))
    return codes[:split], codes[split:], int(cardinality)


def _match_factorized(
    left: Frame, right: Frame, keys: Sequence[str], how: str
) -> tuple[np.ndarray, np.ndarray]:
    left_codes, right_codes, cardinality = _factorize_keys(left, right, keys)
    right_order = np.argsort(right_codes, kind="stable")
    code_counts = np.bincount(right_codes, minlength=cardinality)
    code_starts = np.cumsum(code_counts) - code_counts
    low = code_starts[left_codes]
    counts = code_counts[left_codes]
    if how == "inner":
        out_counts = counts
    else:
        out_counts = np.maximum(counts, 1)
    total = int(out_counts.sum())
    left_rows = np.repeat(
        np.arange(left.num_rows, dtype=np.intp), out_counts
    )
    block_starts = np.cumsum(out_counts) - out_counts
    offsets = np.arange(total, dtype=np.intp) - np.repeat(
        block_starts, out_counts
    )
    positions = np.repeat(low, out_counts) + offsets
    fill = np.repeat(counts == 0, out_counts)
    right_rows = np.full(total, -1, dtype=np.intp)
    matched = ~fill
    if right.num_rows and matched.any():
        right_rows[matched] = right_order[positions[matched]]
    return left_rows, right_rows


def _match_naive(
    left: Frame, right: Frame, keys: Sequence[str], how: str
) -> tuple[np.ndarray, np.ndarray]:
    """Reference hash join over Python key tuples."""
    right_index: dict[tuple, list[int]] = {}
    for row_index, key in enumerate(_key_tuples(right, keys)):
        right_index.setdefault(key, []).append(row_index)

    left_take: list[int] = []
    right_take: list[int] = []
    for row_index, key in enumerate(_key_tuples(left, keys)):
        matches = right_index.get(key)
        if matches is None:
            if how == "left":
                left_take.append(row_index)
                right_take.append(-1)
            continue
        left_take.extend([row_index] * len(matches))
        right_take.extend(matches)
    return (
        np.asarray(left_take, dtype=np.intp),
        np.asarray(right_take, dtype=np.intp),
    )


def _key_tuples(frame: Frame, keys: Sequence[str]) -> list[tuple]:
    columns = [frame[name] for name in keys]
    return list(zip(*(column.tolist() for column in columns)))


# ----------------------------------------------------------------------
# Materialization
# ----------------------------------------------------------------------
def _gather(
    left: Frame,
    right: Frame,
    keys: Sequence[str],
    suffix: str,
    left_rows: np.ndarray,
    right_rows: np.ndarray,
) -> Frame:
    out = {name: left[name][left_rows] for name in left.column_names}
    fill_mask = right_rows < 0
    any_fill = bool(fill_mask.any())
    safe_rows = np.where(fill_mask, 0, right_rows)
    for name in right.column_names:
        if name in keys:
            continue
        out_name = name + suffix if name in out else name
        column = right[name]
        if right.num_rows:
            gathered = column[safe_rows]
        else:
            gathered = np.empty(right_rows.size, dtype=column.dtype)
        if any_fill:
            gathered[fill_mask] = _fill_value(column.dtype)
        out[out_name] = gathered
    return Frame(out)


def _fill_value(dtype: np.dtype):
    if np.issubdtype(dtype, np.floating):
        return np.nan
    if np.issubdtype(dtype, np.integer):
        return -1
    if dtype.kind in ("U", "S"):
        return ""
    if dtype == bool:
        return False
    return None
