"""Hash joins between frames."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.frames.frame import Frame

__all__ = ["join"]


def _key_tuples(frame: Frame, keys: Sequence[str]) -> list[tuple]:
    columns = [frame[name] for name in keys]
    return list(zip(*(column.tolist() for column in columns)))


def join(
    left: Frame,
    right: Frame,
    on: Sequence[str] | str,
    how: str = "inner",
    suffix: str = "_right",
) -> Frame:
    """Join two frames on equality of the ``on`` columns.

    Parameters
    ----------
    left, right:
        Frames to join. If ``right`` has several rows for a key, the
        join fans out (standard relational semantics).
    on:
        Key column name or names, present in both frames.
    how:
        ``"inner"`` (drop unmatched left rows) or ``"left"`` (keep them;
        right columns get a fill value: NaN for floats, -1 for ints,
        ``""`` for strings).
    suffix:
        Appended to right-side non-key columns whose names collide with
        left-side columns.

    Examples
    --------
    >>> cells = Frame({"cell": ["a", "b"], "postcode": ["N1", "EC1"]})
    >>> kpis = Frame({"cell": ["a", "a", "b"], "volume": [1.0, 2.0, 9.0]})
    >>> join(kpis, cells, on="cell")["postcode"].tolist()
    ['N1', 'N1', 'EC1']
    """
    if how not in ("inner", "left"):
        raise ValueError(f"how must be 'inner' or 'left', got {how!r}")
    keys = [on] if isinstance(on, str) else list(on)
    for name in keys:
        if name not in left or name not in right:
            raise KeyError(f"join key {name!r} missing from one side")

    right_index: dict[tuple, list[int]] = {}
    for row_index, key in enumerate(_key_tuples(right, keys)):
        right_index.setdefault(key, []).append(row_index)

    left_take: list[int] = []
    right_take: list[int] = []
    unmatched: list[int] = []
    for row_index, key in enumerate(_key_tuples(left, keys)):
        matches = right_index.get(key)
        if matches is None:
            if how == "left":
                unmatched.append(row_index)
            continue
        left_take.extend([row_index] * len(matches))
        right_take.extend(matches)

    left_rows = np.asarray(left_take + unmatched, dtype=np.intp)
    matched = len(left_take)
    out = {name: left[name][left_rows] for name in left.column_names}

    right_rows = np.asarray(right_take, dtype=np.intp)
    for name in right.column_names:
        if name in keys:
            continue
        out_name = name + suffix if name in out else name
        column = right[name]
        matched_part = column[right_rows]
        if unmatched:
            fill = _fill_value(column.dtype)
            pad = np.full(len(unmatched), fill, dtype=matched_part.dtype)
            out[out_name] = np.concatenate([matched_part, pad])
        else:
            out[out_name] = matched_part
    del matched
    return Frame(out)


def _fill_value(dtype: np.dtype):
    if np.issubdtype(dtype, np.floating):
        return np.nan
    if np.issubdtype(dtype, np.integer):
        return -1
    if dtype.kind in ("U", "S"):
        return ""
    if dtype == bool:
        return False
    return None
