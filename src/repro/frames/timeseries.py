"""Time-series helpers for daily series (rolling windows, smoothing).

The daily mobility series of Fig 3 carry strong weekday/weekend
seasonality; a centred 7-day rolling mean is the standard way to read
the trend through it. These helpers operate on plain 1-D arrays so both
frames and the analysis layer can use them.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rolling_mean",
    "rolling_median",
    "weekly_seasonality",
    "deseasonalize",
]


def _validate_window(values: np.ndarray, window: int) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("rolling operations take 1-D series")
    if window <= 0:
        raise ValueError("window must be positive")
    return values


def rolling_mean(values: np.ndarray, window: int = 7) -> np.ndarray:
    """Centred rolling mean; edges use the available partial window."""
    values = _validate_window(values, window)
    half = window // 2
    out = np.empty_like(values)
    for index in range(values.size):
        low = max(0, index - half)
        high = min(values.size, index + half + 1)
        out[index] = values[low:high].mean()
    return out


def rolling_median(values: np.ndarray, window: int = 7) -> np.ndarray:
    """Centred rolling median; edges use the available partial window."""
    values = _validate_window(values, window)
    half = window // 2
    out = np.empty_like(values)
    for index in range(values.size):
        low = max(0, index - half)
        high = min(values.size, index + half + 1)
        out[index] = np.median(values[low:high])
    return out


def weekly_seasonality(
    values: np.ndarray, weekdays: np.ndarray
) -> np.ndarray:
    """Mean deviation from the rolling trend per weekday (7 entries)."""
    values = np.asarray(values, dtype=np.float64)
    weekdays = np.asarray(weekdays)
    if values.shape != weekdays.shape:
        raise ValueError("values and weekdays must align")
    trend = rolling_mean(values, 7)
    residual = values - trend
    out = np.zeros(7)
    for day in range(7):
        mask = weekdays == day
        if mask.any():
            out[day] = residual[mask].mean()
    return out


def deseasonalize(values: np.ndarray, weekdays: np.ndarray) -> np.ndarray:
    """Remove the mean weekday pattern from a daily series."""
    pattern = weekly_seasonality(values, weekdays)
    return np.asarray(values, dtype=np.float64) - pattern[
        np.asarray(weekdays)
    ]
