"""Split-apply-combine for :class:`~repro.frames.Frame`.

The implementation sorts rows by the key columns once (``np.lexsort``)
and then aggregates contiguous group slices. Sum-like reductions use
``reduceat``; order statistics (median, percentiles, nunique) use the
vectorized segment kernels of :mod:`repro.frames.kernels` — one more
sort pass over the whole column, then index arithmetic, never a
per-group Python loop. Set ``REPRO_FRAMES_NAIVE=1`` to fall back to the original
per-group slicing loops (the reference oracle for differential tests).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

import numpy as np

from repro import telemetry
from repro.frames import kernels
from repro.frames.frame import Frame

__all__ = ["GroupBy", "group_by"]

# An aggregation spec: (source column, how). ``how`` is a string name,
# ("percentile", q), or a callable invoked with the group's values.
AggSpec = tuple[str, Any]

_MINMAX_OPS = {
    "min": np.minimum,
    "max": np.maximum,
}


class GroupBy:
    """The result of :func:`group_by`: rows partitioned by key columns."""

    def __init__(self, frame: Frame, keys: Sequence[str]) -> None:
        if not keys:
            raise ValueError("group_by needs at least one key column")
        self._frame = frame
        self._keys = list(keys)
        key_arrays = tuple(frame[name] for name in reversed(self._keys))
        if frame.num_rows:
            self._order = np.lexsort(key_arrays)
        else:
            self._order = np.empty(0, dtype=np.intp)
        sorted_keys = [frame[name][self._order] for name in self._keys]
        if frame.num_rows:
            changed = np.zeros(frame.num_rows, dtype=bool)
            changed[0] = True
            for column in sorted_keys:
                changed[1:] |= column[1:] != column[:-1]
            self._starts = np.flatnonzero(changed)
        else:
            self._starts = np.empty(0, dtype=np.intp)
        self._sorted_keys = sorted_keys

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        """Number of distinct key combinations."""
        return int(self._starts.shape[0])

    def _key_frame(self) -> dict[str, np.ndarray]:
        return {
            name: column[self._starts]
            for name, column in zip(self._keys, self._sorted_keys)
        }

    def sizes(self, name: str = "count") -> Frame:
        """Return a frame of key columns plus each group's row count."""
        counts = np.diff(np.append(self._starts, self._frame.num_rows))
        data = self._key_frame()
        data[name] = counts
        return Frame(data)

    def agg(self, **specs: AggSpec) -> Frame:
        """Aggregate columns per group.

        Each keyword is an output column; its value is ``(source, how)``
        with ``how`` one of ``sum``, ``mean``, ``median``, ``count``,
        ``min``, ``max``, ``std``, ``first``, ``last``, ``nunique``,
        ``("percentile", q)``, or a callable mapping a group's values to
        a scalar.

        >>> frame = Frame({"k": ["a", "a", "b"], "v": [1.0, 3.0, 5.0]})
        >>> group_by(frame, ["k"]).agg(total=("v", "sum"))["total"].tolist()
        [4.0, 5.0]
        """
        if not specs:
            raise ValueError("agg needs at least one aggregation spec")
        total = self._frame.num_rows
        if telemetry.enabled():
            telemetry.count("frames.group_by.calls")
            telemetry.count("frames.group_by.rows_in", total)
            telemetry.count("frames.group_by.groups_out", self.num_groups)
        ends = np.append(self._starts[1:], total)
        data = self._key_frame()
        for out_name, (source, how) in specs.items():
            values = self._frame[source][self._order]
            data[out_name] = _aggregate(values, self._starts, ends, how)
        return Frame(data)

    def apply(self, fn: Callable[[Frame], Mapping[str, Any]]) -> Frame:
        """Apply ``fn`` to each group's sub-frame; combine the row dicts.

        Slow path: materializes a :class:`Frame` per group. Use
        :meth:`agg` where possible.
        """
        total = self._frame.num_rows
        ends = np.append(self._starts[1:], total)
        rows = []
        keys = self._key_frame()
        for index, (start, end) in enumerate(zip(self._starts, ends)):
            group = self._frame.take(self._order[start:end])
            row = dict(fn(group))
            for name in self._keys:
                row[name] = keys[name][index]
            rows.append(row)
        if not rows:
            return Frame({name: [] for name in self._keys})
        ordered = self._keys + [key for key in rows[0] if key not in self._keys]
        return Frame.from_rows(rows, columns=ordered)

    def group_indices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expose (row order, group starts, group ends) for power users."""
        ends = np.append(self._starts[1:], self._frame.num_rows)
        return self._order, self._starts.copy(), ends


def group_by(frame: Frame, keys: Sequence[str] | str) -> GroupBy:
    """Partition ``frame`` rows by one or more key columns."""
    if isinstance(keys, str):
        keys = [keys]
    return GroupBy(frame, keys)


def _aggregate(
    values: np.ndarray, starts: np.ndarray, ends: np.ndarray, how: Any
) -> np.ndarray:
    """Aggregate presorted ``values`` over groups delimited by starts/ends."""
    if starts.size == 0:
        return np.empty(0, dtype=_empty_dtype(values.dtype, how))
    if how == "sum":
        return kernels.segment_sum(values, starts)
    if isinstance(how, str) and how in _MINMAX_OPS:
        return _MINMAX_OPS[how].reduceat(values, starts)
    if how == "count":
        return (ends - starts).astype(np.int64)
    if how == "mean":
        sums = np.add.reduceat(values.astype(np.float64), starts)
        return sums / (ends - starts)
    if how == "std":
        counts = (ends - starts).astype(np.float64)
        floats = values.astype(np.float64)
        sums = np.add.reduceat(floats, starts)
        squares = np.add.reduceat(floats * floats, starts)
        variance = np.maximum(squares / counts - (sums / counts) ** 2, 0.0)
        return np.sqrt(variance)
    if how == "first":
        return values[starts]
    if how == "last":
        return values[ends - 1]
    if how == "median":
        if kernels.use_naive():
            _count_dispatch(naive=True)
            return _per_group(values, starts, ends, np.median)
        _count_dispatch(naive=False)
        return kernels.segment_median(values, starts, ends)
    if how == "nunique":
        if kernels.use_naive():
            _count_dispatch(naive=True)
            return np.array(
                [np.unique(values[s:e]).size for s, e in zip(starts, ends)],
                dtype=np.int64,
            )
        _count_dispatch(naive=False)
        return kernels.segment_nunique(values, starts, ends)
    if isinstance(how, tuple) and len(how) == 2 and how[0] == "percentile":
        quantile = float(how[1])
        if kernels.use_naive():
            _count_dispatch(naive=True)
            return _per_group(
                values, starts, ends,
                lambda chunk: np.percentile(chunk, quantile),
            )
        _count_dispatch(naive=False)
        return kernels.segment_percentile(values, starts, ends, quantile)
    if callable(how):
        return _per_group(values, starts, ends, how)
    raise ValueError(f"unknown aggregation {how!r}")


def _count_dispatch(naive: bool) -> None:
    """Tally which path served a kernelized aggregation (fast vs oracle)."""
    if telemetry.enabled():
        telemetry.count(
            "frames.group_by.naive_aggs"
            if naive
            else "frames.group_by.kernel_aggs"
        )


def _empty_dtype(dtype: np.dtype, how: Any) -> np.dtype:
    """Result dtype of an aggregation over zero groups."""
    if how in ("count", "nunique"):
        return np.dtype(np.int64)
    if how == "sum":
        return kernels.sum_accumulator_dtype(dtype)
    if how in ("min", "max", "first", "last"):
        return dtype
    if how == "median" and np.issubdtype(dtype, np.inexact):
        return dtype  # np.median keeps float32 inputs in float32
    # mean/std/percentile and callables all produce float64.
    return np.dtype(np.float64)


def _per_group(
    values: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    fn: Callable[[np.ndarray], Any],
) -> np.ndarray:
    out = [fn(values[start:end]) for start, end in zip(starts, ends)]
    return np.asarray(out)
