"""Vectorized segment kernels for the frames substrate.

The hot reductions of the analysis path — per-group order statistics,
distinct counts, weekly percentile tables — all share one shape: a value
column partitioned into contiguous segments (groups sorted together),
reduced segment by segment. The naive implementation slices the column
per group and calls numpy once per slice; fine for hundreds of groups,
ruinous for the hundreds of thousands a country-scale feed produces.

This module provides the vectorized counterparts. The key trick is a
single ``np.lexsort`` of the *whole* column keyed by segment id, after
which every per-segment order statistic becomes index arithmetic on one
flat array:

- :func:`segment_median` / :func:`segment_percentile` — select the
  bracketing order statistics of every segment at once and interpolate
  with the exact formula numpy uses internally, so results are **bitwise
  identical** to ``np.median`` / ``np.percentile`` per group.
- :func:`segment_nunique` — adjacent-difference flags on the
  within-segment sorted values, summed with ``np.add.reduceat``.
- :func:`segment_sum` — ``reduceat`` in a wide accumulator dtype
  (int64 / float64) so bool columns count and int32 columns don't wrap.

Every caller keeps its original per-group loop behind the
``REPRO_FRAMES_NAIVE=1`` environment switch; the loops serve as the
reference oracle for the differential test suite
(``tests/frames/test_kernels_differential.py``).
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "use_naive",
    "segment_ids",
    "sort_within_segments",
    "segment_sum",
    "sum_accumulator_dtype",
    "segment_median",
    "segment_percentile",
    "segment_nunique",
    "presorted_median",
    "presorted_percentile",
]


def use_naive() -> bool:
    """True when ``REPRO_FRAMES_NAIVE=1`` selects the reference loops."""
    return os.environ.get("REPRO_FRAMES_NAIVE", "") not in ("", "0")


def segment_ids(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Segment index of every row, given segment start/end offsets."""
    return np.repeat(np.arange(starts.size, dtype=np.intp), ends - starts)


def _float64_image(values: np.ndarray) -> np.ndarray | None:
    """An order-preserving, exactly-invertible float64 view of ``values``.

    Returns ``None`` when no such image exists — floats containing NaN
    (complex sort moves NaNs to the end of the whole array, not the
    segment), 64-bit integers beyond 2**53, strings — and the caller
    must take the generic lexsort path instead.
    """
    kind = values.dtype.kind
    if kind == "f":
        if np.isnan(values).any():
            return None
        return values.astype(np.float64, copy=False)
    if kind == "b":
        return values.astype(np.float64)
    if kind in "iu":
        if values.dtype.itemsize <= 4 or values.size == 0:
            return values.astype(np.float64)
        low, high = int(values.min()), int(values.max())
        if -(2**53) <= low and high <= 2**53:
            return values.astype(np.float64)
    return None


def sort_within_segments(
    values: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> np.ndarray:
    """Sort ``values`` inside each contiguous segment (one sort pass).

    ``values`` must already be grouped so each segment is contiguous;
    the returned array keeps the segment layout with values ascending
    (NaNs last, as numpy sorts them) inside every segment.

    When the values have an exact float64 image, the (segment, value)
    pair is packed into a complex128 array — numpy sorts complex
    lexicographically by (real, imag), so a single sort replaces the
    two stable passes of a lexsort. Otherwise falls back to
    ``np.lexsort``.
    """
    ids = segment_ids(starts, ends)
    image = _float64_image(values)
    if image is None:
        order = np.lexsort((values, ids))
        return values[order]
    packed = np.empty(values.size, dtype=np.complex128)
    packed.real = ids
    packed.imag = image
    packed.sort()
    # .imag is a strided view into the complex buffer; astype with an
    # unconditional copy yields a compact array and frees the pack.
    return packed.imag.astype(values.dtype)


# ----------------------------------------------------------------------
# Sums
# ----------------------------------------------------------------------
def sum_accumulator_dtype(dtype: np.dtype) -> np.dtype:
    """Wide accumulator for a ``sum`` over ``dtype`` values.

    Bools and signed ints accumulate in int64 (a bool sum is a count,
    not a logical OR; int32 sums must not wrap), unsigned ints in
    uint64, floats in float64.
    """
    dtype = np.dtype(dtype)
    if dtype == bool or np.issubdtype(dtype, np.signedinteger):
        return np.dtype(np.int64)
    if np.issubdtype(dtype, np.unsignedinteger):
        return np.dtype(np.uint64)
    if np.issubdtype(dtype, np.floating):
        return np.dtype(np.float64)
    return dtype


def segment_sum(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per-segment sum accumulated in a wide dtype."""
    accumulator = sum_accumulator_dtype(values.dtype)
    return np.add.reduceat(values.astype(accumulator, copy=False), starts)


# ----------------------------------------------------------------------
# Order statistics
# ----------------------------------------------------------------------
def _nan_segments(
    sorted_values: np.ndarray, ends: np.ndarray
) -> np.ndarray | None:
    """Mask of segments containing NaN (NaNs sort to the segment end)."""
    if not np.issubdtype(sorted_values.dtype, np.inexact):
        return None
    mask = np.isnan(sorted_values[ends - 1])
    return mask if mask.any() else None


def presorted_median(
    sorted_values: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> np.ndarray:
    """Per-segment median of within-segment sorted values.

    Replicates ``np.median`` exactly: the mean of the middle one or two
    elements, computed in the input dtype for floats and in float64 for
    integer/bool inputs; segments containing NaN yield NaN.
    """
    counts = ends - starts
    half = counts // 2
    odd = (counts % 2) == 1
    upper = sorted_values[starts + half]
    lower = sorted_values[starts + np.where(odd, half, np.maximum(half - 1, 0))]
    if np.issubdtype(sorted_values.dtype, np.inexact):
        out = np.where(odd, upper, (lower + upper) / 2)
    else:
        lower64 = lower.astype(np.float64)
        upper64 = upper.astype(np.float64)
        out = np.where(odd, upper64, (lower64 + upper64) / 2)
    nan_mask = _nan_segments(sorted_values, ends)
    if nan_mask is not None:
        out[nan_mask] = np.nan
    return out


def presorted_percentile(
    sorted_values: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    q: float,
) -> np.ndarray:
    """Per-segment linear-interpolation percentile of sorted values.

    Replicates ``np.percentile(..., method="linear")`` bit for bit: the
    virtual index is ``q/100 * (n - 1)``, the bracketing values are
    interpolated with numpy's ``_lerp`` (which switches to the
    ``b - diff * (1 - t)`` form at ``t >= 0.5``), and the products are
    taken in the same dtypes numpy would use.
    """
    q = float(q)
    if not 0.0 <= q <= 100.0:
        raise ValueError("Percentiles must be in the range [0, 100]")
    counts = ends - starts
    last = counts - 1
    virtual = np.true_divide(q, 100.0) * last
    previous = np.floor(virtual).astype(np.intp)
    above = virtual >= last
    previous = np.where(above, last, previous)
    nxt = np.minimum(previous + 1, last)
    gamma = virtual - previous
    a = sorted_values[starts + previous]
    b = sorted_values[starts + nxt]
    diff = b - a
    out = np.asarray(a + diff * gamma, dtype=np.float64)
    upper_branch = gamma >= 0.5
    if upper_branch.any():
        out[upper_branch] = (b - diff * (1.0 - gamma))[upper_branch]
    nan_mask = _nan_segments(sorted_values, ends)
    if nan_mask is not None:
        out[nan_mask] = np.nan
    return out


def segment_median(
    values: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> np.ndarray:
    """Per-segment median of segment-contiguous (unsorted) values."""
    return presorted_median(
        sort_within_segments(values, starts, ends), starts, ends
    )


def segment_percentile(
    values: np.ndarray, starts: np.ndarray, ends: np.ndarray, q: float
) -> np.ndarray:
    """Per-segment percentile of segment-contiguous (unsorted) values."""
    return presorted_percentile(
        sort_within_segments(values, starts, ends), starts, ends, q
    )


# ----------------------------------------------------------------------
# Distinct counts
# ----------------------------------------------------------------------
def segment_nunique(
    values: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> np.ndarray:
    """Per-segment count of distinct values.

    Matches ``np.unique(...).size`` per group, including numpy's
    collapsing of NaNs to a single distinct value.
    """
    sorted_values = sort_within_segments(values, starts, ends)
    is_new = np.ones(sorted_values.size, dtype=np.int64)
    if sorted_values.size > 1:
        same = sorted_values[1:] == sorted_values[:-1]
        if np.issubdtype(sorted_values.dtype, np.inexact):
            same |= np.isnan(sorted_values[1:]) & np.isnan(sorted_values[:-1])
        is_new[1:] = ~same
        is_new[starts] = 1
    return np.add.reduceat(is_new, starts)
