"""Lightweight columnar data frames on top of numpy.

The analysis layer of this reproduction needs a small relational core —
filter, select, group-aggregate, join, sort, CSV round-trip — applied to
millions of rows of simulated measurement data. pandas is not available
in the target environment, so :mod:`repro.frames` provides exactly that
core with numpy arrays as column storage.

The public surface:

- :class:`Frame` — an immutable-by-convention mapping of column name to
  a 1-D numpy array, all of equal length.
- :func:`group_by` / :class:`GroupBy` — split-apply-combine with the
  aggregations the paper's pipeline uses (sum, mean, median, count,
  percentiles, ...).
- :func:`join` — equi-joins (inner / left) on one or more key columns.
- :func:`read_csv` / :func:`write_csv` — simple CSV round-trip with
  dtype inference.
- :func:`concat` — stack frames with identical schemas.

Grouped order statistics, joins and pivots run on the vectorized
segment kernels of :mod:`repro.frames.kernels`; set
``REPRO_FRAMES_NAIVE=1`` to select the original per-group reference
loops (the oracle the differential test suite compares against).
"""

from repro.frames.frame import Frame, concat
from repro.frames.groupby import GroupBy, group_by
from repro.frames.join import join
from repro.frames.csvio import read_csv, write_csv
from repro.frames.pivot import pivot

__all__ = [
    "Frame",
    "GroupBy",
    "concat",
    "group_by",
    "join",
    "pivot",
    "read_csv",
    "write_csv",
]
