"""The :class:`Frame` column-store and its basic relational operations."""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

__all__ = ["Frame", "concat"]


def _as_column(values: Any) -> np.ndarray:
    """Coerce ``values`` to a 1-D numpy array suitable as a column."""
    array = np.asarray(values)
    if array.ndim == 0:
        raise ValueError("a column must be a sequence, got a scalar")
    if array.ndim != 1:
        raise ValueError(f"a column must be 1-D, got shape {array.shape}")
    # Plain python strings arrive as dtype=object or <U; normalize object
    # arrays of str to a unicode dtype so comparisons vectorize.
    if array.dtype == object and array.size and all(
        isinstance(item, str) for item in array
    ):
        array = array.astype(str)
    return array


class Frame:
    """A named collection of equal-length numpy columns.

    ``Frame`` is deliberately small: it is a dictionary of columns with
    relational conveniences. Columns are shared, not copied, on most
    operations — treat the arrays as read-only.

    Parameters
    ----------
    columns:
        Mapping of column name to array-like. All columns must have the
        same length.

    Examples
    --------
    >>> frame = Frame({"cell": ["a", "a", "b"], "volume": [1.0, 2.0, 9.0]})
    >>> len(frame)
    3
    >>> frame.filter(frame["volume"] > 1.5).column_names
    ('cell', 'volume')
    """

    __slots__ = ("_columns", "_length")

    def __init__(self, columns: Mapping[str, Any] | None = None) -> None:
        self._columns: dict[str, np.ndarray] = {}
        self._length = 0
        if columns:
            converted = {name: _as_column(col) for name, col in columns.items()}
            lengths = {arr.shape[0] for arr in converted.values()}
            if len(lengths) > 1:
                detail = {name: arr.shape[0] for name, arr in converted.items()}
                raise ValueError(f"columns have unequal lengths: {detail}")
            self._columns = converted
            self._length = next(iter(lengths)) if lengths else 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in insertion order."""
        return tuple(self._columns)

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._length

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {list(self._columns)}"
            ) from None

    def __iter__(self) -> Iterable[str]:
        return iter(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(
            np.array_equal(self._columns[name], other._columns[name])
            for name in self._columns
        )

    def __repr__(self) -> str:
        schema = ", ".join(
            f"{name}: {arr.dtype}" for name, arr in self._columns.items()
        )
        return f"Frame({self._length} rows; {schema})"

    def to_dict(self) -> dict[str, np.ndarray]:
        """Return the underlying column mapping (arrays are shared)."""
        return dict(self._columns)

    def row(self, index: int) -> dict[str, Any]:
        """Materialize a single row as ``{column: scalar}``."""
        if not -self._length <= index < self._length:
            raise IndexError(f"row {index} out of range for {self._length} rows")
        return {name: arr[index] for name, arr in self._columns.items()}

    def iter_rows(self) -> Iterable[dict[str, Any]]:
        """Yield rows as dictionaries. Convenient, but slow — test use only."""
        for index in range(self._length):
            yield self.row(index)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls, rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None
    ) -> "Frame":
        """Build a frame from an iterable of row dictionaries.

        ``columns`` fixes the schema; by default it is taken from the
        first row. Missing keys raise ``KeyError``.
        """
        rows = list(rows)
        if not rows:
            return cls({name: [] for name in (columns or [])})
        names = list(columns) if columns is not None else list(rows[0])
        data = {name: [row[name] for row in rows] for name in names}
        return cls(data)

    def with_column(self, name: str, values: Any) -> "Frame":
        """Return a new frame with ``name`` added or replaced."""
        column = _as_column(values)
        if self._columns and column.shape[0] != self._length:
            raise ValueError(
                f"column {name!r} has length {column.shape[0]}, "
                f"frame has {self._length} rows"
            )
        data = dict(self._columns)
        data[name] = column
        return Frame(data)

    def rename(self, mapping: Mapping[str, str]) -> "Frame":
        """Return a new frame with columns renamed per ``mapping``."""
        missing = set(mapping) - set(self._columns)
        if missing:
            raise KeyError(f"cannot rename missing columns: {sorted(missing)}")
        return Frame(
            {mapping.get(name, name): arr for name, arr in self._columns.items()}
        )

    # ------------------------------------------------------------------
    # Relational operations
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str]) -> "Frame":
        """Return a new frame with only ``names``, in the given order."""
        return Frame({name: self[name] for name in names})

    def drop(self, names: Sequence[str]) -> "Frame":
        """Return a new frame without ``names``."""
        doomed = set(names)
        missing = doomed - set(self._columns)
        if missing:
            raise KeyError(f"cannot drop missing columns: {sorted(missing)}")
        return Frame(
            {name: arr for name, arr in self._columns.items() if name not in doomed}
        )

    def filter(self, mask: Any) -> "Frame":
        """Return rows where the boolean ``mask`` is true."""
        mask = np.asarray(mask)
        if mask.dtype != bool:
            raise TypeError(f"filter mask must be boolean, got {mask.dtype}")
        if mask.shape != (self._length,):
            raise ValueError(
                f"mask shape {mask.shape} does not match {self._length} rows"
            )
        return self.take(np.flatnonzero(mask))

    def take(self, indices: Any) -> "Frame":
        """Return the rows at ``indices`` (fancy indexing on all columns)."""
        indices = np.asarray(indices)
        return Frame({name: arr[indices] for name, arr in self._columns.items()})

    def head(self, count: int = 5) -> "Frame":
        """Return the first ``count`` rows."""
        return self.take(np.arange(min(count, self._length)))

    def sort_by(self, names: str | Sequence[str], descending: bool = False) -> "Frame":
        """Return rows sorted by one or more columns (stable).

        With multiple names the first is the primary key.
        """
        if isinstance(names, str):
            names = [names]
        if not names:
            raise ValueError("sort_by needs at least one column")
        # np.lexsort sorts by the LAST key as primary, so reverse.
        keys = tuple(self[name] for name in reversed(names))
        order = np.lexsort(keys)
        if descending:
            order = order[::-1]
        return self.take(order)

    def unique(self, name: str) -> np.ndarray:
        """Sorted unique values of a column."""
        return np.unique(self[name])

    def mask_isin(self, name: str, values: Iterable[Any]) -> np.ndarray:
        """Boolean mask of rows whose ``name`` is in ``values``."""
        return np.isin(self[name], np.asarray(list(values)))

    def describe(self) -> "Frame":
        """Summary statistics of the numeric columns.

        Returns a frame with one row per numeric column and the usual
        count/mean/std/min/median/max columns — the quick look a user
        takes at a freshly loaded feed.
        """
        rows = []
        for name, column in self._columns.items():
            if not np.issubdtype(column.dtype, np.number):
                continue
            if column.size == 0:
                rows.append(
                    {
                        "column": name, "count": 0, "mean": np.nan,
                        "std": np.nan, "min": np.nan, "median": np.nan,
                        "max": np.nan,
                    }
                )
                continue
            values = column.astype(np.float64)
            rows.append(
                {
                    "column": name,
                    "count": int(values.size),
                    "mean": float(values.mean()),
                    "std": float(values.std()),
                    "min": float(values.min()),
                    "median": float(np.median(values)),
                    "max": float(values.max()),
                }
            )
        return Frame.from_rows(
            rows,
            columns=["column", "count", "mean", "std", "min",
                     "median", "max"],
        )

    def to_pretty(self, max_rows: int = 20) -> str:
        """Render an aligned text table (for examples and reports)."""
        names = self.column_names
        if not names:
            return "(empty frame)"
        shown = min(self._length, max_rows)
        cells = [
            [_format_cell(self._columns[name][row]) for name in names]
            for row in range(shown)
        ]
        widths = [
            max(len(name), *(len(row[idx]) for row in cells)) if cells else len(name)
            for idx, name in enumerate(names)
        ]
        header = "  ".join(name.ljust(width) for name, width in zip(names, widths))
        rule = "  ".join("-" * width for width in widths)
        body = [
            "  ".join(value.rjust(width) for value, width in zip(row, widths))
            for row in cells
        ]
        lines = [header, rule, *body]
        if shown < self._length:
            lines.append(f"... ({self._length - shown} more rows)")
        return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, (float, np.floating)):
        return f"{value:.4g}"
    return str(value)


def concat(frames: Sequence[Frame]) -> Frame:
    """Vertically stack frames that share an identical schema."""
    frames = [frame for frame in frames if frame.num_rows or frame.column_names]
    if not frames:
        return Frame()
    schema = frames[0].column_names
    for frame in frames[1:]:
        if frame.column_names != schema:
            raise ValueError(
                f"schema mismatch: {frame.column_names} != {schema}"
            )
    return Frame(
        {name: np.concatenate([frame[name] for frame in frames]) for name in schema}
    )
