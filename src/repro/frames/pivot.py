"""Pivot: long → wide reshaping for frames.

The mobility matrix of Fig 7 and several report tables are (row key ×
column key → value) matrices; :func:`pivot` builds them from long-form
frames with standard aggregation semantics.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.frames.frame import Frame
from repro.frames.groupby import group_by

__all__ = ["pivot"]


def pivot(
    frame: Frame,
    index: str,
    columns: str,
    values: str,
    aggregate: Any = "sum",
    fill: float = 0.0,
) -> Frame:
    """Reshape ``frame`` into one row per ``index`` value.

    Parameters
    ----------
    index:
        Column whose unique values become the output rows.
    columns:
        Column whose unique values become output columns (stringified).
    values:
        Column aggregated into the cells.
    aggregate:
        Any :meth:`GroupBy.agg` aggregation (default ``"sum"``).
    fill:
        Value for (index, column) pairs absent from the input.

    Examples
    --------
    >>> long = Frame({
    ...     "county": ["Kent", "Kent", "Essex"],
    ...     "day": [1, 2, 1],
    ...     "visitors": [10.0, 20.0, 5.0],
    ... })
    >>> wide = pivot(long, index="county", columns="day",
    ...              values="visitors")
    >>> wide["1"].tolist()
    [5.0, 10.0]
    """
    for name in (index, columns, values):
        if name not in frame:
            raise KeyError(f"frame lacks column {name!r}")
    aggregated = group_by(frame, [index, columns]).agg(
        _cell=(values, aggregate)
    )
    row_keys = np.unique(frame[index])
    column_keys = np.unique(frame[columns])
    row_position = {key: i for i, key in enumerate(row_keys.tolist())}
    column_position = {
        key: i for i, key in enumerate(column_keys.tolist())
    }
    grid = np.full((row_keys.size, column_keys.size), fill, dtype=np.float64)
    for row_key, column_key, value in zip(
        aggregated[index], aggregated[columns], aggregated["_cell"]
    ):
        grid[
            row_position[row_key], column_position[column_key]
        ] = float(value)
    data: dict[str, Any] = {index: row_keys}
    for key in column_keys.tolist():
        data[str(key)] = grid[:, column_position[key]]
    return Frame(data)
