"""Pivot: long → wide reshaping for frames.

The mobility matrix of Fig 7 and several report tables are (row key ×
column key → value) matrices; :func:`pivot` builds them from long-form
frames with standard aggregation semantics.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro import telemetry
from repro.frames import kernels
from repro.frames.frame import Frame
from repro.frames.groupby import group_by

__all__ = ["pivot"]


def pivot(
    frame: Frame,
    index: str,
    columns: str,
    values: str,
    aggregate: Any = "sum",
    fill: float = 0.0,
) -> Frame:
    """Reshape ``frame`` into one row per ``index`` value.

    Parameters
    ----------
    index:
        Column whose unique values become the output rows.
    columns:
        Column whose unique values become output columns (stringified).
    values:
        Column aggregated into the cells.
    aggregate:
        Any :meth:`GroupBy.agg` aggregation (default ``"sum"``).
    fill:
        Value for (index, column) pairs absent from the input.

    Examples
    --------
    >>> long = Frame({
    ...     "county": ["Kent", "Kent", "Essex"],
    ...     "day": [1, 2, 1],
    ...     "visitors": [10.0, 20.0, 5.0],
    ... })
    >>> wide = pivot(long, index="county", columns="day",
    ...              values="visitors")
    >>> wide["1"].tolist()
    [5.0, 10.0]
    """
    for name in (index, columns, values):
        if name not in frame:
            raise KeyError(f"frame lacks column {name!r}")
    aggregated = group_by(frame, [index, columns]).agg(
        _cell=(values, aggregate)
    )
    row_keys = np.unique(frame[index])
    column_keys = np.unique(frame[columns])
    grid = np.full((row_keys.size, column_keys.size), fill, dtype=np.float64)
    naive = kernels.use_naive()
    if telemetry.enabled():
        telemetry.count("frames.pivot.calls")
        telemetry.count("frames.pivot.rows_in", frame.num_rows)
        telemetry.count("frames.pivot.cells_out", int(grid.size))
        telemetry.count(
            "frames.pivot.naive_scatter"
            if naive
            else "frames.pivot.vector_scatter"
        )
    if naive:
        row_position = {key: i for i, key in enumerate(row_keys.tolist())}
        column_position = {
            key: i for i, key in enumerate(column_keys.tolist())
        }
        for row_key, column_key, value in zip(
            aggregated[index], aggregated[columns], aggregated["_cell"]
        ):
            grid[
                row_position[row_key], column_position[column_key]
            ] = float(value)
    else:
        # One scatter: the aggregated frame has one row per (index,
        # columns) pair, so the cell assignments never collide.
        row_codes = np.searchsorted(row_keys, aggregated[index])
        column_codes = np.searchsorted(column_keys, aggregated[columns])
        grid[row_codes, column_codes] = aggregated["_cell"].astype(
            np.float64, copy=False
        )
    data: dict[str, Any] = {index: row_keys}
    for position, key in enumerate(column_keys.tolist()):
        data[str(key)] = grid[:, position]
    return Frame(data)
