"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro simulate --preset small --seed 7 --out runs/small7
    python -m repro analyze runs/small7
    python -m repro summary runs/small7
    python -m repro report --preset tiny --seed 3

``simulate`` runs the engine and persists the feeds; ``analyze`` /
``summary`` reload a persisted run and print the full figure report or
just the headline numbers; ``report`` does simulate + analyze in one
shot without touching disk (or, given a run directory, reports on it).

Every feed-consuming subcommand (``analyze``, ``summary``, ``report``,
``verdict``, ``export``, ``watch``) takes the run directory as its
positional argument; the historical ``--feeds`` flag still works as a
deprecated alias, warns, and will be removed in the next release.
They all take the same trio of switches: ``--lazy`` memory-maps the
run's columnar feed partition instead of materializing it (same
output, bounded peak memory — see :mod:`repro.io.columnar`),
``--no-cache`` bypasses the persistent artifact cache for one
invocation, and ``--telemetry`` appends the phase table.

``watch`` is the live-operator loop: it polls a run directory that
another process is advancing day-by-day (:meth:`repro.api.Run.advance`)
and reprints the summary and paper-target verdict whenever new days
land, serving unchanged day ranges from the artifact cache so a
refresh costs seconds, not a full recompute (see ``docs/LIVE.md``).

``simulate --out DIR`` checkpoints every completed shard-day under
``DIR/checkpoints`` while running (disable with ``--no-checkpoint``).
If the run dies — a crashed worker, a kill -9, a full disk —
``simulate --resume DIR`` restores the completed days and computes
only the rest, bitwise-identical to an uninterrupted run.  Checkpoints
are removed once the feeds are saved.

Pass ``--telemetry`` to ``simulate``, ``analyze``, or ``report`` to
record span timings and counters for the command and print the phase
table after the normal output (see ``docs/OBSERVABILITY.md``). On
``simulate`` the snapshot is additionally persisted into the run's
``manifest.json``.

Analysis results are cached persistently: the first ``analyze`` /
``summary`` / ``verdict`` on a run directory stores every artifact in
``<run>/cache/analysis/`` (content-addressed on the feed digests in the
manifest — see :mod:`repro.analysis.cache`), and later invocations
fetch them back without even reloading the feeds, printing output
byte-identical to a cold run.  ``--no-cache`` bypasses the cache for
one invocation; ``python -m repro cache <run> --info/--clear`` inspects
or deletes the store.

Counterfactual sweeps run through the scenario catalog (see
``docs/SCENARIOS.md``): ``scenarios`` lists it, ``experiment`` fans a
(scenario × seed) grid across the engine and prints the comparative
report, and ``compare`` renders the same report over arbitrary saved
run directories.  With ``experiment --workdir DIR`` every cell persists
and a warm rerun reloads instead of re-simulating, printing bytes
identical to the cold run.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from collections.abc import Sequence

__all__ = ["main", "build_parser"]

_PRESETS = ("tiny", "small", "default")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Characterization of the COVID-19 "
            "Pandemic Impact on a Mobile Network Operator Traffic' "
            "(IMC 2020) on a synthetic MNO."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="run the simulator and persist the feeds"
    )
    _add_preset_args(simulate)
    simulate.add_argument(
        "--out", help="directory to save the run into"
    )
    simulate.add_argument(
        "--resume", metavar="DIR",
        help=(
            "complete an interrupted run from its checkpoints (uses "
            "the configuration stored with them; other simulate "
            "options are ignored)"
        ),
    )
    simulate.add_argument(
        "--no-checkpoint", action="store_true",
        help=(
            "do not write per-day checkpoints while running (an "
            "interrupted run cannot be resumed)"
        ),
    )
    _add_telemetry_arg(simulate)

    analyze = commands.add_parser(
        "analyze", help="reload a run and print the full figure report"
    )
    _add_rundir_args(analyze)
    _add_cache_arg(analyze)
    _add_telemetry_arg(analyze)
    _add_workers_arg(analyze)

    summary = commands.add_parser(
        "summary", help="reload a run and print the headline numbers"
    )
    _add_rundir_args(summary)
    _add_cache_arg(summary)
    _add_telemetry_arg(summary)
    _add_workers_arg(summary)

    report = commands.add_parser(
        "report",
        help=(
            "print the report for a run directory, or simulate one "
            "in memory and report on it"
        ),
    )
    _add_rundir_args(report, required=False)
    _add_preset_args(report)
    _add_cache_arg(report)
    _add_telemetry_arg(report)

    verdict = commands.add_parser(
        "verdict",
        help="reload a run and score it against every paper target",
    )
    _add_rundir_args(verdict)
    _add_cache_arg(verdict)
    _add_telemetry_arg(verdict)
    _add_workers_arg(verdict)

    watch = commands.add_parser(
        "watch",
        help=(
            "follow a live run: reprint summary + verdict whenever "
            "another process advances it"
        ),
    )
    _add_rundir_args(watch)
    _add_cache_arg(watch)
    _add_telemetry_arg(watch)
    _add_workers_arg(watch)
    watch.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll period for the run's manifest (default: 2.0)",
    )
    watch.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help=(
            "stop after N polls (default: watch until the run freezes "
            "at its horizon, or Ctrl-C)"
        ),
    )

    cache = commands.add_parser(
        "cache",
        help="inspect or clear a run's analysis artifact cache",
    )
    cache.add_argument("rundir", help="saved-run directory")
    cache.add_argument(
        "--info", action="store_true",
        help="print the entry count and total size (the default)",
    )
    cache.add_argument(
        "--clear", action="store_true",
        help="delete every cached analysis artifact of the run",
    )

    export = commands.add_parser(
        "export",
        help="reload a run and write every figure's series as CSVs",
    )
    _add_rundir_args(export)
    _add_cache_arg(export)
    _add_telemetry_arg(export)
    _add_workers_arg(export)
    export.add_argument(
        "--out", required=True, help="directory for the CSV bundle"
    )

    bench_summary = commands.add_parser(
        "bench-summary",
        help=(
            "collate benchmarks/results/*.json into one markdown "
            "trajectory table (optionally checking for regressions)"
        ),
    )
    bench_summary.add_argument(
        "--results", default="benchmarks/results", metavar="DIR",
        help="directory of bench result JSONs (default: %(default)s)",
    )
    bench_summary.add_argument(
        "--check", default=None, metavar="BASELINE_DIR",
        help=(
            "compare speedup-type gates against the baseline result "
            "JSONs in this directory and exit 1 on regressions"
        ),
    )
    bench_summary.add_argument(
        "--band", type=float, default=15.0, metavar="PCT",
        help=(
            "tolerance band for --check, in percent "
            "(default: %(default)s)"
        ),
    )

    scenarios = commands.add_parser(
        "scenarios",
        help="list the scenario catalog (see docs/SCENARIOS.md)",
    )
    scenarios.add_argument(
        "--digests", action="store_true",
        help=(
            "also print each scenario's configuration digest at the "
            "default preset/seed"
        ),
    )

    experiment = commands.add_parser(
        "experiment",
        help=(
            "run a (scenario x seed) grid and print the comparative "
            "report"
        ),
    )
    experiment.add_argument(
        "scenarios", nargs="+", metavar="SCENARIO",
        help="catalog scenario names (repro scenarios lists them)",
    )
    experiment.add_argument(
        "--seeds", default="2020", metavar="N[,N...]",
        help="comma-separated simulation seeds (default: 2020)",
    )
    experiment.add_argument(
        "--preset", choices=_PRESETS, default="small",
        help="simulation scale per cell (default: small)",
    )
    experiment.add_argument(
        "--users", type=int, default=None,
        help="override the preset's user count per cell",
    )
    experiment.add_argument(
        "--baseline", default="baseline_lockdown",
        help=(
            "scenario the deltas are computed against "
            "(default: baseline_lockdown; added to the grid if absent)"
        ),
    )
    experiment.add_argument(
        "--workdir", default=None, metavar="DIR",
        help=(
            "persist each cell under DIR/<scenario>--seed<seed>; a "
            "rerun reuses matching cells instead of re-simulating"
        ),
    )
    _add_telemetry_arg(experiment)

    compare = commands.add_parser(
        "compare",
        help=(
            "print the comparative report over saved run directories "
            "(first one is the baseline)"
        ),
    )
    compare.add_argument(
        "rundirs", nargs="+", metavar="DIR",
        help="two or more saved-run directories",
    )
    compare.add_argument(
        "--lazy", action="store_true",
        help=(
            "memory-map each run's mobility shards on demand instead "
            "of materializing them"
        ),
    )
    _add_telemetry_arg(compare)
    return parser


def _add_rundir_args(
    parser: argparse.ArgumentParser, required: bool = True
) -> None:
    parser.add_argument(
        "rundir", nargs="?", default=None,
        help="saved-run directory"
        + ("" if required else " (omit to simulate in memory)"),
    )
    parser.add_argument(
        "--feeds", dest="feeds", default=None, metavar="DIR",
        help=(
            "deprecated alias for the positional run directory "
            "(will be removed in the next release)"
        ),
    )
    parser.add_argument(
        "--lazy", action="store_true",
        help=(
            "memory-map the run's mobility shards on demand instead of "
            "materializing them (bounded peak memory; for large runs)"
        ),
    )


def _add_preset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset", choices=_PRESETS, default="small",
        help="simulation scale (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=2020, help="simulation seed"
    )
    parser.add_argument(
        "--users", type=int, default=None,
        help="override the preset's user count",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help=(
            "partition the agents into this many deterministic shards "
            "(default: 1, or the worker count when --workers is given)"
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help=(
            "run the shard day loops on this many processes "
            "(default: 1 = in-process)"
        ),
    )


def _add_workers_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", default="auto", metavar="N",
        help=(
            "fan the shard-streaming analysis kernels and figure "
            "chains across this many processes; results are bitwise "
            "identical for every value (default: auto = the CPU "
            "count; 1 disables)"
        ),
    )


def _workers_from_args(args: argparse.Namespace):
    """The analysis worker request: ``"auto"``, an int, or ``None``."""
    value = getattr(args, "workers", None)
    if value is None or value == "auto":
        return value
    try:
        return int(value)
    except (TypeError, ValueError) as err:
        raise _CliError(
            f"{args.command}: --workers must be an integer or 'auto', "
            f"got {value!r}",
            code=2,
        ) from err


def _add_cache_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-cache", action="store_true",
        help=(
            "neither read nor write the run's persistent analysis "
            "artifact cache for this invocation"
        ),
    )


def _add_telemetry_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", action="store_true",
        help=(
            "record span timings and counters for this command and "
            "print the phase table after the output"
        ),
    )


class _CliError(Exception):
    """A usage or runtime error the CLI reports as a message + exit 2/1."""

    def __init__(self, message: str, code: int = 1) -> None:
        super().__init__(message)
        self.code = code


def _resolve_rundir(args: argparse.Namespace, required: bool = True):
    """The run directory of a feed-consuming command.

    Prefers the positional form; honours the deprecated ``--feeds``
    alias with a warning.
    """
    positional = getattr(args, "rundir", None)
    legacy = getattr(args, "feeds", None)
    if positional is not None and legacy is not None:
        raise _CliError(
            f"{args.command}: give the run directory once — positionally "
            "(--feeds is a deprecated alias)",
            code=2,
        )
    if legacy is not None:
        warnings.warn(
            "--feeds is deprecated and will be removed in the next "
            "release; pass the run directory as a positional argument",
            DeprecationWarning,
            stacklevel=2,
        )
        print(
            f"note: --feeds is deprecated and will be removed in the "
            f"next release; use 'repro {args.command} {legacy}'",
            file=sys.stderr,
        )
        return legacy
    if positional is None and required:
        raise _CliError(
            f"{args.command}: a run directory is required", code=2
        )
    return positional


def _config_from_args(args: argparse.Namespace):
    from repro.simulation.config import SimulationConfig

    factory = {
        "tiny": SimulationConfig.tiny,
        "small": SimulationConfig.small,
        "default": SimulationConfig.default,
    }[args.preset]
    config = factory(seed=args.seed)
    if args.users is not None:
        config = config.with_overrides(
            num_users=args.users,
            target_site_count=max(100, args.users // 18),
        )
    if args.shards is not None or args.workers is not None:
        workers = args.workers if args.workers is not None else 1
        shards = args.shards if args.shards is not None else max(workers, 1)
        config = config.with_parallelism(shards, workers=workers)
    return config


def main(argv: Sequence[str] | None = None, out=sys.stdout) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if not getattr(args, "telemetry", False):
            return _run_command(args, out)

        from repro import telemetry
        from repro.telemetry import render_phase_table

        telemetry.enable()
        try:
            code = _run_command(args, out)
            if code == 0:
                print(file=out)
                print(render_phase_table(telemetry.snapshot()), file=out)
            return code
        finally:
            telemetry.disable()
    except _CliError as err:
        print(f"error: {err}", file=out)
        return err.code


def _run_simulate(args: argparse.Namespace, out) -> int:
    from repro.io import RunStoreError, save_feeds
    from repro.simulation.checkpoint import CheckpointStore
    from repro.simulation.engine import Simulator
    from repro.simulation.faults import ShardExecutionError

    def progress(day: int, total: int) -> None:
        if day % 14 == 0 or day == total - 1:
            print(f"  simulated day {day + 1}/{total}", file=out)

    if args.resume is not None and args.out is not None:
        raise _CliError(
            "simulate: --resume already names the run directory; "
            "--out is not allowed with it",
            code=2,
        )
    if args.resume is None and args.out is None:
        raise _CliError(
            "simulate: one of --out or --resume is required", code=2
        )

    target = args.resume if args.resume is not None else args.out
    try:
        if args.resume is not None:
            feeds = Simulator.resume(
                target, progress=progress, stream=True
            )
        else:
            feeds = Simulator(_config_from_args(args)).run(
                progress=progress,
                checkpoint_dir=None if args.no_checkpoint else target,
                # Mobility days land directly in the run directory's
                # columnar partition; save_feeds commits them in place.
                stream_dir=target,
            )
    except ShardExecutionError as err:
        raise _CliError(
            f"{err}\nresume with: python -m repro simulate --resume "
            f"{target}"
        ) from err
    except RunStoreError as err:
        raise _CliError(str(err)) from err

    path = save_feeds(feeds, target)
    if CheckpointStore.present(target):
        CheckpointStore.open(target).clear()
    print(
        f"saved {feeds.num_users} users x "
        f"{feeds.calendar.num_days} days to {path}",
        file=out,
    )
    return 0


def _run_command(args: argparse.Namespace, out) -> int:
    if args.command == "simulate":
        return _run_simulate(args, out)

    if args.command == "export":
        from repro.core import CovidImpactStudy
        from repro.io import export_analysis, load_feeds

        rundir = _resolve_rundir(args)
        study = CovidImpactStudy(
            _load(load_feeds, rundir, lazy=getattr(args, "lazy", False)),
            cache=_open_cache(args, rundir),
            workers=_workers_from_args(args),
        )
        path = export_analysis(study, args.out)
        print(f"wrote figure CSVs to {path}", file=out)
        return 0

    if args.command == "cache":
        return _run_cache(args, out)

    if args.command == "bench-summary":
        return _run_bench_summary(args, out)

    if args.command in ("analyze", "summary", "verdict"):
        rundir = _resolve_rundir(args)
        cache = _open_cache(args, rundir)
        lazy = getattr(args, "lazy", False)
        workers = _workers_from_args(args)
        if args.command == "analyze":
            print(
                _report_text(
                    rundir, cache, full=False, lazy=lazy, workers=workers
                ),
                file=out,
            )
            return 0
        summary = _summary_values(rundir, cache, lazy=lazy, workers=workers)
        if args.command == "summary":
            for key, value in summary.items():
                print(f"{key:<42} {value:>12.3f}", file=out)
        else:
            from repro.core.paper_targets import (
                evaluate_summary,
                render_verdicts,
            )

            print(render_verdicts(evaluate_summary(summary)), file=out)
        return 0

    if args.command == "watch":
        return _run_watch(args, out)

    if args.command == "scenarios":
        return _run_scenarios(args, out)

    if args.command == "experiment":
        return _run_experiment(args, out)

    if args.command == "compare":
        return _run_compare(args, out)

    if args.command == "report":
        rundir = _resolve_rundir(args, required=False)
        if rundir is not None:
            cache = _open_cache(args, rundir)
            print(
                _report_text(
                    rundir, cache, full=False,
                    lazy=getattr(args, "lazy", False),
                    # report shares --workers with the simulate preset
                    # switches; unset means the auto analysis default.
                    workers=_workers_from_args(args) or "auto",
                ),
                file=out,
            )
        else:
            from repro.core import CovidImpactStudy

            study = CovidImpactStudy.run(_config_from_args(args))
            print(study.report(), file=out)
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


def _read_manifest(rundir):
    """The run's parsed ``manifest.json``, or ``None`` before the first
    save.  The manifest is replaced atomically (every save and every
    live append commits by renaming it), so a successful parse is
    always a consistent run state — never a torn append."""
    import json

    path = rundir / "manifest.json"
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def _run_watch(args: argparse.Namespace, out) -> int:
    import time
    from pathlib import Path

    rundir = Path(_resolve_rundir(args))
    interval = max(float(args.interval), 0.0)
    remaining = args.iterations  # None: poll until frozen or Ctrl-C
    last_days = None
    try:
        while True:
            manifest = _read_manifest(rundir)
            if manifest is None:
                print(f"watch: waiting for {rundir}/manifest.json", file=out)
            else:
                days = int(manifest.get("num_days", 0))
                frozen = "live" not in manifest
                if days != last_days:
                    last_days = days
                    _watch_refresh(args, rundir, manifest, frozen, out)
                if frozen:
                    print(
                        f"watch: run frozen at {days} days; done",
                        file=out,
                    )
                    return 0
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return 0
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


def _watch_refresh(args, rundir, manifest, frozen, out) -> None:
    """Print one summary + verdict refresh, timed.

    The refresh never materializes the feeds: analysis artifacts are
    served from the run's cache when warm, and a cold (newly advanced)
    range recomputes over the memory-mapped partition (``lazy``), with
    already-seen day ranges reused from their range artifacts.
    """
    import time

    from repro.core.paper_targets import evaluate_summary, render_verdicts

    days = int(manifest.get("num_days", 0))
    horizon = int(
        (manifest.get("live") or {}).get("horizon_days", days)
    )
    label = f"day {days}/{horizon}" + ("" if frozen else " (live)")
    start = time.perf_counter()
    # Reopen per refresh: the cache is keyed on the manifest's feed
    # digests, which change with every appended day.
    cache = _open_cache(args, rundir)
    try:
        summary = _summary_values(
            rundir, cache, lazy=True, workers=_workers_from_args(args)
        )
    except (ValueError, KeyError) as err:
        # Too few days for the full analysis yet — home detection
        # needs min_nights of them (ValueError), the correlation and
        # delta figures need the key intervention dates inside the
        # window (KeyError): report progress and keep polling.
        print(f"{label}: warming up ({err})", file=out)
        return
    print(f"== {label} ==", file=out)
    for key, value in summary.items():
        print(f"{key:<42} {value:>12.3f}", file=out)
    print(render_verdicts(evaluate_summary(summary)), file=out)
    print(
        f"refreshed in {time.perf_counter() - start:.2f}s", file=out
    )


def _run_scenarios(args: argparse.Namespace, out) -> int:
    from repro.datasets import (
        get_scenario,
        scenario_config,
        scenario_names,
    )
    from repro.datasets.spec import config_digest

    width = max(len(name) for name in scenario_names()) + 2
    for name in scenario_names():
        line = f"{name:<{width}}{get_scenario(name).description}"
        if args.digests:
            digest = config_digest(scenario_config(name))
            line += f"  [{digest[:12]}]"
        print(line, file=out)
    return 0


def _parse_seeds(text: str) -> tuple[int, ...]:
    try:
        seeds = tuple(
            int(part) for part in text.split(",") if part.strip()
        )
    except ValueError:
        seeds = ()
    if not seeds:
        raise _CliError(
            f"experiment: --seeds must be comma-separated integers, "
            f"got {text!r}",
            code=2,
        )
    return seeds


def _run_experiment(args: argparse.Namespace, out) -> int:
    from repro import api

    def progress(scenario: str, seed: int, action: str) -> None:
        print(f"  {scenario} seed {seed}: {action}", file=out)

    try:
        result = api.experiment(
            args.scenarios,
            seeds=_parse_seeds(args.seeds),
            preset=args.preset,
            num_users=args.users,
            baseline=args.baseline,
            directory=args.workdir,
            progress=progress,
        )
    except ValueError as err:
        raise _CliError(f"experiment: {err}", code=2) from err
    print(file=out)
    print(result.report(), file=out)
    return 0


def _run_compare(args: argparse.Namespace, out) -> int:
    from repro.experiments import compare_runs
    from repro.io import RunStoreError

    if len(args.rundirs) < 2:
        raise _CliError(
            "compare: at least two run directories are required", code=2
        )
    try:
        print(compare_runs(args.rundirs, lazy=args.lazy), file=out)
    except RunStoreError as err:
        raise _CliError(str(err)) from err
    return 0


def _open_cache(args: argparse.Namespace, rundir):
    """The run's artifact cache, or ``None`` (--no-cache, no digests)."""
    if getattr(args, "no_cache", False):
        return None
    from repro.analysis.cache import ArtifactCache

    return ArtifactCache.open(rundir)


def _cached_study(rundir, cache, lazy: bool = False, workers=None):
    from repro.core import CovidImpactStudy
    from repro.io import load_feeds

    return CovidImpactStudy(
        _load(load_feeds, rundir, lazy=lazy), cache=cache, workers=workers
    )


def _report_text(
    rundir, cache, full: bool, lazy: bool = False, workers=None
) -> str:
    """The rendered report — from the cache alone when warm.

    A cache hit skips ``load_feeds`` entirely: the artifact is keyed on
    the manifest's feed digests, so nothing else needs to be read.
    """
    if cache is not None:
        from repro.analysis.cache import report_params

        text = cache.get("report", report_params(full))
        if isinstance(text, str):
            return text
    return _cached_study(
        rundir, cache, lazy=lazy, workers=workers
    ).report(full=full)


def _summary_values(
    rundir, cache, lazy: bool = False, workers=None
) -> dict:
    """The headline-summary mapping — from the cache alone when warm."""
    if cache is not None:
        from repro.analysis.cache import summary_params

        summary = cache.get("summary", summary_params())
        if isinstance(summary, dict):
            return summary
    return _cached_study(
        rundir, cache, lazy=lazy, workers=workers
    ).summary()


def _run_bench_summary(args: argparse.Namespace, out) -> int:
    from repro import benchreport

    print(benchreport.summarize(args.results), file=out)
    if args.check is None:
        return 0
    fresh = benchreport.metric_rows(
        benchreport.collect_results(args.results)
    )
    baseline = benchreport.metric_rows(
        benchreport.collect_results(args.check)
    )
    if not baseline:
        print(
            f"\nno baseline results under {args.check}; "
            "nothing to check",
            file=out,
        )
        return 0
    failures = benchreport.check_regressions(
        fresh, baseline, band_pct=args.band
    )
    if failures:
        print(
            f"\n{len(failures)} gate regression(s) vs {args.check} "
            f"(band {args.band:g}%):",
            file=out,
        )
        for failure in failures:
            print(f"  {failure}", file=out)
        return 1
    print(
        f"\nno gate regressions vs {args.check} (band {args.band:g}%)",
        file=out,
    )
    return 0


def _run_cache(args: argparse.Namespace, out) -> int:
    from pathlib import Path

    from repro.analysis.cache import CACHE_SUBDIR, ArtifactCache

    if args.info and args.clear:
        raise _CliError(
            "cache: --info and --clear are mutually exclusive", code=2
        )
    rundir = Path(args.rundir)
    if not rundir.is_dir():
        raise _CliError(
            f"cache: run directory {rundir} does not exist", code=2
        )
    store = ArtifactCache(rundir / CACHE_SUBDIR, {})
    info = store.info()
    if args.clear:
        store.clear()
        print(
            f"cleared {info['entries']} cached artifacts "
            f"({info['bytes']} bytes) from {info['directory']}",
            file=out,
        )
    else:
        print(
            f"{info['directory']}: {info['entries']} cached artifacts, "
            f"{info['bytes']} bytes",
            file=out,
        )
    return 0


def _load(load_feeds, directory, lazy: bool = False):
    from repro.io import RunStoreError

    try:
        return load_feeds(directory, lazy=lazy)
    except RunStoreError as err:
        raise _CliError(str(err)) from err


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
