"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro simulate --preset small --seed 7 --out runs/small7
    python -m repro analyze --feeds runs/small7
    python -m repro summary --feeds runs/small7
    python -m repro report --preset tiny --seed 3

``simulate`` runs the engine and persists the feeds; ``analyze`` /
``summary`` reload a persisted run and print the full figure report or
just the headline numbers; ``report`` does simulate + analyze in one
shot without touching disk.

Pass ``--telemetry`` to ``simulate``, ``analyze``, or ``report`` to
record span timings and counters for the command and print the phase
table after the normal output (see ``docs/OBSERVABILITY.md``). On
``simulate`` the snapshot is additionally persisted into the run's
``manifest.json``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

__all__ = ["main", "build_parser"]

_PRESETS = ("tiny", "small", "default")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Characterization of the COVID-19 "
            "Pandemic Impact on a Mobile Network Operator Traffic' "
            "(IMC 2020) on a synthetic MNO."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="run the simulator and persist the feeds"
    )
    _add_preset_args(simulate)
    simulate.add_argument(
        "--out", required=True, help="directory to save the run into"
    )
    _add_telemetry_arg(simulate)

    analyze = commands.add_parser(
        "analyze", help="reload a run and print the full figure report"
    )
    analyze.add_argument("--feeds", required=True, help="saved-run directory")
    _add_telemetry_arg(analyze)

    summary = commands.add_parser(
        "summary", help="reload a run and print the headline numbers"
    )
    summary.add_argument("--feeds", required=True, help="saved-run directory")

    report = commands.add_parser(
        "report", help="simulate and print the report without saving"
    )
    _add_preset_args(report)
    _add_telemetry_arg(report)

    verdict = commands.add_parser(
        "verdict",
        help="reload a run and score it against every paper target",
    )
    verdict.add_argument("--feeds", required=True, help="saved-run directory")

    export = commands.add_parser(
        "export",
        help="reload a run and write every figure's series as CSVs",
    )
    export.add_argument("--feeds", required=True, help="saved-run directory")
    export.add_argument(
        "--out", required=True, help="directory for the CSV bundle"
    )
    return parser


def _add_preset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset", choices=_PRESETS, default="small",
        help="simulation scale (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=2020, help="simulation seed"
    )
    parser.add_argument(
        "--users", type=int, default=None,
        help="override the preset's user count",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help=(
            "partition the agents into this many deterministic shards "
            "(default: 1, or the worker count when --workers is given)"
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help=(
            "run the shard day loops on this many processes "
            "(default: 1 = in-process)"
        ),
    )


def _add_telemetry_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", action="store_true",
        help=(
            "record span timings and counters for this command and "
            "print the phase table after the output"
        ),
    )


def _config_from_args(args: argparse.Namespace):
    from repro.simulation.config import SimulationConfig

    factory = {
        "tiny": SimulationConfig.tiny,
        "small": SimulationConfig.small,
        "default": SimulationConfig.default,
    }[args.preset]
    config = factory(seed=args.seed)
    if args.users is not None:
        config = config.with_overrides(
            num_users=args.users,
            target_site_count=max(100, args.users // 18),
        )
    if args.shards is not None or args.workers is not None:
        workers = args.workers if args.workers is not None else 1
        shards = args.shards if args.shards is not None else max(workers, 1)
        config = config.with_parallelism(shards, workers=workers)
    return config


def main(argv: Sequence[str] | None = None, out=sys.stdout) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if not getattr(args, "telemetry", False):
        return _run_command(args, out)

    from repro import telemetry
    from repro.telemetry import render_phase_table

    telemetry.enable()
    try:
        code = _run_command(args, out)
        if code == 0:
            print(file=out)
            print(render_phase_table(telemetry.snapshot()), file=out)
        return code
    finally:
        telemetry.disable()


def _run_command(args: argparse.Namespace, out) -> int:
    if args.command == "simulate":
        from repro.io import save_feeds
        from repro.simulation.engine import Simulator

        def progress(day: int, total: int) -> None:
            if day % 14 == 0 or day == total - 1:
                print(f"  simulated day {day + 1}/{total}", file=out)

        feeds = Simulator(_config_from_args(args)).run(progress=progress)
        path = save_feeds(feeds, args.out)
        print(
            f"saved {feeds.num_users} users x "
            f"{feeds.calendar.num_days} days to {path}",
            file=out,
        )
        return 0

    if args.command == "export":
        from repro.core import CovidImpactStudy
        from repro.io import export_analysis, load_feeds

        study = CovidImpactStudy(load_feeds(args.feeds))
        path = export_analysis(study, args.out)
        print(f"wrote figure CSVs to {path}", file=out)
        return 0

    if args.command in ("analyze", "summary", "verdict"):
        from repro.core import CovidImpactStudy
        from repro.io import load_feeds

        study = CovidImpactStudy(load_feeds(args.feeds))
        if args.command == "analyze":
            print(study.report(), file=out)
        elif args.command == "summary":
            for key, value in study.summary().items():
                print(f"{key:<42} {value:>12.3f}", file=out)
        else:
            from repro.core.paper_targets import (
                evaluate_summary,
                render_verdicts,
            )

            print(
                render_verdicts(evaluate_summary(study.summary())),
                file=out,
            )
        return 0

    if args.command == "report":
        from repro.core import CovidImpactStudy

        study = CovidImpactStudy.run(_config_from_args(args))
        print(study.report(), file=out)
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
