"""The grid runner: (scenario × seed) cells over the existing engine.

:func:`run_grid` executes an :class:`ExperimentSpec` — a set of catalog
scenarios crossed with seeds at one population scale — and returns a
:class:`GridResult` whose cells wrap ordinary :class:`repro.api.Run`
handles.  Nothing is re-implemented: each cell is one engine run with
all its machinery (checkpoints, columnar streaming, the artifact
cache) intact.

Reuse is the point.  With a ``workdir``, every cell persists under
``<workdir>/<scenario>--seed<seed>/`` next to a ``cell.json`` sidecar
recording the cell's :func:`~repro.datasets.spec.config_digest`; a
rerun whose digest matches *reuses* the cell instead of simulating it,
serving its analysis straight from the run's content-addressed
``cache/analysis/`` store without even loading the feeds — so a warm
grid costs a handful of manifest and NPZ reads, not simulations, and
reproduces its report byte-for-byte.  A stale cell
(the spec changed, the code epoch moved) digests differently and is
simulated afresh.  Without a ``workdir``, cells stay in memory and the
per-process run memo (:mod:`repro.datasets.runcache`) still removes
duplicate simulations.

Telemetry (when enabled): the grid runs under an ``experiment`` span;
``experiments.cells_total`` / ``experiments.cells_simulated`` /
``experiments.cells_reused`` count cell fates.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.datasets.scenarios import scenario_config, scenario_names
from repro.datasets.spec import config_digest

__all__ = ["ExperimentSpec", "GridCell", "GridResult", "run_grid"]

#: Name of the per-cell sidecar recording what the cell was built from.
CELL_SIDECAR = "cell.json"


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: scenarios × seeds at a population scale.

    ``baseline`` is the scenario every other one is compared against;
    it is added to the grid automatically when not already listed.
    ``workdir`` enables persistent cells (and therefore warm reruns).
    """

    scenarios: tuple[str, ...]
    seeds: tuple[int, ...] = (2020,)
    preset: str = "small"
    num_users: int | None = None
    baseline: str = "baseline_lockdown"
    workdir: str | Path | None = None

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("an experiment needs at least one scenario")
        if not self.seeds:
            raise ValueError("an experiment needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError("seeds must be unique")
        known = set(scenario_names())
        for name in (*self.scenarios, self.baseline):
            if name not in known:
                raise ValueError(
                    f"unknown scenario {name!r}; catalog: "
                    f"{', '.join(sorted(known))}"
                )

    @property
    def ordered_scenarios(self) -> tuple[str, ...]:
        """Baseline first, then the requested order (de-duplicated)."""
        ordered = [self.baseline]
        for name in self.scenarios:
            if name not in ordered:
                ordered.append(name)
        return tuple(ordered)

    def cell_config(self, scenario: str, seed: int):
        """The compiled configuration of one cell."""
        return scenario_config(
            scenario,
            preset=self.preset,
            seed=seed,
            num_users=self.num_users,
        )


@dataclass
class GridCell:
    """One executed cell: a scenario at a seed, as a ``Run`` handle.

    A reused persisted cell is *deferred*: its feeds are not loaded at
    grid time, and stay unloaded as long as every requested artifact
    (the summary, the report's figure payloads) is served from the
    cell's ``cache/analysis/`` store — the same trick that lets a warm
    CLI invocation skip ``load_feeds``.  Touching :attr:`run` loads
    the directory lazily (memory-mapped feeds) on first use.
    """

    scenario: str
    seed: int
    digest: str
    reused: bool
    directory: Path | None = None
    calendar: object = None
    _run: object | None = field(default=None, repr=False)
    _summary: dict | None = field(default=None, repr=False)

    @property
    def run(self):
        """The cell's :class:`repro.api.Run` handle (loaded on demand)."""
        if self._run is None:
            from repro import api

            self._run = api.Run.open(self.directory, lazy=True)
        return self._run

    @property
    def loaded(self) -> bool:
        """Whether the cell's feeds are materialized in this process."""
        return self._run is not None

    def cached_artifact(self, name: str, params: dict):
        """A payload from the cell's persistent artifact cache, or None."""
        if self.directory is None:
            return None
        from repro.analysis.cache import ArtifactCache

        cache = ArtifactCache.open(self.directory)
        return None if cache is None else cache.get(name, params)

    def summary(self) -> dict:
        """The cell's headline summary (cache-first, cached on the handle)."""
        if self._summary is None:
            if not self.loaded:
                from repro.analysis.cache import summary_params

                cached = self.cached_artifact("summary", summary_params())
                if isinstance(cached, dict):
                    self._summary = cached
                    return self._summary
            self._summary = self.run.study().summary()
        return self._summary


@dataclass
class GridResult:
    """Every cell of an executed grid, plus the comparative report."""

    spec: ExperimentSpec
    cells: tuple[GridCell, ...]

    def cell(self, scenario: str, seed: int) -> GridCell:
        for cell in self.cells:
            if cell.scenario == scenario and cell.seed == seed:
                return cell
        raise KeyError(f"no cell ({scenario!r}, seed {seed})")

    def scenario_cells(self, scenario: str) -> tuple[GridCell, ...]:
        """The scenario's cells in the spec's seed order."""
        return tuple(
            cell for cell in self.cells if cell.scenario == scenario
        )

    def mean_summary(self, scenario: str) -> dict[str, float]:
        """Headline summary averaged across the scenario's seeds."""
        summaries = [
            cell.summary() for cell in self.scenario_cells(scenario)
        ]
        if not summaries:
            raise KeyError(f"no cells for scenario {scenario!r}")
        return {
            key: float(
                np.mean([summary[key] for summary in summaries])
            )
            for key in summaries[0]
        }

    def report(self) -> str:
        """The cross-scenario comparative report (deterministic)."""
        from repro.experiments.compare import grid_report

        return grid_report(self)


def run_grid(spec: ExperimentSpec, progress=None) -> GridResult:
    """Execute every (scenario × seed) cell and return the results.

    ``progress``, when given, is called as ``progress(scenario, seed,
    action)`` with ``action`` one of ``"reused"`` / ``"simulated"``
    after each cell completes.
    """
    workdir = None if spec.workdir is None else Path(spec.workdir)
    if workdir is not None:
        workdir.mkdir(parents=True, exist_ok=True)
    cells: list[GridCell] = []
    with telemetry.span(
        "experiment",
        scenarios=len(spec.ordered_scenarios),
        seeds=len(spec.seeds),
    ):
        for scenario in spec.ordered_scenarios:
            for seed in spec.seeds:
                cell = _run_cell(spec, scenario, seed, workdir)
                if telemetry.enabled():
                    telemetry.count("experiments.cells_total")
                    telemetry.count(
                        "experiments.cells_reused"
                        if cell.reused
                        else "experiments.cells_simulated"
                    )
                if progress is not None:
                    progress(
                        scenario,
                        seed,
                        "reused" if cell.reused else "simulated",
                    )
                cells.append(cell)
    return GridResult(spec=spec, cells=tuple(cells))


def _run_cell(
    spec: ExperimentSpec,
    scenario: str,
    seed: int,
    workdir: Path | None,
) -> GridCell:
    from repro import api

    config = spec.cell_config(scenario, seed)
    digest = config_digest(config)

    if workdir is None:
        # In-memory cell: the per-process run memo dedupes repeats.
        from repro.datasets.runcache import simulate_cached

        feeds = simulate_cached(config)
        return GridCell(
            scenario=scenario,
            seed=seed,
            digest=digest,
            reused=False,
            calendar=config.calendar,
            _run=api.Run(feeds),
        )

    directory = workdir / f"{scenario}--seed{seed}"
    if _sidecar_matches(directory, digest) and _cell_intact(directory):
        # Deferred reuse: no feeds are loaded here.  The summary and
        # the report's figure payloads come from the cell's artifact
        # cache; only an artifact miss (or an explicit ``cell.run``)
        # touches the stored feeds, lazily.
        return GridCell(
            scenario=scenario,
            seed=seed,
            digest=digest,
            reused=True,
            directory=directory,
            calendar=config.calendar,
        )
    if directory.exists():
        # A stale or broken cell never pollutes a fresh one.
        shutil.rmtree(directory)
    run = api.simulate(config, directory)
    _write_sidecar(directory, spec, scenario, seed, digest)
    return GridCell(
        scenario=scenario,
        seed=seed,
        digest=digest,
        reused=False,
        directory=directory,
        calendar=config.calendar,
        _run=run,
    )


def _cell_intact(directory: Path) -> bool:
    """Whether the cell directory looks like a complete run store.

    A readable manifest is the cheap completeness signal — it is the
    last file a simulation writes, so an interrupted cell fails this
    check and is rebuilt rather than trusted.
    """
    from repro.analysis.cache import ArtifactCache

    return ArtifactCache.open(directory) is not None


def _sidecar_matches(directory: Path, digest: str) -> bool:
    try:
        sidecar = json.loads(
            (directory / CELL_SIDECAR).read_text(encoding="utf-8")
        )
    except (OSError, json.JSONDecodeError):
        return False
    return sidecar.get("config_digest") == digest


def _write_sidecar(
    directory: Path,
    spec: ExperimentSpec,
    scenario: str,
    seed: int,
    digest: str,
) -> None:
    payload = {
        "scenario": scenario,
        "seed": seed,
        "preset": spec.preset,
        "num_users": spec.num_users,
        "config_digest": digest,
    }
    path = directory / CELL_SIDECAR
    temporary = path.with_suffix(".json.tmp")
    temporary.write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )
    temporary.replace(path)
