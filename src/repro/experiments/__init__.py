"""The experimentation harness: scenario grids and comparative reports.

The paper's pipeline answers "what happened in 2020?"; this package
answers "what would have happened *instead*?" at sweep scale.
:func:`run_grid` fans a grid of (scenario × seed) cells from the
declarative catalog (:mod:`repro.datasets.scenarios`) across the
existing engine — reusing persisted runs, per-day checkpoints and the
content-addressed analysis cache — and :func:`comparative_report`
renders the cross-scenario story: delta tables of the paper's headline
metrics against a baseline scenario, plus overlaid weekly-variation
panels.

>>> from repro import experiments  # doctest: +SKIP
>>> result = experiments.run_grid(experiments.ExperimentSpec(
...     scenarios=("no_intervention", "second_wave"),
...     seeds=(2020, 2021), preset="tiny",
...     workdir="runs/grid"))  # doctest: +SKIP
>>> print(result.report())  # doctest: +SKIP

Reports are deterministic and byte-stable: a warm rerun (every cell
reused, every artifact served from the run caches) prints the exact
bytes of the cold run that populated them.  See ``docs/SCENARIOS.md``
for the guide.
"""

from repro.experiments.compare import (
    DELTA_METRICS,
    OVERLAY_METRICS,
    comparative_report,
    compare_runs,
    delta_table,
)
from repro.experiments.grid import (
    ExperimentSpec,
    GridCell,
    GridResult,
    run_grid,
)

__all__ = [
    "DELTA_METRICS",
    "OVERLAY_METRICS",
    "ExperimentSpec",
    "GridCell",
    "GridResult",
    "comparative_report",
    "compare_runs",
    "delta_table",
    "run_grid",
]
