"""Comparative reports: delta tables + overlaid weekly panels.

Rendering is deliberately boring and deterministic: fixed metric
ordering, fixed float formats, scenario columns in grid order.  Every
number comes from study artifacts that are themselves bitwise-stable
(and cache-served on warm reruns), so the report text of a warm rerun
is byte-identical to the cold run that populated the caches.

Two entry points:

- :func:`grid_report` — the cross-scenario report of a
  :class:`~repro.experiments.grid.GridResult` (what ``repro
  experiment`` prints);
- :func:`compare_runs` — the same report over arbitrary persisted run
  directories (what ``repro compare`` prints), the first directory
  acting as the baseline.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import telemetry
from repro.core.report import render_series_block

__all__ = [
    "DELTA_METRICS",
    "OVERLAY_METRICS",
    "comparative_report",
    "compare_runs",
    "delta_table",
    "grid_report",
]

#: The headline metrics of the delta table: (row label, summary key).
DELTA_METRICS = (
    ("gyration change, weeks 13-14 (%)", "gyration_change_lockdown_pct"),
    ("entropy change, weeks 13-14 (%)", "entropy_change_lockdown_pct"),
    ("DL volume minimum (%)", "dl_volume_min_pct"),
    ("UL volume lockdown max (%)", "ul_volume_lockdown_max_pct"),
    ("active DL users minimum (%)", "active_users_min_pct"),
    ("user DL throughput minimum (%)", "throughput_min_pct"),
    ("radio load minimum (%)", "radio_load_min_pct"),
    ("voice volume peak (%)", "voice_volume_peak_pct"),
    ("voice DL loss peak (%)", "voice_dl_loss_peak_pct"),
    ("Inner London away share", "inner_london_away_share_lockdown"),
)

#: The overlaid weekly panels: (panel title, figure, metric).
OVERLAY_METRICS = (
    ("national gyration (weekly mean of daily % change)",
     "fig3", "gyration"),
    ("downlink volume (weekly median % vs week 9)",
     "fig8", "dl_volume_mb"),
    ("voice volume (weekly median % vs week 9)",
     "fig9", "voice_volume_mb"),
)

_LABEL_WIDTH = 34
_CELL_WIDTH = 18


def delta_table(
    summaries: dict[str, dict[str, float]],
    baseline: str,
    metrics=DELTA_METRICS,
) -> str:
    """Headline metrics: baseline absolute, every other as a delta.

    ``summaries`` maps label → headline-summary dict; columns keep the
    mapping's insertion order with ``baseline`` first.
    """
    if baseline not in summaries:
        raise KeyError(f"baseline {baseline!r} missing from summaries")
    labels = [baseline] + [
        label for label in summaries if label != baseline
    ]
    header = f"{'metric':<{_LABEL_WIDTH}}" + "".join(
        f"{_short(label):>{_CELL_WIDTH}}" for label in labels
    )
    lines = [header, "-" * len(header)]
    base = summaries[baseline]
    for row_label, key in metrics:
        cells = [f"{base[key]:>{_CELL_WIDTH}.1f}"]
        for label in labels[1:]:
            delta = summaries[label][key] - base[key]
            cells.append(f"{delta:>+{_CELL_WIDTH}.1f}")
        lines.append(f"{row_label:<{_LABEL_WIDTH}}" + "".join(cells))
    lines.append(
        f"{'':<{_LABEL_WIDTH}}"
        + f"{'(absolute)':>{_CELL_WIDTH}}"
        + "".join(
            f"{'(delta)':>{_CELL_WIDTH}}" for _ in labels[1:]
        )
    )
    return "\n".join(lines)


def _short(label: str, width: int = _CELL_WIDTH - 2) -> str:
    return label if len(label) <= width else label[: width - 1] + "…"


def _overlay_series(study) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """(weeks, national values) per overlay metric for one study."""
    from repro.core.baseline import weekly_mean

    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    gyration = study.fig3()["gyration"]
    weeks_of_day = study.feeds.calendar.weeks[gyration.x]
    out["fig3/gyration"] = weekly_mean(
        gyration.values["UK"], weeks_of_day
    )
    for figure, metric in (
        ("fig8", "dl_volume_mb"), ("fig9", "voice_volume_mb"),
    ):
        series = getattr(study, figure)()[metric]
        out[f"{figure}/{metric}"] = (series.weeks, series.values["UK"])
    return out


def _cell_overlays(cell) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """One grid cell's overlay series, without loading feeds if warm.

    A deferred (reused) cell's figure payloads usually sit in its
    run directory's artifact cache; decoding them there skips
    ``load_feeds`` entirely — the dominant cost of a warm grid.  Any
    miss falls back to the study, which loads the run lazily.
    """
    if not cell.loaded:
        cached = _cached_overlay_series(cell)
        if cached is not None:
            return cached
    return _overlay_series(cell.run.study())


def _cached_overlay_series(cell):
    from repro.analysis.cache import DEFAULT_GYRATION_MODE
    from repro.core.baseline import weekly_mean

    if cell.calendar is None:
        return None
    fig3 = cell.cached_artifact(
        "fig3", {"gyration_mode": DEFAULT_GYRATION_MODE}
    )
    fig8 = cell.cached_artifact("fig8", {"percentile": 50.0})
    fig9 = cell.cached_artifact("fig9", {"percentile": 50.0})
    if fig3 is None or fig8 is None or fig9 is None:
        return None
    gyration = fig3["gyration"]
    weeks_of_day = cell.calendar.weeks[gyration.x]
    out = {
        "fig3/gyration": weekly_mean(
            gyration.values["UK"], weeks_of_day
        )
    }
    for figure, payload, metric in (
        ("fig8", fig8, "dl_volume_mb"),
        ("fig9", fig9, "voice_volume_mb"),
    ):
        series = payload[metric]
        out[f"{figure}/{metric}"] = (series.weeks, series.values["UK"])
    return out


def comparative_report(
    labels: list[str],
    baseline: str,
    summaries: dict[str, dict[str, float]],
    overlays: dict[str, dict[str, tuple[np.ndarray, np.ndarray]]],
    header_lines: list[str],
) -> str:
    """Assemble the full report from per-label summaries and series."""
    blocks = ["\n".join(header_lines)]
    ordered = {
        label: summaries[label]
        for label in [baseline]
        + [label for label in labels if label != baseline]
    }
    blocks.append(
        "Headline deltas vs baseline\n"
        "===========================\n" + delta_table(ordered, baseline)
    )
    label_width = max(26, max(len(label) for label in labels) + 2)
    for title, figure, metric in OVERLAY_METRICS:
        key = f"{figure}/{metric}"
        weeks = overlays[baseline][key][0]
        series = {
            label: overlays[label][key][1] for label in ordered
        }
        blocks.append(
            render_series_block(
                f"Weekly variation — {title}",
                weeks,
                series,
                label_width=label_width,
            )
        )
    if telemetry.enabled():
        telemetry.count("experiments.reports_rendered")
    return "\n\n".join(blocks)


def grid_report(result) -> str:
    """The comparative report of an executed grid."""
    spec = result.spec
    labels = list(spec.ordered_scenarios)
    summaries = {
        scenario: result.mean_summary(scenario) for scenario in labels
    }
    overlays = {
        scenario: _mean_overlays(
            [
                _cell_overlays(cell)
                for cell in result.scenario_cells(scenario)
            ]
        )
        for scenario in labels
    }
    users = (
        "preset users"
        if spec.num_users is None
        else f"{spec.num_users} users"
    )
    header = [
        f"Experiment grid — {len(labels)} scenarios x "
        f"{len(spec.seeds)} seeds ({spec.preset} preset, {users})",
        f"baseline: {spec.baseline}",
        f"seeds: {', '.join(str(seed) for seed in spec.seeds)}",
    ]
    return comparative_report(
        labels, spec.baseline, summaries, overlays, header
    )


def _mean_overlays(
    per_seed: list[dict[str, tuple[np.ndarray, np.ndarray]]],
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Seed-mean of each overlay series (weeks are identical)."""
    merged: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for key in per_seed[0]:
        weeks = per_seed[0][key][0]
        stacked = np.stack([series[key][1] for series in per_seed])
        merged[key] = (weeks, stacked.mean(axis=0))
    return merged


def compare_runs(directories: list[str | Path], lazy: bool = False) -> str:
    """The comparative report over persisted run directories.

    The first directory is the baseline; labels are directory names
    (disambiguated when they repeat).  Analysis is served from each
    run's artifact cache when warm.
    """
    from repro import api

    if len(directories) < 2:
        raise ValueError("compare needs at least two run directories")
    labels: list[str] = []
    summaries: dict[str, dict[str, float]] = {}
    overlays: dict[str, dict] = {}
    for directory in directories:
        label = _unique_label(Path(directory).name, labels)
        labels.append(label)
        study = api.Run.open(directory, lazy=lazy).study()
        summaries[label] = study.summary()
        overlays[label] = _overlay_series(study)
    header = [
        f"Run comparison — {len(labels)} runs",
        f"baseline: {labels[0]}",
    ]
    return comparative_report(
        labels, labels[0], summaries, overlays, header
    )


def _unique_label(name: str, taken: list[str]) -> str:
    if name not in taken:
        return name
    index = 2
    while f"{name} ({index})" in taken:
        index += 1
    return f"{name} ({index})"
