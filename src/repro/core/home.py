"""Home detection (§2.3).

"We use the cell tower to which the user connects more time during
nighttime hours (12:00 PM through 8:00 AM) for at least 14 days (not
necessarily consecutive) during February 2020."

The printed window is read as 00:00–08:00 (midnight through 8 AM — the
only sensible nighttime reading); both the window and the threshold are
parameters so the home-detection ablation can vary them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.simulation.feeds import DataFeeds

__all__ = [
    "HomeDetectionResult",
    "detect_homes",
    "finalize_homes",
    "night_win_counts",
    "shard_night_win_counts",
]


@dataclass
class HomeDetectionResult:
    """Detected home tower per user (-1 where detection failed)."""

    user_ids: np.ndarray
    home_site: np.ndarray
    nights_observed: np.ndarray  # nights the winning tower won
    min_nights: int

    @property
    def detected(self) -> np.ndarray:
        """Boolean mask of users with a detected home."""
        return self.home_site >= 0

    @property
    def detection_rate(self) -> float:
        return float(self.detected.mean()) if self.user_ids.size else 0.0


def detect_homes(
    feeds: DataFeeds,
    min_nights: int = 14,
    window_days: np.ndarray | None = None,
    workers: int | None = None,
) -> HomeDetectionResult:
    """Detect each user's home tower from nighttime attachments.

    Parameters
    ----------
    feeds:
        The data feeds (uses the nighttime dwell aggregates).
    min_nights:
        Minimum number of nights the winning tower must dominate.
    window_days:
        Simulation day indices to scan; defaults to February 2020.
    workers:
        Fan the per-shard night scan across a process pool (> 1, on a
        committed columnar run); bitwise identical to the serial scan
        for every worker count.  ``None`` stays serial.
    """
    if min_nights <= 0:
        raise ValueError("min_nights must be positive")
    mobility = feeds.mobility
    if window_days is None:
        window_days = feeds.calendar.february_days
    window_days = np.asarray(window_days)
    if window_days.size == 0:
        raise ValueError("home-detection window is empty")
    if window_days.max() >= mobility.num_days:
        raise ValueError("window extends beyond the simulated days")

    win_counts = night_win_counts(feeds, window_days, workers=workers)
    return finalize_homes(feeds, win_counts, min_nights)


def night_win_counts(
    feeds: DataFeeds,
    window_days: np.ndarray,
    workers: int | None = None,
) -> np.ndarray:
    """Per-(user, anchor-slot) count of nights that slot's tower won.

    The associative core of home detection: counts over disjoint day
    windows are int64 and simply *add*, so a live run folds each
    appended segment's counts into the running total instead of
    rescanning February (:mod:`repro.analysis.mobility`), with the sum
    bitwise-equal to a single whole-window scan.

    The winner of a night is per-user ``argmax`` — strictly
    row-independent — so counts also partition by shard: on a lazily
    mapped columnar run each shard's partial
    (:func:`shard_night_win_counts`) is computed from that shard's maps
    alone and scattered at its population rows, serially or across a
    process pool (``workers`` > 1), with identical results.
    """
    mobility = feeds.mobility
    window_days = np.asarray(window_days)
    shards = getattr(mobility, "shards", None)
    if shards is not None and os.environ.get("REPRO_STORE_NAIVE") != "1":
        from repro.analysis import parallel as _parallel

        num_users = mobility.num_users
        k = mobility.anchor_sites.shape[1]
        if (
            workers is not None
            and _parallel.resolve_workers(workers) > 1
            and not _parallel.use_serial()
        ):
            plan = _parallel.plan_for(feeds)
            if plan is not None:
                return _parallel.parallel_night_win_counts(
                    feeds,
                    plan,
                    window_days,
                    workers=_parallel.resolve_workers(workers),
                )
        win_counts = np.zeros((num_users, k), dtype=np.int64)
        for shard in shards:
            if shard.num_rows == 0:
                continue
            telemetry.count("store.shards_streamed", 1)
            win_counts[shard.rows] = shard_night_win_counts(
                shard, window_days
            )
        return win_counts
    num_users = mobility.num_users
    k = mobility.anchor_sites.shape[1]
    win_counts = np.zeros((num_users, k), dtype=np.int64)
    rows = np.arange(num_users)
    for day in window_days:
        night = mobility.night(int(day))
        winner = night.argmax(axis=1)
        observed = night.max(axis=1) > 0
        win_counts[rows[observed], winner[observed]] += 1
    return win_counts


def shard_night_win_counts(shard, window_days: np.ndarray) -> np.ndarray:
    """One shard's night-win partial: ``(rows, k)`` int64 counts.

    The single per-shard kernel shared by the serial streaming walk and
    the process-pool workers — identical partials by construction.
    Night days are read through windowed maps
    (:func:`repro.io.columnar.window_days`, one contiguous run of the
    scan window at a time) and released as consumed.
    """
    from repro.io import columnar

    window_days = np.asarray(window_days, dtype=np.int64)
    count = shard.num_rows
    k = shard.anchor_sites.shape[1]
    win_counts = np.zeros((count, k), dtype=np.int64)
    rows = np.arange(count)
    for lo, hi in _contiguous_runs(window_days):
        window = columnar.window_days(shard, "night_dwell", lo, hi)
        for offset in range(hi - lo):
            night = window[offset]
            winner = night.argmax(axis=1)
            observed = night.max(axis=1) > 0
            win_counts[rows[observed], winner[observed]] += 1
        del window
    return win_counts


def _contiguous_runs(days: np.ndarray) -> list[tuple[int, int]]:
    """Maximal ``[lo, hi)`` runs of consecutive day indices, in order."""
    runs: list[list[int]] = []
    for day in days:
        day = int(day)
        if runs and day == runs[-1][1]:
            runs[-1][1] = day + 1
        else:
            runs.append([day, day + 1])
    return [(lo, hi) for lo, hi in runs]


def finalize_homes(
    feeds: DataFeeds, win_counts: np.ndarray, min_nights: int
) -> HomeDetectionResult:
    """Rank accumulated win counts into per-user home towers."""
    mobility = feeds.mobility
    num_users = mobility.num_users
    anchors = mobility.anchor_sites  # (N, K)
    k = anchors.shape[1]
    rows = np.arange(num_users)

    # Merge slots sharing a tower (duplicate anchors) before ranking.
    order = np.argsort(anchors, axis=1, kind="stable")
    anchors_sorted = np.take_along_axis(anchors, order, axis=1)
    counts_sorted = np.take_along_axis(win_counts, order, axis=1)
    merged = counts_sorted.astype(np.float64).copy()
    same = anchors_sorted[:, 1:] == anchors_sorted[:, :-1]
    # Forward-accumulate runs of equal towers, then keep run maxima.
    for col in range(1, k):
        merged[:, col] += np.where(same[:, col - 1], merged[:, col - 1], 0.0)
        merged[:, col - 1] = np.where(
            same[:, col - 1], 0.0, merged[:, col - 1]
        )

    best_col = merged.argmax(axis=1)
    best_count = merged[rows, best_col].astype(np.int64)
    best_site = anchors_sorted[rows, best_col]

    home_site = np.where(best_count >= min_nights, best_site, -1)
    return HomeDetectionResult(
        user_ids=mobility.user_ids,
        home_site=home_site.astype(np.int64),
        nights_observed=best_count,
        min_nights=min_nights,
    )
