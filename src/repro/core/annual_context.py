"""Growth-contextualization of traffic changes (§4.1 / §4.2).

Two of the paper's most quotable framings convert percentage changes
into *years of traffic growth*:

- "This decrease rewound the traffic load on the MNO infrastructure by
  one year, to levels similar to those of March 2019" — data traffic
  grows ~30–40%/year, so a −24% step is about one year backwards.
- "This corresponds to a predicted seven years of growth in voice
  traffic ... which the MNO had to accommodate in the space of few
  days" — voice grows slowly (~13%/year), so +140% is ~7 years.

The conversion: a change of ``c`` (fraction) at annual growth ``g`` is
``log(1 + c) / log(1 + g)`` years (negative = rewound).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DATA_ANNUAL_GROWTH",
    "VOICE_ANNUAL_GROWTH",
    "years_of_growth",
    "contextualize_summary",
]

# Industry-typical compound annual growth rates.
DATA_ANNUAL_GROWTH = 0.32
VOICE_ANNUAL_GROWTH = 0.133


def years_of_growth(change_pct: float, annual_growth_rate: float) -> float:
    """Convert a percent change into equivalent years of growth.

    >>> round(years_of_growth(140.0, VOICE_ANNUAL_GROWTH), 1)
    7.0
    >>> round(years_of_growth(-24.0, DATA_ANNUAL_GROWTH), 1)
    -1.0
    """
    if annual_growth_rate <= 0:
        raise ValueError("annual growth rate must be positive")
    change = change_pct / 100.0
    if change <= -1.0:
        raise ValueError("change cannot be -100% or lower")
    return float(np.log1p(change) / np.log1p(annual_growth_rate))


def contextualize_summary(summary: dict[str, float]) -> dict[str, float]:
    """Derive the paper's years-of-growth framings from a study summary.

    Returns ``data_years_rewound`` (positive = rewound into the past)
    and ``voice_years_of_growth``.
    """
    out: dict[str, float] = {}
    if "dl_volume_min_pct" in summary:
        out["data_years_rewound"] = -years_of_growth(
            summary["dl_volume_min_pct"], DATA_ANNUAL_GROWTH
        )
    if "voice_volume_peak_pct" in summary:
        out["voice_years_of_growth"] = years_of_growth(
            summary["voice_volume_peak_pct"], VOICE_ANNUAL_GROWTH
        )
    return out
