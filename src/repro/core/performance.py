"""Network-performance weekly series (Figs 8, 10, 11, 12).

The KPI feed is daily per-cell medians (§2.4). For each figure the
paper pools the per-cell daily values of a slice of cells (a region, a
geodemographic cluster, a London postal district, or the whole UK),
takes the weekly median, and reports the delta percentage against the
week-9 median of the same slice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baseline import weekly_median_delta
from repro.frames import Frame, kernels
from repro.geo.build import STUDY_REGIONS
from repro.simulation.clock import BASELINE_WEEK
from repro.simulation.feeds import DataFeeds

__all__ = ["WeeklySeries", "performance_series", "label_kpis", "PERF_METRICS"]

# The §2.4 metric names as they appear in the KPI feed.
PERF_METRICS = (
    "dl_volume_mb",
    "ul_volume_mb",
    "dl_active_users",
    "user_dl_throughput_mbps",
    "radio_load_pct",
    "connected_users",
)

GROUPINGS = ("national", "region", "county", "district_area", "oac")


@dataclass
class WeeklySeries:
    """Weekly delta-percentage series per group for one KPI."""

    metric: str
    weeks: np.ndarray
    values: dict[str, np.ndarray]
    percentile: float = 50.0

    def group(self, name: str) -> np.ndarray:
        return self.values[name]

    def at_week(self, group: str, week: int) -> float:
        index = np.flatnonzero(self.weeks == week)
        if index.size == 0:
            raise KeyError(f"week {week} not in series")
        return float(self.values[group][index[0]])

    def minimum(self, group: str) -> tuple[int, float]:
        """(week, value) of the series minimum."""
        series = self.values[group]
        index = int(series.argmin())
        return int(self.weeks[index]), float(series[index])

    def maximum(self, group: str) -> tuple[int, float]:
        """(week, value) of the series maximum."""
        series = self.values[group]
        index = int(series.argmax())
        return int(self.weeks[index]), float(series[index])

    def to_frame(self) -> Frame:
        """Long-form frame: (group, week, change_pct) rows."""
        groups: list[str] = []
        weeks: list[int] = []
        changes: list[float] = []
        for group, values in self.values.items():
            for week, value in zip(self.weeks.tolist(), values):
                groups.append(str(group))
                weeks.append(int(week))
                changes.append(float(value))
        return Frame(
            {"group": groups, "week": weeks, "change_pct": changes}
        )


def label_kpis(
    feeds: DataFeeds, day_range: tuple[int, int] | None = None
) -> Frame:
    """Attach week / county / region / area / OAC labels to KPI rows.

    Uses direct array mapping (not a relational join) because the KPI
    frame has one row per (cell, day) and the labels are functions of
    the cell's postcode district.

    ``day_range`` keeps only rows whose day falls in ``[start, stop)``.
    Labeling is strictly row-wise, so the filtered result equals the
    same rows of the whole-feed call bitwise — the live-run analytics
    label each appended day range once and concatenate
    (:mod:`repro.analysis.mobility`).
    """
    kpis = feeds.radio_kpis
    if day_range is not None:
        lo, hi = int(day_range[0]), int(day_range[1])
        mask = (kpis["day"] >= lo) & (kpis["day"] < hi)
        kpis = Frame(
            {name: kpis[name][mask] for name in kpis.column_names}
        )
    geography = feeds.geography
    code_to_index = {
        district.code: index
        for index, district in enumerate(geography.districts)
    }
    district_index = np.array(
        [code_to_index[code] for code in kpis["postcode"]], dtype=np.int64
    )
    districts = geography.districts
    county = np.array([d.county for d in districts])[district_index]
    region = np.array([d.region for d in districts])[district_index]
    area = np.array([d.area_code for d in districts])[district_index]
    oac = np.array([d.oac.value for d in districts])[district_index]
    weeks = feeds.calendar.weeks[kpis["day"]]
    out = kpis.with_column("week", weeks)
    out = out.with_column("county", county)
    out = out.with_column("region", region)
    out = out.with_column("area", area)
    return out.with_column("oac", oac)


def performance_series(
    feeds: DataFeeds,
    metric: str,
    grouping: str = "national",
    counties: tuple[str, ...] | None = None,
    restrict_county: str | None = None,
    include_national: bool = True,
    baseline_week: int = BASELINE_WEEK,
    percentile: float = 50.0,
    labeled: Frame | None = None,
) -> WeeklySeries:
    """Weekly median delta series for one KPI.

    Parameters
    ----------
    metric:
        KPI column name (see ``PERF_METRICS`` and the voice metrics).
    grouping:
        ``"national"`` — one UK-wide series; ``"region"`` — one series
        per broad region (London, North West, ...); ``"county"`` — one
        series per county (default: the five study regions);
        ``"district_area"`` — one series per postcode area (used with
        ``restrict_county`` for the London Fig 11); ``"oac"`` — one
        series per geodemographic cluster.
    counties:
        County names for the ``"county"`` grouping.
    restrict_county:
        Keep only cells of this county before grouping (Figs 11, 12).
    include_national:
        For the county grouping, add the "UK" series (Fig 8 plots both).
    percentile:
        50 reproduces the paper's medians; other values give the
        percentile bands mentioned in the text.
    labeled:
        Pre-labeled KPI frame from :func:`label_kpis` (avoids repeating
        the labelling for every metric).
    """
    if grouping not in GROUPINGS:
        raise ValueError(f"grouping must be one of {GROUPINGS}")
    frame = labeled if labeled is not None else label_kpis(feeds)
    analysis = frame.filter(frame["week"] >= baseline_week)
    if restrict_county is not None:
        analysis = analysis.filter(
            analysis["county"] == restrict_county
        )
    if metric not in analysis:
        raise KeyError(f"unknown KPI metric {metric!r}")

    values = analysis[metric]
    weeks = analysis["week"]
    series: dict[str, np.ndarray] = {}
    axis: np.ndarray | None = None

    if grouping == "national" or (
        grouping == "county" and include_national
    ):
        axis, national = weekly_median_delta(
            values, weeks, baseline_week, percentile=percentile
        )
        series["UK"] = national
    if grouping == "region":
        labels, wanted = analysis["region"], None
    elif grouping == "county":
        labels, wanted = analysis["county"], list(counties or STUDY_REGIONS)
    elif grouping == "district_area":
        labels, wanted = analysis["area"], None
    elif grouping == "oac":
        labels, wanted = analysis["oac"], None
    else:
        labels = None
    if labels is not None:
        for name, group_axis, deltas in _grouped_weekly_delta(
            values, weeks, labels, wanted, baseline_week, percentile
        ):
            axis, series[name] = group_axis, deltas
    if axis is None:
        raise ValueError("no data for the requested slice")
    return WeeklySeries(
        metric=metric, weeks=axis, values=series, percentile=percentile
    )


def _grouped_weekly_delta(
    values: np.ndarray,
    weeks: np.ndarray,
    labels: np.ndarray,
    wanted: list[str] | None,
    baseline_week: int,
    percentile: float,
) -> list[tuple[str, np.ndarray, np.ndarray]]:
    """Weekly percentile-delta series for every label in one kernel pass.

    Factorizes (label, week) to composite segment codes and computes
    every group's weekly percentile with a single sort, instead of
    rescanning the observation array once per label per week. Labels
    with no rows are skipped; ``wanted`` restricts and orders the
    output (default: all labels in sorted order).
    """
    if kernels.use_naive():
        names = wanted if wanted is not None else np.unique(labels).tolist()
        out = []
        for name in names:
            mask = labels == name
            if not mask.any():
                continue
            group_axis, deltas = weekly_median_delta(
                values[mask], weeks[mask], baseline_week,
                percentile=percentile,
            )
            out.append((str(name), group_axis, deltas))
        return out

    label_keys, label_codes = np.unique(labels, return_inverse=True)
    week_keys, week_codes = np.unique(weeks, return_inverse=True)
    composite = label_codes.astype(np.int64) * week_keys.size + week_codes
    order = np.lexsort((values, composite))
    sorted_composite = composite[order]
    boundaries = np.ones(sorted_composite.size, dtype=bool)
    boundaries[1:] = sorted_composite[1:] != sorted_composite[:-1]
    starts = np.flatnonzero(boundaries)
    ends = np.append(starts[1:], sorted_composite.size)
    cell_codes = sorted_composite[starts]
    per_cell = kernels.presorted_percentile(
        np.asarray(values, dtype=np.float64)[order], starts, ends, percentile
    )
    cell_labels = cell_codes // week_keys.size
    cell_weeks = week_keys[cell_codes % week_keys.size]

    if wanted is not None:
        positions = np.searchsorted(label_keys, wanted)
        selected = [
            (name, position)
            for name, position in zip(wanted, positions)
            if position < label_keys.size and label_keys[position] == name
        ]
    else:
        selected = [
            (str(name), position)
            for position, name in enumerate(label_keys.tolist())
        ]

    out = []
    for name, position in selected:
        cells = np.flatnonzero(cell_labels == position)
        if cells.size == 0:
            continue
        group_axis = cell_weeks[cells]
        group_values = per_cell[cells]
        in_baseline = np.flatnonzero(group_axis == baseline_week)
        if in_baseline.size == 0:
            raise ValueError(f"no observations in week {baseline_week}")
        baseline_value = float(group_values[in_baseline[0]])
        if baseline_value == 0:
            raise ValueError("baseline value is zero")
        deltas = (group_values / baseline_value - 1.0) * 100.0
        out.append((str(name), group_axis, deltas))
    return out
