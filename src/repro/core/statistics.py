"""Aggregated mobility statistics: per-user-day metric series (§2.3).

The paper computes, for every user and every day, the time spent on
each visited tower (keeping the top-20 towers), then the entropy and
radius of gyration, then aggregates. :func:`compute_daily_metrics` does
exactly that over the whole study window, vectorized per day.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import mobility_entropy, radius_of_gyration
from repro.simulation.feeds import DataFeeds

__all__ = ["MobilityDailyMetrics", "compute_daily_metrics", "top_tower_filter"]


@dataclass
class MobilityDailyMetrics:
    """Per-user per-day mobility metrics.

    ``entropy`` and ``gyration_km`` are (num_days × num_users) float32
    matrices.
    """

    user_ids: np.ndarray
    entropy: np.ndarray
    gyration_km: np.ndarray

    @property
    def num_days(self) -> int:
        return int(self.entropy.shape[0])

    @property
    def num_users(self) -> int:
        return int(self.entropy.shape[1])

    def daily_mean(self, metric: str) -> np.ndarray:
        """Across-user mean per day for ``metric`` (entropy/gyration)."""
        return self._matrix(metric).mean(axis=1)

    def daily_mean_subset(self, metric: str, mask: np.ndarray) -> np.ndarray:
        """Across-user mean per day over a user subset."""
        return self._matrix(metric)[:, mask].mean(axis=1)

    def _matrix(self, metric: str) -> np.ndarray:
        if metric == "entropy":
            return self.entropy
        if metric == "gyration":
            return self.gyration_km
        raise KeyError(f"unknown metric {metric!r}")


def top_tower_filter(dwell: np.ndarray, top_towers: int) -> np.ndarray:
    """Zero all but each row's ``top_towers`` largest dwell entries.

    The paper keeps the top-20 towers per user (§2.3). With more anchor
    towers than the cut-off this selects the most-visited ones; with
    fewer it is the identity. The result is always a fresh array —
    never a view of or alias to ``dwell`` — so callers may mutate it
    freely regardless of which branch was taken.
    """
    if top_towers <= 0:
        raise ValueError("top_towers must be positive")
    rows, k = dwell.shape
    if k <= top_towers:
        return dwell.copy()
    # Indices of the (k - top) smallest entries per row → zeroed.
    cut = k - top_towers
    smallest = np.argpartition(dwell, cut - 1, axis=1)[:, :cut]
    out = dwell.copy()
    np.put_along_axis(out, smallest, 0.0, axis=1)
    return out


def compute_daily_metrics(
    feeds: DataFeeds,
    gyration_mode: str = "weighted",
    top_towers: int = 20,
) -> MobilityDailyMetrics:
    """Compute entropy and gyration for every user and study day."""
    mobility = feeds.mobility
    site_lats, site_lons = feeds.site_locations()
    anchor_sites = mobility.anchor_sites
    lats = site_lats[anchor_sites]
    lons = site_lons[anchor_sites]

    num_days = mobility.num_days
    num_users = mobility.num_users
    entropy = np.empty((num_days, num_users), dtype=np.float32)
    gyration = np.empty((num_days, num_users), dtype=np.float32)
    for day in range(num_days):
        dwell = top_tower_filter(
            mobility.dwell(day).astype(np.float64), top_towers
        )
        entropy[day] = mobility_entropy(dwell, anchor_sites)
        gyration[day] = radius_of_gyration(
            dwell, lats, lons, mode=gyration_mode
        )
    return MobilityDailyMetrics(
        user_ids=mobility.user_ids,
        entropy=entropy,
        gyration_km=gyration,
    )
