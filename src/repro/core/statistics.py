"""Aggregated mobility statistics: per-user-day metric series (§2.3).

The paper computes, for every user and every day, the time spent on
each visited tower (keeping the top-20 towers), then the entropy and
radius of gyration, then aggregates. :func:`compute_daily_metrics` does
exactly that over the whole study window.

The hot path is *batched*: instead of one kernel call per day, several
days are flattened into a single ``(days × users, K)`` matrix and fed
through the row-vectorized :func:`~repro.core.metrics.mobility_entropy`
and :func:`~repro.core.metrics.radius_of_gyration` kernels in one call.
Both kernels are strictly row-independent, so the batched results are
bitwise identical to the historical per-day loop — which is kept,
verbatim, behind ``REPRO_ANALYSIS_NAIVE=1`` as the differential oracle
(the same pattern as ``REPRO_FRAMES_NAIVE`` for the frames kernels).
The chunk size is capped so the flattened float64 work buffer stays
small regardless of the study scale; ``batch_days`` overrides it.

A lazily loaded run (``load_feeds(..., lazy=True)``) hands this module
a :class:`~repro.io.columnar.ShardedMobilityFeed`; the computation then
*streams* shard by shard straight off the memory-mapped partition —
peak memory is one shard × one day batch, independent of the
population, and the same row independence keeps the scattered results
bitwise identical to the in-memory path.  ``REPRO_STORE_NAIVE=1``
forces full-population assembly instead (the streaming path's
differential oracle).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.core.metrics import mobility_entropy, radius_of_gyration
from repro.simulation.feeds import DataFeeds

__all__ = [
    "MobilityDailyMetrics",
    "compute_daily_metrics",
    "shard_metric_blocks",
    "top_tower_filter",
]

#: Peak size of the flattened float64 dwell buffer a batched
#: :func:`compute_daily_metrics` call materializes at once.  The three
#: companion matrices (sites, lats, lons) are tiled to the same shape,
#: so the true peak is ~4x this figure.  Deliberately last-level-cache
#: sized: the kernels stream the chunk several times, and measured
#: sweeps show large flat buffers losing to cache-resident ones well
#: before memory pressure is a concern — while days with few users
#: still collapse into one call, which is where the per-call numpy
#: overhead actually dominates.
_BATCH_TARGET_BYTES = 1 * 1024 * 1024

#: Minimum automatic batch size worth flattening for.  When fewer than
#: this many days fit the cache budget, a single day is already a large
#: kernel call — the per-call numpy overhead the batching amortizes is
#: negligible, and the flatten/tile work makes the batch path a
#: measured ~0.8–0.9x *loss* (see ``benchmarks/results/analysis.json``).
#: Small populations, where batching wins up to ~3x, stay batched.
_MIN_AUTO_BATCH_DAYS = 16


@dataclass
class MobilityDailyMetrics:
    """Per-user per-day mobility metrics.

    ``entropy`` and ``gyration_km`` are (num_days × num_users) float32
    matrices.
    """

    user_ids: np.ndarray
    entropy: np.ndarray
    gyration_km: np.ndarray

    @property
    def num_days(self) -> int:
        return int(self.entropy.shape[0])

    @property
    def num_users(self) -> int:
        return int(self.entropy.shape[1])

    def daily_mean(self, metric: str) -> np.ndarray:
        """Across-user mean per day for ``metric`` (entropy/gyration).

        With no users at all the mean is undefined: the result is NaN
        for every day (explicitly — no RuntimeWarning is emitted).
        """
        return self._masked_mean(self._matrix(metric))

    def daily_mean_subset(self, metric: str, mask: np.ndarray) -> np.ndarray:
        """Across-user mean per day over a user subset.

        A mask selecting zero users yields NaN per day, silently —
        callers that filter empty groups up front keep their behavior,
        and direct callers no longer trip numpy's mean-of-empty-slice
        RuntimeWarning.
        """
        return self._masked_mean(self._matrix(metric)[:, mask])

    @staticmethod
    def _masked_mean(matrix: np.ndarray) -> np.ndarray:
        if matrix.shape[1] == 0:
            return np.full(matrix.shape[0], np.nan, dtype=matrix.dtype)
        return matrix.mean(axis=1)

    def _matrix(self, metric: str) -> np.ndarray:
        if metric == "entropy":
            return self.entropy
        if metric == "gyration":
            return self.gyration_km
        raise KeyError(f"unknown metric {metric!r}")


def top_tower_filter(
    dwell: np.ndarray, top_towers: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Zero all but each row's ``top_towers`` largest dwell entries.

    The paper keeps the top-20 towers per user (§2.3). With more anchor
    towers than the cut-off this selects the most-visited ones; with
    fewer it is the identity.

    Without ``out`` the result is always a fresh array — never a view
    of or alias to ``dwell`` — so callers may mutate it freely
    regardless of which branch was taken.  With ``out`` (same shape as
    ``dwell``; any float dtype ``dwell`` safely casts to) the values
    are copied into the buffer and filtered in place, which lets the
    daily-metrics loop pay one materialization per day instead of an
    ``astype`` copy followed by an internal one.  ``out is dwell`` is
    allowed and filters fully in place.
    """
    if top_towers <= 0:
        raise ValueError("top_towers must be positive")
    rows, k = dwell.shape
    if out is None:
        out = dwell.copy()
    else:
        if out.shape != dwell.shape:
            raise ValueError(
                f"out shape {out.shape} must match dwell shape {dwell.shape}"
            )
        if out is not dwell:
            np.copyto(out, dwell, casting="same_kind")
    if k <= top_towers:
        return out
    # Indices of the (k - top) smallest entries per row → zeroed.
    cut = k - top_towers
    smallest = np.argpartition(out, cut - 1, axis=1)[:, :cut]
    np.put_along_axis(out, smallest, 0.0, axis=1)
    return out


def _normalize_day_range(
    day_range: tuple[int, int] | None, num_days: int
) -> tuple[int, int]:
    if day_range is None:
        return 0, num_days
    lo, hi = int(day_range[0]), int(day_range[1])
    if not 0 <= lo <= hi <= num_days:
        raise ValueError(
            f"day_range ({lo}, {hi}) is not within the "
            f"{num_days}-day feed"
        )
    return lo, hi


def compute_daily_metrics(
    feeds: DataFeeds,
    gyration_mode: str = "weighted",
    top_towers: int = 20,
    batch_days: int | None = None,
    day_range: tuple[int, int] | None = None,
    workers: int | None = None,
) -> MobilityDailyMetrics:
    """Compute entropy and gyration for every user and study day.

    ``batch_days`` sets how many days are flattened into one kernel
    call (``1`` degenerates to a day-at-a-time loop).  Left unset, the
    batch is sized to the cache budget — and if fewer than
    ``_MIN_AUTO_BATCH_DAYS`` days fit, the population is large enough
    that batching is a measured loss and the per-day loop serves the
    call instead.  All batch sizes — and the historical per-day loop
    selected by ``REPRO_ANALYSIS_NAIVE=1`` — produce bitwise-identical
    results.

    ``day_range`` restricts the result to a ``[start, stop)`` window of
    absolute day indices; row ``i`` of the matrices is then day
    ``start + i``.  Every day is computed independently, so the window
    equals the same rows of a whole-feed call bitwise — this is what
    lets the live-run analytics compute only the appended days and
    concatenate (:mod:`repro.analysis.mobility`).

    ``workers`` (> 1) fans the per-shard streaming work across a
    process pool (:mod:`repro.analysis.parallel`) when the feed backs
    onto a committed columnar run; each worker maps only its shard's
    files and the partial blocks merge associatively, so the result is
    bitwise identical for every worker count.  ``None`` stays serial;
    ``REPRO_ANALYSIS_SERIAL=1`` forces the sequential walk regardless.
    """
    if os.environ.get("REPRO_ANALYSIS_NAIVE") == "1":
        return _compute_daily_metrics_loop(
            feeds, gyration_mode, top_towers, day_range
        )

    mobility = feeds.mobility
    shards = getattr(mobility, "shards", None)
    if shards is not None and os.environ.get("REPRO_STORE_NAIVE") != "1":
        from repro.analysis import parallel as _parallel

        if (
            workers is not None
            and _parallel.resolve_workers(workers) > 1
            and not _parallel.use_serial()
        ):
            plan = _parallel.plan_for(feeds)
            if plan is not None:
                return _parallel.parallel_daily_metrics(
                    feeds,
                    plan,
                    gyration_mode=gyration_mode,
                    top_towers=top_towers,
                    batch_days=batch_days,
                    day_range=day_range,
                    workers=_parallel.resolve_workers(workers),
                )
        # Columnar run opened lazily: stream it shard by shard instead
        # of assembling full-population day matrices.
        return _compute_daily_metrics_stream(
            feeds, gyration_mode, top_towers, batch_days, day_range
        )
    site_lats, site_lons = feeds.site_locations()
    anchor_sites = mobility.anchor_sites
    lats = site_lats[anchor_sites]
    lons = site_lons[anchor_sites]

    day_lo, day_hi = _normalize_day_range(day_range, mobility.num_days)
    num_days = day_hi - day_lo
    num_users = mobility.num_users
    entropy = np.empty((num_days, num_users), dtype=np.float32)
    gyration = np.empty((num_days, num_users), dtype=np.float32)
    if num_days == 0 or num_users == 0:
        return MobilityDailyMetrics(
            user_ids=mobility.user_ids,
            entropy=entropy,
            gyration_km=gyration,
        )

    k = anchor_sites.shape[1]
    if batch_days is None:
        per_day = max(num_users * k * 8, 1)
        batch_days = max(1, _BATCH_TARGET_BYTES // per_day)
        if batch_days < _MIN_AUTO_BATCH_DAYS:
            # Large population: each day is already a big kernel call,
            # so flattening only adds copy/tile traffic.  The per-day
            # loop is bitwise identical and measured faster here.
            return _compute_daily_metrics_loop(
                feeds, gyration_mode, top_towers, day_range
            )
    batch_days = max(1, min(int(batch_days), num_days))

    # One flattened work buffer, reused across chunks; the companion
    # matrices tile once to the largest chunk and are sliced after.
    buffer = np.empty((batch_days * num_users, k), dtype=np.float64)
    tiled_sites = np.tile(anchor_sites, (batch_days, 1))
    tiled_lats = np.tile(lats, (batch_days, 1))
    tiled_lons = np.tile(lons, (batch_days, 1))

    for start in range(day_lo, day_hi, batch_days):
        stop = min(start + batch_days, day_hi)
        rows = (stop - start) * num_users
        chunk = buffer[:rows]
        for offset, day in enumerate(range(start, stop)):
            np.copyto(
                chunk[offset * num_users:(offset + 1) * num_users],
                mobility.dwell(day),
                casting="same_kind",
            )
        top_tower_filter(chunk, top_towers, out=chunk)
        entropy[start - day_lo:stop - day_lo] = mobility_entropy(
            chunk, tiled_sites[:rows]
        ).reshape(stop - start, num_users)
        gyration[start - day_lo:stop - day_lo] = radius_of_gyration(
            chunk,
            tiled_lats[:rows],
            tiled_lons[:rows],
            mode=gyration_mode,
        ).reshape(stop - start, num_users)
    return MobilityDailyMetrics(
        user_ids=mobility.user_ids,
        entropy=entropy,
        gyration_km=gyration,
    )


def _compute_daily_metrics_stream(
    feeds: DataFeeds,
    gyration_mode: str,
    top_towers: int,
    batch_days: int | None,
    day_range: tuple[int, int] | None = None,
) -> MobilityDailyMetrics:
    """Shard-streaming metrics over a lazily mapped columnar run.

    One shard at a time, a day batch of that shard's dwell rows is read
    off the memory map into the float64 work buffer, filtered and fed
    through the kernels, and the results scattered into the output
    matrices at the shard's population rows.  Both kernels are strictly
    row-independent and the float64→float32 store is elementwise, so
    the result is bitwise identical to the in-memory batch path and the
    per-day loop — peak memory is ``O(shard × batch)`` instead of
    ``O(population × days)``.
    """
    mobility = feeds.mobility
    site_lats, site_lons = feeds.site_locations()
    day_lo, day_hi = _normalize_day_range(day_range, mobility.num_days)
    num_days = day_hi - day_lo
    num_users = mobility.num_users
    entropy = np.empty((num_days, num_users), dtype=np.float32)
    gyration = np.empty((num_days, num_users), dtype=np.float32)
    metrics = MobilityDailyMetrics(
        user_ids=mobility.user_ids,
        entropy=entropy,
        gyration_km=gyration,
    )
    if num_days == 0 or num_users == 0:
        return metrics

    for shard in mobility.shards:
        if shard.num_rows == 0:
            continue
        telemetry.count("store.shards_streamed", 1)
        entropy_block, gyration_block = shard_metric_blocks(
            shard,
            site_lats,
            site_lons,
            gyration_mode=gyration_mode,
            top_towers=top_towers,
            batch_days=batch_days,
            day_lo=day_lo,
            day_hi=day_hi,
        )
        entropy[:, shard.rows] = entropy_block
        gyration[:, shard.rows] = gyration_block
    return metrics


def shard_metric_blocks(
    shard,
    site_lats: np.ndarray,
    site_lons: np.ndarray,
    *,
    gyration_mode: str,
    top_towers: int,
    batch_days: int | None,
    day_lo: int,
    day_hi: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Entropy/gyration blocks of one shard: ``(num_days, rows)`` each.

    The single per-shard kernel shared by the serial streaming walk and
    the process-pool workers of :mod:`repro.analysis.parallel` — both
    paths call exactly this function, so per-shard partials are bitwise
    identical by construction and the only difference is where the
    scatter into the population-wide matrices happens.

    Dwell days are read through :func:`repro.io.columnar.window_days`:
    each chunk window maps fresh and is released when consumed, keeping
    the walk's resident set bounded by one window (the persistent shard
    maps are never touched here).
    """
    from repro.io.columnar import window_days

    rows = shard.num_rows
    num_days = day_hi - day_lo
    anchor_sites = shard.anchor_sites
    lats = site_lats[anchor_sites]
    lons = site_lons[anchor_sites]
    k = anchor_sites.shape[1]
    entropy = np.empty((num_days, rows), dtype=np.float32)
    gyration = np.empty((num_days, rows), dtype=np.float32)
    if batch_days is None:
        per_day = max(rows * k * 8, 1)
        chunk_days = max(1, _BATCH_TARGET_BYTES // per_day)
        if chunk_days < _MIN_AUTO_BATCH_DAYS:
            # Large shard: one day is already a big kernel call
            # (same measured trade-off as the in-memory path).
            chunk_days = 1
    else:
        chunk_days = batch_days
    chunk_days = max(1, min(int(chunk_days), max(num_days, 1)))

    buffer = np.empty((chunk_days * rows, k), dtype=np.float64)
    tiled_sites = np.tile(anchor_sites, (chunk_days, 1))
    tiled_lats = np.tile(lats, (chunk_days, 1))
    tiled_lons = np.tile(lons, (chunk_days, 1))
    for start in range(day_lo, day_hi, chunk_days):
        stop = min(start + chunk_days, day_hi)
        count = (stop - start) * rows
        chunk = buffer[:count]
        window = window_days(shard, "daily_dwell", start, stop)
        for offset in range(stop - start):
            np.copyto(
                chunk[offset * rows:(offset + 1) * rows],
                window[offset],
                casting="same_kind",
            )
        del window
        top_tower_filter(chunk, top_towers, out=chunk)
        entropy[start - day_lo:stop - day_lo] = mobility_entropy(
            chunk, tiled_sites[:count]
        ).reshape(stop - start, rows)
        gyration[start - day_lo:stop - day_lo] = radius_of_gyration(
            chunk,
            tiled_lats[:count],
            tiled_lons[:count],
            mode=gyration_mode,
        ).reshape(stop - start, rows)
    return entropy, gyration


def _compute_daily_metrics_loop(
    feeds: DataFeeds,
    gyration_mode: str,
    top_towers: int,
    day_range: tuple[int, int] | None = None,
) -> MobilityDailyMetrics:
    """The historical day-at-a-time path, kept as the differential oracle."""
    mobility = feeds.mobility
    site_lats, site_lons = feeds.site_locations()
    anchor_sites = mobility.anchor_sites
    lats = site_lats[anchor_sites]
    lons = site_lons[anchor_sites]

    day_lo, day_hi = _normalize_day_range(day_range, mobility.num_days)
    num_days = day_hi - day_lo
    num_users = mobility.num_users
    entropy = np.empty((num_days, num_users), dtype=np.float32)
    gyration = np.empty((num_days, num_users), dtype=np.float32)
    for day in range(day_lo, day_hi):
        dwell = top_tower_filter(
            mobility.dwell(day).astype(np.float64), top_towers
        )
        entropy[day - day_lo] = mobility_entropy(dwell, anchor_sites)
        gyration[day - day_lo] = radius_of_gyration(
            dwell, lats, lons, mode=gyration_mode
        )
    return MobilityDailyMetrics(
        user_ids=mobility.user_ids,
        entropy=entropy,
        gyration_km=gyration,
    )
