"""Sessionization: raw signalling events → per-tower dwell times.

The paper "associate[s] each (anonymized) user to a radio tower
throughout the time they are connected" (§2.3) from passive control-
plane captures. :func:`sessionize_segments` rebuilds that association
from an event feed as explicit attribution segments: within a user's
day, the device is attributed to the tower of its most recent event
until the next event; the final segment extends to end of day.
:func:`sessionize_events` reduces the segments to per-(user, tower)
dwell seconds.

This is the measurement path of the *event-mode* pipeline; the
dwell-mode pipeline gets the same quantities directly from the
simulator. A consistency test asserts they agree.

At scale the day's event feed is too large to sessionize in one piece;
:func:`sessionize_segments_stream` / :func:`sessionize_events_stream`
process an iterable of *user-partitioned* chunks (each user's events
wholly inside one chunk — the engine's shard partition satisfies this
by construction) one at a time, then merge with a stable sort on
``user_id``.  Because every function here is per-user (segment chains
never cross users, dwell sums group on ``user_id`` first) and each
chunk result is already in the whole-feed order *within* its users,
the merged output is bitwise identical to sessionizing the
concatenated feed — the PR 1 associative-merge discipline applied to
the measurement path.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro import telemetry
from repro.frames import Frame

__all__ = [
    "sessionize_events",
    "sessionize_events_stream",
    "sessionize_segments",
    "sessionize_segments_stream",
]

DAY_SECONDS = 86_400.0


def _empty_segments() -> Frame:
    return Frame(
        {
            "user_id": np.empty(0, dtype=np.int64),
            "site_id": np.empty(0, dtype=np.int64),
            "start_s": np.empty(0, dtype=np.float64),
            "end_s": np.empty(0, dtype=np.float64),
        }
    )


@telemetry.timed("sessionize_segments")
def sessionize_segments(
    events: Frame, day_end_s: float = DAY_SECONDS
) -> Frame:
    """Attribute the observation window to towers, one segment per event.

    Parameters
    ----------
    events:
        Frame with columns ``user_id``, ``site_id``, ``timestamp_s``
        (seconds since midnight). Other columns are ignored. Events need
        not be sorted.
    day_end_s:
        Close the final open segment of each user at this timestamp.

    Returns
    -------
    Frame with columns ``user_id``, ``site_id``, ``start_s``, ``end_s``,
    sorted by ``(user_id, start_s, site_id)`` — one row per event. For
    each user the segments chain without gaps or overlaps from the
    user's first event to ``day_end_s``: each segment ends where the
    next begins, so they partition the observed window. Simultaneous
    events yield zero-length segments (``end_s == start_s``) for all
    but the last, which carries the attribution forward.
    """
    if len(events) == 0:
        return _empty_segments()
    # Tie-break simultaneous events on site id so attribution is
    # deterministic regardless of feed ordering.
    ordered = events.sort_by(["user_id", "timestamp_s", "site_id"])
    users = ordered["user_id"]
    sites = ordered["site_id"]
    times = ordered["timestamp_s"].astype(np.float64)

    count = len(ordered)
    end = np.empty(count, dtype=np.float64)
    end[:-1] = times[1:]
    end[-1] = day_end_s
    last_of_user = np.ones(count, dtype=bool)
    last_of_user[:-1] = users[:-1] != users[1:]
    end[last_of_user] = day_end_s
    # An event past day_end_s closes immediately (zero-length segment),
    # matching the historical clamp of negative dwell to zero.
    end = np.maximum(end, times)
    return Frame(
        {
            "user_id": users,
            "site_id": sites,
            "start_s": times,
            "end_s": end,
        }
    )


@telemetry.timed("sessionize_events")
def sessionize_events(events: Frame, day_end_s: float = DAY_SECONDS) -> Frame:
    """Reduce one day's event feed to per-(user, tower) dwell seconds.

    Parameters
    ----------
    events:
        Frame with columns ``user_id``, ``site_id``, ``timestamp_s``
        (seconds since midnight). Other columns are ignored. Events need
        not be sorted.
    day_end_s:
        Close the final open segment of each user at this timestamp.

    Returns
    -------
    Frame with columns ``user_id``, ``site_id``, ``dwell_s`` — one row
    per (user, tower) with positive dwell.
    """
    segments = sessionize_segments(events, day_end_s=day_end_s)
    if len(segments) == 0:
        return Frame(
            {
                "user_id": np.empty(0, dtype=np.int64),
                "site_id": np.empty(0, dtype=np.int64),
                "dwell_s": np.empty(0, dtype=np.float64),
            }
        )
    # Aggregate per (user, site).
    keyed = Frame(
        {
            "user_id": segments["user_id"],
            "site_id": segments["site_id"],
            "dwell_s": segments["end_s"] - segments["start_s"],
        }
    )
    from repro.frames import group_by

    out = group_by(keyed, ["user_id", "site_id"]).agg(
        dwell_s=("dwell_s", "sum")
    )
    return out.filter(out["dwell_s"] > 0)


def _merge_user_partitioned(
    pieces: list[Frame], empty: Frame
) -> Frame:
    """Concatenate per-chunk results and restore whole-feed order.

    Each piece is already sorted in the whole-feed output order within
    its own users, and no user spans two pieces, so one *stable* sort
    on ``user_id`` alone reproduces the exact row order (hence the
    exact bytes) of the unchunked computation.
    """
    pieces = [piece for piece in pieces if len(piece)]
    if not pieces:
        return empty
    if len(pieces) == 1:
        return pieces[0]
    from repro.frames import concat

    return concat(pieces).sort_by("user_id")


@telemetry.timed("sessionize_segments_stream")
def sessionize_segments_stream(
    chunks: Iterable[Frame], day_end_s: float = DAY_SECONDS
) -> Frame:
    """:func:`sessionize_segments` over user-partitioned event chunks.

    ``chunks`` yields event frames with no user appearing in more than
    one chunk (e.g. one frame per engine shard).  Chunks are
    sessionized one at a time — peak memory is the largest chunk, not
    the whole feed — and merged by a stable ``user_id`` sort; the
    result is bitwise identical to sessionizing the concatenated feed.
    """
    pieces = [
        sessionize_segments(chunk, day_end_s=day_end_s)
        for chunk in chunks
    ]
    return _merge_user_partitioned(pieces, _empty_segments())


@telemetry.timed("sessionize_events_stream")
def sessionize_events_stream(
    chunks: Iterable[Frame], day_end_s: float = DAY_SECONDS
) -> Frame:
    """:func:`sessionize_events` over user-partitioned event chunks.

    Same contract as :func:`sessionize_segments_stream`: each chunk is
    reduced independently (all of a user's rows are inside one chunk,
    so per-(user, tower) dwell sums see the same addends in the same
    order), then merged with a stable ``user_id`` sort — bitwise
    identical to the unchunked reduction.
    """
    pieces = [
        sessionize_events(chunk, day_end_s=day_end_s) for chunk in chunks
    ]
    empty = Frame(
        {
            "user_id": np.empty(0, dtype=np.int64),
            "site_id": np.empty(0, dtype=np.int64),
            "dwell_s": np.empty(0, dtype=np.float64),
        }
    )
    return _merge_user_partitioned(pieces, empty)
