"""Sessionization: raw signalling events → per-tower dwell times.

The paper "associate[s] each (anonymized) user to a radio tower
throughout the time they are connected" (§2.3) from passive control-
plane captures. :func:`sessionize_events` rebuilds that association
from an event feed: within a user's day, the device is attributed to
the tower of its most recent event until the next event at a different
tower; the final segment extends to end of day.

This is the measurement path of the *event-mode* pipeline; the
dwell-mode pipeline gets the same quantities directly from the
simulator. A consistency test asserts they agree.
"""

from __future__ import annotations

import numpy as np

from repro.frames import Frame

__all__ = ["sessionize_events"]

DAY_SECONDS = 86_400.0


def sessionize_events(events: Frame, day_end_s: float = DAY_SECONDS) -> Frame:
    """Reduce one day's event feed to per-(user, tower) dwell seconds.

    Parameters
    ----------
    events:
        Frame with columns ``user_id``, ``site_id``, ``timestamp_s``
        (seconds since midnight). Other columns are ignored. Events need
        not be sorted.
    day_end_s:
        Close the final open segment of each user at this timestamp.

    Returns
    -------
    Frame with columns ``user_id``, ``site_id``, ``dwell_s`` — one row
    per (user, tower) with positive dwell.
    """
    if len(events) == 0:
        return Frame(
            {
                "user_id": np.empty(0, dtype=np.int64),
                "site_id": np.empty(0, dtype=np.int64),
                "dwell_s": np.empty(0, dtype=np.float64),
            }
        )
    # Tie-break simultaneous events on site id so attribution is
    # deterministic regardless of feed ordering.
    ordered = events.sort_by(["user_id", "timestamp_s", "site_id"])
    users = ordered["user_id"]
    sites = ordered["site_id"]
    times = ordered["timestamp_s"].astype(np.float64)

    count = len(ordered)
    next_time = np.empty(count, dtype=np.float64)
    next_time[:-1] = times[1:]
    next_time[-1] = day_end_s
    last_of_user = np.ones(count, dtype=bool)
    last_of_user[:-1] = users[:-1] != users[1:]
    next_time[last_of_user] = day_end_s
    durations = np.maximum(next_time - times, 0.0)

    # Aggregate per (user, site).
    keyed = Frame(
        {"user_id": users, "site_id": sites, "dwell_s": durations}
    )
    from repro.frames import group_by

    out = group_by(keyed, ["user_id", "site_id"]).agg(
        dwell_s=("dwell_s", "sum")
    )
    return out.filter(out["dwell_s"] > 0)
