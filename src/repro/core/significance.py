"""Statistical significance of the observed shifts (scipy.stats).

The paper reads its findings off median trajectories; a reviewer's
natural question is whether the lockdown-era KPI distributions differ
*significantly* from the baseline ones, or whether the medians move
within noise. This module runs the standard non-parametric tests:

- **Mann-Whitney U** — are lockdown per-cell daily values
  stochastically smaller/larger than week-9 values?
- **Kolmogorov–Smirnov** — did the distribution's *shape* change?

Applied per KPI (and per slice via the labeled frame), these turn every
"X decreased" sentence of the paper into a test with a p-value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.frames import Frame
from repro.simulation.clock import BASELINE_WEEK

__all__ = ["ShiftTest", "distribution_shift_test", "shift_table"]


@dataclass(frozen=True)
class ShiftTest:
    """Result of comparing lockdown vs baseline distributions."""

    metric: str
    group: str
    baseline_median: float
    lockdown_median: float
    mannwhitney_p: float
    ks_p: float
    direction: str  # "down", "up" or "flat"

    @property
    def significant(self) -> bool:
        """Both tests reject at the 1% level."""
        return self.mannwhitney_p < 0.01 and self.ks_p < 0.01


def distribution_shift_test(
    labeled: Frame,
    metric: str,
    group_column: str | None = None,
    group_value: str | None = None,
    baseline_week: int = BASELINE_WEEK,
    lockdown_start_week: int = 13,
) -> ShiftTest:
    """Compare a KPI's lockdown distribution against its baseline.

    ``labeled`` is the output of
    :func:`repro.core.performance.label_kpis`. Optional
    ``group_column``/``group_value`` restrict to one slice (a county, an
    OAC cluster, a postcode area).
    """
    frame = labeled
    group = "UK"
    if group_column is not None:
        if group_value is None:
            raise ValueError("group_value required with group_column")
        frame = frame.filter(frame[group_column] == group_value)
        group = group_value
    if metric not in frame:
        raise KeyError(f"unknown metric {metric!r}")

    weeks = frame["week"]
    baseline = frame[metric][weeks == baseline_week]
    lockdown = frame[metric][weeks >= lockdown_start_week]
    if baseline.size < 8 or lockdown.size < 8:
        raise ValueError("not enough observations for the tests")

    mw = stats.mannwhitneyu(lockdown, baseline, alternative="two-sided")
    ks = stats.ks_2samp(lockdown, baseline)
    baseline_median = float(np.median(baseline))
    lockdown_median = float(np.median(lockdown))
    if lockdown_median < baseline_median * 0.98:
        direction = "down"
    elif lockdown_median > baseline_median * 1.02:
        direction = "up"
    else:
        direction = "flat"
    return ShiftTest(
        metric=metric,
        group=group,
        baseline_median=baseline_median,
        lockdown_median=lockdown_median,
        mannwhitney_p=float(mw.pvalue),
        ks_p=float(ks.pvalue),
        direction=direction,
    )


def shift_table(
    labeled: Frame, metrics: tuple[str, ...]
) -> list[ShiftTest]:
    """Run the shift test nationally for several KPIs."""
    return [
        distribution_shift_test(labeled, metric) for metric in metrics
    ]
