"""RAT time-share analysis (§2.4).

"We find that 4G is the most popular RAT, with users spending on
average 75% of the time per day connected to 4G cells." The analysis
sums connected time per RAT over the study window.
"""

from __future__ import annotations

import numpy as np

from repro.frames import Frame, group_by

__all__ = ["rat_time_share"]


def rat_time_share(rat_time: Frame) -> dict[str, float]:
    """Share of total connected time per RAT, from the RAT-time feed.

    ``rat_time`` has columns ``day``, ``rat``, ``connected_seconds``.
    """
    totals = group_by(rat_time, "rat").agg(
        seconds=("connected_seconds", "sum")
    )
    grand_total = float(totals["seconds"].sum())
    if grand_total <= 0:
        raise ValueError("RAT-time feed holds no connected time")
    return {
        str(rat): float(seconds) / grand_total
        for rat, seconds in zip(totals["rat"], totals["seconds"])
    }
