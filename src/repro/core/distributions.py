"""Distributional views of the series (percentile fans).

The paper repeatedly notes that the *distribution* of its metrics barely
changes shape: "metrics distributions have little variance in all
regions, and all percentiles are close to the median, following similar
trends" (§3.2), and that the one exception is the 90th percentile of
active DL users (§4.1). This module computes the weekly percentile fan
of any per-observation series so those statements can be verified.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baseline import weekly_median_delta
from repro.simulation.clock import BASELINE_WEEK

__all__ = ["PercentileFan", "weekly_percentile_fan"]

DEFAULT_PERCENTILES = (10.0, 25.0, 50.0, 75.0, 90.0)


@dataclass
class PercentileFan:
    """Weekly delta series at several percentiles of the distribution."""

    weeks: np.ndarray
    series: dict[float, np.ndarray]  # percentile → weekly delta %

    def band_spread(self) -> np.ndarray:
        """Per-week spread between the outermost percentiles (pp)."""
        low = min(self.series)
        high = max(self.series)
        return np.abs(self.series[high] - self.series[low])

    def trend_correlation(self) -> float:
        """Min pairwise correlation between percentile trajectories.

        Values near 1 mean all percentiles "follow similar trends"
        (the paper's observation).
        """
        keys = sorted(self.series)
        worst = 1.0
        for first in range(len(keys)):
            for second in range(first + 1, len(keys)):
                a = self.series[keys[first]]
                b = self.series[keys[second]]
                if np.std(a) == 0 or np.std(b) == 0:
                    continue
                worst = min(worst, float(np.corrcoef(a, b)[0, 1]))
        return worst


def weekly_percentile_fan(
    values: np.ndarray,
    weeks: np.ndarray,
    percentiles: tuple[float, ...] = DEFAULT_PERCENTILES,
    baseline_week: int = BASELINE_WEEK,
) -> PercentileFan:
    """Weekly delta-percentage fan of a per-observation series.

    Each percentile is normalized against its *own* week-9 value, which
    is what makes the trajectories comparable.
    """
    if not percentiles:
        raise ValueError("need at least one percentile")
    axis: np.ndarray | None = None
    series: dict[float, np.ndarray] = {}
    for percentile in percentiles:
        axis, series[float(percentile)] = weekly_median_delta(
            values, weeks, baseline_week, percentile=float(percentile)
        )
    assert axis is not None
    return PercentileFan(weeks=axis, series=series)
