"""Correlation analyses.

- **Fig 4**: daily mobility entropy change vs the cumulative number of
  confirmed SARS-CoV-2 cases. The paper's point is a *negative* result:
  mobility does not track case counts — it tracks announcements and
  orders. The reproduced statistic is the Pearson correlation over the
  pre-lockdown window, which stays weak because cases grow smoothly
  while mobility steps down at the interventions.
- **§4.4**: Pearson correlation between weekly total connected users
  and weekly downlink volume per geodemographic cluster (the paper
  reports +0.973 Cosmopolitans, +0.816 Ethnicity Central, 0.299 Rural
  Residents, −0.466 Suburbanites).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mobility_series import MobilitySeries
from repro.core.performance import WeeklySeries
from repro.simulation.feeds import DataFeeds

__all__ = [
    "EntropyCasesResult",
    "entropy_cases_correlation",
    "cluster_users_volume_correlation",
    "pearson",
]


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient of two 1-D arrays."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("pearson needs two aligned 1-D arrays")
    if x.size < 2:
        raise ValueError("need at least two points")
    if np.std(x) == 0 or np.std(y) == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


@dataclass
class EntropyCasesResult:
    """The Fig 4 scatter plus correlation statistics."""

    days: np.ndarray
    entropy_change_pct: np.ndarray
    cumulative_cases: np.ndarray
    is_weekend: np.ndarray
    pearson_r: float
    pearson_r_pre_lockdown: float
    # Correlation while cases grew but nothing was announced — the
    # cleanest version of the paper's "mobility does not track case
    # counts" claim (entropy only moves after the declaration).
    pearson_r_pre_declaration: float


def entropy_cases_correlation(
    national: dict[str, MobilitySeries], feeds: DataFeeds
) -> EntropyCasesResult:
    """Build the Fig 4 scatter from the national entropy series."""
    series = national["entropy"]
    if series.granularity != "daily":
        raise ValueError("Fig 4 needs the daily national series")
    days = series.x
    calendar = feeds.calendar
    dates = tuple(calendar.date_of(int(day)) for day in days)
    cases = feeds.epidemic.cumulative_series(dates)
    entropy_change = series.values["UK"]
    lockdown_day = calendar.day_of(calendar.key_dates.lockdown)
    declaration_day = calendar.day_of(calendar.key_dates.pandemic_declared)
    pre = days < lockdown_day
    pre_declaration = days < declaration_day
    return EntropyCasesResult(
        days=days,
        entropy_change_pct=entropy_change,
        cumulative_cases=cases,
        is_weekend=calendar.is_weekend[days],
        pearson_r=pearson(cases, entropy_change),
        pearson_r_pre_lockdown=pearson(
            cases[pre], entropy_change[pre]
        ),
        pearson_r_pre_declaration=pearson(
            cases[pre_declaration], entropy_change[pre_declaration]
        ),
    )


def cluster_users_volume_correlation(
    users_series: WeeklySeries, volume_series: WeeklySeries
) -> dict[str, float]:
    """§4.4: per-cluster correlation of connected users vs DL volume."""
    out: dict[str, float] = {}
    for cluster, users in users_series.values.items():
        volume = volume_series.values.get(cluster)
        if volume is None:
            continue
        out[cluster] = pearson(users, volume)
    return out
