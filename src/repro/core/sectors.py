"""Sector-level analysis of the radio feed (§2.1).

The paper collects KPIs "for every radio sector" before aggregating at
postcode level. The optional per-sector feed
(``SimulationConfig.keep_sector_kpis``) exposes that granularity; this
module provides the standard reductions on it:

- consistency with the cell-level feed (sectors partition the site),
- the sector imbalance index (how unevenly a site's traffic spreads
  across its sectors — the quantity RAN engineers watch when deciding
  to re-azimuth or split a cell).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frames import Frame, group_by

__all__ = ["SectorImbalance", "sector_imbalance", "site_sector_totals"]


@dataclass(frozen=True)
class SectorImbalance:
    """Distribution of the per-site dominant-sector traffic share."""

    mean_top_share: float
    p90_top_share: float
    num_sites: int

    @property
    def balanced_reference(self) -> float:
        """Top-sector share of a perfectly balanced 3-sector site."""
        return 1.0 / 3.0


def site_sector_totals(sector_kpis: Frame, metric: str) -> Frame:
    """Total ``metric`` per (site, sector) over the study window."""
    if metric not in sector_kpis:
        raise KeyError(f"unknown sector metric {metric!r}")
    return group_by(sector_kpis, ["site_id", "sector"]).agg(
        total=(metric, "sum")
    )


def sector_imbalance(
    sector_kpis: Frame, metric: str = "dl_volume_mb"
) -> SectorImbalance:
    """Compute the dominant-sector share distribution across sites."""
    totals = site_sector_totals(sector_kpis, metric)
    per_site = group_by(totals, ["site_id"]).agg(
        top=("total", "max"), all=("total", "sum")
    )
    shares = np.divide(
        per_site["top"],
        per_site["all"],
        out=np.zeros(len(per_site)),
        where=per_site["all"] > 0,
    )
    observed = shares[per_site["all"] > 0]
    if observed.size == 0:
        raise ValueError("sector feed holds no traffic")
    return SectorImbalance(
        mean_top_share=float(observed.mean()),
        p90_top_share=float(np.percentile(observed, 90)),
        num_sites=int(observed.size),
    )
