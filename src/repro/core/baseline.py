"""Week-9 baseline machinery.

Every plot in the paper is a *delta variation percentage* against the
week-9 (23 Feb – 1 Mar 2020) value of the metric:

- mobility figures use the change of the **daily average** against the
  **week-9 average** (§3);
- network-performance figures use the change of the **weekly median**
  (pooled over cells × days) against the **week-9 median** (§4).
"""

from __future__ import annotations

import numpy as np

from repro.simulation.clock import BASELINE_WEEK

__all__ = ["daily_pct_change", "weekly_median_delta", "weekly_mean"]


def daily_pct_change(
    daily_values: np.ndarray,
    weeks_of_day: np.ndarray,
    baseline_week: int = BASELINE_WEEK,
    baseline_value: float | None = None,
) -> np.ndarray:
    """Percent change of each day's value vs the baseline-week average.

    ``baseline_value`` overrides the computed baseline — used when a
    series must be normalized against the *national* week-9 average
    rather than its own (Figs 5 and 6).
    """
    daily_values = np.asarray(daily_values, dtype=np.float64)
    weeks_of_day = np.asarray(weeks_of_day)
    if daily_values.shape != weeks_of_day.shape:
        raise ValueError("daily_values and weeks_of_day must align")
    if baseline_value is None:
        in_baseline = weeks_of_day == baseline_week
        if not in_baseline.any():
            raise ValueError(f"no days in baseline week {baseline_week}")
        baseline_value = float(daily_values[in_baseline].mean())
    if baseline_value == 0:
        raise ValueError("baseline value is zero")
    return (daily_values / baseline_value - 1.0) * 100.0


def weekly_mean(
    daily_values: np.ndarray, weeks_of_day: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(weeks, mean per week) for a daily series."""
    daily_values = np.asarray(daily_values, dtype=np.float64)
    weeks = np.unique(weeks_of_day)
    means = np.array(
        [daily_values[weeks_of_day == week].mean() for week in weeks]
    )
    return weeks, means


def weekly_median_delta(
    values: np.ndarray,
    weeks: np.ndarray,
    baseline_week: int = BASELINE_WEEK,
    baseline_value: float | None = None,
    percentile: float = 50.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Weekly median (or percentile) delta percentages vs week 9.

    ``values`` are per-observation (cell × day) metric values, ``weeks``
    the ISO week of each observation. Returns (weeks, delta_pct).
    """
    values = np.asarray(values, dtype=np.float64)
    weeks = np.asarray(weeks)
    if values.shape != weeks.shape:
        raise ValueError("values and weeks must align")
    unique_weeks = np.unique(weeks)
    if baseline_value is None:
        in_baseline = weeks == baseline_week
        if not in_baseline.any():
            raise ValueError(f"no observations in week {baseline_week}")
        baseline_value = float(
            np.percentile(values[in_baseline], percentile)
        )
    if baseline_value == 0:
        raise ValueError("baseline value is zero")
    deltas = np.array(
        [
            (
                np.percentile(values[weeks == week], percentile)
                / baseline_value
                - 1.0
            )
            * 100.0
            for week in unique_weeks
        ]
    )
    return unique_weeks, deltas
