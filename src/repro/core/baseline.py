"""Week-9 baseline machinery.

Every plot in the paper is a *delta variation percentage* against the
week-9 (23 Feb – 1 Mar 2020) value of the metric:

- mobility figures use the change of the **daily average** against the
  **week-9 average** (§3);
- network-performance figures use the change of the **weekly median**
  (pooled over cells × days) against the **week-9 median** (§4).

The weekly reductions are single-pass: one factorization of the week
column plus segment kernels (:mod:`repro.frames.kernels`), instead of
re-scanning the full observation array once per week. The original
per-week loops remain available behind ``REPRO_FRAMES_NAIVE=1`` as the
reference oracle for differential tests.
"""

from __future__ import annotations

import numpy as np

from repro.frames import kernels
from repro.simulation.clock import BASELINE_WEEK

__all__ = [
    "daily_pct_change",
    "weekly_median_delta",
    "weekly_mean",
    "weekly_mean_stack",
]


def daily_pct_change(
    daily_values: np.ndarray,
    weeks_of_day: np.ndarray,
    baseline_week: int = BASELINE_WEEK,
    baseline_value: float | None = None,
) -> np.ndarray:
    """Percent change of each day's value vs the baseline-week average.

    ``baseline_value`` overrides the computed baseline — used when a
    series must be normalized against the *national* week-9 average
    rather than its own (Figs 5 and 6).
    """
    daily_values = np.asarray(daily_values, dtype=np.float64)
    weeks_of_day = np.asarray(weeks_of_day)
    if daily_values.shape != weeks_of_day.shape:
        raise ValueError("daily_values and weeks_of_day must align")
    if baseline_value is None:
        in_baseline = weeks_of_day == baseline_week
        if not in_baseline.any():
            raise ValueError(f"no days in baseline week {baseline_week}")
        baseline_value = float(daily_values[in_baseline].mean())
    if baseline_value == 0:
        raise ValueError("baseline value is zero")
    return (daily_values / baseline_value - 1.0) * 100.0


def _week_segments(
    weeks: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(unique weeks, stable row order by week, starts, ends)."""
    unique_weeks, inverse = np.unique(weeks, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    counts = np.bincount(inverse, minlength=unique_weeks.size)
    ends = np.cumsum(counts)
    starts = ends - counts
    return unique_weeks, order, starts, ends


def weekly_mean(
    daily_values: np.ndarray, weeks_of_day: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(weeks, mean per week) for a daily series."""
    daily_values = np.asarray(daily_values, dtype=np.float64)
    weeks_of_day = np.asarray(weeks_of_day)
    if kernels.use_naive():
        weeks = np.unique(weeks_of_day)
        means = np.array(
            [daily_values[weeks_of_day == week].mean() for week in weeks]
        )
        return weeks, means
    weeks, order, starts, ends = _week_segments(weeks_of_day)
    sums = np.add.reduceat(daily_values[order], starts)
    return weeks, sums / (ends - starts)


def weekly_mean_stack(
    series: np.ndarray, weeks_of_day: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Weekly means of many aligned daily series at once.

    ``series`` is a (num_series × num_days) matrix; returns (weeks,
    (num_series × num_weeks) matrix). One ``reduceat`` replaces a
    per-series, per-week rescan of the day axis.
    """
    series = np.asarray(series, dtype=np.float64)
    weeks_of_day = np.asarray(weeks_of_day)
    if series.ndim != 2 or series.shape[1] != weeks_of_day.shape[0]:
        raise ValueError("series must be (num_series, num_days)")
    if kernels.use_naive():
        weeks = np.unique(weeks_of_day)
        means = np.stack(
            [
                np.array(
                    [row[weeks_of_day == week].mean() for week in weeks]
                )
                for row in series
            ]
        )
        return weeks, means
    weeks, order, starts, ends = _week_segments(weeks_of_day)
    sums = np.add.reduceat(series[:, order], starts, axis=1)
    return weeks, sums / (ends - starts)


def weekly_median_delta(
    values: np.ndarray,
    weeks: np.ndarray,
    baseline_week: int = BASELINE_WEEK,
    baseline_value: float | None = None,
    percentile: float = 50.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Weekly median (or percentile) delta percentages vs week 9.

    ``values`` are per-observation (cell × day) metric values, ``weeks``
    the ISO week of each observation. Returns (weeks, delta_pct).
    """
    values = np.asarray(values, dtype=np.float64)
    weeks = np.asarray(weeks)
    if values.shape != weeks.shape:
        raise ValueError("values and weeks must align")
    if kernels.use_naive():
        return _naive_weekly_median_delta(
            values, weeks, baseline_week, baseline_value, percentile
        )
    unique_weeks, order, starts, ends = _week_segments(weeks)
    sorted_values = kernels.sort_within_segments(values[order], starts, ends)
    per_week = kernels.presorted_percentile(
        sorted_values, starts, ends, percentile
    )
    if baseline_value is None:
        baseline_index = np.searchsorted(unique_weeks, baseline_week)
        if (
            baseline_index >= unique_weeks.size
            or unique_weeks[baseline_index] != baseline_week
        ):
            raise ValueError(f"no observations in week {baseline_week}")
        baseline_value = float(per_week[baseline_index])
    if baseline_value == 0:
        raise ValueError("baseline value is zero")
    deltas = (per_week / baseline_value - 1.0) * 100.0
    return unique_weeks, deltas


def _naive_weekly_median_delta(
    values: np.ndarray,
    weeks: np.ndarray,
    baseline_week: int,
    baseline_value: float | None,
    percentile: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Reference per-week rescan (the pre-kernel implementation)."""
    unique_weeks = np.unique(weeks)
    if baseline_value is None:
        in_baseline = weeks == baseline_week
        if not in_baseline.any():
            raise ValueError(f"no observations in week {baseline_week}")
        baseline_value = float(
            np.percentile(values[in_baseline], percentile)
        )
    if baseline_value == 0:
        raise ValueError("baseline value is zero")
    deltas = np.array(
        [
            (
                np.percentile(values[weeks == week], percentile)
                / baseline_value
                - 1.0
            )
            * 100.0
            for week in unique_weeks
        ]
    )
    return unique_weeks, deltas
