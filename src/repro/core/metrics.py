"""Mobility metrics: entropy (eq. 1) and radius of gyration (eq. 2).

Both metrics are computed per user per day from the time spent attached
to each visited cell tower (§2.3):

- **Temporal-uncorrelated entropy** characterizes the heterogeneity of
  visitation patterns: ``e = −Σ_j p(j) log p(j)`` where ``p(j)`` is the
  fraction of the (observed) time spent at the j-th visited tower.
- **Radius of gyration** measures how far from the centre of mass the
  user's visits spread. The paper prints

      g = sqrt( 1/N Σ_j (t_j l_j − l_cm)² ),  l_cm = 1/N Σ_j t_j l_j

  which is dimensionally inconsistent as written (time × location); the
  standard literature form (refs [2, 17] of the paper) is the
  *time-weighted* rms distance

      g = sqrt( Σ_j w_j ‖l_j − l_cm‖² ),  w_j = t_j / Σ t_j,
      l_cm = Σ_j w_j l_j.

  Both are implemented (``mode="weighted"`` — the default used for all
  figures — and ``mode="paper"``, the literal formula with t in
  day-fractions); the gyration ablation benchmark compares them.

Inputs are vectorized: ``dwell_s`` is an ``(num_rows, K)`` matrix of
seconds per anchor tower and ``sites`` the matching tower ids. Several
anchors may point at the same physical tower; entropy merges them
(``p(j)`` is per *tower*), whereas gyration is invariant to the split.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mobility_entropy", "radius_of_gyration"]


def _validate(dwell_s: np.ndarray, companion: np.ndarray, name: str) -> None:
    if dwell_s.ndim != 2:
        raise ValueError("dwell_s must be 2-D (rows × anchors)")
    if companion.shape != dwell_s.shape:
        raise ValueError(f"{name} must match dwell_s shape {dwell_s.shape}")
    if np.any(dwell_s < 0):
        raise ValueError("dwell times cannot be negative")


def mobility_entropy(dwell_s: np.ndarray, sites: np.ndarray) -> np.ndarray:
    """Temporal-uncorrelated entropy per row (paper eq. 1), in nats.

    Rows with zero total dwell get entropy 0 (an unobserved user has a
    degenerate visitation distribution).

    >>> import numpy as np
    >>> dwell = np.array([[43200.0, 43200.0]])
    >>> towers = np.array([[1, 2]])
    >>> float(np.round(mobility_entropy(dwell, towers)[0], 4))
    0.6931
    """
    dwell_s = np.asarray(dwell_s, dtype=np.float64)
    sites = np.asarray(sites)
    _validate(dwell_s, sites, "sites")
    rows, k = dwell_s.shape
    if rows == 0:
        return np.empty(0)

    # Merge anchors that share a physical tower: sort each row by tower
    # id and segment-sum equal runs, on the flattened array.
    order = np.argsort(sites, axis=1, kind="stable")
    sites_sorted = np.take_along_axis(sites, order, axis=1)
    dwell_sorted = np.take_along_axis(dwell_s, order, axis=1)

    flat_sites = sites_sorted.ravel()
    flat_dwell = dwell_sorted.ravel()
    row_of = np.repeat(np.arange(rows), k)
    new_group = np.ones(rows * k, dtype=bool)
    same_row = row_of[1:] == row_of[:-1]
    new_group[1:] = ~(same_row & (flat_sites[1:] == flat_sites[:-1]))
    starts = np.flatnonzero(new_group)
    group_dwell = np.add.reduceat(flat_dwell, starts)
    group_row = row_of[starts]

    totals = np.bincount(group_row, weights=group_dwell, minlength=rows)
    safe_totals = np.where(totals > 0, totals, 1.0)
    p = group_dwell / safe_totals[group_row]
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(p > 0, -p * np.log(p), 0.0)
    entropy = np.bincount(group_row, weights=terms, minlength=rows)
    entropy[totals <= 0] = 0.0
    return entropy


def radius_of_gyration(
    dwell_s: np.ndarray,
    lats: np.ndarray,
    lons: np.ndarray,
    mode: str = "weighted",
) -> np.ndarray:
    """Radius of gyration per row, in km (paper eq. 2).

    Parameters
    ----------
    dwell_s:
        (rows × anchors) dwell seconds.
    lats / lons:
        Tower coordinates, same shape.
    mode:
        ``"weighted"`` — standard time-weighted rms distance (default);
        ``"paper"`` — the literal printed formula, with ``t_j``
        normalized to day fractions (the only reading that keeps the
        magnitudes km-like).

    Rows with zero total dwell get gyration 0.
    """
    dwell_s = np.asarray(dwell_s, dtype=np.float64)
    lats = np.asarray(lats, dtype=np.float64)
    lons = np.asarray(lons, dtype=np.float64)
    _validate(dwell_s, lats, "lats")
    _validate(dwell_s, lons, "lons")
    if mode not in ("weighted", "paper"):
        raise ValueError(f"unknown gyration mode {mode!r}")
    rows = dwell_s.shape[0]
    if rows == 0:
        return np.empty(0)

    totals = dwell_s.sum(axis=1)
    safe_totals = np.where(totals > 0, totals, 1.0)

    # Planar local projection (UK scale): km east/north of each row's
    # first tower; great-circle error at <300 km is negligible.
    km_per_deg_lat = 111.32
    ref_lat = lats[:, :1]
    ref_lon = lons[:, :1]
    km_per_deg_lon = km_per_deg_lat * np.cos(np.radians(ref_lat))
    x = (lons - ref_lon) * km_per_deg_lon
    y = (lats - ref_lat) * km_per_deg_lat

    if mode == "weighted":
        w = dwell_s / safe_totals[:, None]
        cx = (w * x).sum(axis=1, keepdims=True)
        cy = (w * y).sum(axis=1, keepdims=True)
        sq = (w * ((x - cx) ** 2 + (y - cy) ** 2)).sum(axis=1)
        gyration = np.sqrt(sq)
    else:
        # Literal eq. 2 with t_j as day fractions and N = number of
        # towers with positive dwell.
        t = dwell_s / 86_400.0
        visited = dwell_s > 0
        counts = np.maximum(visited.sum(axis=1), 1)
        cx = (t * x).sum(axis=1, keepdims=True) / counts[:, None]
        cy = (t * y).sum(axis=1, keepdims=True) / counts[:, None]
        sq = np.where(
            visited, (t * x - cx) ** 2 + (t * y - cy) ** 2, 0.0
        ).sum(axis=1) / counts
        gyration = np.sqrt(sq)

    gyration[totals <= 0] = 0.0
    return gyration
