"""The paper's analysis, implemented as a library.

Everything in :mod:`repro.core` is measurement-side code: it consumes
the data feeds (synthetic here, the operator's in the paper) and
produces the metrics, series, matrices and correlations behind every
figure:

- :mod:`repro.core.metrics` — per-user-day mobility metrics: the
  temporal-uncorrelated entropy (eq. 1) and the radius of gyration
  (eq. 2, in both the literal and the corrected form).
- :mod:`repro.core.sessionize` — reconstruct per-tower dwell times from
  raw signalling events (the passive-probe path).
- :mod:`repro.core.statistics` — per-user-day metric series over the
  study window (§2.3's aggregated mobility statistics).
- :mod:`repro.core.home` — nighttime home detection (§2.3).
- :mod:`repro.core.validation` — census validation of detected homes
  (Fig 2).
- :mod:`repro.core.baseline` — week-9 delta-variation machinery.
- :mod:`repro.core.mobility_series` — national/regional/cluster
  mobility series (Figs 3, 5, 6).
- :mod:`repro.core.correlation` — entropy-vs-cases (Fig 4) and
  users-vs-volume correlations (§4.4).
- :mod:`repro.core.relocation` — the Inner-London mobility matrix
  (Fig 7).
- :mod:`repro.core.performance` — network-performance weekly series
  (Figs 8, 10, 11, 12).
- :mod:`repro.core.voice_analysis` — the voice analysis (Fig 9).
- :mod:`repro.core.rat_usage` — RAT time shares (§2.4).
- :mod:`repro.core.report` — text rendering of series and tables.
- :mod:`repro.core.study` — :class:`CovidImpactStudy`, the one-stop
  driver that reproduces the entire evaluation.
"""

from repro.core.annual_context import contextualize_summary, years_of_growth
from repro.core.bins import BinMetrics, compute_bin_metrics
from repro.core.distributions import PercentileFan, weekly_percentile_fan
from repro.core.filtering import FilterReport, filter_study_events
from repro.core.metrics import mobility_entropy, radius_of_gyration
from repro.core.metrics_extra import (
    predictability_bound,
    random_entropy,
    top_location_share,
    visited_towers,
)
from repro.core.mobility_graph import build_mobility_graph, graph_summary
from repro.core.robustness import SweepResult, seed_sweep
from repro.core.significance import (
    ShiftTest,
    distribution_shift_test,
    shift_table,
)
from repro.core.sessionize import (
    sessionize_events,
    sessionize_events_stream,
    sessionize_segments,
    sessionize_segments_stream,
)
from repro.core.statistics import MobilityDailyMetrics, compute_daily_metrics
from repro.core.home import HomeDetectionResult, detect_homes
from repro.core.validation import HomeValidation, validate_against_census
from repro.core.baseline import daily_pct_change, weekly_median_delta
from repro.core.mobility_series import (
    geodemographic_mobility,
    national_mobility,
    regional_mobility,
)
from repro.core.correlation import (
    cluster_users_volume_correlation,
    entropy_cases_correlation,
)
from repro.core.relocation import RelocationMatrix, relocation_matrix
from repro.core.performance import WeeklySeries, performance_series
from repro.core.voice_analysis import voice_series
from repro.core.rat_usage import rat_time_share
from repro.core.study import CovidImpactStudy

__all__ = [
    "BinMetrics",
    "CovidImpactStudy",
    "FilterReport",
    "PercentileFan",
    "ShiftTest",
    "SweepResult",
    "build_mobility_graph",
    "compute_bin_metrics",
    "contextualize_summary",
    "distribution_shift_test",
    "filter_study_events",
    "graph_summary",
    "predictability_bound",
    "random_entropy",
    "seed_sweep",
    "shift_table",
    "top_location_share",
    "visited_towers",
    "weekly_percentile_fan",
    "years_of_growth",
    "HomeDetectionResult",
    "HomeValidation",
    "MobilityDailyMetrics",
    "RelocationMatrix",
    "WeeklySeries",
    "cluster_users_volume_correlation",
    "compute_daily_metrics",
    "daily_pct_change",
    "detect_homes",
    "entropy_cases_correlation",
    "geodemographic_mobility",
    "mobility_entropy",
    "national_mobility",
    "performance_series",
    "radius_of_gyration",
    "rat_time_share",
    "regional_mobility",
    "relocation_matrix",
    "sessionize_events",
    "sessionize_events_stream",
    "sessionize_segments",
    "sessionize_segments_stream",
    "validate_against_census",
    "voice_series",
    "weekly_median_delta",
]
