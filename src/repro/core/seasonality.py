"""Weekly-rhythm analysis: lockdown erases the weekday/weekend cycle.

Footnote 2 of the paper notes the week-9 reference has higher weekday
gyration and lower weekend gyration. That weekly rhythm is itself a
casualty of lockdown: when nobody commutes and nobody goes away for the
weekend, weekdays and weekends look alike. This module quantifies the
rhythm (the weekday−weekend gap of a daily series) per week, before and
after the order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.clock import StudyCalendar

__all__ = ["WeeklyRhythm", "weekly_rhythm"]


@dataclass
class WeeklyRhythm:
    """Weekday−weekend gap of a daily series, per ISO week."""

    weeks: np.ndarray
    weekday_mean: np.ndarray
    weekend_mean: np.ndarray

    @property
    def gap(self) -> np.ndarray:
        """Weekday mean minus weekend mean, per week."""
        return self.weekday_mean - self.weekend_mean

    def gap_at(self, week: int) -> float:
        index = np.flatnonzero(self.weeks == week)
        if index.size == 0:
            raise KeyError(f"week {week} not covered")
        return float(self.gap[index[0]])


def weekly_rhythm(
    daily_values: np.ndarray,
    days: np.ndarray,
    calendar: StudyCalendar,
) -> WeeklyRhythm:
    """Compute the weekday/weekend split of a daily series.

    ``daily_values`` aligns with ``days`` (simulation day indices).
    """
    daily_values = np.asarray(daily_values, dtype=np.float64)
    days = np.asarray(days)
    if daily_values.shape != days.shape:
        raise ValueError("daily_values and days must align")
    weeks_of_day = calendar.weeks[days]
    weekend = calendar.is_weekend[days]
    weeks = np.unique(weeks_of_day)
    weekday_mean = np.empty(weeks.size)
    weekend_mean = np.empty(weeks.size)
    for index, week in enumerate(weeks):
        in_week = weeks_of_day == week
        weekday_sel = in_week & ~weekend
        weekend_sel = in_week & weekend
        weekday_mean[index] = (
            daily_values[weekday_sel].mean()
            if weekday_sel.any()
            else np.nan
        )
        weekend_mean[index] = (
            daily_values[weekend_sel].mean()
            if weekend_sel.any()
            else np.nan
        )
    return WeeklyRhythm(
        weeks=weeks, weekday_mean=weekday_mean, weekend_mean=weekend_mean
    )
