"""Mobility metrics per 4-hour bin (§2.3).

"We then generate aggregated mobility statistics over six disjoint
4-hour bins of the day ..., and also over the entire day." The daily
pipeline (:mod:`repro.core.statistics`) covers the 24-hour window; this
module computes the per-bin variant, used to study *when* during the
day mobility collapsed (commute bins empty out, the night bins barely
change).

Requires a simulation run with ``keep_bin_dwell=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import mobility_entropy, radius_of_gyration
from repro.mobility.trajectories import NUM_BINS
from repro.simulation.feeds import DataFeeds

__all__ = ["BinMetrics", "compute_bin_metrics", "BIN_LABELS"]

BIN_LABELS = (
    "00-04", "04-08", "08-12", "12-16", "16-20", "20-24",
)


@dataclass
class BinMetrics:
    """Across-user mean metrics per (day, 4-hour bin).

    ``entropy`` and ``gyration_km`` have shape (num_days, NUM_BINS).
    """

    entropy: np.ndarray
    gyration_km: np.ndarray

    @property
    def num_days(self) -> int:
        return int(self.entropy.shape[0])

    def bin_series(self, metric: str, bin_index: int) -> np.ndarray:
        """Daily series of one bin's across-user mean."""
        if not 0 <= bin_index < NUM_BINS:
            raise IndexError(f"bin {bin_index} outside [0, {NUM_BINS})")
        if metric == "entropy":
            return self.entropy[:, bin_index]
        if metric == "gyration":
            return self.gyration_km[:, bin_index]
        raise KeyError(f"unknown metric {metric!r}")


def compute_bin_metrics(
    feeds: DataFeeds, gyration_mode: str = "weighted"
) -> BinMetrics:
    """Across-user mean entropy/gyration per (day, bin)."""
    mobility = feeds.mobility
    if mobility.bin_dwell is None:
        raise ValueError(
            "bin-level metrics need a run with keep_bin_dwell=True"
        )
    site_lats, site_lons = feeds.site_locations()
    anchors = mobility.anchor_sites
    lats = site_lats[anchors]
    lons = site_lons[anchors]

    num_days = mobility.num_days
    entropy = np.empty((num_days, NUM_BINS))
    gyration = np.empty((num_days, NUM_BINS))
    for day in range(num_days):
        bins = mobility.bin_dwell[day].astype(np.float64)
        for bin_index in range(NUM_BINS):
            dwell = bins[:, bin_index, :]
            entropy[day, bin_index] = mobility_entropy(
                dwell, anchors
            ).mean()
            gyration[day, bin_index] = radius_of_gyration(
                dwell, lats, lons, mode=gyration_mode
            ).mean()
    return BinMetrics(entropy=entropy, gyration_km=gyration)
