"""The end-to-end study driver.

:class:`CovidImpactStudy` runs (or receives) a simulation and exposes
one method per paper artifact — ``fig2()`` through ``fig12()``,
``table1()``, the §2.4 RAT shares and the §4.4 correlations — plus a
``summary()`` of every headline number and a printable ``report()``.

All results are computed lazily and cached in memory, so a study object
can be shared across figures without recomputation.  Two further layers
make repeated analysis cheap:

- **Persistent artifacts** — given an
  :class:`~repro.analysis.cache.ArtifactCache` (attached automatically
  by :meth:`repro.api.Run.study` and the CLI for persisted runs), every
  intermediate and figure payload is fetched from / stored into the
  run's content-addressed ``cache/analysis/`` store, so a second
  process never recomputes what the first already produced.  Cached and
  fresh results are bitwise identical; without a cache the cost is one
  ``None`` check per artifact.
- **Parallel fan-out** — ``summary()`` and ``report()`` compute the
  independent figure chains concurrently.  With ``workers`` > 1 on a
  persisted, cached run the chains run in *process-pool* workers
  (:func:`repro.analysis.parallel.map_figure_chains`): each worker
  rebuilds the study from the run directory and lands its artifacts in
  the shared content-addressed cache, sidestepping the GIL the
  CPU-bound figure reductions otherwise serialize behind.  Otherwise —
  or when the pool is unavailable — the chains fan out across threads
  as before.  The fan-out is skipped while telemetry is enabled,
  because span paths nest by call order and a profile interleaved
  across workers would be unreadable; results are identical every way,
  each artifact is computed exactly once.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from functools import cache, cached_property

import numpy as np

from repro import telemetry
from repro.analysis.cache import report_params, summary_params
from repro.core.correlation import (
    EntropyCasesResult,
    cluster_users_volume_correlation,
    entropy_cases_correlation,
)
from repro.core.home import HomeDetectionResult
from repro.core.mobility_series import (
    MobilitySeries,
    geodemographic_mobility,
    national_mobility,
    regional_mobility,
)
from repro.core.performance import (
    PERF_METRICS,
    WeeklySeries,
    performance_series,
)
from repro.core.relocation import RelocationMatrix, relocation_matrix
from repro.core.report import render_series_block
from repro.core.rat_usage import rat_time_share
from repro.core.statistics import MobilityDailyMetrics
from repro.core.validation import HomeValidation, validate_against_census
from repro.core.voice_analysis import VOICE_METRICS, voice_series
from repro.geo.oac import oac_table
from repro.simulation.clock import BASELINE_WEEK
from repro.simulation.config import SimulationConfig
from repro.simulation.feeds import DataFeeds

__all__ = ["CovidImpactStudy"]


class CovidImpactStudy:
    """Reproduce the paper's evaluation on a data-feeds bundle.

    Parameters
    ----------
    feeds:
        The data feeds to analyze.
    gyration_mode:
        Passed through to :func:`~repro.core.statistics.
        compute_daily_metrics`.
    cache:
        An :class:`~repro.analysis.cache.ArtifactCache` to fetch/store
        every artifact through, or ``None`` (the default) for purely
        in-memory computation.
    parallel:
        Allow ``summary()``/``report()`` to fan the independent figure
        chains out concurrently (default).  ``False`` forces the
        serial order.
    workers:
        Process-pool width for the shard-streaming kernels (metrics,
        home detection) and the figure fan-out on a persisted cached
        run.  ``None`` (default) keeps the kernels serial and the
        figure fan-out on threads; results are bitwise identical for
        every value.
    """

    def __init__(
        self,
        feeds: DataFeeds,
        gyration_mode: str = "weighted",
        *,
        cache: "object | None" = None,
        parallel: bool = True,
        workers: int | None = None,
    ) -> None:
        self._feeds = feeds
        self._gyration_mode = gyration_mode
        self._cache = cache
        self._parallel = parallel
        self._workers = workers
        # Highest fan-out level already run: 0 none, 1 summary-level
        # artifacts, 2 the full-report set.
        self._materialized = 0

    @classmethod
    def run(
        cls,
        config: SimulationConfig | None = None,
        gyration_mode: str = "weighted",
    ) -> "CovidImpactStudy":
        """Simulate with ``config`` and wrap the result in a study."""
        from repro.simulation.engine import Simulator

        feeds = Simulator(config or SimulationConfig()).run()
        return cls(feeds, gyration_mode=gyration_mode)

    @property
    def feeds(self) -> DataFeeds:
        return self._feeds

    @property
    def artifact_cache(self):
        """The attached artifact cache (``None`` when uncached)."""
        return self._cache

    def _artifact(self, name: str, params: dict, compute):
        """Route one artifact through the persistent cache, if any."""
        if self._cache is None:
            return compute()
        return self._cache.get_or_compute(name, params, compute)

    def _mobility_params(self) -> dict:
        return {"gyration_mode": self._gyration_mode}

    # -- shared intermediates ------------------------------------------------
    # Each stage runs under a telemetry span (recorded only while
    # repro.telemetry is enabled). Spans fire on first computation —
    # cached re-reads cost nothing — and nest by call stack, so the
    # phase table shows each stage under whichever artifact actually
    # triggered it.
    # The three shared intermediates compute through
    # repro.analysis.mobility: on a segmented live run their
    # whole-window keys miss after every advance (the digest map
    # changed), but the composition recomputes only the appended
    # segment — the prefix ranges are served from their own
    # segment-keyed cache entries, bitwise-identical to a from-scratch
    # recomputation.
    @cached_property
    def metrics(self) -> MobilityDailyMetrics:
        """Per-user-day entropy/gyration over the whole window."""
        from repro.analysis.mobility import incremental_daily_metrics

        with telemetry.span("metrics") as sp:
            result = self._artifact(
                "metrics",
                self._mobility_params(),
                lambda: incremental_daily_metrics(
                    self._feeds,
                    gyration_mode=self._gyration_mode,
                    cache=self._cache,
                    workers=self._workers,
                ),
            )
            sp.add(
                "user_days",
                self._feeds.num_users * self._feeds.mobility.num_days,
            )
            return result

    @cached_property
    def homes(self) -> HomeDetectionResult:
        from repro.analysis.mobility import incremental_homes

        with telemetry.span("home_detection"):
            return self._artifact(
                "homes",
                {},
                lambda: incremental_homes(
                    self._feeds, cache=self._cache, workers=self._workers
                ),
            )

    @cached_property
    def labeled_kpis(self):
        from repro.analysis.mobility import incremental_labeled_kpis

        with telemetry.span("label_kpis"):
            return self._artifact(
                "labeled_kpis",
                {},
                lambda: incremental_labeled_kpis(
                    self._feeds, cache=self._cache
                ),
            )

    # -- paper artifacts ------------------------------------------------------
    def table1(self) -> list[tuple[str, str]]:
        """Table 1: the geodemographic cluster catalog."""
        return oac_table()

    @cache
    def fig2(self) -> HomeValidation:
        """Fig 2: inferred vs census LAD populations."""
        with telemetry.span("fig2"):
            return self._artifact(
                "fig2",
                {},
                lambda: validate_against_census(self._feeds, self.homes),
            )

    @cached_property
    def _fig3(self) -> dict[str, MobilitySeries]:
        with telemetry.span("fig3"):
            return self._artifact(
                "fig3",
                self._mobility_params(),
                lambda: national_mobility(self.metrics, self._feeds),
            )

    def fig3(self) -> dict[str, MobilitySeries]:
        """Fig 3: national daily gyration/entropy change."""
        return self._fig3

    @cache
    def fig4(self) -> EntropyCasesResult:
        """Fig 4: entropy change vs cumulative confirmed cases."""
        with telemetry.span("fig4"):
            return self._artifact(
                "fig4",
                self._mobility_params(),
                lambda: entropy_cases_correlation(self._fig3, self._feeds),
            )

    @cache
    def fig5(self) -> dict[str, MobilitySeries]:
        """Fig 5: regional mobility (five high-density regions)."""
        with telemetry.span("fig5"):
            return self._artifact(
                "fig5",
                self._mobility_params(),
                lambda: regional_mobility(self.metrics, self._feeds),
            )

    @cache
    def fig6(self) -> dict[str, MobilitySeries]:
        """Fig 6: mobility per geodemographic cluster."""
        with telemetry.span("fig6"):
            return self._artifact(
                "fig6",
                self._mobility_params(),
                lambda: geodemographic_mobility(self.metrics, self._feeds),
            )

    @cache
    def fig7(self) -> RelocationMatrix:
        """Fig 7: the Inner-London relocation mobility matrix."""
        with telemetry.span("fig7"):
            return self._artifact(
                "fig7",
                {},
                lambda: relocation_matrix(self._feeds, self.homes),
            )

    @cache
    def fig8(self) -> dict[str, WeeklySeries]:
        """Fig 8: UK + regional series for every data-traffic KPI."""
        with telemetry.span("fig8"):
            return self._artifact(
                "fig8", {"percentile": 50.0}, self._fig8_fresh
            )

    def _fig8_fresh(self) -> dict[str, WeeklySeries]:
        return {
            metric: performance_series(
                self._feeds, metric, grouping="county",
                labeled=self.labeled_kpis,
            )
            for metric in PERF_METRICS
        }

    @cache
    def fig9(self) -> dict[str, WeeklySeries]:
        """Fig 9: national voice-traffic series (QCI = 1)."""
        with telemetry.span("fig9"):
            return self._artifact(
                "fig9",
                {"percentile": 50.0},
                lambda: voice_series(
                    self._feeds, labeled=self.labeled_kpis
                ),
            )

    @cache
    def fig10(self) -> dict[str, WeeklySeries]:
        """Fig 10: network performance per geodemographic cluster."""
        with telemetry.span("fig10"):
            return self._artifact(
                "fig10", {"percentile": 50.0}, self._fig10_fresh
            )

    def _fig10_fresh(self) -> dict[str, WeeklySeries]:
        return {
            metric: performance_series(
                self._feeds, metric, grouping="oac",
                labeled=self.labeled_kpis,
            )
            for metric in PERF_METRICS
        }

    @cache
    def fig11(self) -> dict[str, WeeklySeries]:
        """Fig 11: Inner-London postal-district network performance."""
        with telemetry.span("fig11"):
            return self._artifact(
                "fig11", {"percentile": 50.0}, self._fig11_fresh
            )

    def _fig11_fresh(self) -> dict[str, WeeklySeries]:
        return {
            metric: performance_series(
                self._feeds, metric, grouping="district_area",
                restrict_county="Inner London",
                labeled=self.labeled_kpis,
            )
            for metric in PERF_METRICS
        }

    @cache
    def fig12(self) -> dict[str, WeeklySeries]:
        """Fig 12: London network performance per OAC cluster."""
        with telemetry.span("fig12"):
            return self._artifact(
                "fig12", {"percentile": 50.0}, self._fig12_fresh
            )

    def _fig12_fresh(self) -> dict[str, WeeklySeries]:
        return {
            metric: performance_series(
                self._feeds, metric, grouping="oac",
                restrict_county="Inner London",
                labeled=self.labeled_kpis,
            )
            for metric in PERF_METRICS
        }

    @cache
    def rat_share(self) -> dict[str, float]:
        """§2.4: connected-time share per RAT."""
        with telemetry.span("rat_share"):
            return self._artifact(
                "rat_share",
                {},
                lambda: rat_time_share(self._feeds.rat_time),
            )

    @cache
    def cluster_correlations(self) -> dict[str, float]:
        """§4.4: users-vs-DL-volume correlation per cluster."""
        with telemetry.span("cluster_correlations"):
            def fresh() -> dict[str, float]:
                fig10 = self.fig10()
                return cluster_users_volume_correlation(
                    fig10["connected_users"], fig10["dl_volume_mb"]
                )

            return self._artifact(
                "cluster_correlations", {"percentile": 50.0}, fresh
            )

    def verdicts(self):
        """Score this run against every machine-readable paper target."""
        from repro.core.paper_targets import evaluate_summary

        return evaluate_summary(self.summary())

    def recovery_ranking(self, metric: str = "gyration"):
        """§3.2 quantified: regional recovery slopes, fastest first."""
        from repro.core.recovery import rank_recoveries

        return rank_recoveries(self.fig5()[metric])

    def weekly_rhythm(self, metric: str = "gyration"):
        """Weekday/weekend gap of the national series, per week."""
        from repro.core.seasonality import weekly_rhythm

        series = self.fig3()[metric]
        return weekly_rhythm(
            series.values["UK"], series.x, self._feeds.calendar
        )

    # -- parallel fan-out -----------------------------------------------------
    #: The independent artifact chains of the summary-level fan-out,
    #: ordered so every artifact is computed exactly once (``fig4``
    #: rides with ``fig3``, the cluster correlations with ``fig10``).
    _SUMMARY_CHAINS = (
        ("fig2",),
        ("fig3", "fig4"),
        ("fig7",),
        ("fig8",),
        ("fig9",),
        ("fig10", "cluster_correlations"),
        ("fig11",),
        ("rat_share",),
    )
    #: Chains the full report adds on top of the summary set.
    _FULL_CHAINS = (("fig5",), ("fig6",), ("fig12",))

    def _materialize_artifacts(self, full: bool) -> None:
        """Compute the independent artifact chains concurrently.

        The shared intermediates are forced first on the calling
        thread.  With explicit ``workers`` > 1 on a persisted cached
        run the chains go to a process pool
        (:func:`repro.analysis.parallel.map_figure_chains`) whose
        workers warm the shared artifact cache; otherwise — and as the
        fallback whenever that pool is unavailable — they fan out
        across threads.  Skipped entirely (falling back to the
        identical serial order) when ``parallel=False``, while
        telemetry is enabled (span paths nest by call order), or for
        the thread path on a single-CPU host.
        """
        level = 2 if full else 1
        if self._materialized >= level:
            return
        if not self._parallel or telemetry.enabled():
            return
        from repro.analysis import parallel as _parallel

        explicit = (
            self._workers is not None
            and _parallel.resolve_workers(self._workers) > 1
            and not _parallel.use_serial()
        )
        cpus = os.cpu_count() or 1
        if not explicit and cpus <= 1:
            return
        _ = (self.metrics, self.homes, self.labeled_kpis)
        chains = list(self._SUMMARY_CHAINS)
        if full:
            chains += list(self._FULL_CHAINS)
        if not explicit or not self._materialize_process(chains):
            self._materialize_threads(chains, cpus)
        self._materialized = level

    def _materialize_process(self, chains: list[tuple[str, ...]]) -> bool:
        """Run the chains in pool workers that share the on-disk cache."""
        from repro.analysis import parallel as _parallel

        directory = getattr(self._feeds, "source_directory", None)
        if self._cache is None or directory is None:
            return False
        return _parallel.map_figure_chains(
            str(directory),
            self._gyration_mode,
            chains,
            workers=_parallel.resolve_workers(self._workers),
        )

    def _materialize_threads(
        self, chains: list[tuple[str, ...]], cpus: int
    ) -> None:
        if cpus <= 1:
            return
        with ThreadPoolExecutor(
            max_workers=min(len(chains), cpus)
        ) as pool:
            futures = [
                pool.submit(
                    lambda names=chain: [
                        getattr(self, name)() for name in names
                    ]
                )
                for chain in chains
            ]
            for future in futures:
                future.result()

    # -- headline numbers -----------------------------------------------------
    @telemetry.timed("summary")
    def summary(self) -> dict[str, float]:
        """Every takeaway number of the paper, measured on this run."""
        def fresh() -> dict[str, float]:
            self._materialize_artifacts(full=False)
            return self._summary_fresh()

        return self._artifact(
            "summary", summary_params(self._gyration_mode), fresh
        )

    def _summary_fresh(self) -> dict[str, float]:
        feeds = self._feeds
        weeks_of_day = feeds.calendar.weeks[
            np.flatnonzero(feeds.calendar.weeks >= BASELINE_WEEK)
        ]
        fig3 = self.fig3()
        fig4 = self.fig4()
        fig8 = self.fig8()
        fig9 = self.fig9()
        fig10 = self.fig10()
        fig7 = self.fig7()
        validation = self.fig2()

        def weekly_avg(series: MobilitySeries, week: int) -> float:
            return series.at_week("UK", week, weeks_of_day=weeks_of_day)

        gyration = fig3["gyration"]
        entropy = fig3["entropy"]
        lockdown_gyration = min(
            weekly_avg(gyration, 13), weekly_avg(gyration, 14)
        )
        lockdown_entropy = min(
            weekly_avg(entropy, 13), weekly_avg(entropy, 14)
        )

        dl = fig8["dl_volume_mb"]
        ul = fig8["ul_volume_mb"]
        # The paper quotes the uplink range "during lockdown" (§1):
        # restrict to weeks 13+ (weeks 10–12 show the pre-lockdown
        # growth the paper reports separately).
        ul_lockdown = ul.values["UK"][ul.weeks >= 13]
        users = fig8["dl_active_users"]
        throughput = fig8["user_dl_throughput_mbps"]
        load = fig8["radio_load_pct"]
        voice_vol = fig9["voice_volume_mb"]
        dl_loss = fig9["voice_dl_loss_rate"]
        ul_loss = fig9["voice_ul_loss_rate"]

        lockdown_days = np.flatnonzero(
            feeds.calendar.weeks[fig7.days] >= 14
        )
        away = np.mean(
            [fig7.away_share(int(day)) for day in lockdown_days]
        )
        baseline_days = np.flatnonzero(
            feeds.calendar.weeks[fig7.days] == BASELINE_WEEK
        )
        away_baseline = np.mean(
            [fig7.away_share(int(day)) for day in baseline_days]
        )

        correlations = self.cluster_correlations()
        rat = self.rat_share()

        result = {
            "gyration_change_lockdown_pct": lockdown_gyration,
            "entropy_change_lockdown_pct": lockdown_entropy,
            "home_detection_rate": self.homes.detection_rate,
            "fig2_r_squared": validation.r_squared,
            "fig4_pearson_pre_lockdown": fig4.pearson_r_pre_lockdown,
            "fig4_pearson_pre_declaration": fig4.pearson_r_pre_declaration,
            "dl_volume_week10_pct": dl.at_week("UK", 10),
            "dl_volume_min_pct": dl.minimum("UK")[1],
            "dl_volume_min_week": dl.minimum("UK")[0],
            "ul_volume_lockdown_min_pct": float(ul_lockdown.min()),
            "ul_volume_lockdown_max_pct": float(ul_lockdown.max()),
            "ul_volume_week10_pct": ul.at_week("UK", 10),
            "active_users_min_pct": users.minimum("UK")[1],
            "throughput_min_pct": throughput.minimum("UK")[1],
            "radio_load_min_pct": load.minimum("UK")[1],
            "voice_volume_peak_pct": voice_vol.maximum("UK")[1],
            "voice_volume_peak_week": voice_vol.maximum("UK")[0],
            "voice_dl_loss_peak_pct": dl_loss.maximum("UK")[1],
            "voice_dl_loss_final_pct": float(dl_loss.values["UK"][-1]),
            "voice_ul_loss_min_pct": ul_loss.minimum("UK")[1],
            "inner_london_away_share_lockdown": float(away),
            "inner_london_away_share_baseline": float(away_baseline),
            "inner_london_dl_min_pct": dl.minimum("Inner London")[1],
            "outer_london_dl_min_pct": dl.minimum("Outer London")[1],
            "cosmopolitan_users_min_pct": (
                fig10["connected_users"].minimum("Cosmopolitans")[1]
            ),
            "rural_dl_min_pct": fig10["dl_volume_mb"].minimum(
                "Rural Residents"
            )[1],
            "corr_cosmopolitans": correlations.get("Cosmopolitans", 0.0),
            "corr_ethnicity_central": correlations.get(
                "Ethnicity Central", 0.0
            ),
            "corr_rural": correlations.get("Rural Residents", 0.0),
            "corr_suburbanites": correlations.get("Suburbanites", 0.0),
            "ec_dl_min_pct": self._fig11_min("EC"),
            "wc_dl_min_pct": self._fig11_min("WC"),
            "n_active_users_peak_pct": self._fig11_n_peak(),
            "rat_share_4g": rat.get("4G", 0.0),
        }
        # §4.1 / §4.2 growth framings ("rewound by one year", "seven
        # years of voice growth in days").
        from repro.core.annual_context import contextualize_summary

        result.update(contextualize_summary(result))
        return result

    def _fig11_min(self, area: str) -> float:
        series = self.fig11()["dl_volume_mb"]
        if area not in series.values:
            return float("nan")
        return series.minimum(area)[1]

    def _fig11_n_peak(self) -> float:
        """Max N-district active-user change over weeks 10–14 (§5.1)."""
        series = self.fig11()["dl_active_users"]
        if "N" not in series.values:
            return float("nan")
        mask = (series.weeks >= 10) & (series.weeks <= 14)
        return float(series.values["N"][mask].max())

    @telemetry.timed("report")
    def report(self, full: bool = False) -> str:
        """Printable study report: every figure as a text panel.

        The default report covers the national figures (3, 8, 9) plus
        the headline summary; ``full=True`` adds the Fig 2/4 scatters
        and the regional/cluster/London panels (5, 6, 10, 11, 12).
        """
        def fresh() -> str:
            self._materialize_artifacts(full=full)
            return self._report_fresh(full)

        return self._artifact(
            "report", report_params(full, self._gyration_mode), fresh
        )

    def _report_fresh(self, full: bool) -> str:
        from repro.core.baseline import weekly_mean
        from repro.core.report import scatter_plot

        blocks = []
        fig3 = self.fig3()
        weeks_of_day = self._feeds.calendar.weeks[fig3["gyration"].x]

        for metric in ("gyration", "entropy"):
            weeks, weekly = weekly_mean(
                fig3[metric].values["UK"], weeks_of_day
            )
            blocks.append(
                render_series_block(
                    f"Fig 3 — national {metric} (weekly mean of daily % change)",
                    weeks,
                    {"UK": weekly},
                )
            )
        if full:
            validation = self.fig2()
            blocks.append(
                "Fig 2 — inferred vs census LAD population "
                f"(r² = {validation.r_squared:.3f})\n"
                + scatter_plot(
                    validation.table["census_population"].astype(float),
                    validation.table["inferred_users"].astype(float),
                    x_label="census",
                    y_label="inferred users",
                )
            )
            fig4 = self.fig4()
            blocks.append(
                "Fig 4 — entropy change vs cumulative cases "
                f"(pre-declaration r = {fig4.pearson_r_pre_declaration:+.2f})\n"
                + scatter_plot(
                    fig4.cumulative_cases,
                    fig4.entropy_change_pct,
                    x_label="cumulative cases",
                    y_label="entropy change %",
                )
            )
            for fig_name, figure in (
                ("Fig 5", self.fig5()), ("Fig 6", self.fig6()),
            ):
                for metric in ("gyration", "entropy"):
                    series = figure[metric]
                    blocks.append(
                        render_series_block(
                            f"{fig_name} — {metric} "
                            "(% vs national week 9)",
                            series.x,
                            dict(sorted(series.values.items())),
                        )
                    )
        for metric, series in self.fig8().items():
            blocks.append(
                render_series_block(
                    f"Fig 8 — {metric}", series.weeks, series.values
                )
            )
        for metric, series in self.fig9().items():
            blocks.append(
                render_series_block(
                    f"Fig 9 — {metric}", series.weeks, series.values
                )
            )
        if full:
            for fig_name, figure in (
                ("Fig 10", self.fig10()),
                ("Fig 11 (Inner London)", self.fig11()),
                ("Fig 12 (London clusters)", self.fig12()),
            ):
                for metric in ("dl_volume_mb", "connected_users"):
                    series = figure[metric]
                    blocks.append(
                        render_series_block(
                            f"{fig_name} — {metric}",
                            series.weeks,
                            dict(sorted(series.values.items())),
                        )
                    )
        summary = self.summary()
        lines = ["Headline numbers", "----------------"]
        lines.extend(
            f"{key:<40} {value:>10.3f}" for key, value in summary.items()
        )
        blocks.append("\n".join(lines))
        return "\n\n".join(blocks)
