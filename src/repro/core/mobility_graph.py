"""Mobility graphs: the network-science view of the collapse.

Beyond per-user scalar metrics, the dwell data defines a *mobility
graph*: nodes are cell sites, and an edge connects two sites when some
user dwells at both on the same day (a daily co-visitation / transition
proxy — the same construction behind the paper's county-level mobility
matrix, at tower granularity). Lockdown shreds this graph: long-range
edges disappear, the mean degree collapses, and the graph decomposes
toward its home-neighbourhood core.

Built on :mod:`networkx` so standard graph metrics are available to
downstream users.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.geo.coordinates import haversine_km
from repro.simulation.feeds import DataFeeds

__all__ = ["GraphSummary", "build_mobility_graph", "graph_summary"]


@dataclass(frozen=True)
class GraphSummary:
    """Scalar descriptors of one day's mobility graph."""

    day: int
    num_nodes: int
    num_edges: int
    total_trip_weight: float
    mean_degree: float
    mean_edge_length_km: float
    largest_component_share: float


def build_mobility_graph(
    feeds: DataFeeds,
    day: int,
    presence_threshold_s: float = 900.0,
    max_pairs_per_user: int = 28,
) -> nx.Graph:
    """Build the site co-visitation graph for one day.

    Edge weight counts the users who visited both endpoints that day
    (≥ ``presence_threshold_s`` dwell at each). Every node carries
    ``postcode`` / ``county`` attributes for slicing.
    """
    mobility = feeds.mobility
    dwell = mobility.dwell(day)
    anchors = mobility.anchor_sites
    visited = dwell >= presence_threshold_s

    edge_weights: dict[tuple[int, int], int] = {}
    nodes: set[int] = set()
    num_users, num_anchors = anchors.shape
    for user in range(num_users):
        sites = np.unique(anchors[user][visited[user]])
        nodes.update(int(site) for site in sites)
        pairs = 0
        for first in range(sites.size):
            for second in range(first + 1, sites.size):
                key = (int(sites[first]), int(sites[second]))
                edge_weights[key] = edge_weights.get(key, 0) + 1
                pairs += 1
                if pairs >= max_pairs_per_user:
                    break
            if pairs >= max_pairs_per_user:
                break

    graph = nx.Graph()
    site_lats, site_lons = feeds.site_locations()
    postcodes = feeds.topology.site_postcodes
    district_of_site = feeds.topology.site_district_indices
    counties = np.array([d.county for d in feeds.geography.districts])
    for node in nodes:
        graph.add_node(
            node,
            postcode=str(postcodes[node]),
            county=str(counties[district_of_site[node]]),
            lat=float(site_lats[node]),
            lon=float(site_lons[node]),
        )
    for (left, right), weight in edge_weights.items():
        length = float(
            haversine_km(
                site_lats[left], site_lons[left],
                site_lats[right], site_lons[right],
            )
        )
        graph.add_edge(left, right, weight=weight, length_km=length)
    return graph


def graph_summary(graph: nx.Graph, day: int) -> GraphSummary:
    """Reduce a mobility graph to scalar descriptors."""
    num_nodes = graph.number_of_nodes()
    num_edges = graph.number_of_edges()
    if num_nodes == 0:
        return GraphSummary(day, 0, 0, 0.0, 0.0, 0.0, 0.0)
    degrees = [degree for __, degree in graph.degree()]
    weights = [data["weight"] for *__, data in graph.edges(data=True)]
    lengths = [data["length_km"] for *__, data in graph.edges(data=True)]
    if num_edges:
        largest = max(nx.connected_components(graph), key=len)
        largest_share = len(largest) / num_nodes
        mean_length = float(
            np.average(lengths, weights=weights)
        )
    else:
        largest_share = 1.0 / num_nodes
        mean_length = 0.0
    return GraphSummary(
        day=day,
        num_nodes=num_nodes,
        num_edges=num_edges,
        total_trip_weight=float(sum(weights)),
        mean_degree=float(np.mean(degrees)),
        mean_edge_length_km=mean_length,
        largest_component_share=float(largest_share),
    )
