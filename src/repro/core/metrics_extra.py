"""Extended mobility-metric family (paper ref [29], Song et al. 2010).

§2.3 notes there is "a variety of ways to calculate entropy in
mobility"; the paper picks the temporal-uncorrelated entropy (eq. 1).
This module implements the rest of the standard family so the choice
can be studied (the entropy-definition ablation benchmark):

- **random entropy** ``S_rand = log N`` — assumes every visited tower
  is equally likely; upper-bounds the uncorrelated entropy.
- **uncorrelated entropy** — eq. 1, re-exported for completeness.
- **visited towers** ``N`` — distinct towers with positive dwell.
- **top-location share** — fraction of observed time at the dominant
  tower (the home-detection signal in daylight form).
- **predictability bound** — Fano-style upper bound ``Π_max`` on how
  predictable a user's location is given their entropy and number of
  locations (Song et al.'s headline construction).
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import mobility_entropy

__all__ = [
    "random_entropy",
    "uncorrelated_entropy",
    "visited_towers",
    "top_location_share",
    "predictability_bound",
]

uncorrelated_entropy = mobility_entropy


def _merged_fractions(
    dwell_s: np.ndarray, sites: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-row merged tower dwell fractions.

    Returns (row index per group, group dwell, row totals).
    """
    dwell_s = np.asarray(dwell_s, dtype=np.float64)
    sites = np.asarray(sites)
    if dwell_s.shape != sites.shape or dwell_s.ndim != 2:
        raise ValueError("dwell_s and sites must be matching 2-D arrays")
    rows, k = dwell_s.shape
    order = np.argsort(sites, axis=1, kind="stable")
    sites_sorted = np.take_along_axis(sites, order, axis=1)
    dwell_sorted = np.take_along_axis(dwell_s, order, axis=1)
    flat_sites = sites_sorted.ravel()
    flat_dwell = dwell_sorted.ravel()
    row_of = np.repeat(np.arange(rows), k)
    new_group = np.ones(rows * k, dtype=bool)
    same_row = row_of[1:] == row_of[:-1]
    new_group[1:] = ~(same_row & (flat_sites[1:] == flat_sites[:-1]))
    starts = np.flatnonzero(new_group)
    group_dwell = np.add.reduceat(flat_dwell, starts)
    group_row = row_of[starts]
    totals = np.bincount(group_row, weights=group_dwell, minlength=rows)
    return group_row, group_dwell, totals


def visited_towers(dwell_s: np.ndarray, sites: np.ndarray) -> np.ndarray:
    """Distinct towers with positive dwell, per row."""
    group_row, group_dwell, __ = _merged_fractions(dwell_s, sites)
    positive = group_dwell > 0
    return np.bincount(
        group_row[positive], minlength=int(dwell_s.shape[0])
    ).astype(np.int64)


def random_entropy(dwell_s: np.ndarray, sites: np.ndarray) -> np.ndarray:
    """``log N`` over visited towers (Song et al.'s S_rand), per row."""
    counts = visited_towers(dwell_s, sites)
    out = np.zeros(counts.shape[0])
    positive = counts > 0
    out[positive] = np.log(counts[positive])
    return out


def top_location_share(
    dwell_s: np.ndarray, sites: np.ndarray
) -> np.ndarray:
    """Fraction of observed time at the dominant tower, per row."""
    group_row, group_dwell, totals = _merged_fractions(dwell_s, sites)
    rows = int(dwell_s.shape[0])
    best = np.zeros(rows)
    np.maximum.at(best, group_row, group_dwell)
    out = np.zeros(rows)
    observed = totals > 0
    out[observed] = best[observed] / totals[observed]
    return out


def predictability_bound(
    entropy: np.ndarray, num_locations: np.ndarray, tolerance: float = 1e-6
) -> np.ndarray:
    """Fano upper bound Π_max on location predictability, per element.

    Solves ``S = H(Π) + (1 − Π) log(N − 1)`` for the largest Π, with
    ``H`` the binary entropy. Rows with N ≤ 1 are fully predictable
    (Π = 1); entropies at or above ``log N`` give the uniform bound
    ``Π = 1/N``.
    """
    entropy = np.asarray(entropy, dtype=np.float64)
    counts = np.asarray(num_locations, dtype=np.float64)
    if entropy.shape != counts.shape:
        raise ValueError("entropy and num_locations must align")
    out = np.empty(entropy.shape, dtype=np.float64)
    flat_s = entropy.ravel()
    flat_n = counts.ravel()
    flat_out = out.ravel()
    for index, (s, n) in enumerate(zip(flat_s, flat_n)):
        flat_out[index] = _solve_fano(float(s), float(n), tolerance)
    return out


def _binary_entropy(p: float) -> float:
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -p * np.log(p) - (1.0 - p) * np.log(1.0 - p)


def _solve_fano(s: float, n: float, tolerance: float) -> float:
    if n <= 1.0:
        return 1.0
    max_entropy = np.log(n)
    if s <= 0.0:
        return 1.0
    if s >= max_entropy:
        return 1.0 / n

    def objective(p: float) -> float:
        return _binary_entropy(p) + (1.0 - p) * np.log(n - 1.0) - s

    # The objective decreases in p on [1/n, 1); bisect.
    low, high = 1.0 / n, 1.0 - 1e-12
    if objective(low) < 0:
        return 1.0 / n
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        if objective(mid) > 0:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)
