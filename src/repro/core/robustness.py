"""Seed-sweep robustness analysis.

A single synthetic run is one draw of a stochastic world; a
reproduction claim should hold across draws. :func:`seed_sweep` runs
the full study under several seeds and reports, per headline metric,
the mean, standard deviation and range — the repository's analogue of
the error bars a measurement paper cannot have.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.simulation.config import SimulationConfig

__all__ = ["SweepResult", "seed_sweep"]


@dataclass
class SweepResult:
    """Summary statistics across seeds for every headline metric."""

    seeds: tuple[int, ...]
    per_seed: dict[int, dict[str, float]]

    def metrics(self) -> tuple[str, ...]:
        first = self.per_seed[self.seeds[0]]
        return tuple(first)

    def values(self, metric: str) -> np.ndarray:
        return np.array(
            [self.per_seed[seed][metric] for seed in self.seeds]
        )

    def mean(self, metric: str) -> float:
        return float(self.values(metric).mean())

    def std(self, metric: str) -> float:
        return float(self.values(metric).std())

    def spread(self, metric: str) -> tuple[float, float]:
        values = self.values(metric)
        return float(values.min()), float(values.max())

    def stable_sign(self, metric: str) -> bool:
        """True if the metric has the same sign for every seed."""
        values = self.values(metric)
        return bool(np.all(values > 0) or np.all(values < 0))

    def to_rows(self) -> list[dict[str, float | str]]:
        """Tabular view: one row per metric."""
        rows: list[dict[str, float | str]] = []
        for metric in self.metrics():
            low, high = self.spread(metric)
            rows.append(
                {
                    "metric": metric,
                    "mean": self.mean(metric),
                    "std": self.std(metric),
                    "min": low,
                    "max": high,
                }
            )
        return rows


def seed_sweep(
    seeds: Sequence[int],
    config_factory: Callable[[int], SimulationConfig] | None = None,
) -> SweepResult:
    """Run the full study once per seed; collect the summaries.

    ``config_factory`` maps a seed to a configuration (defaults to
    ``SimulationConfig.small``).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    from repro.core.study import CovidImpactStudy

    factory = config_factory or SimulationConfig.small
    per_seed: dict[int, dict[str, float]] = {}
    for seed in seeds:
        study = CovidImpactStudy.run(factory(seed))
        per_seed[int(seed)] = study.summary()
    return SweepResult(seeds=tuple(int(s) for s in seeds), per_seed=per_seed)
