"""Inner-London relocation: the mobility matrix of Fig 7.

For every Inner-London *resident* (home detected per §2.3), the paper
checks the counties among their top-20 visited locations each day. A
resident is present in a county if any visited tower lies there; a
resident whose daily locations never touch Inner London has (at least
temporarily) relocated. Figure 7 reports, per county and day, the
percent change in the number of Inner-London residents present,
relative to the week-9 median; the Inner London row itself shows the
sustained ~10% post-lockdown decrease.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.home import HomeDetectionResult
from repro.simulation.clock import BASELINE_WEEK
from repro.simulation.feeds import DataFeeds

__all__ = ["RelocationMatrix", "relocation_matrix"]

HOME_COUNTY = "Inner London"


@dataclass
class RelocationMatrix:
    """Daily presence of Inner-London residents per county."""

    counties: list[str]  # Inner London first, then top receiving
    days: np.ndarray
    presence: np.ndarray  # (num_counties, num_days) raw resident counts
    change_pct: np.ndarray  # same shape, % change vs week-9 median
    num_residents: int

    def county_series(self, county: str) -> np.ndarray:
        return self.change_pct[self.counties.index(county)]

    def to_frame(self):
        """The matrix as a wide frame: one row per county, one column
        per day index (stringified), cells = % change vs week 9."""
        from repro.frames import Frame

        data = {"county": self.counties}
        for column, day in enumerate(self.days.tolist()):
            data[str(day)] = self.change_pct[:, column]
        return Frame(data)

    def away_share(self, day_index: int) -> float:
        """Fraction of residents absent from Inner London on a day."""
        row = self.counties.index(HOME_COUNTY)
        return 1.0 - self.presence[row, day_index] / self.num_residents


def relocation_matrix(
    feeds: DataFeeds,
    homes: HomeDetectionResult,
    top_counties: int = 10,
    presence_threshold_s: float = 300.0,
    baseline_week: int = BASELINE_WEEK,
) -> RelocationMatrix:
    """Build the Fig 7 mobility matrix.

    Parameters
    ----------
    homes:
        Home-detection output; residents are users whose *detected*
        home tower lies in Inner London.
    top_counties:
        Number of receiving counties (ranked by week-9 inbound
        residents) to include, besides Inner London itself.
    presence_threshold_s:
        Minimum daily dwell at a tower for it to count as a visited
        location.
    """
    mobility = feeds.mobility
    topology = feeds.topology
    geography = feeds.geography

    district_of_site = topology.site_district_indices
    county_names = np.array([d.county for d in geography.districts])

    resident_mask = homes.detected & (
        county_names[district_of_site[np.maximum(homes.home_site, 0)]]
        == HOME_COUNTY
    )
    num_residents = int(resident_mask.sum())
    if num_residents == 0:
        raise ValueError("no detected Inner-London residents")

    anchors = mobility.anchor_sites[resident_mask]
    anchor_counties = county_names[district_of_site[anchors]]  # (R, K)
    all_counties = list(geography.county_names)
    county_index = {name: i for i, name in enumerate(all_counties)}
    anchor_county_idx = np.vectorize(county_index.get)(anchor_counties)

    # Per-county slot masks, fixed across days.
    county_slots = [
        anchor_county_idx == county_index[name] for name in all_counties
    ]

    calendar = feeds.calendar
    days = np.flatnonzero(calendar.weeks >= baseline_week)
    presence = np.zeros((len(all_counties), days.size), dtype=np.int64)
    for column, day in enumerate(days):
        dwell = mobility.dwell(int(day))[resident_mask]
        visited = dwell >= presence_threshold_s
        for row, slots in enumerate(county_slots):
            presence[row, column] = int(
                (visited & slots).any(axis=1).sum()
            )

    weeks_of_day = calendar.weeks[days]
    in_baseline = weeks_of_day == baseline_week
    baselines = np.median(presence[:, in_baseline], axis=1)

    # Rank receiving counties by *average* week-9 inbound residents
    # (the paper's "top 10 counties ... according to the average in
    # week 9"); weekend-trip destinations have near-zero weekday counts,
    # so a median-based ranking would drop them.
    ranking = presence[:, in_baseline].mean(axis=1)
    order = np.argsort(ranking)[::-1]
    selected: list[int] = [county_index[HOME_COUNTY]]
    for row in order:
        name = all_counties[int(row)]
        if name == HOME_COUNTY or ranking[row] <= 0:
            continue
        selected.append(int(row))
        if len(selected) >= top_counties + 1:
            break

    presence_sel = presence[selected]
    baselines_sel = np.maximum(baselines[selected], 1.0)
    change = (presence_sel / baselines_sel[:, None] - 1.0) * 100.0
    return RelocationMatrix(
        counties=[all_counties[row] for row in selected],
        days=days,
        presence=presence_sel,
        change_pct=change,
        num_residents=num_residents,
    )
