"""Text rendering for series and tables (terminal-friendly figures).

The environment has no plotting stack, so every "figure" is rendered as
the series the paper plots: aligned tables plus unicode sparklines. The
benchmark harness prints these for visual comparison with the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sparkline",
    "format_week_header",
    "render_series_block",
    "scatter_plot",
    "heatmap",
]

_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray) -> str:
    """Unicode sparkline of a 1-D series."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return ""
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return "·" * values.size
    low = finite.min()
    high = finite.max()
    span = high - low
    chars = []
    for value in values:
        if not np.isfinite(value):
            chars.append("·")
            continue
        if span == 0:
            chars.append(_TICKS[3])
            continue
        level = int((value - low) / span * (len(_TICKS) - 1))
        chars.append(_TICKS[level])
    return "".join(chars)


def format_week_header(weeks: np.ndarray, label_width: int = 26) -> str:
    """Header row with ISO week numbers."""
    cells = "".join(f"{int(week):>8d}" for week in weeks)
    return f"{'week':<{label_width}}{cells}"


def render_series_block(
    title: str,
    weeks: np.ndarray,
    series: dict[str, np.ndarray],
    unit: str = "%",
    label_width: int = 26,
) -> str:
    """Render one figure panel: weekly values per group + sparklines."""
    lines = [title, "-" * len(title), format_week_header(weeks, label_width)]
    for name, values in series.items():
        cells = "".join(f"{value:>8.1f}" for value in values)
        lines.append(
            f"{name:<{label_width}}{cells}  {sparkline(values)} {unit}"
        )
    return "\n".join(lines)


def scatter_plot(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "•",
) -> str:
    """Render a text scatter plot (used for Figs 2 and 4).

    Points are binned onto a ``width × height`` character grid; multiple
    points in a cell escalate the marker (· • ●).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("scatter needs two aligned 1-D arrays")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    if x.size == 0:
        return "(no points)"
    x_span = x.max() - x.min()
    y_span = y.max() - y.min()
    cols = np.zeros(x.size, dtype=int) if x_span == 0 else np.minimum(
        ((x - x.min()) / x_span * (width - 1)).astype(int), width - 1
    )
    rows = np.zeros(y.size, dtype=int) if y_span == 0 else np.minimum(
        ((y - y.min()) / y_span * (height - 1)).astype(int), height - 1
    )
    counts = np.zeros((height, width), dtype=int)
    for row, col in zip(rows, cols):
        counts[height - 1 - row, col] += 1
    markers = {0: " ", 1: "·", 2: marker}
    lines = []
    top_label = f"{y.max():.3g}"
    bottom_label = f"{y.min():.3g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for index, grid_row in enumerate(counts):
        label = ""
        if index == 0:
            label = top_label
        elif index == height - 1:
            label = bottom_label
        body = "".join(
            markers.get(min(int(c), 2), "●") if c < 3 else "●"
            for c in grid_row
        )
        lines.append(f"{label:>{gutter}} |{body}|")
    footer = (
        f"{'':>{gutter}}  {x.min():.3g}"
        f"{x_label + ' → ':^{max(width - 16, 4)}}{x.max():.3g}"
    )
    lines.append(footer)
    lines.append(f"{'':>{gutter}}  (y = {y_label})")
    return "\n".join(lines)


def heatmap(
    matrix: np.ndarray,
    row_labels: list[str],
    title: str = "",
    label_width: int = 18,
    vmin: float | None = None,
    vmax: float | None = None,
) -> str:
    """Render a matrix as a shaded text heat map (Fig 7's form).

    Each cell becomes one block character from a 5-level ramp; the
    colour scale is symmetric around zero by default so positive and
    negative changes read differently.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("heatmap needs a 2-D matrix")
    if len(row_labels) != matrix.shape[0]:
        raise ValueError("one label per row required")
    finite = matrix[np.isfinite(matrix)]
    if finite.size == 0:
        return "(empty heatmap)"
    span = max(abs(finite.min()), abs(finite.max()), 1e-9)
    low = -span if vmin is None else vmin
    high = span if vmax is None else vmax
    ramp = " ░▒▓█"
    lines = []
    if title:
        lines.extend([title, "-" * len(title)])
    for label, row in zip(row_labels, matrix):
        cells = []
        for value in row:
            if not np.isfinite(value):
                cells.append("·")
                continue
            level = (value - low) / (high - low)
            index = int(np.clip(level * (len(ramp) - 1), 0,
                                len(ramp) - 1))
            cells.append(ramp[index])
        lines.append(f"{label:<{label_width}.{label_width}}|"
                     + "".join(cells) + "|")
    lines.append(
        f"{'':<{label_width}} scale: {low:+.0f} {ramp} {high:+.0f}"
    )
    return "\n".join(lines)
