"""Study-population filtering from the raw signalling feed (§2.3).

"We use the TAC database to filter only the devices that are
smartphones (i.e., we drop M2M devices such as smart sensors). We are
also able to separate the native users of the MNO, and drop the
international inbound roamers."

This module applies that filter directly on an enriched event feed —
the form the decision takes in the real pipeline, before any mobility
aggregation exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frames import Frame
from repro.network.devices import DeviceCatalog
from repro.network.subscribers import NATIVE_MCC, NATIVE_MNC

__all__ = ["FilterReport", "filter_study_events"]


@dataclass(frozen=True)
class FilterReport:
    """What the §2.3 filter kept and dropped."""

    kept_events: int
    dropped_m2m: int
    dropped_roamers: int
    kept_users: int
    dropped_users: int

    @property
    def total_events(self) -> int:
        return self.kept_events + self.dropped_m2m + self.dropped_roamers


def filter_study_events(
    events: Frame, catalog: DeviceCatalog
) -> tuple[Frame, FilterReport]:
    """Keep only native-smartphone events; report what was dropped.

    ``events`` must carry ``tac``, ``mcc`` and ``mnc`` columns (see
    :func:`repro.network.signaling.attach_subscriber_context`).
    """
    for column in ("tac", "mcc", "mnc", "user_id"):
        if column not in events:
            raise KeyError(f"event feed lacks the {column!r} column")
    is_smartphone = catalog.is_smartphone(events["tac"])
    is_native = (events["mcc"] == NATIVE_MCC) & (
        events["mnc"] == NATIVE_MNC
    )
    keep = is_smartphone & is_native

    dropped_m2m = int((~is_smartphone).sum())
    dropped_roamers = int((is_smartphone & ~is_native).sum())
    kept = events.filter(keep)
    kept_users = int(np.unique(kept["user_id"]).size)
    all_users = int(np.unique(events["user_id"]).size)
    report = FilterReport(
        kept_events=len(kept),
        dropped_m2m=dropped_m2m,
        dropped_roamers=dropped_roamers,
        kept_users=kept_users,
        dropped_users=all_users - kept_users,
    )
    return kept, report
