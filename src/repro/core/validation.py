"""Census validation of home detection (Fig 2).

The paper assigns every user with a detected home to a Local Authority
District and compares the inferred per-LAD population against the ONS
census estimate, obtaining a linear relationship with r² = 0.955 —
evidence the MNO sample represents the population. This module runs the
same regression against the synthetic census.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.home import HomeDetectionResult
from repro.frames import Frame
from repro.simulation.feeds import DataFeeds

__all__ = ["HomeValidation", "validate_against_census"]


@dataclass
class HomeValidation:
    """Per-LAD inferred vs census populations plus the fit."""

    table: Frame  # columns: lad_code, inferred_users, census_population
    slope: float
    intercept: float
    r_squared: float

    @property
    def num_lads(self) -> int:
        return len(self.table)


def validate_against_census(
    feeds: DataFeeds, homes: HomeDetectionResult
) -> HomeValidation:
    """Regress inferred LAD user counts against census populations."""
    detected = homes.detected
    if not detected.any():
        raise ValueError("no homes detected; cannot validate")
    home_sites = homes.home_site[detected]
    district_of_site = feeds.topology.site_district_indices
    home_districts = district_of_site[home_sites]

    lad_codes = np.array([d.lad_code for d in feeds.geography.districts])
    home_lads = lad_codes[home_districts]

    census = feeds.geography.lad_population
    lads = sorted(census)
    inferred = {lad: 0 for lad in lads}
    values, counts = np.unique(home_lads, return_counts=True)
    for lad, count in zip(values, counts):
        inferred[str(lad)] = int(count)

    x = np.array([census[lad] for lad in lads], dtype=np.float64)
    y = np.array([inferred[lad] for lad in lads], dtype=np.float64)
    slope, intercept, r_squared = _linear_fit(x, y)
    table = Frame(
        {
            "lad_code": np.array(lads),
            "census_population": x.astype(np.int64),
            "inferred_users": y.astype(np.int64),
        }
    )
    return HomeValidation(
        table=table, slope=slope, intercept=intercept, r_squared=r_squared
    )


def _linear_fit(x: np.ndarray, y: np.ndarray) -> tuple[float, float, float]:
    """Least-squares line y = a x + b and the fit's r²."""
    if x.size < 2:
        raise ValueError("need at least two points for a regression")
    x_mean = x.mean()
    y_mean = y.mean()
    ss_xx = ((x - x_mean) ** 2).sum()
    if ss_xx == 0:
        raise ValueError("census populations are degenerate")
    slope = ((x - x_mean) * (y - y_mean)).sum() / ss_xx
    intercept = y_mean - slope * x_mean
    predicted = slope * x + intercept
    ss_res = ((y - predicted) ** 2).sum()
    ss_tot = ((y - y_mean) ** 2).sum()
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    return float(slope), float(intercept), float(r_squared)
