"""Mobility series: Figures 3, 5 and 6.

- Fig 3: national daily percent change of the average gyration/entropy
  per user vs the week-9 average.
- Fig 5: the same change per high-density region (Inner London, Outer
  London, Greater Manchester, West Midlands, West Yorkshire), with the
  *national* week-9 average as the reference — which is why London's
  gyration sits ~20% below zero before the pandemic.
- Fig 6: the same change per geodemographic cluster (weekly averages).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baseline import daily_pct_change, weekly_mean_stack
from repro.core.statistics import MobilityDailyMetrics
from repro.geo.build import STUDY_REGIONS
from repro.simulation.feeds import DataFeeds
from repro.simulation.clock import BASELINE_WEEK

__all__ = [
    "MobilitySeries",
    "national_mobility",
    "regional_mobility",
    "geodemographic_mobility",
]

METRICS = ("gyration", "entropy")


@dataclass
class MobilitySeries:
    """Percent-change series per group for one mobility metric.

    ``values[group]`` aligns with ``x`` — day indices for daily series,
    ISO weeks for weekly series.
    """

    metric: str
    granularity: str  # "daily" or "weekly"
    x: np.ndarray
    values: dict[str, np.ndarray]

    def group(self, name: str) -> np.ndarray:
        return self.values[name]

    def at_week(self, group: str, week: int, weeks_of_day=None) -> float:
        """Average of the series over one ISO week."""
        if self.granularity == "weekly":
            index = np.flatnonzero(self.x == week)
            if index.size == 0:
                raise KeyError(f"week {week} not in series")
            return float(self.values[group][index[0]])
        if weeks_of_day is None:
            raise ValueError("daily series needs weeks_of_day")
        mask = np.asarray(weeks_of_day) == week
        return float(self.values[group][mask].mean())


def national_mobility(
    metrics: MobilityDailyMetrics,
    feeds: DataFeeds,
    baseline_week: int = BASELINE_WEEK,
) -> dict[str, MobilitySeries]:
    """Fig 3: daily national percent-change series per metric."""
    weeks = _analysis_weeks_of_days(feeds)
    days = _analysis_days(feeds)
    out: dict[str, MobilitySeries] = {}
    for metric in METRICS:
        daily = metrics.daily_mean(metric)[days]
        change = daily_pct_change(daily, weeks, baseline_week)
        out[metric] = MobilitySeries(
            metric=metric,
            granularity="daily",
            x=days,
            values={"UK": change},
        )
    return out


def regional_mobility(
    metrics: MobilityDailyMetrics,
    feeds: DataFeeds,
    counties: tuple[str, ...] = STUDY_REGIONS,
    baseline_week: int = BASELINE_WEEK,
) -> dict[str, MobilitySeries]:
    """Fig 5: weekly percent-change per region vs the national week-9."""
    return _grouped_series(
        metrics,
        feeds,
        groups={
            county: feeds.agents.home_county == county
            for county in counties
        },
        baseline_week=baseline_week,
    )


def geodemographic_mobility(
    metrics: MobilityDailyMetrics,
    feeds: DataFeeds,
    baseline_week: int = BASELINE_WEEK,
) -> dict[str, MobilitySeries]:
    """Fig 6: weekly percent-change per OAC cluster vs national week-9."""
    districts = feeds.geography.districts
    home_oac = np.array(
        [districts[d].oac.value for d in feeds.agents.home_district]
    )
    groups = {
        cluster: home_oac == cluster for cluster in np.unique(home_oac)
    }
    return _grouped_series(
        metrics, feeds, groups=groups, baseline_week=baseline_week
    )


# ----------------------------------------------------------------------
def _analysis_days(feeds: DataFeeds) -> np.ndarray:
    """Days belonging to the reported window (week 9 onward)."""
    calendar = feeds.calendar
    return np.flatnonzero(calendar.weeks >= BASELINE_WEEK)


def _analysis_weeks_of_days(feeds: DataFeeds) -> np.ndarray:
    calendar = feeds.calendar
    days = _analysis_days(feeds)
    return calendar.weeks[days]


def _grouped_series(
    metrics: MobilityDailyMetrics,
    feeds: DataFeeds,
    groups: dict[str, np.ndarray],
    baseline_week: int,
) -> dict[str, MobilitySeries]:
    days = _analysis_days(feeds)
    weeks_of_day = _analysis_weeks_of_days(feeds)
    populated = [
        (name, mask) for name, mask in groups.items() if mask.any()
    ]
    if not populated:
        raise ValueError("no non-empty groups")
    out: dict[str, MobilitySeries] = {}
    for metric in METRICS:
        national_daily = metrics.daily_mean(metric)[days]
        national_baseline = float(
            national_daily[weeks_of_day == baseline_week].mean()
        )
        # Stack every group's percent-change series and reduce the day
        # axis to weeks in one pass (see weekly_mean_stack).
        changes = np.stack(
            [
                daily_pct_change(
                    metrics.daily_mean_subset(metric, mask)[days],
                    weeks_of_day,
                    baseline_value=national_baseline,
                )
                for _, mask in populated
            ]
        )
        weeks_axis, weekly = weekly_mean_stack(changes, weeks_of_day)
        out[metric] = MobilitySeries(
            metric=metric,
            granularity="weekly",
            x=weeks_axis,
            values={
                name: weekly[row]
                for row, (name, _) in enumerate(populated)
            },
        )
    return out
