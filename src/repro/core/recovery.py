"""Recovery-slope estimation (§3.2's relaxation differences, quantified).

The paper observes that London and West Yorkshire "relax the mobility
restrictions" faster than Greater Manchester and the West Midlands in
weeks 18–19. This module turns that reading into a number: the linear
slope of a weekly series over the post-trough window, in percentage
points per week, with the least-squares fit done explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mobility_series import MobilitySeries

__all__ = ["RecoverySlope", "recovery_slope", "rank_recoveries"]


@dataclass(frozen=True)
class RecoverySlope:
    """Linear recovery fit for one group."""

    group: str
    slope_pp_per_week: float
    intercept: float
    start_week: int
    end_week: int


def recovery_slope(
    series: MobilitySeries,
    group: str,
    start_week: int = 14,
    end_week: int = 19,
) -> RecoverySlope:
    """Fit the group's weekly series over [start_week, end_week]."""
    if series.granularity != "weekly":
        raise ValueError("recovery slopes need a weekly series")
    mask = (series.x >= start_week) & (series.x <= end_week)
    if mask.sum() < 2:
        raise ValueError("need at least two weeks in the window")
    weeks = series.x[mask].astype(np.float64)
    values = series.values[group][mask]
    week_mean = weeks.mean()
    value_mean = values.mean()
    slope = float(
        ((weeks - week_mean) * (values - value_mean)).sum()
        / ((weeks - week_mean) ** 2).sum()
    )
    return RecoverySlope(
        group=group,
        slope_pp_per_week=slope,
        intercept=float(value_mean - slope * week_mean),
        start_week=start_week,
        end_week=end_week,
    )


def rank_recoveries(
    series: MobilitySeries,
    start_week: int = 14,
    end_week: int = 19,
) -> list[RecoverySlope]:
    """Recovery slopes for every group, fastest first."""
    slopes = [
        recovery_slope(series, group, start_week, end_week)
        for group in series.values
    ]
    return sorted(
        slopes, key=lambda fit: fit.slope_pp_per_week, reverse=True
    )
