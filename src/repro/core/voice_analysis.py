"""Voice traffic analysis (Fig 9).

Isolates the conversational-voice bearer (QCI = 1) metrics — traffic
volume, simultaneous voice users, and the UL/DL packet-loss rates — and
produces the national weekly delta series of Fig 9.
"""

from __future__ import annotations

from repro.core.performance import WeeklySeries, label_kpis, performance_series
from repro.frames import Frame
from repro.simulation.clock import BASELINE_WEEK
from repro.simulation.feeds import DataFeeds

__all__ = ["VOICE_METRICS", "voice_series"]

VOICE_METRICS = (
    "voice_volume_mb",
    "voice_users",
    "voice_ul_loss_rate",
    "voice_dl_loss_rate",
)


def voice_series(
    feeds: DataFeeds,
    baseline_week: int = BASELINE_WEEK,
    percentile: float = 50.0,
    labeled: Frame | None = None,
) -> dict[str, WeeklySeries]:
    """National weekly delta series for each voice metric."""
    labeled = labeled if labeled is not None else label_kpis(feeds)
    return {
        metric: performance_series(
            feeds,
            metric,
            grouping="national",
            baseline_week=baseline_week,
            percentile=percentile,
            labeled=labeled,
        )
        for metric in VOICE_METRICS
    }
