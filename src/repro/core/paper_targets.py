"""Machine-readable paper targets and reproduction verdicts.

EXPERIMENTS.md as code: every quantitative claim of the paper that the
summary measures, with the acceptance band used to call the
reproduction successful. ``evaluate_summary`` turns a study summary
into a verdict table — the same check the figure benchmarks perform,
in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PaperTarget", "PAPER_TARGETS", "Verdict", "evaluate_summary"]


@dataclass(frozen=True)
class PaperTarget:
    """One quantitative claim of the paper."""

    key: str  # summary key
    paper_value: str  # the claim, as printed
    low: float  # acceptance band (measured value must fall inside)
    high: float
    section: str
    description: str


PAPER_TARGETS: tuple[PaperTarget, ...] = (
    PaperTarget(
        "gyration_change_lockdown_pct", "−50%", -62.0, -35.0, "§3.1",
        "radius of gyration drop in lockdown weeks 13–14",
    ),
    PaperTarget(
        "entropy_change_lockdown_pct", "smaller drop than gyration",
        -50.0, -20.0, "§3.1", "entropy drop in lockdown weeks 13–14",
    ),
    PaperTarget(
        "home_detection_rate", "16M of 22M (≈0.73)", 0.55, 0.9, "§2.3",
        "share of users with a detected home",
    ),
    PaperTarget(
        "fig2_r_squared", "0.955", 0.75, 1.0, "§2.3 / Fig 2",
        "census validation linear fit",
    ),
    PaperTarget(
        "fig4_pearson_pre_declaration", "no correlation", -0.45, 0.45,
        "§3.1 / Fig 4", "entropy vs cases before the declaration",
    ),
    PaperTarget(
        "dl_volume_week10_pct", "+8%", 3.0, 15.0, "§4.1",
        "downlink bump in week 10",
    ),
    PaperTarget(
        "dl_volume_min_pct", "−24%", -35.0, -15.0, "§4.1",
        "downlink volume trough",
    ),
    PaperTarget(
        "ul_volume_lockdown_min_pct", "−7%…+1.5%", -12.0, 6.0, "§4.1",
        "uplink lower bound during lockdown",
    ),
    PaperTarget(
        "ul_volume_lockdown_max_pct", "−7%…+1.5%", -6.0, 10.0, "§4.1",
        "uplink upper bound during lockdown",
    ),
    PaperTarget(
        "active_users_min_pct", "−28.6%", -40.0, -10.0, "§4.1",
        "active DL users trough",
    ),
    PaperTarget(
        "throughput_min_pct", "≈−10%", -18.0, -4.0, "§4.1",
        "per-user DL throughput trough (app-limited)",
    ),
    PaperTarget(
        "radio_load_min_pct", "−15.1%", -30.0, -8.0, "§4.1",
        "radio load trough",
    ),
    PaperTarget(
        "voice_volume_peak_pct", "+140% (week 12)", 110.0, 190.0, "§4.2",
        "voice volume peak",
    ),
    PaperTarget(
        "voice_dl_loss_peak_pct", ">+100%", 100.0, 2000.0, "§4.2",
        "voice DL packet-loss spike",
    ),
    PaperTarget(
        "voice_dl_loss_final_pct", "below normal after the response",
        -50.0, 0.0, "§4.2", "voice DL loss at the end of the study",
    ),
    PaperTarget(
        "inner_london_away_share_lockdown", "≈10%", 0.05, 0.2, "§3.4",
        "Inner-London residents away during lockdown",
    ),
    PaperTarget(
        "cosmopolitan_users_min_pct", "≈−50%", -60.0, -20.0, "§4.4",
        "Cosmopolitan connected-users trough",
    ),
    PaperTarget(
        "rural_dl_min_pct", "largely stable", -15.0, 10.0, "§4.4",
        "Rural Residents downlink trough",
    ),
    PaperTarget(
        "corr_cosmopolitans", "+0.973", 0.9, 1.0, "§4.4",
        "users-vs-volume correlation, Cosmopolitans",
    ),
    PaperTarget(
        "corr_ethnicity_central", "+0.816", 0.6, 1.0, "§4.4",
        "users-vs-volume correlation, Ethnicity Central",
    ),
    PaperTarget(
        "corr_suburbanites", "−0.466", -1.0, -0.3, "§4.4",
        "users-vs-volume correlation, Suburbanites",
    ),
    PaperTarget(
        "ec_dl_min_pct", ">−70%", -90.0, -55.0, "§5.1",
        "EC district downlink collapse",
    ),
    PaperTarget(
        "wc_dl_min_pct", ">−80%", -90.0, -55.0, "§5.1",
        "WC district downlink collapse",
    ),
    PaperTarget(
        "rat_share_4g", "75%", 0.7, 0.8, "§2.4",
        "connected-time share on 4G",
    ),
    PaperTarget(
        "data_years_rewound", "one year", 0.4, 2.0, "§4.1",
        "years of data growth rewound",
    ),
    PaperTarget(
        "voice_years_of_growth", "seven years", 5.0, 9.5, "§4.2",
        "years of voice growth absorbed in days",
    ),
)


@dataclass(frozen=True)
class Verdict:
    """One target's measured-vs-paper outcome."""

    target: PaperTarget
    measured: float
    passed: bool


def evaluate_summary(summary: dict[str, float]) -> list[Verdict]:
    """Check a study summary against every paper target.

    Targets whose key is absent from the summary are skipped (e.g. when
    evaluating a partial summary).
    """
    verdicts: list[Verdict] = []
    for target in PAPER_TARGETS:
        if target.key not in summary:
            continue
        measured = float(summary[target.key])
        verdicts.append(
            Verdict(
                target=target,
                measured=measured,
                passed=target.low <= measured <= target.high,
            )
        )
    return verdicts


def render_verdicts(verdicts: list[Verdict]) -> str:
    """Aligned text table of the verdicts."""
    lines = [
        f"{'section':<12}{'claim':<46}{'paper':<26}"
        f"{'measured':>10}  ok",
        "-" * 100,
    ]
    for verdict in verdicts:
        target = verdict.target
        mark = "✓" if verdict.passed else "✗"
        lines.append(
            f"{target.section:<12}{target.description:<46.46}"
            f"{target.paper_value:<26.26}{verdict.measured:>10.2f}  {mark}"
        )
    passed = sum(verdict.passed for verdict in verdicts)
    lines.append(f"\n{passed}/{len(verdicts)} targets inside the band")
    return "\n".join(lines)
