"""Persistent content-addressed cache for analysis artifacts.

Reproducing the paper's figures is a pure function of (a) the feed
payloads of a run, (b) the analysis code, and (c) a handful of
parameters (``gyration_mode``, the KPI percentile, ...).  This module
keys every artifact — the per-user-day metrics matrix, each figure's
payload, the headline summary, the rendered report — on exactly those
three things and stores the result under ``<run>/cache/analysis/``, so
*no process ever computes the same artifact twice*:

- **Keys** are SHA-256 over the per-feed payload digests recorded in
  ``manifest.json`` by :func:`repro.io.store.save_feeds`, a per-artifact
  *code-epoch* tag (bumped when an implementation changes semantics),
  and the JSON-canonicalized parameters.  Different runs, parameters or
  code generations can never collide.
- **Entries** are single NPZ files written atomically (``*.tmp`` +
  ``os.replace``, the checkpoint-store pattern), holding the artifact
  decomposed into a JSON structure tree plus its numpy arrays, and a
  SHA-256 payload checksum.  No pickle: a cache file cannot execute
  code, and a stale or truncated entry simply fails validation.
- **Failure is always a miss.**  A corrupt, stale, unreadable or
  undecodable entry falls back to recomputation — the cache can be
  deleted (``python -m repro cache <run> --clear``) or bit-flipped at
  any time without breaking an analysis.
- **Telemetry**: ``cache.hits`` / ``cache.misses`` /
  ``cache.bytes_written`` (plus ``cache.corrupt_entries``) count
  against the process-wide registry when :mod:`repro.telemetry` is
  enabled.

Cached payloads round-trip bitwise: arrays keep their exact dtype and
bytes through NPZ, scalars and strings through JSON, so a warm study is
byte-identical to a cold one.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro import telemetry

__all__ = [
    "ArtifactCache",
    "CODE_EPOCHS",
    "DEFAULT_GYRATION_MODE",
    "artifact_key",
    "report_params",
    "summary_params",
]

CACHE_SUBDIR = Path("cache") / "analysis"
FORMAT_VERSION = 1

#: The study's default gyration mode; shared with the CLI so both sides
#: derive identical cache keys without importing the study driver.
DEFAULT_GYRATION_MODE = "weighted"

#: Per-artifact code generations.  Bump an entry whenever the code that
#: produces the artifact changes its output; persisted entries written
#: under the old epoch then silently stop matching (they key on the
#: epoch) instead of serving stale results.
CODE_EPOCHS = {
    "metrics": 1,
    "metrics_range": 1,
    "homes": 1,
    "homes_range": 1,
    "labeled_kpis": 1,
    "labeled_kpis_range": 1,
    "fig2": 1,
    "fig3": 1,
    "fig4": 1,
    "fig5": 1,
    "fig6": 1,
    "fig7": 1,
    "fig8": 1,
    "fig9": 1,
    "fig10": 1,
    "fig11": 1,
    "fig12": 1,
    "rat_share": 1,
    "cluster_correlations": 1,
    "summary": 1,
    "report": 1,
}


def summary_params(gyration_mode: str = DEFAULT_GYRATION_MODE) -> dict:
    """Cache parameters of the ``summary`` artifact."""
    return {"gyration_mode": gyration_mode}


def report_params(
    full: bool, gyration_mode: str = DEFAULT_GYRATION_MODE
) -> dict:
    """Cache parameters of the ``report`` artifact."""
    return {"full": bool(full), "gyration_mode": gyration_mode}


def artifact_key(
    artifact: str, feed_digests: dict[str, str], params: dict
) -> str:
    """The content address of one artifact: SHA-256 over its inputs."""
    material = json.dumps(
        {
            "format": FORMAT_VERSION,
            "artifact": artifact,
            "epoch": CODE_EPOCHS.get(artifact, 0),
            "feeds": dict(sorted(feed_digests.items())),
            "params": params,
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode()).hexdigest()


class CacheCodecError(ValueError):
    """A payload cannot be encoded to / decoded from a cache entry."""


# ---------------------------------------------------------------------------
# Codec: arbitrary study payloads <-> (JSON tree, named numpy arrays).
#
# The tree holds scalars/strings/containers as JSON; every array is
# hoisted into the NPZ under a generated name the tree references.
# Known result dataclasses and Frame are encoded structurally, by
# field — not pickled — so decoding reconstructs them through their
# real constructors.
# ---------------------------------------------------------------------------
_LITERALS = (type(None), bool, int, float, str)


@lru_cache(maxsize=1)
def _dataclass_registry() -> dict[str, type]:
    # Imported lazily: repro.core pulls in the whole analysis layer,
    # and the cache must stay importable from anywhere inside it.
    from repro.core.correlation import EntropyCasesResult
    from repro.core.home import HomeDetectionResult
    from repro.core.mobility_series import MobilitySeries
    from repro.core.performance import WeeklySeries
    from repro.core.relocation import RelocationMatrix
    from repro.core.statistics import MobilityDailyMetrics
    from repro.core.validation import HomeValidation

    return {
        cls.__name__: cls
        for cls in (
            EntropyCasesResult,
            HomeDetectionResult,
            HomeValidation,
            MobilityDailyMetrics,
            MobilitySeries,
            RelocationMatrix,
            WeeklySeries,
        )
    }


def _frame_type():
    from repro.frames import Frame

    return Frame


def _encode(value, arrays: dict[str, np.ndarray]):
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, np.generic):
        return value
    if isinstance(value, np.ndarray):
        name = f"a{len(arrays)}"
        arrays[name] = value
        return {"__kind__": "array", "ref": name}
    if isinstance(value, np.generic):
        name = f"a{len(arrays)}"
        arrays[name] = np.asarray(value)
        return {"__kind__": "npscalar", "ref": name}
    if isinstance(value, (list, tuple)):
        return {
            "__kind__": "list" if isinstance(value, list) else "tuple",
            "items": [_encode(item, arrays) for item in value],
        }
    if isinstance(value, dict):
        return {
            "__kind__": "dict",
            "items": [
                [_encode(key, arrays), _encode(item, arrays)]
                for key, item in value.items()
            ],
        }
    if isinstance(value, _frame_type()):
        return {
            "__kind__": "frame",
            "columns": [
                [name, _encode(value[name], arrays)]
                for name in value.column_names
            ],
        }
    registry = _dataclass_registry()
    cls = type(value)
    if cls.__name__ in registry and cls is registry[cls.__name__]:
        import dataclasses

        return {
            "__kind__": "dataclass",
            "type": cls.__name__,
            "fields": {
                field.name: _encode(getattr(value, field.name), arrays)
                for field in dataclasses.fields(cls)
            },
        }
    raise CacheCodecError(f"cannot cache payloads of type {cls.__name__}")


def _decode(tree, arrays: dict[str, np.ndarray]):
    if isinstance(tree, _LITERALS):
        return tree
    if not isinstance(tree, dict):
        raise CacheCodecError(f"malformed cache tree node {tree!r}")
    kind = tree.get("__kind__")
    if kind in ("array", "npscalar"):
        ref = tree.get("ref")
        if ref not in arrays:
            raise CacheCodecError(f"cache entry is missing array {ref!r}")
        array = arrays[ref]
        return array[()] if kind == "npscalar" else array
    if kind in ("list", "tuple"):
        items = [_decode(item, arrays) for item in tree["items"]]
        return items if kind == "list" else tuple(items)
    if kind == "dict":
        return {
            _decode(key, arrays): _decode(item, arrays)
            for key, item in tree["items"]
        }
    if kind == "frame":
        return _frame_type()(
            {name: _decode(column, arrays)
             for name, column in tree["columns"]}
        )
    if kind == "dataclass":
        cls = _dataclass_registry().get(tree.get("type"))
        if cls is None:
            raise CacheCodecError(
                f"unknown cached dataclass {tree.get('type')!r}"
            )
        return cls(**{
            name: _decode(field, arrays)
            for name, field in tree["fields"].items()
        })
    raise CacheCodecError(f"unknown cache tree kind {kind!r}")


def _payload_digest(meta: str, arrays: dict[str, np.ndarray]) -> str:
    sha = hashlib.sha256()
    sha.update(meta.encode())
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        sha.update(name.encode())
        sha.update(repr(array.shape).encode())
        sha.update(array.dtype.str.encode())
        sha.update(array.tobytes())
    return sha.hexdigest()


class ArtifactCache:
    """The ``cache/analysis/`` store of one run directory.

    Construct with :meth:`open` (reads the digests from the run's
    ``manifest.json``) or :meth:`for_feeds` (uses the digests a loaded
    :class:`~repro.simulation.feeds.DataFeeds` carries); both return
    ``None`` when the run has no recorded digests — an uncacheable run
    is simply cacheless, never an error.
    """

    def __init__(
        self, directory: str | Path, feed_digests: dict[str, str]
    ) -> None:
        self.directory = Path(directory)
        self.feed_digests = dict(feed_digests)

    @classmethod
    def open(cls, run_directory: str | Path) -> "ArtifactCache | None":
        """The cache of a persisted run, straight from its manifest.

        Reads only ``manifest.json`` — no feeds are loaded — which is
        what lets a warm CLI invocation skip ``load_feeds`` entirely.
        """
        manifest_path = Path(run_directory) / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        digests = manifest.get("feeds_sha256")
        if not isinstance(digests, dict) or not digests:
            return None
        return cls(Path(run_directory) / CACHE_SUBDIR, digests)

    @classmethod
    def for_feeds(
        cls, run_directory: str | Path, feeds
    ) -> "ArtifactCache | None":
        """The cache for an in-memory feeds bundle homed at a directory."""
        digests = getattr(feeds, "source_digests", None)
        if not digests:
            return None
        return cls(Path(run_directory) / CACHE_SUBDIR, digests)

    # -- lookup --------------------------------------------------------------
    def key(
        self, artifact: str, params: dict, *, digests=None
    ) -> str:
        """The artifact's content address.

        ``digests`` substitutes the run-wide feed digests with an
        artifact-specific digest map — the live-run path keys per
        day-range artifacts on exactly the segment files that cover
        the range, so they survive appends that only extend the run.
        """
        feed_digests = self.feed_digests if digests is None else digests
        return artifact_key(artifact, feed_digests, params)

    def entry_path(
        self, artifact: str, params: dict, *, digests=None
    ) -> Path:
        key = self.key(artifact, params, digests=digests)
        return self.directory / f"{key}.npz"

    def get(self, artifact: str, params: dict, *, digests=None):
        """The cached payload, or ``None`` on any kind of miss.

        Corrupt, truncated, or undecodable entries count as misses
        (and bump ``cache.corrupt_entries``); they are never an error.
        """
        path = self.entry_path(artifact, params, digests=digests)
        if not path.exists():
            telemetry.count("cache.misses")
            return None
        try:
            with np.load(path) as archive:
                arrays = {name: archive[name] for name in archive.files}
            meta_array = arrays.pop("__meta__")
            checksum = arrays.pop("__checksum__")
            meta = str(meta_array[()])
            if str(checksum[()]) != _payload_digest(meta, arrays):
                raise CacheCodecError("checksum mismatch")
            envelope = json.loads(meta)
            if envelope.get("artifact") != artifact:
                raise CacheCodecError("entry names a different artifact")
            payload = _decode(envelope["tree"], arrays)
        except Exception:
            # Present but wrong — recompute rather than crash; the
            # entry will be atomically replaced by the fresh result.
            telemetry.count("cache.misses")
            telemetry.count("cache.corrupt_entries")
            return None
        telemetry.count("cache.hits")
        return payload

    def put(
        self, artifact: str, params: dict, payload, *, digests=None
    ) -> bool:
        """Persist a payload; returns False (and stores nothing) when
        the payload cannot be encoded or the write fails."""
        try:
            arrays: dict[str, np.ndarray] = {}
            tree = _encode(payload, arrays)
            meta = json.dumps({"artifact": artifact, "tree": tree})
            checksum = _payload_digest(meta, arrays)
        except CacheCodecError:
            return False
        final = self.entry_path(artifact, params, digests=digests)
        temporary = final.with_name(
            f"{final.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(temporary, "wb") as handle:
                np.savez(
                    handle,
                    __meta__=np.array(meta),
                    __checksum__=np.array(checksum),
                    **arrays,
                )
            size = temporary.stat().st_size
            os.replace(temporary, final)
        except OSError:
            temporary.unlink(missing_ok=True)
            return False
        telemetry.count("cache.bytes_written", size)
        return True

    def get_or_compute(
        self, artifact: str, params: dict, compute, *, digests=None
    ):
        """The cached payload if present, else ``compute()`` (stored)."""
        payload = self.get(artifact, params, digests=digests)
        if payload is not None:
            return payload
        payload = compute()
        self.put(artifact, params, payload, digests=digests)
        return payload

    # -- maintenance ---------------------------------------------------------
    def info(self) -> dict:
        """Entry count and total size of the store (zeros when absent)."""
        entries = 0
        total = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.npz"):
                entries += 1
                total += path.stat().st_size
        return {
            "directory": str(self.directory),
            "entries": entries,
            "bytes": total,
        }

    def clear(self) -> None:
        """Delete every cached artifact (the directory itself too)."""
        shutil.rmtree(self.directory, ignore_errors=True)
