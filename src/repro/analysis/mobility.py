"""Segment-composed mobility analytics for live runs.

A run grown through :meth:`repro.api.Run.advance` stores its mobility
partition as contiguous day segments — the base save plus one segment
per append commit (``feeds.feed_segments``).  Re-analyzing such a run
from scratch after every appended day wastes almost all of its work:
the per-user-day metrics, the February night win counts, and the KPI
labels of the already-analyzed prefix cannot change (appends only add
days; the covering files are immutable until a compacting re-save).

This module exploits that.  Each whole-window artifact the study needs
is decomposed into *per-segment range artifacts* that compose
associatively:

- **Daily metrics** are per-(user, day) independent, so a day range's
  matrix block equals the same rows of a whole-window call bitwise and
  ranges concatenate (:func:`incremental_daily_metrics`).
- **Home detection** folds int64 night win counts over February; counts
  over disjoint ranges simply add (:func:`incremental_homes`).
- **KPI labeling** is strictly row-wise; per-range label frames
  concatenate in segment order back into the whole-feed frame
  (:func:`incremental_labeled_kpis`).

Range artifacts are cached under keys derived from exactly the files
that pin the range's content: the run's ``config.pkl`` digest (every
feed is a pure function of the configuration and the day index), the
shard identity columns, and the segment's dwell stack files — *not* the
whole-run digest map, which changes on every append.  Advancing a run
therefore recomputes only the new segment; the prefix is served from
cache, and the composed result is bitwise-identical to a from-scratch
recomputation.  Anything missing (in-memory feeds, no digests, no
cache) falls back to the whole-window computation.
"""

from __future__ import annotations

import numpy as np

from repro.core.home import (
    HomeDetectionResult,
    detect_homes,
    finalize_homes,
    night_win_counts,
)
from repro.core.performance import label_kpis
from repro.core.statistics import MobilityDailyMetrics, compute_daily_metrics
from repro.simulation.feeds import DataFeeds

__all__ = [
    "feed_segments",
    "incremental_daily_metrics",
    "incremental_homes",
    "incremental_labeled_kpis",
    "segment_digests",
]

_IDENTITY_FILES = ("rows.npy", "user_ids.npy", "anchor_sites.npy")


def feed_segments(feeds: DataFeeds) -> list[tuple[int, int]] | None:
    """The run's ``(start_day, num_days)`` storage segments.

    ``None`` when the feeds cannot support segment-keyed artifacts —
    in-memory bundles, or runs persisted without digests.
    """
    segments = getattr(feeds, "feed_segments", None)
    digests = getattr(feeds, "source_digests", None)
    if not segments or not digests:
        return None
    return [(int(start), int(days)) for start, days in segments]


def segment_digests(feeds: DataFeeds, start_day: int) -> dict | None:
    """The digest map keying one segment's range artifacts.

    Collects, from the run's recorded feed digests, the files that pin
    the segment's content: ``config.pkl`` (all feeds are pure functions
    of the configuration and the day index), the shard identity
    columns, and the segment's dwell stack files.  Returns ``None``
    when the expected files are not in the digest map — the caller then
    computes the range uncached.
    """
    from repro.io import columnar

    digests = getattr(feeds, "source_digests", None)
    if not digests or "config.pkl" not in digests:
        return None
    dwell_names = {
        columnar.segment_file_name(column, start_day)
        for column in ("daily_dwell", "night_dwell")
    }
    out = {"config.pkl": digests["config.pkl"]}
    found_dwell = False
    prefix = f"{columnar.FEEDS_SUBDIR}/"
    for key, value in digests.items():
        if not key.startswith(prefix):
            continue
        name = key.rsplit("/", 1)[-1]
        if name in dwell_names:
            found_dwell = True
            out[key] = value
        elif name in _IDENTITY_FILES:
            out[key] = value
    return out if found_dwell else None


def incremental_daily_metrics(
    feeds: DataFeeds,
    gyration_mode: str = "weighted",
    top_towers: int = 20,
    cache=None,
    workers: int | None = None,
) -> MobilityDailyMetrics:
    """Whole-window daily metrics, composed segment by segment.

    Bitwise-identical to
    :func:`~repro.core.statistics.compute_daily_metrics` over the whole
    feed; with a cache attached, segments whose range artifacts are
    already stored are not recomputed.  ``workers`` is forwarded to the
    per-range computations — cache keys are independent of it, as the
    parallel walk is bitwise-identical to the serial one.
    """
    segments = feed_segments(feeds)
    if cache is None or not segments:
        return compute_daily_metrics(
            feeds, gyration_mode, top_towers=top_towers, workers=workers
        )
    parts = []
    for start, days in segments:
        params = {
            "start": start,
            "days": days,
            "gyration_mode": gyration_mode,
            "top_towers": top_towers,
        }

        def compute(start=start, days=days):
            return compute_daily_metrics(
                feeds,
                gyration_mode,
                top_towers=top_towers,
                day_range=(start, start + days),
                workers=workers,
            )

        digests = segment_digests(feeds, start)
        if digests is None:
            parts.append(compute())
        else:
            parts.append(
                cache.get_or_compute(
                    "metrics_range", params, compute, digests=digests
                )
            )
    if len(parts) == 1:
        return parts[0]
    return MobilityDailyMetrics(
        user_ids=parts[0].user_ids,
        entropy=np.concatenate([part.entropy for part in parts], axis=0),
        gyration_km=np.concatenate(
            [part.gyration_km for part in parts], axis=0
        ),
    )


def incremental_homes(
    feeds: DataFeeds,
    min_nights: int = 14,
    window_days: np.ndarray | None = None,
    cache=None,
    workers: int | None = None,
) -> HomeDetectionResult:
    """Whole-window home detection, folded segment by segment.

    Bitwise-identical to :func:`~repro.core.home.detect_homes` (same
    window validation included); the per-segment win counts are cached
    independent of ``min_nights``, so threshold sweeps reuse them.
    ``workers`` fans the per-shard night scans across the process pool
    (cache keys are unaffected — the results are bitwise identical).
    """
    if min_nights <= 0:
        raise ValueError("min_nights must be positive")
    if window_days is None:
        window_days = feeds.calendar.february_days
    window_days = np.asarray(window_days)
    if window_days.size == 0:
        raise ValueError("home-detection window is empty")
    if window_days.max() >= feeds.mobility.num_days:
        raise ValueError("window extends beyond the simulated days")

    segments = feed_segments(feeds)
    if cache is None or not segments:
        return detect_homes(feeds, min_nights, window_days, workers=workers)
    total = None
    for start, days in segments:
        in_range = (window_days >= start) & (window_days < start + days)
        segment_window = window_days[in_range]
        if segment_window.size == 0:
            continue
        params = {
            "start": start,
            "days": days,
            "window": [int(day) for day in segment_window],
        }

        def compute(segment_window=segment_window):
            return night_win_counts(feeds, segment_window, workers=workers)

        digests = segment_digests(feeds, start)
        if digests is None:
            counts = compute()
        else:
            counts = cache.get_or_compute(
                "homes_range", params, compute, digests=digests
            )
        total = counts if total is None else total + counts
    return finalize_homes(feeds, total, min_nights)


def incremental_labeled_kpis(feeds: DataFeeds, cache=None):
    """The whole-feed labeled KPI frame, composed segment by segment.

    Bitwise-identical to :func:`~repro.core.performance.label_kpis`
    over the whole feed: the KPI frame is ordered by day, so per-range
    label frames concatenated in segment order restore the original row
    order exactly.  Range keys derive from the segment's dwell/config
    digests — the KPI rows of a day range are a pure function of the
    same (configuration, day range) those pin — so they survive the
    whole-run KPI table being rewritten on every append.
    """
    from repro.frames import concat

    segments = feed_segments(feeds)
    if cache is None or not segments:
        return label_kpis(feeds)
    parts = []
    for start, days in segments:
        params = {"start": start, "days": days}

        def compute(start=start, days=days):
            return label_kpis(feeds, day_range=(start, start + days))

        digests = segment_digests(feeds, start)
        if digests is None:
            parts.append(compute())
        else:
            parts.append(
                cache.get_or_compute(
                    "labeled_kpis_range", params, compute, digests=digests
                )
            )
    return parts[0] if len(parts) == 1 else concat(parts)
