"""Process-parallel shard-streaming analysis.

The analysis kernels are shard-partitioned by construction: entropy,
gyration and the night-win counts are strictly row-independent, and
sessionization never crosses users, so every per-shard partial can be
computed from *that shard's files alone* and merged associatively.
This module fans those per-shard walks across a
:class:`~concurrent.futures.ProcessPoolExecutor`.

No feed object ever crosses the process boundary.  A worker receives
only a :class:`ShardPlan` — the run directory, the shard layout, the
segment spans — via the pool initializer and calls
:func:`repro.io.columnar.open_shard` / :func:`~repro.io.columnar.
open_events` itself, memory-mapping exactly its shard's files.  The
tasks dispatch to the *same* per-shard kernels the serial streaming
walk uses (:func:`repro.core.statistics.shard_metric_blocks`,
:func:`repro.core.home.shard_night_win_counts`,
:func:`repro.core.sessionize.sessionize_events`), so the partials are
bitwise identical by construction for any (shards × workers), and the
coordinator merge is a scatter into disjoint population rows (metrics,
homes) or the stable user-partitioned sort (sessions).

``REPRO_ANALYSIS_SERIAL=1`` forces the sequential walk — the
differential oracle every parallel result is gated against.  When the
pool cannot start or dies (:class:`_PoolLost`), the coordinator
degrades to running the identical task functions in-process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import telemetry

__all__ = [
    "ENV_SERIAL",
    "ShardPlan",
    "map_figure_chains",
    "map_shards",
    "parallel_daily_metrics",
    "parallel_night_win_counts",
    "parallel_sessionize_events",
    "plan_for",
    "resolve_workers",
    "use_serial",
]

#: Forces the sequential shard walk regardless of ``workers``.
ENV_SERIAL = "REPRO_ANALYSIS_SERIAL"


def use_serial() -> bool:
    """Whether ``REPRO_ANALYSIS_SERIAL=1`` forces the sequential walk.

    Read at call time so tests (and users) can flip the environment
    variable between calls without reimporting.
    """
    return os.environ.get(ENV_SERIAL) == "1"


def resolve_workers(workers: int | str | None) -> int:
    """Resolve a ``workers`` request to a concrete worker count.

    ``None``, ``0`` and ``"auto"`` resolve to the CPU count; anything
    else must be a positive integer and passes through.
    """
    if workers in (None, 0, "auto"):
        return max(1, os.cpu_count() or 1)
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    return count


@dataclass(frozen=True)
class ShardPlan:
    """Everything a pool worker needs to re-open one run's shards.

    Plain picklable pieces only — the run directory and the layout
    facts a worker needs to call :func:`repro.io.columnar.open_shard`
    itself.  Feed objects never cross the process boundary.
    """

    directory: str
    num_shards: int
    num_days: int
    segments: tuple[tuple[int, int], ...] | None
    has_events: bool


def plan_for(feeds) -> ShardPlan | None:
    """A :class:`ShardPlan` for this bundle, or ``None`` if ineligible.

    Eligible bundles back onto a *committed* columnar run: the bundle
    records its source directory, its mobility view is sharded with no
    pending (uncommitted) writer, the oracle environment flags are off,
    and the directory's manifest still describes a columnar layout with
    the same shard count.  Callers fall back to the serial walk on
    ``None`` — the parallel path is an optimisation, never a
    requirement.
    """
    import json

    directory = getattr(feeds, "source_directory", None)
    mobility = feeds.mobility
    shards = getattr(mobility, "shards", None)
    if directory is None or shards is None:
        return None
    from repro.io import columnar

    if columnar.use_naive() or use_serial():
        return None
    if getattr(mobility, "pending_writer", None) is not None:
        return None
    try:
        manifest = json.loads(
            (Path(directory) / "manifest.json").read_text(encoding="utf-8")
        )
    except (OSError, ValueError):
        return None
    block = manifest.get("feeds") or {}
    if block.get("layout") != "columnar":
        return None
    if int(block.get("num_shards", 0)) != len(shards):
        return None
    raw_segments = block.get("segments")
    segments = (
        tuple((int(start), int(days)) for start, days in raw_segments)
        if raw_segments
        else None
    )
    signaling = getattr(feeds, "signaling", None)
    has_events = bool(block.get("events")) and signaling is not None
    if has_events and getattr(signaling, "pending_writer", None) is not None:
        if not signaling.pending_writer.committed:
            has_events = False
    return ShardPlan(
        directory=str(directory),
        num_shards=len(shards),
        num_days=int(manifest.get("num_days", mobility.num_days)),
        segments=segments,
        has_events=has_events,
    )


# -- worker side ------------------------------------------------------------
# Workers open their own maps once per process via the pool initializer
# and serve any number of shard tasks from them.  Mirrors the engine's
# pool plumbing: when the coordinator has telemetry enabled, each
# worker records into its own recorder and ships a snapshot back with
# every payload; the recorder is reset at the start of every task so a
# failed attempt's partial telemetry never rides home on a later task.


@dataclass
class _WorkerState:
    """Per-process cache of opened shard maps and context arrays."""

    plan: ShardPlan
    site_lats: np.ndarray | None
    site_lons: np.ndarray | None
    shards: dict = field(default_factory=dict)
    events: object | None = None

    def shard(self, index: int):
        from repro.io import columnar

        shard = self.shards.get(index)
        if shard is None:
            shard = columnar.open_shard(
                self.plan.directory,
                index,
                lazy=True,
                segments=(
                    list(self.plan.segments) if self.plan.segments else None
                ),
            )
            self.shards[index] = shard
        return shard

    def event_feed(self):
        from repro.io import columnar

        if self.events is None:
            if not self.plan.has_events:
                raise ValueError(
                    "shard plan records no committed event partition"
                )
            self.events = columnar.open_events(
                self.plan.directory,
                self.plan.num_shards,
                self.plan.num_days,
                lazy=True,
            )
        return self.events


_WORKER_STATE: _WorkerState | None = None


class _PoolLost(Exception):
    """Internal: the process pool died or never started — degrade."""


def _worker_init(
    plan: ShardPlan,
    site_lats: np.ndarray | None,
    site_lons: np.ndarray | None,
    record_telemetry: bool = False,
) -> None:  # pragma: no cover - runs in pool workers
    global _WORKER_STATE
    _WORKER_STATE = _WorkerState(plan, site_lats, site_lons)
    if record_telemetry:
        telemetry.enable()


def _worker_run(task: tuple):  # pragma: no cover - runs in pool workers
    """Run one shard task in a pool worker; returns (payload, snapshot)."""
    assert _WORKER_STATE is not None, "pool worker not initialized"
    recorder = telemetry.active()
    if recorder is not None:
        recorder.reset()
    payload = _run_task(_WORKER_STATE, task)
    snapshot = None
    if recorder is not None:
        snapshot = recorder.snapshot()
        recorder.reset()
    return payload, snapshot


def _run_task(state: _WorkerState, task: tuple):
    """Dispatch one ``(name, shard_index, kwargs)`` task.

    The single executable form of a shard task, shared verbatim by the
    pool workers and the in-process degraded path — the fallback is
    bitwise identical because it *is* the same code.
    """
    name, shard_index, kwargs = task
    return _TASKS[name](state, shard_index, **kwargs)


def _task_metrics(
    state: _WorkerState,
    shard_index: int,
    *,
    gyration_mode: str,
    top_towers: int,
    batch_days: int | None,
    day_lo: int,
    day_hi: int,
):
    from repro.core.statistics import shard_metric_blocks

    shard = state.shard(shard_index)
    if shard.num_rows == 0:
        return None
    telemetry.count("store.shards_streamed", 1)
    entropy, gyration = shard_metric_blocks(
        shard,
        state.site_lats,
        state.site_lons,
        gyration_mode=gyration_mode,
        top_towers=top_towers,
        batch_days=batch_days,
        day_lo=day_lo,
        day_hi=day_hi,
    )
    return shard.rows, entropy, gyration


def _task_night_counts(
    state: _WorkerState, shard_index: int, *, window_days: list[int]
):
    from repro.core.home import shard_night_win_counts

    shard = state.shard(shard_index)
    if shard.num_rows == 0:
        return None
    telemetry.count("store.shards_streamed", 1)
    counts = shard_night_win_counts(
        shard, np.asarray(window_days, dtype=np.int64)
    )
    return shard.rows, counts


def _task_sessionize_events(
    state: _WorkerState, shard_index: int, *, day: int, day_end_s: float
):
    from repro.core.sessionize import sessionize_events

    events = state.event_feed()
    frame = events.shard_day(shard_index, int(day))
    return sessionize_events(frame, day_end_s=day_end_s)


_TASKS = {
    "metrics": _task_metrics,
    "night_counts": _task_night_counts,
    "sessionize_events": _task_sessionize_events,
}


# -- coordinator side -------------------------------------------------------


def map_shards(
    plan: ShardPlan,
    tasks: list[tuple],
    *,
    workers: int,
    site_lats: np.ndarray | None = None,
    site_lons: np.ndarray | None = None,
    span_name: str = "analysis_fanout",
) -> list:
    """Run per-shard ``tasks`` over ``plan``, preserving task order.

    Each task is ``(task_name, shard_index, kwargs)``.  With
    ``workers`` > 1 (and the serial oracle off) the tasks run in a
    process pool whose initializer hands every worker the plan — the
    workers open their own shard maps.  A pool that cannot start or
    dies degrades to executing the identical task functions in-process
    (counted as ``analysis.pool_degraded``); results are bitwise the
    same either way.  Worker telemetry snapshots are absorbed under the
    dispatching span, and every merged payload counts
    ``analysis.worker_merge``.
    """
    if not tasks:
        return []
    workers = max(1, min(int(workers), len(tasks)))
    with telemetry.span(span_name) as span:
        telemetry.count("analysis.shards_dispatched", len(tasks))
        results = None
        if workers > 1 and not use_serial():
            try:
                results = _map_pool(
                    plan, tasks, workers, site_lats, site_lons, span
                )
            except _PoolLost:
                telemetry.count("analysis.pool_degraded", 1)
                results = None
        if results is None:
            state = _WorkerState(plan, site_lats, site_lons)
            results = [_run_task(state, task) for task in tasks]
            telemetry.count("analysis.worker_merge", len(tasks))
    return results


def _map_pool(
    plan: ShardPlan,
    tasks: list[tuple],
    workers: int,
    site_lats: np.ndarray | None,
    site_lons: np.ndarray | None,
    span,
) -> list:
    from concurrent.futures import FIRST_COMPLETED, wait
    from concurrent.futures.process import BrokenProcessPool

    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(plan, site_lats, site_lons, telemetry.enabled()),
        ) as pool:
            pending = {
                pool.submit(_worker_run, task): position
                for position, task in enumerate(tasks)
            }
            results: list = [None] * len(tasks)
            while pending:
                done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    position = pending.pop(future)
                    try:
                        payload, snapshot = future.result()
                    except BrokenProcessPool as err:
                        raise _PoolLost from err
                    if snapshot is not None:
                        telemetry.absorb(snapshot, prefix=span.path)
                    telemetry.count("analysis.worker_merge", 1)
                    results[position] = payload
            return results
    except _PoolLost:
        raise
    except (OSError, ValueError, RuntimeError, ImportError) as err:
        # The pool itself is unusable (could not start, lost its
        # semaphores, a task raised, ...) — degrade to in-process
        # execution of the same task functions; genuine task errors
        # re-raise there with a usable traceback.
        raise _PoolLost from err


def parallel_daily_metrics(
    feeds,
    plan: ShardPlan,
    *,
    gyration_mode: str,
    top_towers: int,
    batch_days: int | None,
    day_range: tuple[int, int] | None,
    workers: int,
):
    """Per-shard metric blocks across the pool, scattered associatively.

    Bitwise identical to
    :func:`repro.core.statistics.compute_daily_metrics`'s serial walk:
    every worker runs the same
    :func:`~repro.core.statistics.shard_metric_blocks` kernel and the
    merge is a scatter into disjoint population rows, so shard order
    and worker count cannot affect a single byte.
    """
    from repro.core.statistics import (
        MobilityDailyMetrics,
        _normalize_day_range,
    )

    mobility = feeds.mobility
    day_lo, day_hi = _normalize_day_range(day_range, mobility.num_days)
    num_days = day_hi - day_lo
    num_users = mobility.num_users
    entropy = np.empty((num_days, num_users), dtype=np.float32)
    gyration = np.empty((num_days, num_users), dtype=np.float32)
    metrics = MobilityDailyMetrics(
        user_ids=mobility.user_ids,
        entropy=entropy,
        gyration_km=gyration,
    )
    if num_days == 0 or num_users == 0:
        return metrics
    site_lats, site_lons = feeds.site_locations()
    kwargs = dict(
        gyration_mode=gyration_mode,
        top_towers=top_towers,
        batch_days=batch_days,
        day_lo=day_lo,
        day_hi=day_hi,
    )
    tasks = [
        ("metrics", shard.index, kwargs)
        for shard in mobility.shards
        if shard.num_rows
    ]
    for payload in map_shards(
        plan,
        tasks,
        workers=workers,
        site_lats=site_lats,
        site_lons=site_lons,
    ):
        if payload is None:
            continue
        rows, entropy_block, gyration_block = payload
        entropy[:, rows] = entropy_block
        gyration[:, rows] = gyration_block
    return metrics


def parallel_night_win_counts(
    feeds,
    plan: ShardPlan,
    window_days: np.ndarray,
    *,
    workers: int,
) -> np.ndarray:
    """Per-shard night-win partials across the pool.

    Same kernel (:func:`repro.core.home.shard_night_win_counts`), same
    disjoint-row scatter — bitwise identical to the serial walk for
    every worker count.
    """
    mobility = feeds.mobility
    num_users = mobility.num_users
    k = mobility.anchor_sites.shape[1]
    win_counts = np.zeros((num_users, k), dtype=np.int64)
    window = [int(day) for day in np.asarray(window_days).ravel()]
    tasks = [
        ("night_counts", shard.index, {"window_days": window})
        for shard in mobility.shards
        if shard.num_rows
    ]
    for payload in map_shards(plan, tasks, workers=workers):
        if payload is None:
            continue
        rows, counts = payload
        win_counts[rows] = counts
    return win_counts


# -- figure-chain fan-out ---------------------------------------------------
# The study's figure chains are CPU-bound numpy reductions; a thread
# pool leaves most of the arithmetic serialized behind the GIL.  When a
# run is persisted with an artifact cache, the chains can instead run
# in pool workers that rebuild a study of their own — the initializer
# loads the run lazily and attaches the same content-addressed cache,
# so every artifact a worker computes lands in the shared on-disk store
# and the coordinator's accessors read it back as cache hits (bitwise
# identical to computing in-process, by the cache round-trip contract).

_FIGURE_STUDY = None


def _figure_worker_init(
    run_directory: str, gyration_mode: str
) -> None:  # pragma: no cover - runs in pool workers
    global _FIGURE_STUDY
    from repro.analysis.cache import ArtifactCache
    from repro.core.study import CovidImpactStudy
    from repro.io.store import load_feeds

    feeds = load_feeds(run_directory, lazy=True)
    cache = ArtifactCache.for_feeds(run_directory, feeds)
    _FIGURE_STUDY = CovidImpactStudy(
        feeds,
        gyration_mode=gyration_mode,
        cache=cache,
        parallel=False,
    )


def _figure_worker_run(
    chain: tuple[str, ...]
) -> tuple[str, ...]:  # pragma: no cover - runs in pool workers
    assert _FIGURE_STUDY is not None, "figure worker not initialized"
    for name in chain:
        getattr(_FIGURE_STUDY, name)()
    return chain


def map_figure_chains(
    run_directory: str,
    gyration_mode: str,
    chains: list[tuple[str, ...]],
    *,
    workers: int,
) -> bool:
    """Warm the artifact cache by running figure chains in pool workers.

    Returns ``True`` when every chain completed (the coordinator's
    accessors then serve from the shared cache) and ``False`` when the
    pool was unusable or any chain failed — the caller falls back to
    its thread fan-out, where a genuine computation error re-raises
    with a usable traceback.
    """
    if not chains:
        return True
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        with ProcessPoolExecutor(
            max_workers=max(1, min(int(workers), len(chains))),
            initializer=_figure_worker_init,
            initargs=(str(run_directory), gyration_mode),
        ) as pool:
            futures = [
                pool.submit(_figure_worker_run, tuple(chain))
                for chain in chains
            ]
            for future in futures:
                future.result()
        return True
    except Exception:
        # Unusable pool (BrokenProcessPool, could not start) or a chain
        # that raised — either way the thread fallback redoes the work.
        return False


def parallel_sessionize_events(
    feeds,
    plan: ShardPlan,
    day: int,
    *,
    day_end_s: float | None = None,
    workers: int,
):
    """Sessionize one day's event partition across the pool.

    Each worker reduces its own shard's events
    (:func:`repro.core.sessionize.sessionize_events` on a windowed map
    of that shard's day slice) and the coordinator merges with the
    stable user-partitioned sort — bitwise identical to
    :func:`repro.core.sessionize.sessionize_events_stream` over the
    same chunks, which is itself bitwise identical to sessionizing the
    assembled day.
    """
    from repro.core.sessionize import (
        DAY_SECONDS,
        _merge_user_partitioned,
    )
    from repro.frames import Frame

    if not plan.has_events:
        raise ValueError(
            "run has no committed signalling-event partition to sessionize"
        )
    if day_end_s is None:
        day_end_s = DAY_SECONDS
    kwargs = {"day": int(day), "day_end_s": float(day_end_s)}
    tasks = [
        ("sessionize_events", index, kwargs)
        for index in range(plan.num_shards)
    ]
    pieces = [
        payload
        for payload in map_shards(plan, tasks, workers=workers)
        if payload is not None
    ]
    empty = Frame(
        {
            "user_id": np.empty(0, dtype=np.int64),
            "site_id": np.empty(0, dtype=np.int64),
            "dwell_s": np.empty(0, dtype=np.float64),
        }
    )
    return _merge_user_partitioned(pieces, empty)
