"""Analysis-side infrastructure: the persistent artifact cache.

:mod:`repro.core` computes the paper's artifacts; this package makes
recomputing them across processes unnecessary.  See
:mod:`repro.analysis.cache` for the content-addressed store that
:class:`~repro.core.study.CovidImpactStudy`, :mod:`repro.api` and the
CLI share, :mod:`repro.analysis.mobility` for the segment-composed
incremental analytics live runs re-key it with, and
:mod:`repro.analysis.parallel` for the process pool that fans the
shard-streaming kernels out across workers.
"""

from repro.analysis.cache import (
    CODE_EPOCHS,
    DEFAULT_GYRATION_MODE,
    ArtifactCache,
    artifact_key,
    report_params,
    summary_params,
)
from repro.analysis.mobility import (
    incremental_daily_metrics,
    incremental_homes,
    incremental_labeled_kpis,
)
from repro.analysis.parallel import (
    ShardPlan,
    parallel_daily_metrics,
    parallel_night_win_counts,
    parallel_sessionize_events,
    plan_for,
    resolve_workers,
)

__all__ = [
    "CODE_EPOCHS",
    "DEFAULT_GYRATION_MODE",
    "ArtifactCache",
    "ShardPlan",
    "artifact_key",
    "incremental_daily_metrics",
    "incremental_homes",
    "incremental_labeled_kpis",
    "parallel_daily_metrics",
    "parallel_night_win_counts",
    "parallel_sessionize_events",
    "plan_for",
    "report_params",
    "resolve_workers",
    "summary_params",
]
