"""One front door for the simulate → persist → analyze lifecycle.

Historically, driving a run meant importing from three modules —
``Simulator`` from :mod:`repro.simulation.engine`,
``save_feeds``/``load_feeds`` from :mod:`repro.io`, and
``CovidImpactStudy`` from :mod:`repro.core` — and wiring them together
by hand.  This module folds that lifecycle into a single :class:`Run`
handle:

>>> from repro import api  # doctest: +SKIP
>>> run = api.simulate(SimulationConfig.small(), "runs/s")  # doctest: +SKIP
>>> run.study().summary()["voice_volume_peak_pct"]  # doctest: +SKIP
143.5
>>> again = api.Run.open("runs/s", lazy=True)  # doctest: +SKIP

- :func:`simulate` runs the engine; given a directory it checkpoints
  into and persists to it (crash-safe by default — see
  :mod:`repro.simulation.checkpoint`).  With ``days=N`` it simulates
  only the first N study days and leaves a *live* run;
- :meth:`Run.open` reopens a persisted run (``lazy=True`` memory-maps
  the mobility partition); :meth:`Run.save` persists (or re-homes)
  one; :meth:`Run.study` hands back a cached
  :class:`~repro.core.study.CovidImpactStudy`;
- :meth:`Run.advance` extends a live run day-at-a-time: it simulates
  the next window on the same engine, appends it to the run directory
  through a crash-safe commit (:func:`repro.io.append_feeds`), and
  re-analyzes incrementally — bitwise-identical, at every step, to a
  from-scratch run of the same length.  :meth:`Run.frozen` reports
  whether the configured horizon has been reached;
- :func:`resume` (and :meth:`Run.resume`) completes a run whose
  producing process died, from its per-day checkpoints, bitwise
  identical to an uninterrupted run.

Everything raises :class:`~repro.io.store.RunStoreError` subtypes with
the offending file named, so a broken run directory is a one-line
diagnosis rather than a pickle traceback.

Deprecated aliases (each emits :class:`DeprecationWarning` and will be
removed in a future release): ``Run.load`` / :func:`load` →
:meth:`Run.open`; ``simulate(out=...)`` → ``simulate(directory=...)``;
``experiment(workdir=...)`` → ``experiment(directory=...)``.
"""

from __future__ import annotations

import warnings
from pathlib import Path

__all__ = ["Run", "experiment", "load", "resume", "simulate"]

#: Configuration flags whose outputs never reach the run directory —
#: a live run would silently diverge from its persisted form, so
#: day-at-a-time mode refuses them up front.
_LIVE_INCOMPATIBLE_FLAGS = (
    "emit_signaling",
    "keep_hourly_kpis",
    "keep_sector_kpis",
    "keep_bin_dwell",
)


def _reject_live_config(config) -> None:
    heavy = [
        name
        for name in _LIVE_INCOMPATIBLE_FLAGS
        if getattr(config, name, False)
    ]
    if heavy:
        raise ValueError(
            "live (day-at-a-time) runs persist every produced feed, but "
            f"{', '.join(heavy)} outputs are never stored in the run "
            "directory; disable them or simulate the whole window at once"
        )


class Run:
    """A simulation run: its feeds, and (optionally) its home directory.

    Construct through :func:`simulate`, :meth:`open`, or
    :func:`resume` rather than directly.  The handle is cheap: the
    analysis object is built lazily and cached.  A run persisted with
    fewer days than its configured horizon is *live* —
    :meth:`advance` extends it in place until :meth:`frozen`.
    """

    def __init__(
        self,
        feeds,
        directory: str | Path | None = None,
        *,
        lazy: bool = False,
    ) -> None:
        if feeds is None:
            raise ValueError("a Run wraps a produced DataFeeds bundle")
        self._feeds = feeds
        self._directory = None if directory is None else Path(directory)
        self._lazy = bool(lazy)
        self._study = None

    def __repr__(self) -> str:
        home = "in memory" if self._directory is None else self._directory
        span = (
            f"{self.days} days"
            if self.frozen()
            else f"{self.days}/{self.horizon} days (live)"
        )
        return f"Run({self._feeds.num_users} users x {span}, {home})"

    # -- state -------------------------------------------------------------
    @property
    def feeds(self):
        """The :class:`~repro.simulation.feeds.DataFeeds` bundle."""
        return self._feeds

    @property
    def config(self):
        """The configuration that produced the run."""
        return self._feeds.config

    @property
    def directory(self) -> Path | None:
        """Where the run is persisted (``None`` for in-memory runs)."""
        return self._directory

    @property
    def days(self) -> int:
        """Days simulated so far (equals :attr:`horizon` once frozen)."""
        return int(self._feeds.mobility.num_days)

    @property
    def horizon(self) -> int:
        """The configured study length in days."""
        return int(self._feeds.config.calendar.num_days)

    def frozen(self) -> bool:
        """Whether the run has reached its configured horizon.

        A frozen run is a finished study — byte-identical on disk to a
        single whole-window :func:`simulate` — and can no longer be
        :meth:`advance`\\ d.
        """
        return self.days >= self.horizon

    # -- lifecycle ---------------------------------------------------------
    @classmethod
    def open(cls, directory: str | Path, *, lazy: bool = False) -> "Run":
        """Open a persisted run directory (finished or live).

        With ``lazy=True`` the mobility feed is memory-mapped shard by
        shard instead of materialized (see
        :func:`repro.io.store.load_feeds`): analysis streams it with
        bounded peak memory, which is how million-agent runs are meant
        to be opened.

        Raises :class:`~repro.io.store.RunStoreError` when the
        directory is missing, interrupted (use :func:`resume`), or
        corrupt — naming the offending file.
        """
        from repro.io import load_feeds

        return cls(load_feeds(directory, lazy=lazy), directory, lazy=lazy)

    @classmethod
    def load(cls, directory: str | Path, *, lazy: bool = False) -> "Run":
        """Deprecated alias of :meth:`open`."""
        warnings.warn(
            "Run.load(...) is deprecated and will be removed in a future "
            "release; use Run.open(directory, lazy=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return cls.open(directory, lazy=lazy)

    def save(self, directory: str | Path | None = None) -> Path:
        """Persist the run (defaults to the directory it came from)."""
        from repro.io import save_feeds

        target = self._directory if directory is None else Path(directory)
        if target is None:
            raise ValueError(
                "this run has no home directory; pass one to save(...)"
            )
        path = save_feeds(self._feeds, target)
        self._directory = path
        return path

    def resume(self) -> "Run":
        """No-op for a completed run handle (kept for lifecycle symmetry).

        The useful form is the module-level :func:`resume`, which
        completes an *interrupted* directory; a :class:`Run` instance
        always wraps finished feeds already.
        """
        return self

    def advance(
        self, days: int = 1, *, checkpoint: bool = True, progress=None
    ) -> "Run":
        """Simulate and append the next ``days`` study days in place.

        The engine runs only the window ``[self.days, self.days+days)``
        — restoring the coordinator's sequential state (RNG streams,
        voice-interconnect state machine, download baseline) from the
        live state persisted in the manifest — and the result is
        appended to the run directory through
        :func:`repro.io.append_feeds`: new dwell segment files and
        day-count-versioned KPI tables land first, then the manifest is
        atomically rewritten as the single commit point.  A crash at
        any moment leaves the directory loadable at its previous day
        count, and re-calling ``advance`` restores any checkpointed
        window days (``checkpoint=True``, the default) instead of
        recomputing them.

        Incremental analytics: appending invalidates only whole-window
        cache artifacts (their digest-derived keys change); per-range
        artifacts of the existing prefix keep their keys and are reused
        by the next :meth:`study` (:mod:`repro.analysis.mobility`).

        At every intermediate length the *loaded* state — feeds,
        tables, analysis — is bitwise-identical to a from-scratch run
        of the same day count (the on-disk segment layout records the
        advance history; that is what makes appends cheap).  Reaching
        the horizon compacts the partition to the canonical
        single-segment layout, so a frozen live run's directory is
        byte-identical to a whole-window :func:`simulate`'s.

        Returns ``self`` (the handle now wraps the extended feeds; the
        memoized study is reset).
        """
        if self._directory is None:
            raise ValueError(
                "an in-memory run cannot be advanced; persist it first "
                "(simulate(config, directory, days=...))"
            )
        if days < 1:
            raise ValueError("advance needs days >= 1")
        if self.frozen():
            raise ValueError(
                f"run is frozen at its {self.horizon}-day horizon"
            )
        _reject_live_config(self.config)
        from repro.io import append_feeds, load_feeds
        from repro.simulation.engine import Simulator

        day_start = self.days
        day_stop = min(day_start + int(days), self.horizon)
        chunk = Simulator(self.config).run(
            progress=progress,
            checkpoint_dir=self._directory if checkpoint else None,
            stream_dir=self._directory,
            day_start=day_start,
            day_stop=day_stop,
            live=self._feeds.live,
        )
        append_feeds(self._feeds, chunk, self._directory)
        _clear_checkpoints(self._directory)
        self._feeds = load_feeds(self._directory, lazy=self._lazy)
        self._study = None
        if self.frozen():
            # Compact the segmented partition and versioned tables back
            # to the canonical single-segment layout: the frozen
            # directory becomes byte-identical to a batch run's.
            self.save()
            self._feeds = load_feeds(self._directory, lazy=self._lazy)
        return self

    # -- analysis ----------------------------------------------------------
    def study(self, *, cache: bool | object = True, workers=None):
        """The paper's analysis over this run's feeds (cached).

        For a persisted run the study automatically attaches the run's
        :class:`~repro.analysis.cache.ArtifactCache` (keyed on the feed
        digests recorded in its manifest), so figure payloads survive
        across processes.  Pass ``cache=False`` for a purely in-memory
        study, or a ready :class:`~repro.analysis.cache.ArtifactCache`
        to use instead.  ``workers`` (> 1, or ``"auto"``) fans the
        shard-streaming kernels and the figure chains across a process
        pool (:mod:`repro.analysis.parallel`) — results are bitwise
        identical for every value.  The study handle is memoized per
        run state: the ``cache``/``workers`` arguments only matter on
        the first call, and :meth:`advance` resets the memo (the feeds
        changed).
        """
        if self._study is None:
            from repro.core import CovidImpactStudy

            attached = None
            if cache is True:
                if self._directory is not None:
                    from repro.analysis.cache import ArtifactCache

                    attached = ArtifactCache.for_feeds(
                        self._directory, self._feeds
                    )
            elif cache:
                attached = cache
            self._study = CovidImpactStudy(
                self._feeds, cache=attached, workers=workers
            )
        return self._study


def simulate(
    config=None,
    directory: str | Path | None = None,
    *,
    days: int | None = None,
    checkpoint: bool = True,
    progress=None,
    out: str | Path | None = None,
) -> Run:
    """Run the simulator and return a :class:`Run` handle.

    With a ``directory``, the run checkpoints into and persists to it:
    if the process dies mid-run, :func:`resume` completes it from the
    last finished day.  Checkpoints are removed once the run is saved;
    pass ``checkpoint=False`` to skip them entirely.

    ``days=N`` simulates only the first N study days and persists a
    *live* run (requires a ``directory`` — the partial state must be
    stored to be extendable); grow it with :meth:`Run.advance`.  At
    every length the loaded feeds and analysis are bitwise what any
    other advance path to the same day count produces, and the frozen
    directory is byte-identical to a whole-window simulate's.

    ``out=`` is a deprecated alias of ``directory=``.
    """
    from repro.simulation.config import SimulationConfig
    from repro.simulation.engine import Simulator

    if out is not None:
        warnings.warn(
            "simulate(out=...) is deprecated and will be removed in a "
            "future release; pass directory= (second positional "
            "argument)",
            DeprecationWarning,
            stacklevel=2,
        )
        if directory is not None:
            raise TypeError(
                "pass either directory= or the deprecated out=, not both"
            )
        directory = out

    config = config or SimulationConfig()
    simulator = Simulator(config)
    if days is not None:
        days = int(days)
        horizon = int(config.calendar.num_days)
        if directory is None:
            raise ValueError(
                "simulate(days=...) starts a live run, which must be "
                "persisted to be advanced; pass a directory"
            )
        if not 1 <= days <= horizon:
            raise ValueError(
                f"days must be in [1, {horizon}] (the configured "
                f"horizon), got {days}"
            )
        if days < horizon:
            _reject_live_config(config)
    if directory is None:
        return Run(simulator.run(progress=progress))
    feeds = simulator.run(
        progress=progress,
        checkpoint_dir=directory if checkpoint else None,
        # Mobility days land directly in the run directory's columnar
        # partition (bounded peak memory); save() below commits them
        # in place.  REPRO_STORE_NAIVE=1 disables the streaming.
        stream_dir=directory,
        day_stop=days,
    )
    run = Run(feeds, directory)
    run.save()
    _clear_checkpoints(directory)
    if days is not None and days < int(config.calendar.num_days):
        # Live runs are re-opened so the handle's analysis calendar
        # covers exactly the simulated prefix (load_feeds truncates
        # it; the configuration keeps the full horizon for advance()).
        return Run.open(directory)
    return run


def resume(directory: str | Path, progress=None) -> Run:
    """Complete an interrupted run directory and return its handle.

    Restores every checkpointed shard-day, computes the missing ones
    (bitwise-identical to an uninterrupted run), persists the feeds,
    and removes the checkpoints.  A directory that already holds a
    loadable run — finished, *or* a live run whose ``advance`` was
    killed mid-window — is simply opened: a torn advance never touches
    the committed manifest, so the run reopens at its previous day
    count and the next :meth:`Run.advance` restores the checkpointed
    window days.  (An initial ``simulate(days=...)`` killed before its
    first save has no manifest yet; its checkpoints resume to the full
    horizon.)
    """
    from repro.io.store import RunStoreError
    from repro.simulation.checkpoint import CheckpointStore
    from repro.simulation.engine import Simulator

    try:
        return Run.open(directory)
    except RunStoreError:
        # Not loadable as a finished run: resume if there are
        # checkpoints to resume from, otherwise surface the precise
        # load error (missing/corrupt file) untouched.
        if not CheckpointStore.present(directory):
            raise
    feeds = Simulator.resume(directory, progress=progress, stream=True)
    run = Run(feeds, directory)
    run.save()
    _clear_checkpoints(directory)
    return run


def load(directory: str | Path, *, lazy: bool = False) -> Run:
    """Deprecated alias of :meth:`Run.open`."""
    warnings.warn(
        "api.load(...) is deprecated and will be removed in a future "
        "release; use Run.open(directory, lazy=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return Run.open(directory, lazy=lazy)


def experiment(
    scenarios,
    *,
    seeds=(2020,),
    preset: str = "small",
    num_users: int | None = None,
    baseline: str = "baseline_lockdown",
    directory: str | Path | None = None,
    progress=None,
    workdir: str | Path | None = None,
):
    """Run a (scenario × seed) grid and return its ``GridResult``.

    A thin wrapper over :func:`repro.experiments.run_grid` so a
    comparative sweep is one call from the front door:

    >>> from repro import api  # doctest: +SKIP
    >>> result = api.experiment(
    ...     ["no_intervention", "second_wave"],
    ...     seeds=[1, 2], preset="tiny",
    ...     directory="runs/grid")  # doctest: +SKIP
    >>> print(result.report())  # doctest: +SKIP

    Scenario names come from the catalog
    (:func:`repro.datasets.scenario_names`); ``directory`` enables
    persistent cells that warm reruns reload instead of re-simulating.
    ``workdir=`` is a deprecated alias of ``directory=``.
    """
    from repro.experiments import ExperimentSpec, run_grid

    if workdir is not None:
        warnings.warn(
            "experiment(workdir=...) is deprecated and will be removed "
            "in a future release; pass directory=",
            DeprecationWarning,
            stacklevel=2,
        )
        if directory is not None:
            raise TypeError(
                "pass either directory= or the deprecated workdir=, "
                "not both"
            )
        directory = workdir

    spec = ExperimentSpec(
        scenarios=tuple(scenarios),
        seeds=tuple(seeds),
        preset=preset,
        num_users=num_users,
        baseline=baseline,
        workdir=directory,
    )
    return run_grid(spec, progress=progress)


def _clear_checkpoints(directory: str | Path) -> None:
    from repro.simulation.checkpoint import CheckpointStore

    if CheckpointStore.present(directory):
        CheckpointStore.open(directory).clear()
