"""One front door for the simulate → persist → analyze lifecycle.

Historically, driving a run meant importing from three modules —
``Simulator`` from :mod:`repro.simulation.engine`,
``save_feeds``/``load_feeds`` from :mod:`repro.io`, and
``CovidImpactStudy`` from :mod:`repro.core` — and wiring them together
by hand.  This module folds that lifecycle into a single :class:`Run`
handle:

>>> from repro import api  # doctest: +SKIP
>>> run = api.simulate(SimulationConfig.small(), out="runs/s")  # doctest: +SKIP
>>> run.study().summary()["voice_volume_peak_pct"]  # doctest: +SKIP
143.5
>>> again = api.Run.load("runs/s")  # doctest: +SKIP

- :func:`simulate` runs the engine; given ``out`` it checkpoints into
  and persists to that directory (crash-safe by default — see
  :mod:`repro.simulation.checkpoint`);
- :meth:`Run.load` reopens a persisted run; :meth:`Run.save` persists
  (or re-homes) one; :meth:`Run.study` hands back a cached
  :class:`~repro.core.study.CovidImpactStudy`;
- :func:`resume` (and :meth:`Run.resume`) completes a run whose
  producing process died, from its per-day checkpoints, bitwise
  identical to an uninterrupted run.

Everything raises :class:`~repro.io.store.RunStoreError` subtypes with
the offending file named, so a broken run directory is a one-line
diagnosis rather than a pickle traceback.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["Run", "experiment", "load", "resume", "simulate"]


class Run:
    """A completed simulation run: its feeds, and (optionally) its home.

    Construct through :func:`simulate`, :meth:`load`, or
    :func:`resume` rather than directly.  The handle is cheap: the
    analysis object is built lazily and cached.
    """

    def __init__(self, feeds, directory: str | Path | None = None) -> None:
        if feeds is None:
            raise ValueError("a Run wraps a produced DataFeeds bundle")
        self._feeds = feeds
        self._directory = None if directory is None else Path(directory)
        self._study = None

    def __repr__(self) -> str:
        home = "in memory" if self._directory is None else self._directory
        return (
            f"Run({self._feeds.num_users} users x "
            f"{self._feeds.calendar.num_days} days, {home})"
        )

    # -- state -------------------------------------------------------------
    @property
    def feeds(self):
        """The :class:`~repro.simulation.feeds.DataFeeds` bundle."""
        return self._feeds

    @property
    def config(self):
        """The configuration that produced the run."""
        return self._feeds.config

    @property
    def directory(self) -> Path | None:
        """Where the run is persisted (``None`` for in-memory runs)."""
        return self._directory

    # -- lifecycle ---------------------------------------------------------
    @classmethod
    def load(cls, directory: str | Path, *, lazy: bool = False) -> "Run":
        """Reopen a persisted run directory.

        With ``lazy=True`` the mobility feed is memory-mapped shard by
        shard instead of materialized (see
        :func:`repro.io.store.load_feeds`): analysis streams it with
        bounded peak memory, which is how million-agent runs are meant
        to be opened.

        Raises :class:`~repro.io.store.RunStoreError` when the
        directory is missing, interrupted (use :func:`resume`), or
        corrupt — naming the offending file.
        """
        from repro.io import load_feeds

        return cls(load_feeds(directory, lazy=lazy), directory)

    def save(self, directory: str | Path | None = None) -> Path:
        """Persist the run (defaults to the directory it came from)."""
        from repro.io import save_feeds

        target = self._directory if directory is None else Path(directory)
        if target is None:
            raise ValueError(
                "this run has no home directory; pass one to save(...)"
            )
        path = save_feeds(self._feeds, target)
        self._directory = path
        return path

    def resume(self) -> "Run":
        """No-op for a completed run handle (kept for lifecycle symmetry).

        The useful form is the module-level :func:`resume`, which
        completes an *interrupted* directory; a :class:`Run` instance
        always wraps finished feeds already.
        """
        return self

    # -- analysis ----------------------------------------------------------
    def study(self, *, cache: bool | object = True):
        """The paper's analysis over this run's feeds (cached).

        For a persisted run the study automatically attaches the run's
        :class:`~repro.analysis.cache.ArtifactCache` (keyed on the feed
        digests recorded in its manifest), so figure payloads survive
        across processes.  Pass ``cache=False`` for a purely in-memory
        study, or a ready :class:`~repro.analysis.cache.ArtifactCache`
        to use instead.  The study handle is memoized: the ``cache``
        argument only matters on the first call.
        """
        if self._study is None:
            from repro.core import CovidImpactStudy

            attached = None
            if cache is True:
                if self._directory is not None:
                    from repro.analysis.cache import ArtifactCache

                    attached = ArtifactCache.for_feeds(
                        self._directory, self._feeds
                    )
            elif cache:
                attached = cache
            self._study = CovidImpactStudy(self._feeds, cache=attached)
        return self._study


def simulate(
    config=None,
    out: str | Path | None = None,
    *,
    checkpoint: bool = True,
    progress=None,
) -> Run:
    """Run the simulator and return a :class:`Run` handle.

    With ``out``, the run checkpoints into and persists to that
    directory: if the process dies mid-run, :func:`resume` completes it
    from the last finished day.  Checkpoints are removed once the run
    is saved; pass ``checkpoint=False`` to skip them entirely.
    """
    from repro.simulation.config import SimulationConfig
    from repro.simulation.engine import Simulator

    simulator = Simulator(config or SimulationConfig())
    if out is None:
        return Run(simulator.run(progress=progress))
    feeds = simulator.run(
        progress=progress,
        checkpoint_dir=out if checkpoint else None,
        # Mobility days land directly in the run directory's columnar
        # partition (bounded peak memory); save() below commits them
        # in place.  REPRO_STORE_NAIVE=1 disables the streaming.
        stream_dir=out,
    )
    run = Run(feeds, out)
    run.save()
    _clear_checkpoints(out)
    return run


def resume(directory: str | Path, progress=None) -> Run:
    """Complete an interrupted run directory and return its handle.

    Restores every checkpointed shard-day, computes the missing ones
    (bitwise-identical to an uninterrupted run), persists the feeds,
    and removes the checkpoints.  A directory that already holds a
    finished run is simply loaded.
    """
    from repro.io.store import RunStoreError
    from repro.simulation.checkpoint import CheckpointStore
    from repro.simulation.engine import Simulator

    try:
        return Run.load(directory)
    except RunStoreError:
        # Not loadable as a finished run: resume if there are
        # checkpoints to resume from, otherwise surface the precise
        # load error (missing/corrupt file) untouched.
        if not CheckpointStore.present(directory):
            raise
    feeds = Simulator.resume(directory, progress=progress, stream=True)
    run = Run(feeds, directory)
    run.save()
    _clear_checkpoints(directory)
    return run


def load(directory: str | Path, *, lazy: bool = False) -> Run:
    """Alias for :meth:`Run.load`."""
    return Run.load(directory, lazy=lazy)


def experiment(
    scenarios,
    *,
    seeds=(2020,),
    preset: str = "small",
    num_users: int | None = None,
    baseline: str = "baseline_lockdown",
    workdir: str | Path | None = None,
    progress=None,
):
    """Run a (scenario × seed) grid and return its ``GridResult``.

    A thin wrapper over :func:`repro.experiments.run_grid` so a
    comparative sweep is one call from the front door:

    >>> from repro import api  # doctest: +SKIP
    >>> result = api.experiment(
    ...     ["no_intervention", "second_wave"],
    ...     seeds=[1, 2], preset="tiny",
    ...     workdir="runs/grid")  # doctest: +SKIP
    >>> print(result.report())  # doctest: +SKIP

    Scenario names come from the catalog
    (:func:`repro.datasets.scenario_names`); ``workdir`` enables
    persistent cells that warm reruns reload instead of re-simulating.
    """
    from repro.experiments import ExperimentSpec, run_grid

    spec = ExperimentSpec(
        scenarios=tuple(scenarios),
        seeds=tuple(seeds),
        preset=preset,
        num_users=num_users,
        baseline=baseline,
        workdir=workdir,
    )
    return run_grid(spec, progress=progress)


def _clear_checkpoints(directory: str | Path) -> None:
    from repro.simulation.checkpoint import CheckpointStore

    if CheckpointStore.present(directory):
        CheckpointStore.open(directory).clear()
