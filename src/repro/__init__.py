"""repro — a full reproduction of Lutu et al., IMC 2020.

"A Characterization of the COVID-19 Pandemic Impact on a Mobile Network
Operator Traffic" measured, on O2 UK's production network, how the 2020
lockdown changed people's mobility and the radio network's behaviour.
This package rebuilds the entire stack — a synthetic UK, a cellular
network, a subscriber base, an agent population living through the
pandemic timeline — and runs the paper's genuine analysis pipeline on
top of it.

Packages
--------
``repro.frames``
    Columnar dataframe core (numpy-backed; no pandas dependency).
``repro.geo``
    Synthetic UK geography: counties, LADs, postcode districts, 2011
    OAC geodemographic clusters, census populations.
``repro.network``
    Cellular substrate: radio topology, TAC device catalog, subscriber
    base, signalling, LTE scheduler, inter-MNO voice interconnect.
``repro.mobility``
    Pandemic timeline, agents and anchor places, behaviour model, daily
    dwell matrices, epidemic case curve.
``repro.traffic``
    Application mix, WiFi offload, data demand and VoLTE voice models.
``repro.simulation``
    Study calendar, configuration, the engine producing the data feeds.
``repro.core``
    The paper's analysis: mobility metrics, home detection, every
    figure, plus the extended toolkit (significance tests, mobility
    graphs, predictability bounds, paper-target verdicts).
``repro.datasets`` / ``repro.io`` / ``repro.cli``
    The declarative scenario catalog and canned builders (incl.
    counterfactuals), run persistence and the ``python -m repro``
    command line.
``repro.experiments``
    Scenario-grid runner and cross-scenario comparative reports (see
    ``docs/SCENARIOS.md``).

Quickstart
----------
>>> from repro import api, SimulationConfig  # doctest: +SKIP
>>> run = api.simulate(SimulationConfig.small(), "runs/s")  # doctest: +SKIP
>>> run.study().summary()["voice_volume_peak_pct"]  # doctest: +SKIP
143.5
>>> run = api.Run.open("runs/s", lazy=True)  # doctest: +SKIP

The :mod:`repro.api` facade (:class:`~repro.api.Run`) unifies the whole
lifecycle — simulate, open, advance (live day-at-a-time runs), resume,
analyze — over the lower layers, which remain importable individually.
"""

from repro.simulation.config import SimulationConfig

__version__ = "1.0.0"

__all__ = [
    "CovidImpactStudy",
    "Run",
    "SimulationConfig",
    "Simulator",
    "api",
    "experiments",
    "__version__",
]


def __getattr__(name: str):
    # Lazy: these pull in the full stack.
    if name == "CovidImpactStudy":
        from repro.core.study import CovidImpactStudy

        return CovidImpactStudy
    if name == "Simulator":
        from repro.simulation.engine import Simulator

        return Simulator
    if name == "Run":
        from repro.api import Run

        return Run
    if name == "api":
        import repro.api

        return repro.api
    if name == "experiments":
        import repro.experiments

        return repro.experiments
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
