"""The declarative scenario grammar, and configuration digests.

A scenario is a *specification*, not a hand-edited configuration: a
named, documented sequence of :class:`PhaseSpec` rows (dated policy
phases with restriction levels, optional weekend overrides, adherence
decay and per-region tier multipliers) plus optional voice/demand
settings and raw :class:`~repro.simulation.config.SimulationConfig`
field overrides.  :meth:`ScenarioSpec.compile` turns the spec into a
ready configuration on top of any base preset:

>>> import datetime as dt
>>> from repro.datasets.spec import PhaseSpec, ScenarioSpec
>>> from repro.simulation.config import SimulationConfig
>>> spec = ScenarioSpec(
...     name="demo",
...     description="one hard lockdown, nothing else",
...     phases=(PhaseSpec(dt.date(2020, 3, 23), "lockdown", 1.0),),
... )
>>> config = spec.compile(SimulationConfig.tiny())
>>> config.timeline.restriction_level(dt.date(2020, 4, 1))
1.0
>>> config.timeline.restriction_level(dt.date(2020, 3, 1))
0.0

Because scenarios must be reproducible and cacheable, the module also
owns the *configuration digest*: a canonical SHA-256 over every field
of a :class:`SimulationConfig` (dataclasses walked structurally, dates
and enums normalized, dict keys sorted).  Two configurations digest
equal iff they describe the same simulation, which is what the run
cache (:mod:`repro.datasets.runcache`) and the experiment grid
(:mod:`repro.experiments`) key on.
"""

from __future__ import annotations

import dataclasses
import datetime as dt
import enum
import hashlib
import json
from dataclasses import dataclass, field

from repro.mobility.pandemic import Phase
from repro.mobility.schedule import PolicyWindow, ScheduledTimeline
from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.traffic.demand import DemandSettings
from repro.traffic.voice import VoiceSettings

__all__ = [
    "PhaseSpec",
    "ScenarioSpec",
    "config_digest",
    "config_to_jsonable",
]


@dataclass(frozen=True)
class PhaseSpec:
    """One declarative timeline row: "from this date, this regime".

    ``phase`` is a :class:`~repro.mobility.pandemic.Phase` value name
    (``"lockdown"``, ``"closures"``, ...) — strings keep specs
    literal-friendly; the value is validated at construction.  The row
    is in force from ``start`` until the next row's start.  ``level``
    is the national restriction level in [0, 1]; ``weekend_level``
    overrides it on Saturdays/Sundays; ``decay_per_day`` fades
    adherence within the row; ``regions`` maps region name →
    multiplier on the level (unnamed regions keep 1.0).
    """

    start: dt.date
    phase: str
    level: float
    weekend_level: float | None = None
    decay_per_day: float = 0.0
    regions: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        Phase(self.phase)  # raises ValueError on an unknown label

    def window(self) -> PolicyWindow:
        """The runtime :class:`PolicyWindow` this row compiles to."""
        return PolicyWindow(
            start=self.start,
            phase=Phase(self.phase),
            level=self.level,
            weekend_level=self.weekend_level,
            decay_per_day=self.decay_per_day,
            regional=self.regions,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, parameterized scenario: phases × levels × regions.

    ``phases=()`` means "the calibrated real 2020 timeline" (the
    configuration's ``timeline`` field stays ``None``).  ``voice`` /
    ``demand`` replace the corresponding settings wholesale when
    given; ``overrides`` is a tuple of extra ``(field, value)``
    :class:`SimulationConfig` overrides applied last.
    """

    name: str
    description: str
    phases: tuple[PhaseSpec, ...] = ()
    voice: VoiceSettings | None = None
    demand: DemandSettings | None = None
    overrides: tuple[tuple[str, object], ...] = ()

    def timeline(self) -> ScheduledTimeline | None:
        """The compiled timeline (``None`` = the real 2020 one)."""
        if not self.phases:
            return None
        return ScheduledTimeline(
            tuple(phase.window() for phase in self.phases)
        )

    def compile(self, base: SimulationConfig) -> SimulationConfig:
        """The spec applied on top of a base configuration."""
        changes: dict[str, object] = {}
        timeline = self.timeline()
        if timeline is not None:
            changes["timeline"] = timeline
        if self.voice is not None:
            changes["voice"] = self.voice
        if self.demand is not None:
            changes["demand"] = self.demand
        changes.update(dict(self.overrides))
        return base.with_overrides(**changes) if changes else base


# ---------------------------------------------------------------------------
# Canonical configuration digests.
# ---------------------------------------------------------------------------
def _jsonable(value):
    """Normalize any configuration value into plain JSON data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "value": value.value}
    if isinstance(value, (dt.date, dt.datetime)):
        return {"__date__": value.isoformat()}
    if isinstance(value, StudyCalendar):
        return {
            "__calendar__": True,
            "first_day": value.first_day.isoformat(),
            "num_days": value.num_days,
            "key_dates": _jsonable(value.key_dates),
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        encoded = [
            [json.dumps(_jsonable(key), sort_keys=True), _jsonable(item)]
            for key, item in value.items()
        ]
        return {"__dict__": sorted(encoded, key=lambda pair: pair[0])}
    raise TypeError(
        f"cannot canonicalize configuration value of type "
        f"{type(value).__name__}"
    )


def config_to_jsonable(config: SimulationConfig) -> dict:
    """A canonical, JSON-serializable view of a configuration."""
    return _jsonable(config)


def config_digest(config: SimulationConfig) -> str:
    """SHA-256 over the canonical form of a configuration.

    Stable across processes and Python versions: equal configurations
    (including their nested timelines, settings and calendar) digest
    equal; any field change — a seed, a phase level, a regional tier —
    produces a different digest.
    """
    material = json.dumps(config_to_jsonable(config), sort_keys=True)
    return hashlib.sha256(material.encode()).hexdigest()
