"""In-process run memo: never simulate the same configuration twice.

The canned scenario builders (:mod:`repro.datasets.scenarios`) and the
in-memory experiment grid (:mod:`repro.experiments.grid`) are called
repeatedly from examples, doctests and tests — historically each call
paid a full simulation.  This module memoizes produced
:class:`~repro.simulation.feeds.DataFeeds` bundles per process, keyed
on the :func:`~repro.datasets.spec.config_digest` of the configuration,
so a repeated build is a dictionary lookup.

The memo is intentionally small (LRU, :data:`MEMO_CAPACITY` entries —
feeds bundles are big) and intentionally *shared*: callers receive the
same bundle object, exactly like the module-scoped fixtures the test
suite already shares.  Analysis never mutates feeds.  Telemetry counts
``datasets.runcache.hits`` / ``datasets.runcache.misses`` when enabled.

Persistent, cross-process reuse is the experiment grid's job
(:func:`repro.experiments.grid.run_grid` with a ``workdir``); this
cache only removes the *within-process* repetition.
"""

from __future__ import annotations

from collections import OrderedDict

from repro import telemetry
from repro.datasets.spec import config_digest
from repro.simulation.config import SimulationConfig

__all__ = ["MEMO_CAPACITY", "clear_memo", "memo_info", "simulate_cached"]

MEMO_CAPACITY = 8

_MEMO: OrderedDict[str, object] = OrderedDict()


def simulate_cached(config: SimulationConfig):
    """The feeds for ``config`` — simulated at most once per process.

    Returns the *shared* memoized bundle on a repeat call with an
    equal configuration (equality meaning an equal
    :func:`~repro.datasets.spec.config_digest`).
    """
    key = config_digest(config)
    if key in _MEMO:
        _MEMO.move_to_end(key)
        if telemetry.enabled():
            telemetry.count("datasets.runcache.hits")
        return _MEMO[key]
    if telemetry.enabled():
        telemetry.count("datasets.runcache.misses")
    from repro.simulation.engine import Simulator

    feeds = Simulator(config).run()
    _MEMO[key] = feeds
    while len(_MEMO) > MEMO_CAPACITY:
        _MEMO.popitem(last=False)
    return feeds


def clear_memo() -> None:
    """Drop every memoized run (tests, memory pressure)."""
    _MEMO.clear()


def memo_info() -> dict:
    """Entry count of the memo (observability/tests)."""
    return {"entries": len(_MEMO), "capacity": MEMO_CAPACITY}
