"""Scenario catalog and canned dataset builders.

Two surfaces live here:

- **The declarative scenario catalog** — named
  :class:`~repro.datasets.spec.ScenarioSpec` entries (phases × levels
  × regions) compiled into ready configurations by
  :func:`scenario_config` and fanned across grids by
  :mod:`repro.experiments`.  See ``docs/SCENARIOS.md`` for the
  grammar and the full catalog.
- **Classic one-call builders** returning ready
  :class:`~repro.simulation.feeds.DataFeeds` bundles, so examples and
  benchmarks never hand-roll configurations:

  - :func:`uk_default` — the full-scale study (the configuration
    behind EXPERIMENTS.md).
  - :func:`uk_small` / :func:`uk_tiny` — cheaper replicas for quick
    looks and CI.
  - :func:`london_focus` — boosts London sampling for the §5 analyses.
  - :func:`counterfactual_no_lockdown` — the same country without any
    intervention (an ablation: what the network would have seen).
  - :func:`counterfactual_no_ops_response` — the interconnect team
    never reacts (ablation for the §4.2 incident).

  Builders are memoized per process through
  :mod:`repro.datasets.runcache`, so repeated invocations (examples,
  doctests, tests) pay one simulation, not many.
"""

from repro.datasets.scenarios import (
    counterfactual_no_lockdown,
    counterfactual_no_ops_response,
    get_scenario,
    london_focus,
    register_scenario,
    scenario_config,
    scenario_feeds,
    scenario_names,
    uk_default,
    uk_small,
    uk_tiny,
)
from repro.datasets.spec import (
    PhaseSpec,
    ScenarioSpec,
    config_digest,
)

__all__ = [
    "PhaseSpec",
    "ScenarioSpec",
    "config_digest",
    "counterfactual_no_lockdown",
    "counterfactual_no_ops_response",
    "get_scenario",
    "london_focus",
    "register_scenario",
    "scenario_config",
    "scenario_feeds",
    "scenario_names",
    "uk_default",
    "uk_small",
    "uk_tiny",
]
