"""Canned scenarios: one-call dataset builders for examples and benches.

Each builder returns a ready :class:`~repro.simulation.feeds.DataFeeds`
bundle (running the simulator under a documented configuration), so
examples and benchmarks never hand-roll configurations:

- :func:`uk_default` — the full-scale study (the configuration behind
  EXPERIMENTS.md).
- :func:`uk_small` / :func:`uk_tiny` — cheaper replicas for quick looks
  and CI.
- :func:`london_focus` — boosts London sampling for the §5 analyses.
- :func:`counterfactual_no_lockdown` — the same country without any
  intervention (an ablation: what the network would have seen).
- :func:`counterfactual_no_ops_response` — the interconnect team never
  reacts (ablation for the §4.2 incident).
"""

from repro.datasets.scenarios import (
    counterfactual_no_lockdown,
    counterfactual_no_ops_response,
    london_focus,
    uk_default,
    uk_small,
    uk_tiny,
)

__all__ = [
    "counterfactual_no_lockdown",
    "counterfactual_no_ops_response",
    "london_focus",
    "uk_default",
    "uk_small",
    "uk_tiny",
]
