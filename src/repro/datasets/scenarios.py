"""The scenario catalog: named, declarative counterfactual worlds.

The paper characterizes one timeline — the UK national lockdown.  This
module grows that single point into a *catalog*: each entry is a
:class:`~repro.datasets.spec.ScenarioSpec` (a declarative sequence of
dated policy phases with levels, weekend overrides and regional tiers,
plus optional voice/demand settings) registered under a stable name.
``scenario_config(name, ...)`` compiles any entry into a ready
:class:`~repro.simulation.config.SimulationConfig`; the experiment
grid (:mod:`repro.experiments`) fans whole catalogs across seeds and
populations.

Catalog
-------
``baseline_lockdown``
    The calibrated real 2020 sequence (the paper's world).
``no_intervention``
    The epidemic happens but no order changes behaviour: restriction
    stays 0, no voice surge, no news-driven demand bump.
``second_wave``
    The real escalation, a fast April reopening, then a second
    stay-at-home order from 27 April.
``regional_tiers``
    The national framework applied as regional tiers from lockdown
    day: London/North West fully restricted, rural regions under
    much lighter measures.
``school_closures_only``
    Escalation stops at school/venue closures — the stay-at-home
    order never comes.
``weekend_curfew``
    Moderate weekday distancing plus a hard weekend curfew.
``mass_event_spike``
    No intervention at all, but a one-week mass gathering mid-March
    spikes traffic and voice demand.
``no_ops_response``
    The real timeline, but the interconnect team never reacts to the
    voice surge (the §4.2 ablation).

The classic one-call builders (``uk_tiny``, ``uk_default``,
``counterfactual_no_lockdown``, ...) remain, now routed through the
in-process run memo (:mod:`repro.datasets.runcache`): repeated example
and doctest invocations no longer pay repeated simulations.
"""

from __future__ import annotations

import datetime as dt

from repro.datasets.spec import PhaseSpec, ScenarioSpec
from repro.mobility.pandemic import PandemicTimeline, Phase
from repro.simulation.config import SimulationConfig
from repro.simulation.feeds import DataFeeds
from repro.traffic.demand import DemandSettings
from repro.traffic.voice import VoiceSettings

__all__ = [
    "register_scenario",
    "scenario_names",
    "get_scenario",
    "scenario_config",
    "scenario_feeds",
    "uk_default",
    "uk_small",
    "uk_tiny",
    "london_focus",
    "counterfactual_no_lockdown",
    "counterfactual_no_ops_response",
    "no_lockdown_config",
]

_PRESETS = {
    "tiny": SimulationConfig.tiny,
    "small": SimulationConfig.small,
    "default": SimulationConfig.default,
}

#: Settings for worlds where behaviour never changes: every phase
#: multiplier flat at 1, no relaxation dynamics, no news-driven bump.
_FLAT_VOICE = VoiceSettings(
    outbreak_multiplier=1.0,
    declared_multiplier=1.0,
    distancing_multiplier=1.0,
    closures_multiplier=1.0,
    lockdown_multiplier=1.0,
    relaxation_floor=1.0,
)
_FLAT_DEMAND = DemandSettings(news_bump={})

# The real intervention dates (see repro.simulation.clock.KeyDates and
# repro.mobility.pandemic), reused by the declarative variants.
_OUTBREAK = dt.date(2020, 3, 2)
_DECLARED = dt.date(2020, 3, 11)
_DISTANCING = dt.date(2020, 3, 16)
_CLOSURES = dt.date(2020, 3, 20)
_LOCKDOWN = dt.date(2020, 3, 23)
_RELAXATION = dt.date(2020, 4, 6)

# The real escalation sequence as declarative rows (levels mirror
# PandemicTimeline's defaults), shared by scenarios that begin like
# 2020 did and then diverge.
_REAL_ESCALATION = (
    PhaseSpec(_OUTBREAK, "outbreak", 0.0),
    PhaseSpec(_DECLARED, "declared", 0.12),
    PhaseSpec(_DISTANCING, "distancing", 0.45),
    PhaseSpec(_CLOSURES, "closures", 0.62),
)

_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a spec to the catalog (rejecting duplicate names)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def scenario_names() -> tuple[str, ...]:
    """Every catalog entry name, sorted."""
    return tuple(sorted(_REGISTRY))


def get_scenario(name: str) -> ScenarioSpec:
    """The spec registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise KeyError(
            f"unknown scenario {name!r}; catalog: {known}"
        ) from None


def scenario_config(
    name: str,
    *,
    preset: str = "default",
    seed: int = 2020,
    num_users: int | None = None,
    base: SimulationConfig | None = None,
) -> SimulationConfig:
    """Compile a catalog entry into a ready configuration.

    ``preset``/``seed``/``num_users`` pick the base world exactly as
    the CLI does; pass ``base`` to compile onto an explicit
    configuration instead.  Deterministic: equal arguments produce
    configurations with equal :func:`~repro.datasets.spec.
    config_digest`.
    """
    if base is None:
        try:
            factory = _PRESETS[preset]
        except KeyError:
            raise ValueError(
                f"unknown preset {preset!r}; expected one of "
                f"{', '.join(sorted(_PRESETS))}"
            ) from None
        base = factory(seed=seed)
        if num_users is not None:
            base = base.with_overrides(
                num_users=num_users,
                target_site_count=max(100, num_users // 18),
            )
    return get_scenario(name).compile(base)


def scenario_feeds(
    name: str,
    *,
    preset: str = "default",
    seed: int = 2020,
    num_users: int | None = None,
) -> DataFeeds:
    """Simulate a catalog entry (through the in-process run memo)."""
    from repro.datasets.runcache import simulate_cached

    return simulate_cached(
        scenario_config(
            name, preset=preset, seed=seed, num_users=num_users
        )
    )


# ---------------------------------------------------------------------------
# The catalog.
# ---------------------------------------------------------------------------
register_scenario(
    ScenarioSpec(
        name="baseline_lockdown",
        description=(
            "The calibrated real 2020 sequence: escalation from 2 "
            "March, stay-at-home order on 23 March, slow adherence "
            "decay from 6 April."
        ),
        # phases=() = the calibrated PandemicTimeline, untouched.
    )
)

register_scenario(
    ScenarioSpec(
        name="no_intervention",
        description=(
            "The epidemic happens but behaviour never changes: zero "
            "restriction throughout, no voice surge, no news-driven "
            "demand bump."
        ),
        phases=(PhaseSpec(dt.date(2020, 2, 3), "pre-pandemic", 0.0),),
        voice=_FLAT_VOICE,
        demand=_FLAT_DEMAND,
    )
)

register_scenario(
    ScenarioSpec(
        name="second_wave",
        description=(
            "The real escalation and lockdown, a fast April "
            "reopening, then a second stay-at-home order from 27 "
            "April."
        ),
        phases=_REAL_ESCALATION
        + (
            PhaseSpec(_LOCKDOWN, "lockdown", 1.0),
            PhaseSpec(_RELAXATION, "relaxation", 1.0,
                      decay_per_day=0.02),
            PhaseSpec(dt.date(2020, 4, 20), "relaxation", 0.30),
            PhaseSpec(dt.date(2020, 4, 27), "lockdown", 0.95),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="regional_tiers",
        description=(
            "Tiered measures from lockdown day: London and the North "
            "West fully restricted, the rural south and the devolved "
            "nations under much lighter rules."
        ),
        phases=_REAL_ESCALATION
        + (
            PhaseSpec(
                _LOCKDOWN, "lockdown", 1.0,
                regions=(
                    ("East of England", 0.70),
                    ("North East", 0.80),
                    ("Scotland", 0.60),
                    ("South East", 0.70),
                    ("South West", 0.55),
                    ("Wales", 0.60),
                    ("West Midlands", 0.95),
                    ("Yorkshire and the Humber", 0.90),
                ),
            ),
            PhaseSpec(
                _RELAXATION, "relaxation", 1.0,
                decay_per_day=0.004,
                regions=(
                    ("East of England", 0.70),
                    ("North East", 0.80),
                    ("Scotland", 0.60),
                    ("South East", 0.70),
                    ("South West", 0.55),
                    ("Wales", 0.60),
                    ("West Midlands", 0.95),
                    ("Yorkshire and the Humber", 0.90),
                ),
            ),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="school_closures_only",
        description=(
            "Escalation stops at school/venue closures on 20 March — "
            "the stay-at-home order never comes, and adherence fades "
            "slowly."
        ),
        phases=(
            PhaseSpec(_OUTBREAK, "outbreak", 0.0),
            PhaseSpec(_DECLARED, "declared", 0.12),
            PhaseSpec(_DISTANCING, "distancing", 0.30),
            PhaseSpec(_CLOSURES, "closures", 0.55,
                      decay_per_day=0.002),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="weekend_curfew",
        description=(
            "Moderate weekday distancing from 23 March with a hard "
            "stay-at-home curfew on Saturdays and Sundays."
        ),
        phases=(
            PhaseSpec(_OUTBREAK, "outbreak", 0.0),
            PhaseSpec(_DECLARED, "declared", 0.12),
            PhaseSpec(_LOCKDOWN, "closures", 0.40,
                      weekend_level=0.95),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="mass_event_spike",
        description=(
            "No intervention at all, but a week-long mass gathering "
            "from 14 March spikes data and voice demand nationwide."
        ),
        phases=(
            PhaseSpec(dt.date(2020, 2, 3), "pre-pandemic", 0.0),
            PhaseSpec(dt.date(2020, 3, 14), "outbreak", 0.0),
            PhaseSpec(dt.date(2020, 3, 22), "pre-pandemic", 0.0),
        ),
        voice=VoiceSettings(
            outbreak_multiplier=1.45,
            declared_multiplier=1.0,
            distancing_multiplier=1.0,
            closures_multiplier=1.0,
            lockdown_multiplier=1.0,
            relaxation_floor=1.0,
        ),
        demand=DemandSettings(news_bump={Phase.OUTBREAK: 1.35}),
    )
)

register_scenario(
    ScenarioSpec(
        name="no_ops_response",
        description=(
            "The real 2020 timeline, but the interconnect team never "
            "adds voice capacity (the §4.2 ablation)."
        ),
        overrides=(("interconnect_detection_days", 10_000),),
    )
)


# ---------------------------------------------------------------------------
# Classic one-call builders (memoized per process).
# ---------------------------------------------------------------------------
def _run(config: SimulationConfig) -> DataFeeds:
    from repro.datasets.runcache import simulate_cached

    return simulate_cached(config)


def uk_default(seed: int = 2020) -> DataFeeds:
    """The full-scale study configuration (~20k users, ~1k sites)."""
    return _run(SimulationConfig.default(seed=seed))


def uk_small(seed: int = 2020) -> DataFeeds:
    """A ~5k-user replica: right shapes, noisier slices."""
    return _run(SimulationConfig.small(seed=seed))


def uk_tiny(seed: int = 2020) -> DataFeeds:
    """A ~1.5k-user replica for smoke tests."""
    return _run(SimulationConfig.tiny(seed=seed))


def london_focus(seed: int = 2020, num_users: int = 20_000) -> DataFeeds:
    """More users for the London analyses (§5): denser sampling.

    Keeps the national geography (the analysis still needs national
    baselines) but increases the subscriber count so the per-district
    London slices have more cells' worth of users behind them.
    """
    config = SimulationConfig(
        num_users=num_users,
        target_site_count=max(800, num_users // 16),
        seed=seed,
    )
    return _run(config)


def no_lockdown_config(
    base: SimulationConfig | None = None,
) -> SimulationConfig:
    """Configuration for the no-intervention counterfactual.

    The epidemic still happens (cases grow identically) but no
    announcement or order changes behaviour: the policy timeline is
    flattened to zero restriction, the voice surge never happens, and
    the news-driven demand bump is removed.  (The registry's
    ``no_intervention`` entry is the declarative equivalent.)
    """
    base = base or SimulationConfig.default()
    flat_timeline = PandemicTimeline(
        declared_level=0.0,
        distancing_level=0.0,
        closures_level=0.0,
        lockdown_level=0.0,
        adherence_decay_per_day=0.0,
    )
    return base.with_overrides(
        timeline=flat_timeline, voice=_FLAT_VOICE, demand=_FLAT_DEMAND
    )


def counterfactual_no_lockdown(seed: int = 2020) -> DataFeeds:
    """Run the no-intervention counterfactual at default scale."""
    return _run(no_lockdown_config(SimulationConfig.default(seed=seed)))


def counterfactual_no_ops_response(seed: int = 2020) -> DataFeeds:
    """§4.2 ablation: the interconnect team never adds capacity."""
    config = SimulationConfig.default(seed=seed).with_overrides(
        interconnect_detection_days=10_000
    )
    return _run(config)
