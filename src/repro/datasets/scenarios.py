"""Scenario builders."""

from __future__ import annotations

from repro.mobility.pandemic import PandemicTimeline
from repro.simulation.config import SimulationConfig
from repro.simulation.feeds import DataFeeds
from repro.traffic.demand import DemandSettings
from repro.traffic.voice import VoiceSettings

__all__ = [
    "uk_default",
    "uk_small",
    "uk_tiny",
    "london_focus",
    "counterfactual_no_lockdown",
    "counterfactual_no_ops_response",
    "no_lockdown_config",
]


def _run(config: SimulationConfig) -> DataFeeds:
    from repro.simulation.engine import Simulator

    return Simulator(config).run()


def uk_default(seed: int = 2020) -> DataFeeds:
    """The full-scale study configuration (~20k users, ~1k sites)."""
    return _run(SimulationConfig.default(seed=seed))


def uk_small(seed: int = 2020) -> DataFeeds:
    """A ~5k-user replica: right shapes, noisier slices."""
    return _run(SimulationConfig.small(seed=seed))


def uk_tiny(seed: int = 2020) -> DataFeeds:
    """A ~1.5k-user replica for smoke tests."""
    return _run(SimulationConfig.tiny(seed=seed))


def london_focus(seed: int = 2020, num_users: int = 20_000) -> DataFeeds:
    """More users for the London analyses (§5): denser sampling.

    Keeps the national geography (the analysis still needs national
    baselines) but increases the subscriber count so the per-district
    London slices have more cells' worth of users behind them.
    """
    config = SimulationConfig(
        num_users=num_users,
        target_site_count=max(800, num_users // 16),
        seed=seed,
    )
    return _run(config)


def no_lockdown_config(
    base: SimulationConfig | None = None,
) -> SimulationConfig:
    """Configuration for the no-intervention counterfactual.

    The epidemic still happens (cases grow identically) but no
    announcement or order changes behaviour: the policy timeline is
    flattened to zero restriction, the voice surge never happens, and
    the news-driven demand bump is removed.
    """
    base = base or SimulationConfig.default()
    flat_timeline = PandemicTimeline(
        declared_level=0.0,
        distancing_level=0.0,
        closures_level=0.0,
        lockdown_level=0.0,
        adherence_decay_per_day=0.0,
    )
    flat_voice = VoiceSettings(
        outbreak_multiplier=1.0,
        declared_multiplier=1.0,
        distancing_multiplier=1.0,
        closures_multiplier=1.0,
        lockdown_multiplier=1.0,
        relaxation_floor=1.0,
    )
    flat_demand = DemandSettings(news_bump={})
    return base.with_overrides(
        timeline=flat_timeline, voice=flat_voice, demand=flat_demand
    )


def counterfactual_no_lockdown(seed: int = 2020) -> DataFeeds:
    """Run the no-intervention counterfactual at default scale."""
    return _run(no_lockdown_config(SimulationConfig.default(seed=seed)))


def counterfactual_no_ops_response(seed: int = 2020) -> DataFeeds:
    """§4.2 ablation: the interconnect team never adds capacity."""
    config = SimulationConfig.default(seed=seed).with_overrides(
        interconnect_detection_days=10_000
    )
    return _run(config)
