"""Collation and regression-checking of benchmark result JSONs.

Every benchmark under ``benchmarks/`` records its measurements as a
JSON file in ``benchmarks/results/`` — heterogeneous trees of timings,
speedups, byte counts and bitwise-identity gates.  This module walks
those trees into one flat, typed metric list so that:

- ``python -m repro bench-summary`` renders the whole performance
  trajectory as a single markdown table (CI uploads it as an
  artifact), and
- ``bench-summary --check BASELINE_DIR`` compares a fresh set of
  results against the committed baselines with a tolerance band,
  failing on *gate* regressions only: speedup-type metrics (the
  quantities the benchmarks assert on) and boolean identity gates.
  Absolute timings are machine-dependent and stay informational.

Metric kinds are inferred from key names, so new benchmarks join the
table without registration:

========== ============================================= ============
kind       key pattern                                   checked?
========== ============================================= ============
speedup    ``*speedup*``, ``*_per_sec``, ``*_ratio``     yes (band)
           (except rss/memory ratios, which are
           lower-is-better and budgeted by their bench)
gate       ``bitwise_identical``, ``byte_identical``,    yes (flip)
           ``streaming``, other booleans
seconds    ``*_seconds``                                 no
bytes      ``*_bytes``                                   no
count      other numeric leaves                          no
========== ============================================= ============
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "MetricRow",
    "check_regressions",
    "collect_results",
    "metric_rows",
    "render_table",
    "summarize",
]

#: Keys that never make useful table rows (hashes, labels, prose).
_SKIP_SUFFIXES = ("_sha256", "_path", "_decision")
_SKIP_KEYS = {"auto_path"}


@dataclass(frozen=True)
class MetricRow:
    """One flattened benchmark measurement."""

    bench: str  # result file stem, e.g. "scale"
    metric: str  # dotted path inside the JSON, e.g. "smoke.analyze.x"
    kind: str  # speedup | gate | seconds | bytes | count
    value: float | bool

    @property
    def key(self) -> tuple[str, str]:
        return (self.bench, self.metric)

    @property
    def gated(self) -> bool:
        return self.kind in ("speedup", "gate")


def collect_results(directory: str | Path) -> dict[str, dict]:
    """Parse every ``*.json`` under ``directory``, keyed by file stem.

    Unreadable or non-object files are skipped — a half-written result
    must never break the summary of the others.
    """
    results: dict[str, dict] = {}
    path = Path(directory)
    if not path.is_dir():
        return results
    for file in sorted(path.glob("*.json")):
        try:
            payload = json.loads(file.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict):
            results[file.stem] = payload
    return results


def _kind_of(key: str, value) -> str | None:
    base = key.rsplit(".", 1)[-1]
    if base in _SKIP_KEYS or base.endswith(_SKIP_SUFFIXES):
        return None
    if isinstance(value, bool):
        return "gate"
    if not isinstance(value, (int, float)):
        return None
    if "speedup" in base or base.endswith(("_per_sec", "_ratio")):
        # Memory ratios (e.g. rss_payload_ratio) are lower-is-better;
        # gating them as speedups would flag improvements as
        # regressions.  The benchmarks assert their own budgets.
        if "rss" in base or "memory" in base:
            return "count"
        return "speedup"
    if base.endswith("_seconds"):
        return "seconds"
    if base.endswith("_bytes"):
        return "bytes"
    return "count"


def _walk(tree, prefix: str, bench: str, rows: list[MetricRow]) -> None:
    if isinstance(tree, dict):
        for key, value in tree.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                _walk(value, path, bench, rows)
                continue
            kind = _kind_of(path, value)
            if kind is not None:
                rows.append(MetricRow(bench, path, kind, value))
    elif isinstance(tree, list):
        for index, item in enumerate(tree):
            if isinstance(item, (dict, list)):
                # Sweeps label their entries; combine the human key
                # with every numeric discriminator so entries that
                # share a name (same operation, different size) still
                # get distinct metric paths.
                parts: list[str] = []
                if isinstance(item, dict):
                    for name in ("operation", "label", "name"):
                        if isinstance(item.get(name), str):
                            parts.append(item[name])
                            break
                    parts.extend(
                        f"{key}{item[key]}"
                        for key in ("num_shards", "workers", "rows")
                        if isinstance(item.get(key), (int, float))
                        and not isinstance(item.get(key), bool)
                    )
                suffix = "_".join(parts) or str(index)
                _walk(item, f"{prefix}[{suffix}]", bench, rows)


def metric_rows(results: dict[str, dict]) -> list[MetricRow]:
    """Flatten collected result trees into typed metric rows."""
    rows: list[MetricRow] = []
    for bench in sorted(results):
        _walk(results[bench], "", bench, rows)
    return rows


def _format_value(row: MetricRow) -> str:
    if row.kind == "gate":
        return "pass" if row.value else "FAIL"
    value = float(row.value)
    if row.kind == "bytes":
        return f"{value / (1024 * 1024):.1f} MiB"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.3f}"


def render_table(rows: list[MetricRow]) -> str:
    """The collated markdown trajectory table."""
    lines = [
        "| bench | metric | kind | gated | measured |",
        "| --- | --- | --- | --- | --- |",
    ]
    for row in rows:
        lines.append(
            f"| {row.bench} | {row.metric} | {row.kind} "
            f"| {'yes' if row.gated else ''} | {_format_value(row)} |"
        )
    return "\n".join(lines)


def summarize(directory: str | Path) -> str:
    """One-call collation: results directory → markdown table."""
    results = collect_results(directory)
    if not results:
        return f"no benchmark results under {directory}"
    rows = metric_rows(results)
    header = (
        f"# Benchmark trajectory\n\n"
        f"{len(results)} result files, {len(rows)} metrics "
        f"({sum(1 for row in rows if row.gated)} gated).\n"
    )
    return header + "\n" + render_table(rows)


def check_regressions(
    fresh: list[MetricRow],
    baseline: list[MetricRow],
    band_pct: float = 15.0,
) -> list[str]:
    """Gate regressions of ``fresh`` vs ``baseline``, as messages.

    Only gated kinds are compared: a speedup-type metric regresses when
    it drops more than ``band_pct`` percent below its committed
    baseline, and a boolean gate regresses when it flips from pass to
    fail.  Metrics present on only one side are ignored (benchmarks
    come and go); timings and byte counts are never compared.
    """
    by_key = {row.key: row for row in baseline}
    failures: list[str] = []
    for row in fresh:
        base = by_key.get(row.key)
        if base is None or not row.gated or not base.gated:
            continue
        if row.kind == "gate":
            if bool(base.value) and not bool(row.value):
                failures.append(
                    f"{row.bench}:{row.metric} flipped pass -> FAIL"
                )
        elif row.kind == "speedup":
            floor = float(base.value) * (1.0 - band_pct / 100.0)
            if float(row.value) < floor:
                failures.append(
                    f"{row.bench}:{row.metric} regressed to "
                    f"{float(row.value):.3f} (baseline "
                    f"{float(base.value):.3f}, floor {floor:.3f} at "
                    f"{band_pct:g}% band)"
                )
    return failures
