"""The simulator: builds the world and produces the data feeds.

One :class:`Simulator` run executes the full measurement-study
substrate:

1. build the synthetic UK, the radio deployment, the TAC catalog and
   the subscriber base;
2. derive the agent population (anchor places, traits) and behavioural
   models (pandemic timeline, demand, voice);
3. walk the calendar day by day: assemble dwell matrices, scatter
   presence/demand/voice onto cell sites, run the scheduler per hour,
   process the voice interconnect, and reduce hourly KPIs to the
   per-cell daily medians of §2.4;
4. return a :class:`~repro.simulation.feeds.DataFeeds` bundle.

The spatial scatters use ``np.bincount`` over the flattened
(user × anchor) axis, which keeps a ~20k-user, ~1k-site, 98-day run in
the tens of seconds on a laptop.
"""

from __future__ import annotations

import numpy as np

from dataclasses import dataclass

from repro.frames import Frame
from repro.geo.build import build_uk_geography
from repro.geo.nspl import PostcodeLookup
from repro.mobility.agents import AnchorSlot, NUM_ANCHORS, build_agents
from repro.mobility.behavior import BehaviorModel
from repro.mobility.epidemic import EpidemicCurve
from repro.mobility.pandemic import PandemicTimeline
from repro.mobility.trajectories import BIN_SECONDS, NUM_BINS, TrajectoryModel
from repro.network.devices import DeviceCatalog
from repro.network.interconnect import InterconnectSettings, VoiceInterconnect
from repro.network.kpi import KpiAccumulator
from repro.network.rat import RAT_PROFILES, Rat
from repro.network.scheduler import CellScheduler
from repro.network.signaling import DwellSegments, SignalingGenerator
from repro.network.subscribers import build_subscriber_base
from repro.network.topology import build_topology
from repro.simulation.config import SimulationConfig
from repro.simulation.feeds import DataFeeds, MobilityFeed
from repro.traffic.demand import DemandModel
from repro.traffic.profiles import (
    BIN_OF_HOUR,
    activity_hour_profile,
    HOURS_PER_DAY,
    hour_weights_within_bins,
    traffic_hour_profile,
    voice_hour_profile,
)
from repro.traffic.voice import VoiceModel

__all__ = ["Simulator", "World", "build_world"]

# Anchors at which the user is "at home" (WiFi available): the home
# tower and the relocation residence.
_HOME_LIKE_SLOTS = np.zeros(NUM_ANCHORS, dtype=bool)
_HOME_LIKE_SLOTS[[AnchorSlot.HOME, AnchorSlot.RELOC_PRIMARY,
                  AnchorSlot.RELOC_SECONDARY]] = True

_BASE_VOICE_UL_LOSS = 0.0035


@dataclass
class World:
    """The static objects a simulation is built from.

    Fully deterministic given the configuration — which is what lets
    :mod:`repro.io` reload persisted feeds without re-running the day
    loop: the world is rebuilt, the measured arrays are loaded.
    """

    config: SimulationConfig
    geography: object
    topology: object
    catalog: object
    base: object
    agents: object
    timeline: PandemicTimeline
    behavior: BehaviorModel
    trajectories: TrajectoryModel
    demand_model: DemandModel
    voice_model: VoiceModel
    scheduler: CellScheduler
    epidemic: EpidemicCurve


def build_world(config: SimulationConfig) -> World:
    """Deterministically build every static simulation object."""
    calendar = config.calendar
    geography = build_uk_geography(seed=config.seed)
    topology = build_topology(
        geography,
        target_site_count=config.target_site_count,
        seed=config.seed + 1,
        study_days=calendar.num_days,
    )
    catalog = DeviceCatalog.generate(seed=config.seed + 2)
    base = build_subscriber_base(
        geography,
        topology,
        catalog,
        num_users=config.num_users,
        roamer_share=config.roamer_share,
        m2m_share=config.m2m_share,
        market_share_noise=config.market_share_noise,
        seed=config.seed + 3,
    )
    agents = build_agents(geography, topology, base, seed=config.seed + 4)
    timeline = config.timeline or PandemicTimeline(
        key_dates=calendar.key_dates
    )
    behavior = BehaviorModel(
        agents, timeline, calendar,
        settings=config.behavior, seed=config.seed + 5,
    )
    return World(
        config=config,
        geography=geography,
        topology=topology,
        catalog=catalog,
        base=base,
        agents=agents,
        timeline=timeline,
        behavior=behavior,
        trajectories=TrajectoryModel(agents, behavior),
        demand_model=DemandModel(
            timeline, settings=config.demand, seed=config.seed + 6
        ),
        voice_model=VoiceModel(
            timeline, settings=config.voice, seed=config.seed + 7
        ),
        scheduler=CellScheduler(config.scheduler),
        epidemic=EpidemicCurve(),
    )


class Simulator:
    """End-to-end synthetic measurement-study run."""

    def __init__(self, config: SimulationConfig | None = None) -> None:
        self._config = config or SimulationConfig()

    @property
    def config(self) -> SimulationConfig:
        return self._config

    def run(self, progress=None) -> DataFeeds:
        """Execute the full simulation and return the data feeds.

        ``progress``, if given, is called as ``progress(day, num_days)``
        after each simulated day — used by the CLI to show a meter.
        """
        config = self._config
        calendar = config.calendar
        world = build_world(config)
        geography = world.geography
        topology = world.topology
        catalog = world.catalog
        base = world.base
        agents = world.agents
        trajectories = world.trajectories
        demand_model = world.demand_model
        voice_model = world.voice_model
        scheduler = world.scheduler
        epidemic = world.epidemic

        num_users = agents.num_users
        num_sites = topology.num_sites
        demand_mult = demand_model.user_demand_multipliers(num_users)
        voice_mult = voice_model.user_minute_multipliers(num_users)

        # Home-WiFi quality per user, from the home district's OAC
        # (drives how much at-home usage stays on cellular).
        from repro.geo.oac import OAC_DEFINITIONS

        wifi_by_district = np.array(
            [
                OAC_DEFINITIONS[district.oac].home_wifi_quality
                for district in geography.districts
            ]
        )
        wifi_quality = wifi_by_district[agents.home_district]

        # Per-user RAT connected-time shares (§2.4's 75%-on-4G).
        rat_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=config.seed, spawn_key=(9,))
        )
        rat_alphas = np.array(
            [RAT_PROFILES[rat].attach_share for rat in Rat]
        ) * 40.0
        rat_shares = rat_rng.dirichlet(rat_alphas, size=num_users)

        # Interconnect dimensioned against pre-pandemic voice volume.
        mb_dl, mb_ul = voice_model.volume_mb_per_minute()
        baseline_voice_mb = (
            voice_mult.sum()
            * voice_model.settings.base_minutes_per_day
            * (mb_dl + mb_ul)
        )
        interconnect_settings = InterconnectSettings(
            # The epsilon floor keeps degenerate worlds (no study users,
            # hence no baseline voice) constructible.
            capacity_mb_per_day=max(
                baseline_voice_mb
                * 0.55  # inter-MNO share of the offered load
                / config.interconnect_baseline_utilization,
                1e-6,
            ),
            detection_days=config.interconnect_detection_days,
            upgrade_factor=config.interconnect_upgrade_factor,
        )
        interconnect = VoiceInterconnect(interconnect_settings)

        # KPI accumulator over the 4G cell of every site.
        cell_of_site = np.array(
            [topology.site_to_4g_cell[s] for s in range(num_sites)],
            dtype=np.int64,
        )
        capacity_mbps = np.full(num_sites, 0.0)
        for cell in topology.cells:
            if cell.rat is Rat.LTE_4G:
                capacity_mbps[cell.site_id] = cell.capacity_mbps
        accumulator = KpiAccumulator(
            cell_ids=cell_of_site,
            postcodes=topology.site_postcodes,
            keep_hourly=config.keep_hourly_kpis,
        )

        mobility = MobilityFeed(
            user_ids=agents.user_ids,
            anchor_sites=agents.anchor_sites,
            bin_dwell=[] if config.keep_bin_dwell else None,
        )
        signaling_frames: dict[int, Frame] | None = (
            {} if config.emit_signaling else None
        )
        signaling_generator = SignalingGenerator()

        traffic_w = hour_weights_within_bins(traffic_hour_profile())
        act_profile = activity_hour_profile()
        voice_w = hour_weights_within_bins(voice_hour_profile())
        bin_traffic_share = np.add.reduceat(
            traffic_hour_profile(), np.arange(0, HOURS_PER_DAY, 4)
        )
        bin_voice_share = np.add.reduceat(
            voice_hour_profile(), np.arange(0, HOURS_PER_DAY, 4)
        )

        flat_sites = agents.anchor_sites.ravel()

        # Per-sector attachment: each (user, site) pair lands on a
        # stable sector of the site's 3-sector deployment.
        sector_rows: list[Frame] = []
        if config.keep_sector_kpis:
            user_grid = np.repeat(
                agents.user_ids[:, None], agents.anchor_sites.shape[1],
                axis=1,
            )
            sector_of_anchor = (
                user_grid * 7 + agents.anchor_sites * 13
            ) % 3
            flat_sectors = (
                agents.anchor_sites * 3 + sector_of_anchor
            ).ravel()
        rat_time_rows: list[dict] = []
        day_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=config.seed, spawn_key=(10,))
        )
        night_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=config.seed, spawn_key=(12,))
        )
        baseline_dl_total: float | None = None
        upgrade_day: int | None = None

        for day in range(calendar.num_days):
            date = calendar.date_of(day)
            dwell = trajectories.day_dwell(day)
            mobility.daily_dwell.append(
                dwell.daily_dwell().astype(np.float32)
            )
            # Nighttime observability: phones that stay idle all night
            # produce no signalling, so the probes cannot place them.
            night = dwell.nighttime_dwell().astype(np.float32)
            unobserved = (
                night_rng.random(num_users)
                >= config.night_observation_probability
            )
            night[unobserved] = 0.0
            mobility.night_dwell.append(night)
            if mobility.bin_dwell is not None:
                mobility.bin_dwell.append(dwell.dwell_s.astype(np.float32))

            params = demand_model.day_parameters(date)
            user_dl_mb = (
                demand_model.base_daily_dl_mb()
                * demand_mult
                * params.demand_multiplier
            )
            user_voice_min = (
                voice_model.settings.base_minutes_per_day
                * voice_mult
                * voice_model.minutes_multiplier(date)
            )
            home_cell_share, home_activity = params.blended_home_factors(
                wifi_quality
            )
            # (users × anchors) context factors: home-like slots get the
            # user's blended at-home factors, away slots are full cellular.
            cell_factor = np.where(
                _HOME_LIKE_SLOTS[None, :], home_cell_share[:, None], 1.0
            )
            act_factor = np.where(
                _HOME_LIKE_SLOTS[None, :], home_activity[:, None], 1.0
            )

            ul_ratio_factor = np.where(
                _HOME_LIKE_SLOTS, params.home_ul_dl_ratio,
                params.ul_dl_ratio,
            )
            presence = np.zeros((num_sites, NUM_BINS))
            activity = np.zeros((num_sites, NUM_BINS))
            dl_mb = np.zeros((num_sites, NUM_BINS))
            ul_mb = np.zeros((num_sites, NUM_BINS))
            voice_minutes = np.zeros((num_sites, NUM_BINS))
            for bin_index in range(NUM_BINS):
                bin_dwell = dwell.dwell_s[:, bin_index, :]
                share = bin_dwell / BIN_SECONDS
                presence[:, bin_index] = np.bincount(
                    flat_sites, weights=bin_dwell.ravel(),
                    minlength=num_sites,
                )
                activity[:, bin_index] = np.bincount(
                    flat_sites,
                    weights=(bin_dwell * act_factor).ravel(),
                    minlength=num_sites,
                )
                dl_weights = (
                    share
                    * user_dl_mb[:, None]
                    * bin_traffic_share[bin_index]
                    * cell_factor
                )
                dl_mb[:, bin_index] = np.bincount(
                    flat_sites, weights=dl_weights.ravel(),
                    minlength=num_sites,
                )
                ul_mb[:, bin_index] = np.bincount(
                    flat_sites,
                    weights=(dl_weights * ul_ratio_factor[None, :]).ravel(),
                    minlength=num_sites,
                )
                voice_weights = (
                    share
                    * user_voice_min[:, None]
                    * bin_voice_share[bin_index]
                )
                voice_minutes[:, bin_index] = np.bincount(
                    flat_sites, weights=voice_weights.ravel(),
                    minlength=num_sites,
                )

            # Topology snapshot: inactive sites carry no traffic today.
            active_sites = topology.snapshot(day)
            presence[~active_sites] = 0.0
            activity[~active_sites] = 0.0
            dl_mb[~active_sites] = 0.0
            ul_mb[~active_sites] = 0.0
            voice_minutes[~active_sites] = 0.0

            if config.keep_sector_kpis:
                daily_dwell_flat = dwell.daily_dwell().ravel()
                daily_dl_flat = (
                    dwell.daily_dwell() / 86_400.0
                    * user_dl_mb[:, None]
                    * cell_factor
                ).ravel()
                daily_voice_flat = (
                    dwell.daily_dwell() / 86_400.0
                    * user_voice_min[:, None]
                ).ravel()
                width = num_sites * 3
                sector_presence = np.bincount(
                    flat_sectors, weights=daily_dwell_flat,
                    minlength=width,
                )
                sector_dl = np.bincount(
                    flat_sectors, weights=daily_dl_flat, minlength=width
                )
                sector_voice = np.bincount(
                    flat_sectors, weights=daily_voice_flat,
                    minlength=width,
                ) * (mb_dl + mb_ul)
                occupied = sector_presence > 0
                indices = np.flatnonzero(occupied)
                sector_rows.append(
                    Frame(
                        {
                            "day": np.full(
                                indices.size, day, dtype=np.int64
                            ),
                            "site_id": indices // 3,
                            "sector": indices % 3,
                            "connected_users": (
                                sector_presence[indices] / 86_400.0
                            ),
                            "dl_volume_mb": sector_dl[indices],
                            "voice_volume_mb": sector_voice[indices],
                        }
                    )
                )

            # Voice interconnect (daily) and radio-side UL loss.
            total_voice_mb = voice_minutes.sum() * (mb_dl + mb_ul)
            dl_loss_today = interconnect.process_day(total_voice_mb)
            if interconnect.upgraded and upgrade_day is None:
                upgrade_day = day
            total_dl_today = dl_mb.sum()
            if baseline_dl_total is None:
                baseline_dl_total = max(total_dl_today, 1e-9)
            load_proxy = total_dl_today / baseline_dl_total
            ul_loss_today = _BASE_VOICE_UL_LOSS * (0.45 + 0.55 * load_proxy)

            loss_noise = day_rng.lognormal(0.0, 0.2, size=(2, num_sites))
            app_rate_cells = params.app_rate_mbps * day_rng.lognormal(
                0.0, 0.10, size=num_sites
            )

            for hour in range(HOURS_PER_DAY):
                bin_index = int(BIN_OF_HOUR[hour])
                dl_hour = dl_mb[:, bin_index] * traffic_w[hour]
                voice_min_hour = voice_minutes[:, bin_index] * voice_w[hour]
                voice_dl_hour = voice_min_hour * mb_dl
                voice_ul_hour = voice_min_hour * mb_ul
                # All-bearer volumes include the QCI-1 voice bearer.
                total_dl_hour = dl_hour + voice_dl_hour
                total_ul_hour = (
                    ul_mb[:, bin_index] * traffic_w[hour] + voice_ul_hour
                )
                connected = presence[:, bin_index] / BIN_SECONDS
                # Active DL users: present users weighted by the
                # context-dependent probability of cellular activity,
                # scaled by the day's overall demand level.
                active_users = (
                    activity[:, bin_index]
                    / BIN_SECONDS
                    * params.peak_activity_probability
                    * act_profile[hour]
                    * np.sqrt(params.demand_multiplier)
                )
                kpis = scheduler.schedule_hour(
                    capacity_mbps=capacity_mbps,
                    offered_dl_mb=total_dl_hour,
                    offered_ul_mb=total_ul_hour,
                    active_users=active_users,
                    app_rate_dl_mbps=app_rate_cells,
                )
                accumulator.add_hour(
                    day,
                    hour,
                    {
                        "dl_volume_mb": kpis.served_dl_mb,
                        "ul_volume_mb": kpis.served_ul_mb,
                        "dl_active_users": kpis.dl_active_users,
                        "radio_load_pct": kpis.radio_load_pct,
                        "user_dl_throughput_mbps": (
                            kpis.user_dl_throughput_mbps
                        ),
                        "active_seconds": kpis.active_seconds,
                        "connected_users": connected,
                        "voice_volume_mb": voice_dl_hour + voice_ul_hour,
                        "voice_users": voice_min_hour / 60.0,
                        "voice_ul_loss_rate": (
                            ul_loss_today * loss_noise[0]
                        ),
                        "voice_dl_loss_rate": (
                            dl_loss_today * loss_noise[1]
                        ),
                    },
                )
            accumulator.finalize_day()

            # RAT connected-time feed (§2.4's 75%-on-4G measurement).
            total_connected_s = float(dwell.dwell_s.sum())
            for rat_index, rat in enumerate(Rat):
                rat_time_rows.append(
                    {
                        "day": day,
                        "rat": rat.value,
                        "connected_seconds": float(
                            (rat_shares[:, rat_index] * 86_400.0).sum()
                            * (
                                total_connected_s
                                / (86_400.0 * max(num_users, 1))
                            )
                        ),
                    }
                )

            if progress is not None:
                progress(day, calendar.num_days)

            if signaling_frames is not None:
                segments = _dwell_to_segments(dwell.dwell_s, agents.anchor_sites,
                                              agents.user_ids)
                signaling_frames[day] = signaling_generator.generate_day(
                    segments,
                    np.random.default_rng(
                        np.random.SeedSequence(
                            entropy=config.seed, spawn_key=(11, day)
                        )
                    ),
                )

        return DataFeeds(
            calendar=calendar,
            geography=geography,
            lookup=PostcodeLookup(geography),
            topology=topology,
            catalog=catalog,
            base=base,
            agents=agents,
            mobility=mobility,
            radio_kpis=accumulator.daily_frame(),
            rat_time=Frame.from_rows(rat_time_rows),
            epidemic=epidemic,
            hourly_kpis=(
                accumulator.hourly_frame() if config.keep_hourly_kpis else None
            ),
            sector_kpis=(
                _concat_frames(sector_rows)
                if config.keep_sector_kpis
                else None
            ),
            signaling=signaling_frames,
            interconnect_upgrade_day=upgrade_day,
            config=config,
        )


def _concat_frames(frames: list[Frame]) -> Frame:
    from repro.frames import concat

    return concat(frames) if frames else Frame()


def _dwell_to_segments(
    dwell_s: np.ndarray, anchor_sites: np.ndarray, user_ids: np.ndarray
) -> DwellSegments:
    """Flatten a (N, B, K) dwell matrix into ordered dwell segments.

    Within each 4-hour bin, the user's anchors with positive dwell are
    laid out sequentially (the exact sub-bin ordering is not observable
    at the paper's aggregation granularity).
    """
    num_users, num_bins, num_anchors = dwell_s.shape
    rows: list[tuple[int, int, float, float]] = []
    for user_index in range(num_users):
        for bin_index in range(num_bins):
            cursor = bin_index * BIN_SECONDS
            for anchor in range(num_anchors):
                seconds = float(dwell_s[user_index, bin_index, anchor])
                if seconds <= 1.0:
                    continue
                rows.append(
                    (
                        int(user_ids[user_index]),
                        int(anchor_sites[user_index, anchor]),
                        cursor,
                        seconds,
                    )
                )
                cursor += seconds
    if not rows:
        empty = np.empty(0, dtype=np.int64)
        return DwellSegments(empty, empty, empty.astype(float), empty.astype(float))
    users, sites, starts, durations = zip(*rows)
    return DwellSegments(
        user_ids=np.asarray(users, dtype=np.int64),
        site_ids=np.asarray(sites, dtype=np.int64),
        start_s=np.asarray(starts, dtype=np.float64),
        duration_s=np.asarray(durations, dtype=np.float64),
    )
