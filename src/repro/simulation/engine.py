"""The simulator: builds the world and produces the data feeds.

One :class:`Simulator` run executes the full measurement-study
substrate:

1. build the synthetic UK, the radio deployment, the TAC catalog and
   the subscriber base;
2. derive the agent population (anchor places, traits) and behavioural
   models (pandemic timeline, demand, voice);
3. walk the calendar day by day: assemble dwell matrices, scatter
   presence/demand/voice onto cell sites, run the scheduler per hour,
   process the voice interconnect, and reduce hourly KPIs to the
   per-cell daily medians of §2.4;
4. return a :class:`~repro.simulation.feeds.DataFeeds` bundle.

The spatial scatters use ``np.bincount`` over the flattened
(user × anchor) axis, which keeps a ~20k-user, ~1k-site, 98-day run in
the tens of seconds on a laptop.

Sharded execution
-----------------
The per-user part of the day loop (dwell assembly and the bincount
scatters) is embarrassingly parallel across agents.  When the
configuration's ``parallelism`` block asks for it, the engine
partitions the population into ``num_shards`` deterministic shards
(:mod:`repro.simulation.sharding`), runs the shard day loops — in
process for ``workers=1``, on a ``ProcessPoolExecutor`` otherwise —
and reduces the shard payloads back into the exact arrays the serial
loop produces.  Everything with global coupling (the voice
interconnect, the load proxy, the per-cell scheduler, the daily-median
KPI reduction, the nighttime-observability dropout) runs in the
coordinator on the merged accumulators, so KPIs are exact rather than
approximated.  See :mod:`repro.simulation.sharding` for the
bitwise-vs-allclose determinism contract.

Fault tolerance
---------------
Long runs survive failures instead of discarding them.  With a
checkpoint directory attached (``Simulator.run(checkpoint_dir=...)``,
the CLI's default for ``simulate --out``), every completed shard-day is
persisted through :mod:`repro.simulation.checkpoint` as it is produced;
an interrupted run restarted over the same directory
(:meth:`Simulator.resume`, CLI ``simulate --resume``) restores the
completed days and computes only the missing ones, bitwise-identical
to an uninterrupted run.  Failed shards are retried with capped
exponential backoff (the configuration's ``recovery`` block), a broken
process pool degrades to in-process execution instead of aborting, and
a shard that keeps failing raises
:class:`~repro.simulation.faults.ShardExecutionError` with its
completed days already checkpointed.  All of it is testable through
the deterministic fault plan of :mod:`repro.simulation.faults`.

Observability
-------------
With :mod:`repro.telemetry` enabled, a run records a ``simulate`` span
tree — world build, run-context derivation, shard execution (with
per-shard dwell-assembly and scatter spans, merged across the process
pool), the per-day reductions (shard merge, voice interconnect,
scheduler, signalling) and the final KPI reduction — and attaches the
snapshot to ``feeds.telemetry``.  Recovery events land in counters:
``engine.shard_retries``, ``engine.pool_degradations``,
``engine.checkpoint_days_saved`` / ``_restored`` and
``engine.faults_injected``.  Telemetry never influences results: every
span is a pure timer around unchanged code, and a disabled run pays
one ``None`` check per instrumented site.
"""

from __future__ import annotations

import time

import numpy as np

from dataclasses import dataclass

from repro import telemetry
from repro.frames import Frame
from repro.geo.build import build_uk_geography
from repro.geo.nspl import PostcodeLookup
from repro.mobility.agents import AnchorSlot, NUM_ANCHORS, build_agents
from repro.mobility.behavior import BehaviorModel
from repro.mobility.epidemic import EpidemicCurve
from repro.mobility.pandemic import PandemicTimeline
from repro.mobility.trajectories import BIN_SECONDS, NUM_BINS, TrajectoryModel
from repro.network.devices import DeviceCatalog
from repro.network.interconnect import InterconnectSettings, VoiceInterconnect
from repro.network.kpi import KpiAccumulator
from repro.network.rat import RAT_PROFILES, Rat
from repro.network.scheduler import CellScheduler
from repro.network.signaling import SignalingGenerator, segments_from_dwell
from repro.network.subscribers import build_subscriber_base
from repro.network.topology import build_topology
from repro.simulation import kernels
from repro.simulation.checkpoint import CheckpointError, CheckpointStore
from repro.simulation.config import SimulationConfig
from repro.simulation.faults import (
    FaultPlan,
    InjectedFault,
    ShardExecutionError,
    corrupt_file,
    recovery_of,
)
from repro.simulation.feeds import DataFeeds, MobilityFeed
from repro.simulation.sharding import (
    MergedDay,
    ShardDayLoad,
    ShardResult,
    merge_day_loads,
    parallelism_of,
    shard_user_indices,
)
from repro.traffic.demand import DemandModel
from repro.traffic.profiles import (
    BIN_OF_HOUR,
    activity_hour_profile,
    HOURS_PER_DAY,
    hour_weights_within_bins,
    traffic_hour_profile,
    voice_hour_profile,
)
from repro.traffic.voice import VoiceModel

__all__ = ["Simulator", "World", "build_world"]

# Anchors at which the user is "at home" (WiFi available): the home
# tower and the relocation residence.
_HOME_LIKE_SLOTS = np.zeros(NUM_ANCHORS, dtype=bool)
_HOME_LIKE_SLOTS[[AnchorSlot.HOME, AnchorSlot.RELOC_PRIMARY,
                  AnchorSlot.RELOC_SECONDARY]] = True

_BASE_VOICE_UL_LOSS = 0.0035


@dataclass
class World:
    """The static objects a simulation is built from.

    Fully deterministic given the configuration — which is what lets
    :mod:`repro.io` reload persisted feeds without re-running the day
    loop: the world is rebuilt, the measured arrays are loaded.  The
    same determinism is what lets every pool worker rebuild an
    identical world from the configuration alone.
    """

    config: SimulationConfig
    geography: object
    topology: object
    catalog: object
    base: object
    agents: object
    timeline: PandemicTimeline
    behavior: BehaviorModel
    trajectories: TrajectoryModel
    demand_model: DemandModel
    voice_model: VoiceModel
    scheduler: CellScheduler
    epidemic: EpidemicCurve


def build_world(config: SimulationConfig) -> World:
    """Deterministically build every static simulation object."""
    calendar = config.calendar
    geography = build_uk_geography(seed=config.seed)
    topology = build_topology(
        geography,
        target_site_count=config.target_site_count,
        seed=config.seed + 1,
        study_days=calendar.num_days,
    )
    catalog = DeviceCatalog.generate(seed=config.seed + 2)
    base = build_subscriber_base(
        geography,
        topology,
        catalog,
        num_users=config.num_users,
        roamer_share=config.roamer_share,
        m2m_share=config.m2m_share,
        market_share_noise=config.market_share_noise,
        seed=config.seed + 3,
    )
    agents = build_agents(geography, topology, base, seed=config.seed + 4)
    timeline = config.timeline or PandemicTimeline(
        key_dates=calendar.key_dates
    )
    behavior = BehaviorModel(
        agents, timeline, calendar,
        settings=config.behavior, seed=config.seed + 5,
    )
    return World(
        config=config,
        geography=geography,
        topology=topology,
        catalog=catalog,
        base=base,
        agents=agents,
        timeline=timeline,
        behavior=behavior,
        trajectories=TrajectoryModel(agents, behavior),
        demand_model=DemandModel(
            timeline, settings=config.demand, seed=config.seed + 6
        ),
        voice_model=VoiceModel(
            timeline, settings=config.voice, seed=config.seed + 7
        ),
        scheduler=CellScheduler(config.scheduler),
        epidemic=EpidemicCurve(),
    )


@dataclass
class _RunContext:
    """A world plus the per-run derived arrays the day loop consumes.

    Deterministic given the configuration, so every pool worker can
    rebuild an identical context from the configuration alone.
    """

    world: World
    demand_mult: np.ndarray  # per-user demand heterogeneity
    voice_mult: np.ndarray  # per-user calling heterogeneity
    wifi_quality: np.ndarray  # per-user home-WiFi quality
    bin_traffic_share: np.ndarray
    bin_voice_share: np.ndarray
    mb_dl: float
    mb_ul: float

    @classmethod
    def from_world(cls, world: World) -> "_RunContext":
        from repro.geo.oac import OAC_DEFINITIONS

        agents = world.agents
        num_users = agents.num_users
        # Home-WiFi quality per user, from the home district's OAC
        # (drives how much at-home usage stays on cellular).
        wifi_by_district = np.array(
            [
                OAC_DEFINITIONS[district.oac].home_wifi_quality
                for district in world.geography.districts
            ]
        )
        mb_dl, mb_ul = world.voice_model.volume_mb_per_minute()
        return cls(
            world=world,
            demand_mult=world.demand_model.user_demand_multipliers(
                num_users
            ),
            voice_mult=world.voice_model.user_minute_multipliers(num_users),
            wifi_quality=wifi_by_district[agents.home_district],
            bin_traffic_share=np.add.reduceat(
                traffic_hour_profile(), np.arange(0, HOURS_PER_DAY, 4)
            ),
            bin_voice_share=np.add.reduceat(
                voice_hour_profile(), np.arange(0, HOURS_PER_DAY, 4)
            ),
            mb_dl=mb_dl,
            mb_ul=mb_ul,
        )


def _take(array: np.ndarray, indices: np.ndarray | None) -> np.ndarray:
    return array if indices is None else array[indices]


def _compute_shard(
    context: _RunContext,
    indices: np.ndarray | None,
    *,
    shard_index: int = 0,
    checkpoint: CheckpointStore | None = None,
    faults: FaultPlan | None = None,
    attempt: int = 0,
    day_start: int = 0,
    day_stop: int | None = None,
) -> ShardResult:
    """Run the per-user part of the day loop for one shard.

    ``indices`` selects the shard's rows of the agent population
    (``None`` = all users, the serial path).  Everything here is either
    a row-wise operation on per-user arrays (bitwise identical for any
    partition) or a ``np.bincount`` scatter onto sites (reduced across
    shards by summation).

    ``day_start``/``day_stop`` restrict the loop to a window of
    absolute day indices (the live-run advance path).  Each shard-day
    is a pure function of the configuration and its absolute day, so a
    windowed run computes exactly the bytes the full run would for
    those days; ``ShardResult.days`` is indexed relative to
    ``day_start``.

    With a ``checkpoint`` store attached, days already persisted for
    ``shard_index`` are restored instead of recomputed (bitwise
    identical — each day is a pure function of the configuration and
    NPZ round-trips arrays exactly), and every freshly computed day is
    persisted before moving on.  ``faults`` is the deterministic
    fault-injection hook; ``attempt`` is the retry ordinal the
    ``flaky`` fault counts against.

    Telemetry: the whole loop runs under a ``shard`` span (counting the
    shard's users and days), with the dwell assembly and the bincount
    scatters timed per day.  Summed across shards, the counters equal
    the serial run's — the merge contract telemetry shares with the
    data itself.
    """
    world = context.world
    config = world.config
    calendar = config.calendar
    agents = world.agents
    demand_model = world.demand_model
    voice_model = world.voice_model
    num_sites = world.topology.num_sites

    anchor_sites = _take(agents.anchor_sites, indices)
    flat_sites = anchor_sites.ravel()
    demand_mult = _take(context.demand_mult, indices)
    voice_mult = _take(context.voice_mult, indices)
    wifi_quality = _take(context.wifi_quality, indices)
    base_dl_mb = demand_model.base_daily_dl_mb()
    base_minutes = voice_model.settings.base_minutes_per_day

    keep_dwell = config.keep_bin_dwell or config.emit_signaling
    keep_sectors = config.keep_sector_kpis
    if keep_sectors:
        # Per-sector attachment: each (user, site) pair lands on a
        # stable sector of the site's 3-sector deployment.
        user_ids = _take(agents.user_ids, indices)
        user_grid = np.repeat(
            user_ids[:, None], anchor_sites.shape[1], axis=1
        )
        sector_of_anchor = (user_grid * 7 + anchor_sites * 13) % 3
        flat_sectors = (anchor_sites * 3 + sector_of_anchor).ravel()
        sector_width = num_sites * 3

    if day_stop is None:
        day_stop = int(calendar.num_days)
    shard_span = telemetry.span(
        "shard",
        users=int(anchor_sites.shape[0]),
        days=int(day_stop - day_start),
    )
    days: list[ShardDayLoad] = []
    with shard_span:
        for day in range(day_start, day_stop):
            if checkpoint is not None:
                restored = checkpoint.load_day(
                    shard_index, day, missing_ok=True
                )
                if restored is not None:
                    telemetry.count("engine.checkpoint_days_restored")
                    days.append(restored)
                    continue
            if faults is not None:
                faults.check(
                    shard_index, day, attempt,
                    in_pool=_WORKER_CONTEXT is not None,
                )
            load = _compute_shard_day(
                context, indices, day,
                flat_sites=flat_sites,
                demand_mult=demand_mult,
                voice_mult=voice_mult,
                wifi_quality=wifi_quality,
                base_dl_mb=base_dl_mb,
                base_minutes=base_minutes,
                keep_dwell=keep_dwell,
                sector_scatter=(
                    (flat_sectors, sector_width) if keep_sectors else None
                ),
            )
            if checkpoint is not None:
                checkpoint.save_day(shard_index, day, load)
                telemetry.count("engine.checkpoint_days_saved")
                if faults is not None and faults.should_poison(
                    shard_index, day
                ):
                    telemetry.count("engine.faults_injected")
                    corrupt_file(checkpoint.day_path(shard_index, day))
            days.append(load)
    return ShardResult(indices=indices, days=days)


def _compute_shard_day(
    context: _RunContext,
    indices: np.ndarray | None,
    day: int,
    *,
    flat_sites: np.ndarray,
    demand_mult: np.ndarray,
    voice_mult: np.ndarray,
    wifi_quality: np.ndarray,
    base_dl_mb: float,
    base_minutes: float,
    keep_dwell: bool,
    sector_scatter: tuple[np.ndarray, int] | None,
) -> ShardDayLoad:
    """One day of one shard: dwell assembly plus the bincount scatters."""
    world = context.world
    calendar = world.config.calendar
    trajectories = world.trajectories
    demand_model = world.demand_model
    voice_model = world.voice_model
    num_sites = world.topology.num_sites

    date = calendar.date_of(day)
    with telemetry.span("dwell_assembly") as dwell_span:
        dwell = trajectories.day_dwell(day, indices=indices)
        dwell_span.add("dwell_cells", int(dwell.dwell_s.size))

    params = demand_model.day_parameters(date)
    user_dl_mb = (
        base_dl_mb * demand_mult * params.demand_multiplier
    )
    user_voice_min = (
        base_minutes
        * voice_mult
        * voice_model.minutes_multiplier(date)
    )
    home_cell_share, home_activity = params.blended_home_factors(
        wifi_quality
    )
    # (users × anchors) context factors: home-like slots get the
    # user's blended at-home factors, away slots are full cellular.
    cell_factor = np.where(
        _HOME_LIKE_SLOTS[None, :], home_cell_share[:, None], 1.0
    )
    act_factor = np.where(
        _HOME_LIKE_SLOTS[None, :], home_activity[:, None], 1.0
    )
    ul_ratio_factor = np.where(
        _HOME_LIKE_SLOTS, params.home_ul_dl_ratio, params.ul_dl_ratio
    )

    presence = np.zeros((num_sites, NUM_BINS))
    activity = np.zeros((num_sites, NUM_BINS))
    dl_mb = np.zeros((num_sites, NUM_BINS))
    ul_mb = np.zeros((num_sites, NUM_BINS))
    voice_minutes = np.zeros((num_sites, NUM_BINS))
    scatter_span = telemetry.span("scatter")
    with scatter_span:
        for bin_index in range(NUM_BINS):
            bin_dwell = dwell.dwell_s[:, bin_index, :]
            share = bin_dwell / BIN_SECONDS
            presence[:, bin_index] = np.bincount(
                flat_sites, weights=bin_dwell.ravel(),
                minlength=num_sites,
            )
            activity[:, bin_index] = np.bincount(
                flat_sites,
                weights=(bin_dwell * act_factor).ravel(),
                minlength=num_sites,
            )
            dl_weights = (
                share
                * user_dl_mb[:, None]
                * context.bin_traffic_share[bin_index]
                * cell_factor
            )
            dl_mb[:, bin_index] = np.bincount(
                flat_sites, weights=dl_weights.ravel(),
                minlength=num_sites,
            )
            ul_mb[:, bin_index] = np.bincount(
                flat_sites,
                weights=(dl_weights * ul_ratio_factor[None, :]).ravel(),
                minlength=num_sites,
            )
            voice_weights = (
                share
                * user_voice_min[:, None]
                * context.bin_voice_share[bin_index]
            )
            voice_minutes[:, bin_index] = np.bincount(
                flat_sites, weights=voice_weights.ravel(),
                minlength=num_sites,
            )
        scatter_span.add(
            "scattered_weights", int(flat_sites.size) * 5 * NUM_BINS
        )

    load = ShardDayLoad(
        presence=presence,
        activity=activity,
        dl_mb=dl_mb,
        ul_mb=ul_mb,
        voice_minutes=voice_minutes,
        daily_dwell=dwell.daily_dwell().astype(np.float32),
        night_dwell=dwell.nighttime_dwell().astype(np.float32),
        total_connected_s=float(dwell.dwell_s.sum()),
        dwell_s=dwell.dwell_s if keep_dwell else None,
    )

    if sector_scatter is not None:
        flat_sectors, sector_width = sector_scatter
        with telemetry.span("sector_scatter"):
            daily_dwell_s = dwell.daily_dwell()
            daily_dl_flat = (
                daily_dwell_s / 86_400.0
                * user_dl_mb[:, None]
                * cell_factor
            ).ravel()
            daily_voice_flat = (
                daily_dwell_s / 86_400.0 * user_voice_min[:, None]
            ).ravel()
            load.sector_presence = np.bincount(
                flat_sectors, weights=daily_dwell_s.ravel(),
                minlength=sector_width,
            )
            load.sector_dl = np.bincount(
                flat_sectors, weights=daily_dl_flat,
                minlength=sector_width,
            )
            load.sector_voice = np.bincount(
                flat_sectors, weights=daily_voice_flat,
                minlength=sector_width,
            ) * (context.mb_dl + context.mb_ul)

    return load


# -- process-pool plumbing --------------------------------------------------
# Workers rebuild the (deterministic) world once per process via the
# pool initializer, then serve any number of shards from it.  When the
# coordinator has telemetry enabled, each worker records into its own
# recorder and ships a snapshot back on every ShardResult; the recorder
# is reset at the start of every task, so partial telemetry from a
# failed attempt is discarded instead of riding home on whichever shard
# that worker happens to complete next (scheduling-dependent).  Fault
# injections are therefore counted by the coordinator when the failure
# comes back, never by the worker.
_WORKER_CONTEXT: _RunContext | None = None

#: Sleep used between retry attempts; module-level so recovery tests
#: can monkeypatch it with a fake clock.
_RETRY_SLEEP = time.sleep


class _PoolLost(Exception):
    """Internal: the process pool died or never started — degrade."""


def _pool_init(
    config: SimulationConfig, record_telemetry: bool = False
) -> None:  # pragma: no cover
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = _RunContext.from_world(build_world(config))
    if record_telemetry:
        telemetry.enable()


def _pool_compute(task: tuple) -> ShardResult:  # pragma: no cover
    """Run one shard task in a pool worker.

    ``task`` is ``(shard_index, indices, attempt, run_directory,
    day_start, day_stop)`` — plain picklable pieces; the worker reopens
    the checkpoint store (safe: the (shard, day) file space is
    partitioned across tasks) and rebuilds the fault plan from its copy
    of the configuration.
    """
    assert _WORKER_CONTEXT is not None, "pool worker not initialized"
    shard_index, indices, attempt, run_directory, day_start, day_stop = task
    recorder = telemetry.active()
    if recorder is not None:
        recorder.reset()
    checkpoint = (
        CheckpointStore.open(run_directory)
        if run_directory is not None
        else None
    )
    faults = FaultPlan.active(_WORKER_CONTEXT.world.config)
    result = _compute_shard(
        _WORKER_CONTEXT, indices,
        shard_index=shard_index,
        checkpoint=checkpoint,
        faults=faults,
        attempt=attempt,
        day_start=day_start,
        day_stop=day_stop,
    )
    if recorder is not None:
        result.telemetry = recorder.snapshot()
        recorder.reset()
    return result


class Simulator:
    """End-to-end synthetic measurement-study run."""

    def __init__(self, config: SimulationConfig | None = None) -> None:
        self._config = config or SimulationConfig()

    @property
    def config(self) -> SimulationConfig:
        return self._config

    @classmethod
    def resume(
        cls, directory, progress=None, *, stream: bool = False
    ) -> DataFeeds:
        """Complete an interrupted checkpointed run.

        Reads the configuration persisted in ``<directory>/checkpoints``
        (clearing any stored fault plan — the injected failure must not
        refire on the restart) and re-runs over the same checkpoint
        store: completed days are restored, missing ones computed.  The
        result is bitwise-identical to an uninterrupted run.  With
        ``stream=True`` the mobility feed lands directly in the run
        directory's columnar partition instead of RAM (see :meth:`run`).
        """
        store = CheckpointStore.open(directory)
        config = store.load_config()
        if getattr(config, "fault_spec", None) is not None:
            config = config.with_overrides(fault_spec=None)
        return cls(config).run(
            progress=progress,
            checkpoint_dir=directory,
            stream_dir=directory if stream else None,
        )

    def run(
        self, progress=None, *, checkpoint_dir=None, stream_dir=None,
        day_start: int = 0, day_stop: int | None = None, live=None,
    ) -> DataFeeds:
        """Execute the full simulation and return the data feeds.

        ``day_start``/``day_stop`` restrict the run to a window of
        absolute study days (the live-run path behind
        :meth:`repro.api.Run.advance`).  The returned bundle covers
        only the window — its mobility feed holds
        ``day_stop - day_start`` days and the KPI/RAT frames only those
        day indices — but every byte equals the corresponding slice of
        a full run.  A window starting past day zero requires ``live``,
        the coordinator state captured by the preceding window (the
        ``feeds.live`` dict: the per-day voice interconnect series and
        the day-0 download baseline); the sequential state — RNG
        streams, the interconnect upgrade state machine, the baseline —
        is fast-forwarded from it before the first window day.

        ``progress``, if given, is called as ``progress(day, num_days)``
        after each simulated day — used by the CLI to show a meter.

        ``checkpoint_dir``, if given, attaches a
        :class:`~repro.simulation.checkpoint.CheckpointStore` under that
        run directory: every completed shard-day is persisted as it is
        produced, and days already checkpointed there (an interrupted
        earlier run) are restored instead of recomputed.

        ``stream_dir``, if given, lands each merged day of the mobility
        feed directly in that run directory's columnar partition
        (:mod:`repro.io.columnar`) instead of accumulating the full
        dwell stacks in RAM — shard payloads are released as they are
        consumed, so peak memory no longer scales with
        ``num_users × num_days``.  The returned bundle's ``mobility``
        is a lazily assembled view over the (uncommitted) partition;
        :func:`repro.io.save_feeds` to the same directory commits it
        in place without rewriting.  Identical bytes and results to
        the in-memory path; ``REPRO_STORE_NAIVE=1`` disables the
        streaming for differential testing.

        When :mod:`repro.telemetry` is enabled, the run records a
        ``simulate`` span tree (world build, shard execution, per-day
        reductions) and attaches the final snapshot to
        ``feeds.telemetry``, which :func:`repro.io.save_feeds` persists
        into the run manifest.
        """
        config = self._config
        if day_stop is None:
            day_stop = int(config.calendar.num_days)
        if not 0 <= day_start < day_stop <= config.calendar.num_days:
            raise ValueError(
                f"day window [{day_start}, {day_stop}) is not within "
                f"the {config.calendar.num_days}-day study"
            )
        if day_start > 0 and live is None:
            raise ValueError(
                "a day window starting past day 0 needs the prior "
                "window's live state (feeds.live)"
            )
        with telemetry.span(
            "simulate",
            users=int(config.num_users),
            days=int(day_stop - day_start),
        ) as run_span:
            checkpoint = (
                CheckpointStore.attach(checkpoint_dir, config)
                if checkpoint_dir is not None
                else None
            )
            with telemetry.span("build_world") as world_span:
                world = build_world(config)
                world_span.add("sites", int(world.topology.num_sites))
            with telemetry.span("run_context"):
                context = _RunContext.from_world(world)
            parallelism = parallelism_of(config)

            if parallelism.num_shards <= 1:
                shard_indices: list[np.ndarray | None] = [None]
            else:
                shard_indices = list(
                    shard_user_indices(
                        world.agents.user_ids, parallelism.num_shards
                    )
                )
            run_span.add("shards", len(shard_indices))
            with telemetry.span("shard_execution") as shard_span:
                results = self._execute_shards(
                    context, shard_indices, parallelism, checkpoint,
                    day_start=day_start, day_stop=day_stop,
                )
            # Pool workers record into their own process; their
            # snapshots ride home on the ShardResult and merge under
            # the span that dispatched them.  (In-process shards
            # recorded straight into the active recorder instead.)
            for result in results:
                if result.telemetry is not None:
                    telemetry.absorb(
                        result.telemetry, prefix=shard_span.path
                    )
            feeds = self._assemble_feeds(
                context, shard_indices, results, progress,
                stream_dir=stream_dir,
                day_start=day_start, day_stop=day_stop, live=live,
            )
        if telemetry.enabled():
            feeds.telemetry = telemetry.snapshot()
        return feeds

    # -- shard execution ---------------------------------------------------
    def _execute_shards(
        self,
        context: _RunContext,
        shard_indices: list[np.ndarray | None],
        parallelism,
        checkpoint: CheckpointStore | None = None,
        *,
        day_start: int = 0,
        day_stop: int | None = None,
    ) -> list[ShardResult]:
        """Run every shard, surviving worker failures.

        Transient failures are retried with the configuration's capped
        exponential backoff (in the pool and in process alike).  A pool
        that dies — or never starts on a sandboxed platform — degrades
        to the in-process path, which produces identical results;
        shards the pool already finished are kept.  A shard that fails
        beyond its retry budget raises
        :class:`~repro.simulation.faults.ShardExecutionError`; with a
        checkpoint store attached its completed days survive for
        ``--resume``.
        """
        recovery = recovery_of(self._config)
        faults = FaultPlan.active(self._config)
        results: dict[int, ShardResult] = {}
        if parallelism.uses_pool and len(shard_indices) > 1:
            try:
                self._execute_pool(
                    shard_indices, results, parallelism, recovery,
                    checkpoint, day_start=day_start, day_stop=day_stop,
                )
            except _PoolLost:
                # No usable process pool (sandboxed platform, missing
                # semaphores, a worker hard-crashed, ...): degrade to
                # the in-process path, which produces identical
                # results.
                telemetry.count("engine.pool_degradations")
        for shard_index, indices in enumerate(shard_indices):
            if shard_index in results:
                continue
            results[shard_index] = self._compute_with_retries(
                context, shard_index, indices, recovery, checkpoint,
                faults, day_start=day_start, day_stop=day_stop,
            )
        return [results[index] for index in range(len(shard_indices))]

    def _compute_with_retries(
        self,
        context: _RunContext,
        shard_index: int,
        indices: np.ndarray | None,
        recovery,
        checkpoint: CheckpointStore | None,
        faults: FaultPlan | None,
        *,
        day_start: int = 0,
        day_stop: int | None = None,
    ) -> ShardResult:
        attempt = 0
        while True:
            try:
                return _compute_shard(
                    context, indices,
                    shard_index=shard_index,
                    checkpoint=checkpoint,
                    faults=faults,
                    attempt=attempt,
                    day_start=day_start,
                    day_stop=day_stop,
                )
            except CheckpointError:
                # A corrupt checkpoint never heals by retrying; surface
                # the precise file immediately.
                raise
            except Exception as err:
                if attempt >= recovery.max_retries:
                    raise ShardExecutionError(
                        shard_index, attempt + 1
                    ) from err
                telemetry.count("engine.shard_retries")
                _RETRY_SLEEP(recovery.delay(attempt))
                attempt += 1

    def _execute_pool(
        self,
        shard_indices: list[np.ndarray | None],
        results: dict[int, ShardResult],
        parallelism,
        recovery,
        checkpoint: CheckpointStore | None,
        *,
        day_start: int = 0,
        day_stop: int | None = None,
    ) -> None:
        """Fan shard tasks over a process pool, retrying failed ones.

        Fills ``results`` in place so shards finished before a pool
        loss are kept by the degraded path.  Raises :class:`_PoolLost`
        when the pool cannot be created or breaks mid-run.
        """
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        run_directory = (
            None if checkpoint is None else str(checkpoint.run_directory)
        )
        workers = min(parallelism.workers, len(shard_indices))
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_pool_init,
                initargs=(self._config, telemetry.enabled()),
            ) as pool:
                tasks = {
                    pool.submit(
                        _pool_compute,
                        (index, indices, 0, run_directory,
                         day_start, day_stop),
                    ): (index, indices, 0)
                    for index, indices in enumerate(shard_indices)
                }
                while tasks:
                    done, _ = wait(
                        set(tasks), return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        index, indices, attempt = tasks.pop(future)
                        try:
                            results[index] = future.result()
                        except BrokenProcessPool as err:
                            raise _PoolLost from err
                        except CheckpointError:
                            raise
                        except Exception as err:
                            # The worker that raised discards its
                            # partial telemetry, so account for the
                            # injection here, where the failure lands.
                            if isinstance(err, InjectedFault):
                                telemetry.count("engine.faults_injected")
                            if attempt >= recovery.max_retries:
                                raise ShardExecutionError(
                                    index, attempt + 1
                                ) from err
                            telemetry.count("engine.shard_retries")
                            _RETRY_SLEEP(recovery.delay(attempt))
                            retry = (index, indices, attempt + 1)
                            tasks[
                                pool.submit(
                                    _pool_compute,
                                    (*retry, run_directory,
                                     day_start, day_stop),
                                )
                            ] = retry
        except (_PoolLost, ShardExecutionError, CheckpointError):
            raise
        except (OSError, ValueError, RuntimeError, ImportError) as err:
            # The pool itself is unusable (could not start, lost its
            # semaphores, ...) — not a task failure.
            raise _PoolLost from err

    # -- merge + global stages ---------------------------------------------
    def _assemble_feeds(
        self,
        context: _RunContext,
        shard_indices: list[np.ndarray | None],
        results: list[ShardResult],
        progress,
        stream_dir=None,
        day_start: int = 0,
        day_stop: int | None = None,
        live=None,
    ) -> DataFeeds:
        config = self._config
        world = context.world
        calendar = config.calendar
        if day_stop is None:
            day_stop = int(calendar.num_days)
        geography = world.geography
        topology = world.topology
        agents = world.agents
        demand_model = world.demand_model
        voice_model = world.voice_model
        scheduler = world.scheduler

        num_users = agents.num_users
        num_sites = topology.num_sites
        mb_dl, mb_ul = context.mb_dl, context.mb_ul

        # Per-user RAT connected-time shares (§2.4's 75%-on-4G).
        rat_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=config.seed, spawn_key=(9,))
        )
        rat_alphas = np.array(
            [RAT_PROFILES[rat].attach_share for rat in Rat]
        ) * 40.0
        rat_shares = rat_rng.dirichlet(rat_alphas, size=num_users)

        # Interconnect dimensioned against pre-pandemic voice volume.
        baseline_voice_mb = (
            context.voice_mult.sum()
            * voice_model.settings.base_minutes_per_day
            * (mb_dl + mb_ul)
        )
        interconnect_settings = InterconnectSettings(
            # The epsilon floor keeps degenerate worlds (no study users,
            # hence no baseline voice) constructible.
            capacity_mb_per_day=max(
                baseline_voice_mb
                * 0.55  # inter-MNO share of the offered load
                / config.interconnect_baseline_utilization,
                1e-6,
            ),
            detection_days=config.interconnect_detection_days,
            upgrade_factor=config.interconnect_upgrade_factor,
        )
        interconnect = VoiceInterconnect(interconnect_settings)

        # KPI accumulator over the 4G cell of every site.
        cell_of_site = np.array(
            [topology.site_to_4g_cell[s] for s in range(num_sites)],
            dtype=np.int64,
        )
        capacity_mbps = np.full(num_sites, 0.0)
        for cell in topology.cells:
            if cell.rat is Rat.LTE_4G:
                capacity_mbps[cell.site_id] = cell.capacity_mbps
        accumulator = KpiAccumulator(
            cell_ids=cell_of_site,
            postcodes=topology.site_postcodes,
            keep_hourly=config.keep_hourly_kpis,
        )

        bin_dwell: list[np.ndarray] | None = (
            [] if config.keep_bin_dwell else None
        )
        stream_writer = None
        if stream_dir is not None:
            from repro.io import columnar

            if not columnar.use_naive():
                stream_writer = columnar.ColumnarWriter(
                    stream_dir,
                    shard_indices,
                    agents.user_ids,
                    agents.anchor_sites,
                    day_stop - day_start,
                    day_offset=day_start,
                )
        mobility = (
            None
            if stream_writer is not None
            else MobilityFeed(
                user_ids=agents.user_ids,
                anchor_sites=agents.anchor_sites,
                bin_dwell=bin_dwell,
            )
        )
        signaling_frames: dict[int, Frame] | None = (
            {} if config.emit_signaling else None
        )
        # With a stream target, signalling events land on disk day by
        # day (the per-shard event partition) instead of accumulating
        # 98 days of frames in RAM.  Only full-window runs stream —
        # event partitions are never grown by append commits.
        events_writer = None
        if (
            stream_writer is not None
            and config.emit_signaling
            and day_start == 0
            and day_stop == int(calendar.num_days)
        ):
            from repro.io import columnar as _columnar

            events_writer = _columnar.EventsWriter(
                stream_dir, len(shard_indices), day_stop - day_start
            )
            signaling_frames = None
        signaling_generator = SignalingGenerator()

        traffic_w = hour_weights_within_bins(traffic_hour_profile())
        act_profile = activity_hour_profile()
        voice_w = hour_weights_within_bins(voice_hour_profile())

        sector_rows: list[Frame] = []
        # RAT connected-time feed: the per-RAT share sums are
        # day-independent, so the vectorized path hoists them out of
        # the day loop and collects one connected-seconds total per day.
        naive_rat_time = kernels.dispatch_naive("engine.rat_time")
        rat_time_rows: list[dict] = []
        rat_time_tcs: list[float] = []
        rat_sums = np.array(
            [
                (rat_shares[:, rat_index] * 86_400.0).sum()
                for rat_index in range(len(Rat))
            ]
        )
        day_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=config.seed, spawn_key=(10,))
        )
        night_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=config.seed, spawn_key=(12,))
        )
        baseline_dl_total: float | None = None
        upgrade_day: int | None = None
        voice_mb_by_day: list[float] = []

        if day_start > 0:
            # Live-run fast-forward: restore the coordinator's
            # sequential state exactly as the completed days left it.
            # The interconnect state machine is replayed over the
            # persisted per-day voice series (bitwise — JSON float repr
            # round-trips float64), and each completed day's RNG draws
            # are consumed in their historical order and shapes so the
            # streams resume mid-sequence.
            for replay_day, replayed_mb in enumerate(
                live["voice_mb_by_day"]
            ):
                interconnect.process_day(float(replayed_mb))
                if interconnect.upgraded and upgrade_day is None:
                    upgrade_day = replay_day
                night_rng.random(num_users)
                day_rng.lognormal(0.0, 0.2, size=(2, num_sites))
                day_rng.lognormal(0.0, 0.10, size=num_sites)
            baseline = live["baseline_dl_total"]
            baseline_dl_total = (
                None if baseline is None else float(baseline)
            )

        for day in range(day_start, day_stop):
            date = calendar.date_of(day)
            with telemetry.span("merge_shards"):
                merged: MergedDay = merge_day_loads(
                    num_users,
                    shard_indices,
                    [result.days[day - day_start] for result in results],
                )
            # Nighttime observability: phones that stay idle all night
            # produce no signalling, so the probes cannot place them.
            night = merged.night_dwell
            unobserved = (
                night_rng.random(num_users)
                >= config.night_observation_probability
            )
            night[unobserved] = 0.0
            if stream_writer is not None:
                stream_writer.write_day(day, merged.daily_dwell, night)
                # Consumed shard payloads are released day by day so
                # peak memory stays bounded by one day's arrays.
                for result in results:
                    result.days[day - day_start] = None
            else:
                mobility.daily_dwell.append(merged.daily_dwell)
                mobility.night_dwell.append(night)
            if bin_dwell is not None:
                bin_dwell.append(merged.dwell_s.astype(np.float32))

            params = demand_model.day_parameters(date)
            presence = merged.presence
            activity = merged.activity
            dl_mb = merged.dl_mb
            ul_mb = merged.ul_mb
            voice_minutes = merged.voice_minutes

            # Topology snapshot: inactive sites carry no traffic today.
            active_sites = topology.snapshot(day)
            presence[~active_sites] = 0.0
            activity[~active_sites] = 0.0
            dl_mb[~active_sites] = 0.0
            ul_mb[~active_sites] = 0.0
            voice_minutes[~active_sites] = 0.0

            if config.keep_sector_kpis:
                occupied = merged.sector_presence > 0
                indices = np.flatnonzero(occupied)
                sector_rows.append(
                    Frame(
                        {
                            "day": np.full(
                                indices.size, day, dtype=np.int64
                            ),
                            "site_id": indices // 3,
                            "sector": indices % 3,
                            "connected_users": (
                                merged.sector_presence[indices] / 86_400.0
                            ),
                            "dl_volume_mb": merged.sector_dl[indices],
                            "voice_volume_mb": merged.sector_voice[indices],
                        }
                    )
                )

            # Voice interconnect (daily) and radio-side UL loss.
            with telemetry.span("voice_interconnect") as voice_span:
                total_voice_mb = voice_minutes.sum() * (mb_dl + mb_ul)
                voice_mb_by_day.append(float(total_voice_mb))
                dl_loss_today = interconnect.process_day(total_voice_mb)
                voice_span.add("offered_voice_mb", float(total_voice_mb))
            if interconnect.upgraded and upgrade_day is None:
                upgrade_day = day
            total_dl_today = dl_mb.sum()
            if baseline_dl_total is None:
                baseline_dl_total = max(total_dl_today, 1e-9)
            load_proxy = total_dl_today / baseline_dl_total
            ul_loss_today = _BASE_VOICE_UL_LOSS * (0.45 + 0.55 * load_proxy)

            loss_noise = day_rng.lognormal(0.0, 0.2, size=(2, num_sites))
            app_rate_cells = params.app_rate_mbps * day_rng.lognormal(
                0.0, 0.10, size=num_sites
            )

            # All 24 hours scheduled in one vectorized block: every
            # operation is elementwise over (hour, cell), so the block
            # is bitwise identical to the historical hour-at-a-time
            # loop.  (hours, cells) orientation throughout.
            dl_hour = dl_mb.T[BIN_OF_HOUR] * traffic_w[:, None]
            voice_min_hour = voice_minutes.T[BIN_OF_HOUR] * voice_w[:, None]
            voice_dl_hour = voice_min_hour * mb_dl
            voice_ul_hour = voice_min_hour * mb_ul
            # All-bearer volumes include the QCI-1 voice bearer.
            total_dl_hour = dl_hour + voice_dl_hour
            total_ul_hour = (
                ul_mb.T[BIN_OF_HOUR] * traffic_w[:, None] + voice_ul_hour
            )
            connected = presence.T[BIN_OF_HOUR] / BIN_SECONDS
            # Active DL users: present users weighted by the
            # context-dependent probability of cellular activity,
            # scaled by the day's overall demand level.
            active_users = (
                activity.T[BIN_OF_HOUR]
                / BIN_SECONDS
                * params.peak_activity_probability
                * act_profile[:, None]
                * np.sqrt(params.demand_multiplier)
            )
            if kernels.dispatch_naive("engine.kpi_day"):
                # Reference path: schedule and push one hour at a time.
                # Every scheduler operation is elementwise over (hour,
                # cell) and the accumulator's hourly median equals the
                # blocked one, so this is bitwise identical to add_day.
                with telemetry.span("scheduler") as sched_span:
                    for hour in range(HOURS_PER_DAY):
                        kpis = scheduler.schedule_hour(
                            capacity_mbps=capacity_mbps,
                            offered_dl_mb=total_dl_hour[hour],
                            offered_ul_mb=total_ul_hour[hour],
                            active_users=active_users[hour],
                            app_rate_dl_mbps=app_rate_cells,
                        )
                        accumulator.add_hour(
                            day,
                            hour,
                            {
                                "dl_volume_mb": kpis.served_dl_mb,
                                "ul_volume_mb": kpis.served_ul_mb,
                                "dl_active_users": kpis.dl_active_users,
                                "radio_load_pct": kpis.radio_load_pct,
                                "user_dl_throughput_mbps": (
                                    kpis.user_dl_throughput_mbps
                                ),
                                "active_seconds": kpis.active_seconds,
                                "connected_users": connected[hour],
                                "voice_volume_mb": (
                                    voice_dl_hour[hour]
                                    + voice_ul_hour[hour]
                                ),
                                "voice_users": voice_min_hour[hour] / 60.0,
                                "voice_ul_loss_rate": (
                                    ul_loss_today * loss_noise[0]
                                ),
                                "voice_dl_loss_rate": (
                                    dl_loss_today * loss_noise[1]
                                ),
                            },
                        )
                    sched_span.add(
                        "cell_hours", int(num_sites) * HOURS_PER_DAY
                    )
                accumulator.finalize_day()
            else:
                with telemetry.span("scheduler") as sched_span:
                    kpis = scheduler.schedule_hours(
                        capacity_mbps=capacity_mbps,
                        offered_dl_mb=total_dl_hour,
                        offered_ul_mb=total_ul_hour,
                        active_users=active_users,
                        app_rate_dl_mbps=app_rate_cells,
                    )
                    sched_span.add(
                        "cell_hours", int(num_sites) * HOURS_PER_DAY
                    )
                accumulator.add_day(
                    day,
                    {
                        "dl_volume_mb": kpis.served_dl_mb,
                        "ul_volume_mb": kpis.served_ul_mb,
                        "dl_active_users": kpis.dl_active_users,
                        "radio_load_pct": kpis.radio_load_pct,
                        "user_dl_throughput_mbps": (
                            kpis.user_dl_throughput_mbps
                        ),
                        "active_seconds": kpis.active_seconds,
                        "connected_users": connected,
                        "voice_volume_mb": voice_dl_hour + voice_ul_hour,
                        "voice_users": voice_min_hour / 60.0,
                        "voice_ul_loss_rate": ul_loss_today * loss_noise[0],
                        "voice_dl_loss_rate": dl_loss_today * loss_noise[1],
                    },
                    num_hours=HOURS_PER_DAY,
                )

            # RAT connected-time feed (§2.4's 75%-on-4G measurement).
            total_connected_s = merged.total_connected_s
            if naive_rat_time:
                for rat_index, rat in enumerate(Rat):
                    rat_time_rows.append(
                        {
                            "day": day,
                            "rat": rat.value,
                            "connected_seconds": float(
                                (rat_shares[:, rat_index] * 86_400.0).sum()
                                * (
                                    total_connected_s
                                    / (86_400.0 * max(num_users, 1))
                                )
                            ),
                        }
                    )
            else:
                rat_time_tcs.append(float(total_connected_s))

            if progress is not None:
                progress(day, calendar.num_days)

            if signaling_frames is not None or events_writer is not None:
                with telemetry.span("signaling") as signal_span:
                    segments = segments_from_dwell(
                        merged.dwell_s,
                        agents.anchor_sites,
                        agents.user_ids,
                        BIN_SECONDS,
                    )
                    day_frame = signaling_generator.generate_day(
                        segments,
                        np.random.default_rng(
                            np.random.SeedSequence(
                                entropy=config.seed, spawn_key=(11, day)
                            )
                        ),
                    )
                    signal_span.add("events", len(day_frame))
                    if events_writer is not None:
                        # Landed on disk and released: the day frame
                        # never outlives its loop iteration.
                        events_writer.write_day(day, day_frame)
                    else:
                        signaling_frames[day] = day_frame

        if stream_writer is not None:
            # The lazy feed over the still-uncommitted partition;
            # save_feeds to the same directory commits it in place.
            mobility = stream_writer.finish(bin_dwell)
        signaling_feed = signaling_frames
        if events_writer is not None:
            signaling_feed = events_writer.finish()

        with telemetry.span("kpi_reduction") as kpi_span:
            radio_kpis = accumulator.daily_frame()
            kpi_span.add("kpi_rows", len(radio_kpis))

        if naive_rat_time:
            rat_time = Frame.from_rows(rat_time_rows)
        else:
            # One outer product (day × RAT); multiplication commutes
            # bitwise, so the rows match the naive per-day loop exactly.
            factor = np.asarray(rat_time_tcs, dtype=np.float64) / (
                86_400.0 * max(num_users, 1)
            )
            rat_time = Frame(
                {
                    "day": np.repeat(
                        np.arange(
                            day_start,
                            day_start + len(rat_time_tcs),
                            dtype=np.int64,
                        ),
                        len(Rat),
                    ),
                    "rat": np.tile(
                        np.array([rat.value for rat in Rat]),
                        len(rat_time_tcs),
                    ),
                    "connected_seconds": (
                        factor[:, None] * rat_sums[None, :]
                    ).ravel(),
                }
            )
        return DataFeeds(
            calendar=calendar,
            geography=geography,
            lookup=PostcodeLookup(geography),
            topology=topology,
            catalog=world.catalog,
            base=world.base,
            agents=agents,
            mobility=mobility,
            radio_kpis=radio_kpis,
            rat_time=rat_time,
            epidemic=world.epidemic,
            hourly_kpis=(
                accumulator.hourly_frame() if config.keep_hourly_kpis else None
            ),
            sector_kpis=(
                _concat_frames(sector_rows)
                if config.keep_sector_kpis
                else None
            ),
            signaling=signaling_feed,
            interconnect_upgrade_day=upgrade_day,
            config=config,
            # Coordinator state a later window needs to continue this
            # run bitwise-identically (only the window's own days —
            # append_feeds extends the persisted series).
            live={
                "voice_mb_by_day": voice_mb_by_day,
                "baseline_dl_total": baseline_dl_total,
            },
        )


def _concat_frames(frames: list[Frame]) -> Frame:
    from repro.frames import concat

    return concat(frames) if frames else Frame()
