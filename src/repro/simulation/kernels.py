"""The simulation-side kernel/naive dispatch gate.

Event generation — behaviour day-states, dwell assembly, dwell→segment
flattening, signalling emission, the hourly KPI reduction — runs on
whole-population array programs by default.  The historical per-agent /
per-event Python loops are kept, verbatim in structure, as the
*differential oracle* behind the ``REPRO_SIM_NAIVE=1`` environment
switch — the exact pattern of ``REPRO_FRAMES_NAIVE`` for the frames
kernels and ``REPRO_ANALYSIS_NAIVE`` for the analysis batch path.

Both paths consume identical RNG streams (every random vector is drawn
population-wide, in the same order, in both modes) and order their
floating-point operations identically, so outputs are **bitwise
identical** — the property ``tests/simulation/test_sim_differential.py``
enforces under hypothesis, and what lets the golden fingerprints and
the resume-equivalence guarantees hold regardless of the switch.

The switch is read *at call time* so tests can flip it per case with
``monkeypatch.setenv``; any value other than the empty string or ``"0"``
enables the naive path.  With telemetry enabled, every dispatch site
counts which path actually served it (``sim.<site>.naive`` /
``sim.<site>.vectorized``), mirroring the ``frames.*`` dispatch
counters.
"""

from __future__ import annotations

import os

from repro import telemetry

__all__ = ["use_naive", "dispatch_naive"]


def use_naive() -> bool:
    """True when ``REPRO_SIM_NAIVE=1`` selects the per-agent loops."""
    return os.environ.get("REPRO_SIM_NAIVE", "") not in ("", "0")


def dispatch_naive(site: str) -> bool:
    """Resolve the path for one dispatch site, counting the choice.

    Returns ``True`` when the naive per-agent/per-event loop should
    serve this call.  With telemetry enabled the decision lands in the
    ``sim.<site>.naive`` / ``sim.<site>.vectorized`` counters; disabled,
    the accounting costs one ``None`` check.
    """
    naive = use_naive()
    telemetry.count(f"sim.{site}.{'naive' if naive else 'vectorized'}")
    return naive
