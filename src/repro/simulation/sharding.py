"""Sharded execution: partitioning, per-shard payloads, and reductions.

The day loop of :class:`repro.simulation.engine.Simulator` is
embarrassingly parallel across *users*: every agent's dwell, demand and
voice contribution lands on cell sites through ``np.bincount`` scatters,
which reduce across any partition of the population by pure summation.
This module owns everything that makes that decomposition safe:

- :class:`ParallelismSettings` — the ``parallelism`` block of
  :class:`~repro.simulation.config.SimulationConfig` (``num_shards`` ×
  ``workers``);
- :func:`stable_shard_of` / :func:`shard_user_indices` — a seed- and
  platform-stable hash partition of the agent population;
- :func:`shard_seed_sequences` — per-shard ``SeedSequence.spawn``
  streams for shard-local scratch randomness;
- :class:`ShardDayLoad` / :class:`ShardResult` — the per-day
  accumulators a shard worker ships back to the coordinator;
- :func:`merge_day_loads` — the associative reduction that combines
  shard payloads into the exact arrays the serial engine produces.

Determinism contract
--------------------
Per-user randomness in the engine is drawn from *global* per-day
``SeedSequence`` streams (index-aligned with the agent population) and
then sliced per shard.  That is the only scheme that is simultaneously

1. **serial-equal** — a single-shard run consumes the streams exactly
   like the unsharded engine, and
2. **shard-count invariant** — a user's draws do not depend on which
   shard the hash assigns it to, so K = 2 and K = 7 agree.

Per-user arrays (dwell matrices) are therefore *bitwise* identical for
every shard count.  Per-cell aggregates are summed shard-by-shard, so
floating-point association makes them ``allclose``-equal (not bitwise)
between different shard counts; repeated runs at the same shard count
are bitwise identical.  ``shard_seed_sequences`` exists for randomness
that is genuinely shard-local (e.g. scratch noise in future backends)
and must never feed a quantity the equivalence contract covers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ParallelismSettings",
    "ShardDayLoad",
    "ShardResult",
    "MergedDay",
    "stable_shard_of",
    "shard_user_indices",
    "shard_seed_sequences",
    "merge_day_loads",
    "parallelism_of",
]


@dataclass(frozen=True)
class ParallelismSettings:
    """The ``parallelism`` block of a simulation configuration.

    ``num_shards`` is the number of deterministic user partitions the
    day loop runs over; ``workers`` is the number of OS processes used
    to execute them.  ``workers=1`` runs the shards sequentially in
    process (useful for testing the sharded math without pool
    overhead); ``num_shards=1`` is the plain serial engine.  Results
    are independent of ``workers`` by construction and independent of
    ``num_shards`` per the contract in :mod:`repro.simulation.sharding`.
    """

    num_shards: int = 1
    workers: int = 1

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    @property
    def sharded(self) -> bool:
        return self.num_shards > 1

    @property
    def uses_pool(self) -> bool:
        return self.workers > 1 and self.num_shards > 1


def parallelism_of(config) -> ParallelismSettings:
    """The parallelism block of ``config``, defaulting to serial.

    Tolerates configurations pickled before the block existed (saved
    runs reloaded by :mod:`repro.io`).
    """
    settings = getattr(config, "parallelism", None)
    return settings if settings is not None else ParallelismSettings()


# -- partitioning -----------------------------------------------------------

def _splitmix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: a stable, well-mixed 64-bit hash."""
    x = values.astype(np.uint64, copy=True)
    x += np.uint64(0x9E3779B97F4A7C15)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


def stable_shard_of(user_ids: np.ndarray, num_shards: int) -> np.ndarray:
    """Shard index per user: a stable hash of the user id, mod K.

    Independent of Python's randomized ``hash``, the platform, and the
    ordering of ``user_ids`` — the same user lands in the same shard on
    every run and machine.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    hashed = _splitmix64(np.asarray(user_ids, dtype=np.int64))
    return (hashed % np.uint64(num_shards)).astype(np.int64)


def shard_user_indices(
    user_ids: np.ndarray, num_shards: int
) -> list[np.ndarray]:
    """Row-index arrays (ascending) of each shard's users.

    Every user appears in exactly one shard; shards may be empty for
    tiny populations.  Row order within a shard follows the population
    order, which is what lets the coordinator reassemble per-user
    arrays with one fancy-index write per shard.
    """
    assignments = stable_shard_of(user_ids, num_shards)
    return [
        np.flatnonzero(assignments == shard) for shard in range(num_shards)
    ]


def shard_seed_sequences(
    seed: int, num_shards: int, stream_key: int = 1000
) -> list[np.random.SeedSequence]:
    """Independent per-shard seed sequences via ``SeedSequence.spawn``.

    For randomness that is *shard-local by design* (never anything the
    serial-equivalence contract covers).  The ``stream_key`` namespaces
    these spawns away from the engine's own ``spawn_key`` usage.
    """
    root = np.random.SeedSequence(entropy=seed, spawn_key=(stream_key,))
    return root.spawn(num_shards)


# -- per-shard payloads -----------------------------------------------------

@dataclass
class ShardDayLoad:
    """One shard's reducible accumulators for one simulation day.

    The five ``(num_sites, NUM_BINS)`` site loads reduce across shards
    by summation; the per-user rows (``daily_dwell`` etc.) reassemble
    by the shard's row indices; the sector vectors (present only when
    the configuration keeps sector KPIs) reduce by summation.
    """

    presence: np.ndarray
    activity: np.ndarray
    dl_mb: np.ndarray
    ul_mb: np.ndarray
    voice_minutes: np.ndarray
    daily_dwell: np.ndarray  # (n, NUM_ANCHORS) float32
    night_dwell: np.ndarray  # (n, NUM_ANCHORS) float32, pre-dropout
    total_connected_s: float
    sector_presence: np.ndarray | None = None
    sector_dl: np.ndarray | None = None
    sector_voice: np.ndarray | None = None
    dwell_s: np.ndarray | None = None  # (n, NUM_BINS, NUM_ANCHORS) float64


@dataclass
class ShardResult:
    """Everything one shard produced: its row indices and its days.

    ``telemetry`` carries a :mod:`repro.telemetry` snapshot when the
    shard ran in a pool worker with telemetry enabled — the plain-dict
    form crosses the process boundary and is absorbed into the
    coordinator's recorder (in-process shards record directly and leave
    it ``None``).
    """

    indices: np.ndarray | None  # None = the whole population
    days: list[ShardDayLoad] = field(default_factory=list)
    telemetry: dict | None = None


@dataclass
class MergedDay:
    """Shard payloads reduced back to the serial engine's arrays."""

    presence: np.ndarray
    activity: np.ndarray
    dl_mb: np.ndarray
    ul_mb: np.ndarray
    voice_minutes: np.ndarray
    daily_dwell: np.ndarray  # (num_users, NUM_ANCHORS) float32
    night_dwell: np.ndarray
    total_connected_s: float
    sector_presence: np.ndarray | None
    sector_dl: np.ndarray | None
    sector_voice: np.ndarray | None
    dwell_s: np.ndarray | None


def _reduce_sum(arrays: list[np.ndarray | None]) -> np.ndarray | None:
    """Sum payload arrays in shard order; pass single payloads through.

    The single-shard fast path returns the array unchanged, which keeps
    the serial engine bitwise-identical to the historical implementation
    (no extra copy, no extra addition).
    """
    present = [array for array in arrays if array is not None]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    total = present[0].copy()
    for array in present[1:]:
        total += array
    return total


def _scatter_rows(
    num_users: int,
    indices_list: list[np.ndarray | None],
    rows_list: list[np.ndarray],
) -> np.ndarray:
    """Reassemble per-user rows from shard payloads."""
    if len(rows_list) == 1 and indices_list[0] is None:
        return rows_list[0]
    template = rows_list[0]
    out = np.zeros((num_users, *template.shape[1:]), dtype=template.dtype)
    for indices, rows in zip(indices_list, rows_list):
        if indices is None:
            return rows
        if indices.size:
            out[indices] = rows
    return out


def merge_day_loads(
    num_users: int,
    indices_list: list[np.ndarray | None],
    loads: list[ShardDayLoad],
) -> MergedDay:
    """Associatively reduce one day's shard payloads.

    Site and sector loads are summed in shard order (hence
    ``allclose``-equal, not bitwise, across different shard counts);
    per-user rows are scattered back to population order (bitwise for
    every shard count).
    """
    if len(loads) != len(indices_list):
        raise ValueError("one payload per shard expected")
    return MergedDay(
        presence=_reduce_sum([load.presence for load in loads]),
        activity=_reduce_sum([load.activity for load in loads]),
        dl_mb=_reduce_sum([load.dl_mb for load in loads]),
        ul_mb=_reduce_sum([load.ul_mb for load in loads]),
        voice_minutes=_reduce_sum([load.voice_minutes for load in loads]),
        daily_dwell=_scatter_rows(
            num_users, indices_list, [load.daily_dwell for load in loads]
        ),
        night_dwell=_scatter_rows(
            num_users, indices_list, [load.night_dwell for load in loads]
        ),
        total_connected_s=float(
            sum(load.total_connected_s for load in loads)
        ),
        sector_presence=_reduce_sum(
            [load.sector_presence for load in loads]
        ),
        sector_dl=_reduce_sum([load.sector_dl for load in loads]),
        sector_voice=_reduce_sum([load.sector_voice for load in loads]),
        dwell_s=(
            _scatter_rows(
                num_users,
                indices_list,
                [load.dwell_s for load in loads],
            )
            if loads[0].dwell_s is not None
            else None
        ),
    )
