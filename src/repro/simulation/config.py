"""Simulation configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.mobility.behavior import BehaviorSettings
from repro.mobility.pandemic import PandemicTimeline
from repro.network.scheduler import SchedulerSettings
from repro.simulation.clock import StudyCalendar, default_calendar
from repro.simulation.faults import RecoverySettings
from repro.simulation.sharding import ParallelismSettings
from repro.traffic.demand import DemandSettings
from repro.traffic.voice import VoiceSettings

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """Every knob of a simulation run.

    The defaults reproduce the paper's setting at laptop scale: ~20k
    simulated native users standing in for the operator's 22M, a
    proportionally scaled radio network, and the full February–May 2020
    calendar. ``small()`` / ``tiny()`` provide cheaper presets for tests
    and quick experiments.
    """

    num_users: int = 20_000
    target_site_count: int = 1_000
    seed: int = 2020
    roamer_share: float = 0.03
    m2m_share: float = 0.08
    market_share_noise: float = 0.04

    calendar: StudyCalendar = field(default_factory=default_calendar)
    # Custom policy timeline (None = the real UK 2020 timeline). Used by
    # counterfactual scenarios.
    timeline: PandemicTimeline | None = None
    behavior: BehaviorSettings = field(default_factory=BehaviorSettings)
    demand: DemandSettings = field(default_factory=DemandSettings)
    voice: VoiceSettings = field(default_factory=VoiceSettings)
    scheduler: SchedulerSettings = field(default_factory=SchedulerSettings)

    # Baseline utilization the voice interconnect is dimensioned for —
    # high enough that the voice surge exceeds capacity (§4.2).
    interconnect_baseline_utilization: float = 0.84

    # Ops response of the voice interconnect (§4.2): how many alarm days
    # before the capacity upgrade lands, and its size. Set the days very
    # high for the "no ops response" counterfactual.
    interconnect_detection_days: int = 10
    interconnect_upgrade_factor: float = 2.2

    # Probability a device produces nighttime signalling on a given
    # night (phones idle/off at night are invisible to the probes).
    # Governs the home-detection yield: the paper located homes for
    # ~16M of ~22M users (§2.3).
    night_observation_probability: float = 0.58

    # Sharded/parallel execution (see repro.simulation.sharding for the
    # determinism contract). num_shards=1, workers=1 is the serial
    # engine; workers=1 with num_shards>1 runs the sharded math in
    # process; workers>1 fans the shards out over a process pool.
    parallelism: ParallelismSettings = field(
        default_factory=ParallelismSettings
    )

    # Failure handling of the sharded engine: how often a failed shard
    # is retried and the capped exponential backoff between attempts
    # (see repro.simulation.faults). Purely operational — results are
    # independent of every field.
    recovery: RecoverySettings = field(default_factory=RecoverySettings)

    # Deterministic fault-injection plan (repro.simulation.faults
    # grammar), e.g. "kill:shard=2,day=60". None = no faults. The
    # REPRO_FAULTS environment variable overrides it. Test harness
    # only: decides whether an attempt fails, never what it computes.
    fault_spec: str | None = None

    # Heavyweight optional outputs.
    keep_hourly_kpis: bool = False
    keep_bin_dwell: bool = False
    emit_signaling: bool = False
    # Per-sector daily KPI feed (§2.1: "we collect KPI for every radio
    # sector"); users attach to a stable sector of each site they visit.
    keep_sector_kpis: bool = False

    def __post_init__(self) -> None:
        if self.num_users <= 0:
            raise ValueError("num_users must be positive")
        if self.target_site_count <= 0:
            raise ValueError("target_site_count must be positive")
        if not 0.0 < self.interconnect_baseline_utilization < 1.5:
            raise ValueError("interconnect utilization must be in (0, 1.5)")
        if not isinstance(self.parallelism, ParallelismSettings):
            raise TypeError(
                "parallelism must be a ParallelismSettings instance"
            )
        if not isinstance(self.recovery, RecoverySettings):
            raise TypeError("recovery must be a RecoverySettings instance")

    def with_parallelism(
        self, num_shards: int, workers: int | None = None
    ) -> "SimulationConfig":
        """A copy running ``num_shards`` shards on ``workers`` processes.

        ``workers`` defaults to ``num_shards`` (one process per shard,
        capped by the pool at pool-creation time).
        """
        return self.with_overrides(
            parallelism=ParallelismSettings(
                num_shards=num_shards,
                workers=num_shards if workers is None else workers,
            )
        )

    # -- presets -----------------------------------------------------------
    @classmethod
    def default(cls, seed: int = 2020) -> "SimulationConfig":
        """The full-scale configuration used by the benchmarks."""
        return cls(seed=seed)

    @classmethod
    def small(cls, seed: int = 2020) -> "SimulationConfig":
        """~5k users: integration tests and quick looks."""
        return cls(num_users=5_000, target_site_count=300, seed=seed)

    @classmethod
    def tiny(cls, seed: int = 2020) -> "SimulationConfig":
        """~1.5k users: unit-test scale (noisy, structurally complete)."""
        return cls(num_users=1_500, target_site_count=150, seed=seed)

    def with_overrides(self, **changes) -> "SimulationConfig":
        """Return a copy with fields replaced (dataclasses.replace)."""
        return replace(self, **changes)
