"""Study calendar: the real 2020 timeline of the paper.

Every figure of the paper is indexed by ISO week of 2020 ("week 9" is
the baseline, "week 13" is the first lockdown week). The calendar maps
simulation day indices to real dates, ISO weeks and weekday/weekend
flags, and carries the intervention dates:

- 11 March (week 11): WHO declares the pandemic,
- 16 March (week 12): the government recommends working from home,
- 20 March (week 12): closure of schools, restaurants, bars and gyms,
- 23 March (week 13): nationwide stay-at-home order.

The default calendar starts Monday 3 February (week 6) — the extra
February weeks exist because the paper's home-detection step needs ≥14
nights "during February 2020" — and ends Sunday 10 May (week 19).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from functools import cached_property

import numpy as np

__all__ = ["KeyDates", "StudyCalendar", "default_calendar", "BASELINE_WEEK"]

# The paper normalizes every metric against this ISO week.
BASELINE_WEEK = 9


@dataclass(frozen=True)
class KeyDates:
    """UK intervention dates (all 2020)."""

    pandemic_declared: dt.date = dt.date(2020, 3, 11)
    wfh_recommended: dt.date = dt.date(2020, 3, 16)
    venues_closed: dt.date = dt.date(2020, 3, 20)
    lockdown: dt.date = dt.date(2020, 3, 23)


class StudyCalendar:
    """Maps simulation day indices onto the 2020 study window."""

    def __init__(
        self,
        first_day: dt.date = dt.date(2020, 2, 3),
        num_days: int = 98,
        key_dates: KeyDates | None = None,
    ) -> None:
        if num_days <= 0:
            raise ValueError("num_days must be positive")
        self._first_day = first_day
        self._num_days = num_days
        self.key_dates = key_dates or KeyDates()

    # -- size & iteration ------------------------------------------------
    @property
    def num_days(self) -> int:
        return self._num_days

    @property
    def first_day(self) -> dt.date:
        return self._first_day

    @property
    def last_day(self) -> dt.date:
        return self._first_day + dt.timedelta(days=self._num_days - 1)

    @cached_property
    def dates(self) -> tuple[dt.date, ...]:
        return tuple(
            self._first_day + dt.timedelta(days=index)
            for index in range(self._num_days)
        )

    # -- conversions -------------------------------------------------------
    def date_of(self, day: int) -> dt.date:
        """Date of a simulation day index."""
        if not 0 <= day < self._num_days:
            raise IndexError(f"day {day} outside [0, {self._num_days})")
        return self.dates[day]

    def day_of(self, date: dt.date) -> int:
        """Simulation day index of a date."""
        offset = (date - self._first_day).days
        if not 0 <= offset < self._num_days:
            raise KeyError(f"{date} outside the study window")
        return offset

    def iso_week(self, day: int) -> int:
        """ISO week number of a simulation day."""
        return self.date_of(day).isocalendar().week

    @cached_property
    def weeks(self) -> np.ndarray:
        """ISO week per simulation day."""
        return np.array(
            [date.isocalendar().week for date in self.dates], dtype=np.int64
        )

    @cached_property
    def weekdays(self) -> np.ndarray:
        """Weekday index per simulation day (0 = Monday)."""
        return np.array([date.weekday() for date in self.dates], dtype=np.int64)

    @cached_property
    def is_weekend(self) -> np.ndarray:
        return self.weekdays >= 5

    def days_in_week(self, week: int) -> np.ndarray:
        """Simulation day indices belonging to an ISO week."""
        return np.flatnonzero(self.weeks == week)

    @cached_property
    def study_weeks(self) -> tuple[int, ...]:
        """ISO weeks fully or partially covered by the calendar."""
        seen: list[int] = []
        for week in self.weeks.tolist():
            if week not in seen:
                seen.append(week)
        return tuple(seen)

    @cached_property
    def analysis_weeks(self) -> tuple[int, ...]:
        """The weeks the paper reports on: baseline week 9 onwards."""
        return tuple(w for w in self.study_weeks if w >= BASELINE_WEEK)

    # -- february (home detection window) ----------------------------------
    @cached_property
    def february_days(self) -> np.ndarray:
        """Simulation day indices falling in February 2020 (§2.3)."""
        return np.array(
            [index for index, date in enumerate(self.dates) if date.month == 2],
            dtype=np.int64,
        )


def default_calendar() -> StudyCalendar:
    """The full study window: Mon 3 Feb (week 6) – Sun 10 May (week 19)."""
    return StudyCalendar(first_day=dt.date(2020, 2, 3), num_days=98)
