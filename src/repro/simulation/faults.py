"""Failure handling for the sharded engine: retries and fault injection.

Long runs die for boring reasons — an OOM-killed pool worker, a
transient filesystem hiccup, a flaky container.  This module owns the
engine's answer to all of them:

- :class:`RecoverySettings` — the ``recovery`` block of
  :class:`~repro.simulation.config.SimulationConfig`: how many times a
  failed shard is retried and the capped exponential backoff between
  attempts (``delay(attempt) = min(base * 2**attempt, cap)``);
- :class:`ShardExecutionError` — raised by the engine when a shard
  exhausts its retries; the message points at ``--resume`` because
  every completed day is already checkpointed
  (:mod:`repro.simulation.checkpoint`);
- :class:`FaultPlan` — a deterministic fault-injection hook, parsed
  from ``SimulationConfig.fault_spec`` or the ``REPRO_FAULTS``
  environment variable, that makes every recovery path testable in CI
  without real crashes.

Fault-plan grammar
------------------
A spec is ``;``-separated directives of ``action:key=value,...``:

``kill[:shard=S][,day=D]``
    Raise :class:`InjectedFault` on every attempt at the matching
    (shard, day) — the shard fails permanently, retries exhaust, and
    the run aborts with :class:`ShardExecutionError`.  The crash half
    of the crash-and-resume tests.
``flaky:times=N[,shard=S][,day=D]``
    Raise on the first ``N`` attempts only; attempt ``N`` succeeds.
    Exercises the retry/backoff path end to end.
``exit[:shard=S][,day=D]``
    ``os._exit`` the *pool worker* process (a hard crash the executor
    reports as a broken pool), triggering the engine's degrade-to-
    in-process path.  Ignored outside a pool worker, which is exactly
    what lets the degraded rerun succeed.
``poison[:shard=S][,day=D]``
    Corrupt the checkpoint file right after it is written, so a later
    resume must detect and reject it.

Omitted ``shard``/``day`` keys match every shard/day.  Faults never
influence a successful run's numbers — they only decide whether an
attempt fails — so the checkpoint config digest deliberately ignores
``fault_spec`` (see :func:`repro.simulation.checkpoint.config_digest`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "RecoverySettings",
    "ShardExecutionError",
    "corrupt_file",
    "recovery_of",
]

#: Environment override for the fault plan (takes precedence over
#: ``SimulationConfig.fault_spec`` when set and non-empty).
FAULTS_ENV = "REPRO_FAULTS"

_ACTIONS = ("kill", "flaky", "exit", "poison")


class InjectedFault(Exception):
    """A deliberate failure raised by an active :class:`FaultPlan`."""


class ShardExecutionError(Exception):
    """A shard kept failing after every configured retry.

    Carries the shard index and attempt count; the original failure is
    chained as ``__cause__``.  Completed days survive in the checkpoint
    store, so the run can be completed with ``--resume``.
    """

    def __init__(self, shard: int, attempts: int) -> None:
        super().__init__(
            f"shard {shard} failed after {attempts} attempt(s); "
            "completed days are checkpointed — finish the run with "
            "'python -m repro simulate --resume <run-dir>'"
        )
        self.shard = shard
        self.attempts = attempts


@dataclass(frozen=True)
class RecoverySettings:
    """The ``recovery`` block of a simulation configuration.

    ``max_retries`` is the number of *re*-attempts after the first
    failure (0 = fail fast); attempts are separated by a capped
    exponential backoff.  Purely operational: results are independent
    of every field, so the checkpoint config digest ignores the block.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 4.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("backoff_cap_s must be >= backoff_base_s")

    def delay(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt ``attempt``."""
        return min(self.backoff_base_s * (2.0 ** attempt), self.backoff_cap_s)


def recovery_of(config) -> RecoverySettings:
    """The recovery block of ``config``, defaulting to the standard one.

    Tolerates configurations pickled before the block existed (saved
    runs reloaded by :mod:`repro.io`), mirroring
    :func:`repro.simulation.sharding.parallelism_of`.
    """
    settings = getattr(config, "recovery", None)
    return settings if settings is not None else RecoverySettings()


@dataclass(frozen=True)
class FaultRule:
    """One parsed directive of a fault spec."""

    action: str
    shard: int | None = None
    day: int | None = None
    times: int = 1

    def matches(self, shard: int, day: int) -> bool:
        return (self.shard is None or self.shard == shard) and (
            self.day is None or self.day == day
        )


class FaultPlan:
    """A deterministic set of injected failures for one run."""

    def __init__(self, rules: tuple[FaultRule, ...]) -> None:
        self.rules = rules

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a spec string (see the module docstring's grammar)."""
        rules: list[FaultRule] = []
        for directive in spec.split(";"):
            directive = directive.strip()
            if not directive:
                continue
            action, _, arg_text = directive.partition(":")
            action = action.strip()
            if action not in _ACTIONS:
                raise ValueError(
                    f"unknown fault action {action!r} in {directive!r} "
                    f"(expected one of {', '.join(_ACTIONS)})"
                )
            keys: dict[str, int] = {}
            for item in filter(None, arg_text.split(",")):
                key, sep, value = item.partition("=")
                key = key.strip()
                if not sep or key not in ("shard", "day", "times"):
                    raise ValueError(
                        f"bad fault argument {item!r} in {directive!r} "
                        "(expected shard=/day=/times=)"
                    )
                try:
                    keys[key] = int(value)
                except ValueError:
                    raise ValueError(
                        f"fault argument {item!r} is not an integer"
                    ) from None
            if "times" in keys and action != "flaky":
                raise ValueError("times= is only valid for flaky faults")
            rules.append(
                FaultRule(
                    action=action,
                    shard=keys.get("shard"),
                    day=keys.get("day"),
                    times=keys.get("times", 1),
                )
            )
        return cls(tuple(rules))

    @classmethod
    def active(cls, config) -> "FaultPlan | None":
        """The plan in force for ``config``: env override, else config.

        Returns ``None`` (the common case) when neither source names a
        fault, so the engine pays one attribute lookup per shard.
        """
        spec = os.environ.get(FAULTS_ENV) or getattr(
            config, "fault_spec", None
        )
        return cls.parse(spec) if spec else None

    def check(
        self, shard: int, day: int, attempt: int, *, in_pool: bool = False
    ) -> None:
        """Fire any fault matching (shard, day) at this attempt.

        ``kill`` raises on every attempt, ``flaky`` on the first
        ``times`` attempts, ``exit`` hard-kills the process when it is
        a pool worker (and is otherwise inert — the degraded in-process
        rerun must succeed).
        """
        for rule in self.rules:
            if not rule.matches(shard, day):
                continue
            if rule.action == "exit" and in_pool:  # pragma: no cover
                os._exit(23)
            if rule.action == "kill" or (
                rule.action == "flaky" and attempt < rule.times
            ):
                from repro import telemetry

                telemetry.count("engine.faults_injected")
                raise InjectedFault(
                    f"injected {rule.action} fault: shard {shard}, "
                    f"day {day}, attempt {attempt}"
                )

    def should_poison(self, shard: int, day: int) -> bool:
        """True when a ``poison`` directive matches (shard, day)."""
        return any(
            rule.action == "poison" and rule.matches(shard, day)
            for rule in self.rules
        )


def corrupt_file(path) -> None:
    """Flip bytes in the middle of ``path`` (the ``poison`` fault)."""
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    if not data:
        return
    middle = len(data) // 2
    for offset in range(middle, min(middle + 16, len(data))):
        data[offset] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(data)
