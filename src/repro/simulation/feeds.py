"""Data feeds: the simulator's outputs, shaped like the paper's inputs.

§2.2 of the paper enumerates the operator feeds: the General Signalling
Dataset, the Devices Catalog, the Radio Network Topology, the Radio
Network Performance feed, and the UK administrative datasets.
:class:`DataFeeds` bundles the synthetic equivalents of all of them so
the analysis layer can be written exactly against what the paper had.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.frames import Frame
from repro.geo.build import Geography
from repro.geo.nspl import PostcodeLookup
from repro.mobility.agents import AgentPopulation
from repro.mobility.epidemic import EpidemicCurve
from repro.network.devices import DeviceCatalog
from repro.network.subscribers import SubscriberBase
from repro.network.topology import RadioTopology
from repro.simulation.clock import StudyCalendar

__all__ = ["MobilityFeed", "DataFeeds"]


@dataclass
class MobilityFeed:
    """Per-user per-day tower dwell aggregates (§2.3's statistics).

    ``daily_dwell[day]`` and ``night_dwell[day]`` are float32 arrays of
    shape ``(num_users, num_anchors)``: seconds the user spent attached
    to each of their anchor towers over the whole day / over the
    nighttime window (00:00–08:00). ``anchor_sites`` maps the anchor
    axis to tower ids.
    """

    user_ids: np.ndarray
    anchor_sites: np.ndarray
    daily_dwell: list[np.ndarray] = field(default_factory=list)
    night_dwell: list[np.ndarray] = field(default_factory=list)
    bin_dwell: list[np.ndarray] | None = None

    @property
    def num_users(self) -> int:
        return int(self.user_ids.shape[0])

    @property
    def num_days(self) -> int:
        return len(self.daily_dwell)

    def dwell(self, day: int) -> np.ndarray:
        """Full-day dwell seconds, shape (num_users, num_anchors)."""
        return self.daily_dwell[day]

    def night(self, day: int) -> np.ndarray:
        """Nighttime dwell seconds, shape (num_users, num_anchors)."""
        return self.night_dwell[day]


@dataclass
class DataFeeds:
    """Everything the analysis consumes, in one bundle."""

    calendar: StudyCalendar
    geography: Geography
    lookup: PostcodeLookup
    topology: RadioTopology
    catalog: DeviceCatalog
    base: SubscriberBase
    agents: AgentPopulation
    # The mobility dwell feed.  Either the in-memory MobilityFeed or a
    # repro.io.columnar.ShardedMobilityFeed (same day-at-a-time surface,
    # lazily assembled from memory-mapped shards) when the run was
    # loaded with lazy=True or streamed to disk by the engine.
    mobility: MobilityFeed
    radio_kpis: Frame  # daily per-cell medians (the §2.4 reduction)
    rat_time: Frame  # (day, rat, connected-seconds)
    epidemic: EpidemicCurve
    hourly_kpis: Frame | None = None
    sector_kpis: Frame | None = None
    signaling: dict[int, Frame] | None = None
    interconnect_upgrade_day: int | None = None
    # The configuration that produced the feeds (provenance; lets
    # repro.io rebuild the deterministic world when reloading).
    config: object | None = None
    # Telemetry snapshot of the producing run (set by the engine when
    # repro.telemetry is enabled; persisted into manifest.json).
    telemetry: dict | None = None
    # Per-feed SHA-256 payload digests, as recorded in (or verified
    # against) manifest.json by repro.io.store.  The analysis cache
    # keys artifacts on them; None for bundles that never touched disk.
    source_digests: dict | None = None
    # Live-run coordinator state (repro.api.Run.advance): the per-day
    # voice interconnect traffic series and the day-0 download baseline
    # the engine needs to extend the run bitwise-identically.  Always
    # set by the engine; persisted in manifest.json only while the run
    # is shorter than its configured horizon.
    live: dict | None = None
    # Storage segments of the columnar mobility partition as
    # (start_day, num_days) pairs — one per append commit.  The
    # incremental analytics key per-range artifacts on them; None for
    # bundles that never touched disk.
    feed_segments: list[tuple[int, int]] | None = None
    # Run directory this bundle was loaded from (or last saved to).
    # The parallel analysis pool (repro.analysis.parallel) hands this
    # path — never the feed objects — to its workers, which open their
    # own shard maps from it; None for bundles that never touched disk.
    source_directory: object | None = None

    @property
    def num_users(self) -> int:
        return self.mobility.num_users

    @property
    def parallelism(self):
        """The shard layout the producing run executed with.

        A :class:`~repro.simulation.sharding.ParallelismSettings` (the
        serial default when the config predates sharded execution).
        Provenance only — feed contents are independent of the layout
        per the contract in :mod:`repro.simulation.sharding`.
        """
        from repro.simulation.sharding import parallelism_of

        return parallelism_of(self.config)

    def cell_info(self) -> Frame:
        """Cell → (site, postcode) metadata for merges."""
        sites = self.topology.sites
        cell_ids = []
        site_ids = []
        postcodes = []
        for site in sites:
            cell = self.topology.site_to_4g_cell.get(site.site_id)
            if cell is None:
                continue
            cell_ids.append(cell)
            site_ids.append(site.site_id)
            postcodes.append(site.postcode)
        return Frame(
            {
                "cell_id": np.asarray(cell_ids, dtype=np.int64),
                "site_id": np.asarray(site_ids, dtype=np.int64),
                "postcode": np.asarray(postcodes),
            }
        )

    def site_locations(self) -> tuple[np.ndarray, np.ndarray]:
        """(lats, lons) arrays indexed by site id."""
        return self.topology.site_lats, self.topology.site_lons
