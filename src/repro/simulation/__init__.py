"""Simulation orchestration: calendar, configuration, engine, feeds.

:class:`~repro.simulation.clock.StudyCalendar` pins the simulation to
the paper's real timeline (ISO weeks of 2020, lockdown on 23 March).
:class:`~repro.simulation.config.SimulationConfig` gathers every knob.
:class:`~repro.simulation.engine.Simulator` wires geography, network,
mobility and traffic together and produces the
:class:`~repro.simulation.feeds.DataFeeds` the analysis consumes — the
synthetic stand-ins for the operator's proprietary data feeds (§2.2).

The calendar is imported eagerly; the config/engine/feeds exports are
lazy because they pull in the mobility and traffic packages, which in
turn need the calendar (a circular dependency at import time only).
"""

from repro.simulation.clock import KeyDates, StudyCalendar, default_calendar

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "DataFeeds",
    "FaultPlan",
    "KeyDates",
    "ParallelismSettings",
    "RecoverySettings",
    "ShardExecutionError",
    "SimulationConfig",
    "Simulator",
    "StudyCalendar",
    "default_calendar",
]

_LAZY = {
    "SimulationConfig": ("repro.simulation.config", "SimulationConfig"),
    "Simulator": ("repro.simulation.engine", "Simulator"),
    "DataFeeds": ("repro.simulation.feeds", "DataFeeds"),
    "ParallelismSettings": (
        "repro.simulation.sharding",
        "ParallelismSettings",
    ),
    "CheckpointError": ("repro.simulation.checkpoint", "CheckpointError"),
    "CheckpointStore": ("repro.simulation.checkpoint", "CheckpointStore"),
    "FaultPlan": ("repro.simulation.faults", "FaultPlan"),
    "RecoverySettings": ("repro.simulation.faults", "RecoverySettings"),
    "ShardExecutionError": (
        "repro.simulation.faults",
        "ShardExecutionError",
    ),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.simulation' has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value
