"""Per-shard, per-day checkpoints: crash-safe state for long runs.

A simulation of the paper's full window walks 98+ days per shard; a
worker crash on day 60 must not throw away days 0–59.  The engine
therefore persists every completed :class:`~repro.simulation.sharding.
ShardDayLoad` into ``<run-dir>/checkpoints/`` as it is produced, and a
restarted run (``python -m repro simulate --resume <run-dir>``) loads
the completed days back and computes only the missing ones.  Live runs
(:meth:`repro.api.Run.advance`) attach the same store per advance:
checkpoint keys are *absolute* day indices, so a killed advance leaves
its window days here and the retried advance restores them instead of
recomputing.

Resume is *bitwise-faithful*: each shard-day is a pure function of the
configuration (per-day ``SeedSequence`` streams, no cross-day state in
the shard loop — see :mod:`repro.simulation.sharding`), and the NPZ
container round-trips float arrays exactly, so a resumed run's feeds
are byte-for-byte the feeds of an uninterrupted run at the same shard
count.  The global stages (voice interconnect, scheduler, KPI
reduction) always replay in the coordinator over all days, restored or
fresh, so their day-sequential state needs no checkpointing.

Layout::

    <run-dir>/checkpoints/
      state.json                  # format version, config digest, layout
      config.pkl                  # the exact SimulationConfig (resume source)
      shard000_day000.npz         # one ShardDayLoad, checksummed
      shard000_day001.npz
      ...

Safety properties:

- **atomic** — day files are written to a ``*.tmp`` name and
  ``os.replace``d into place; a crash mid-write leaves no file under
  the final name, so a partial day is recomputed, never trusted;
- **validated** — every day file embeds a SHA-256 over its payload
  arrays plus its (shard, day) identity; corruption or a misplaced
  file raises :class:`CheckpointError` naming the offending file;
- **config-pinned** — ``state.json`` records a digest of the
  result-determining configuration fields; attaching a store built
  from a different configuration is refused.  Operational knobs that
  cannot change results (worker count, retry policy, fault spec) are
  excluded from the digest, so a run may be resumed with different
  workers or with the fault plan cleared.

Workers write concurrently without coordination because the
(shard, day) key space is partitioned: no two tasks ever produce the
same file.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.io.store import RunStoreError
from repro.simulation.sharding import ShardDayLoad, parallelism_of

__all__ = ["CheckpointError", "CheckpointStore", "config_digest"]

FORMAT_VERSION = 1

_SUBDIR = "checkpoints"
_STATE = "state.json"
_CONFIG = "config.pkl"

#: ShardDayLoad array fields in serialization order; optional ones are
#: simply absent from the archive when the configuration skips them.
_REQUIRED_FIELDS = (
    "presence",
    "activity",
    "dl_mb",
    "ul_mb",
    "voice_minutes",
    "daily_dwell",
    "night_dwell",
)
_OPTIONAL_FIELDS = ("sector_presence", "sector_dl", "sector_voice", "dwell_s")


class CheckpointError(RunStoreError):
    """A checkpoint store is missing, inconsistent, or corrupt."""


def config_digest(config) -> str:
    """Digest of the result-determining fields of a configuration.

    Operational fields that cannot change the produced feeds are
    normalized away before hashing: the fault plan (decides whether an
    attempt fails, never what it computes), the retry policy, and the
    worker count (results are layout-independent per the sharding
    contract, but the *shard count* stays in — checkpoint files are
    keyed by shard).
    """
    from repro.simulation.faults import RecoverySettings
    from repro.simulation.sharding import ParallelismSettings

    normalized = replace(
        config,
        fault_spec=None,
        recovery=RecoverySettings(),
        parallelism=ParallelismSettings(
            num_shards=parallelism_of(config).num_shards, workers=1
        ),
    )
    return hashlib.sha256(pickle.dumps(normalized)).hexdigest()


def _payload_digest(arrays: dict[str, np.ndarray]) -> str:
    sha = hashlib.sha256()
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        sha.update(name.encode())
        sha.update(repr(array.shape).encode())
        sha.update(array.dtype.str.encode())
        sha.update(array.tobytes())
    return sha.hexdigest()


class CheckpointStore:
    """The ``checkpoints/`` directory of one run.

    Create (or re-open for resume) with :meth:`attach`, open an
    existing store with :meth:`open`; both validate ``state.json``.
    """

    def __init__(self, run_directory: str | Path, state: dict) -> None:
        self.run_directory = Path(run_directory)
        self.directory = self.run_directory / _SUBDIR
        self._state = state

    # -- lifecycle ---------------------------------------------------------
    @staticmethod
    def present(run_directory: str | Path) -> bool:
        """True when ``run_directory`` holds a checkpoint store."""
        return (Path(run_directory) / _SUBDIR / _STATE).exists()

    @classmethod
    def attach(cls, run_directory: str | Path, config) -> "CheckpointStore":
        """Create the store for ``config``, or re-open a matching one.

        Re-opening (the resume path) validates that the existing store
        was produced by the same result-determining configuration and
        the same shard count; a mismatch raises :class:`CheckpointError`
        rather than silently mixing two runs' state.
        """
        digest = config_digest(config)
        if cls.present(run_directory):
            store = cls.open(run_directory)
            if store._state["config_digest"] != digest:
                raise CheckpointError(
                    f"checkpoints in {store.directory} were written by a "
                    "different configuration; delete them or resume with "
                    "the stored configuration",
                    path=store.directory / _STATE,
                )
            return store
        directory = Path(run_directory) / _SUBDIR
        directory.mkdir(parents=True, exist_ok=True)
        with open(directory / _CONFIG, "wb") as handle:
            pickle.dump(config, handle)
        state = {
            "format_version": FORMAT_VERSION,
            "config_digest": digest,
            "num_shards": parallelism_of(config).num_shards,
            "num_days": int(config.calendar.num_days),
            "num_users": int(config.num_users),
        }
        (directory / _STATE).write_text(
            json.dumps(state, indent=2), encoding="utf-8"
        )
        return cls(run_directory, state)

    @classmethod
    def open(cls, run_directory: str | Path) -> "CheckpointStore":
        """Open an existing store (raises if there is none)."""
        state_path = Path(run_directory) / _SUBDIR / _STATE
        if not state_path.exists():
            raise CheckpointError(
                f"no checkpoint store in {run_directory} (missing "
                f"{state_path}); nothing to resume",
                path=state_path,
            )
        try:
            state = json.loads(state_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as err:
            raise CheckpointError(
                f"unreadable checkpoint state {state_path}: {err}",
                path=state_path,
            ) from err
        if state.get("format_version") != FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format "
                f"{state.get('format_version')!r} in {state_path}",
                path=state_path,
            )
        return cls(run_directory, state)

    def load_config(self):
        """The exact configuration the checkpointed run started with."""
        path = self.directory / _CONFIG
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError) as err:
            raise CheckpointError(
                f"unreadable checkpoint config {path}: {err}", path=path
            ) from err

    def clear(self) -> None:
        """Delete the store (after the run is saved successfully)."""
        shutil.rmtree(self.directory, ignore_errors=True)

    # -- day files ---------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return int(self._state["num_shards"])

    def day_path(self, shard: int, day: int) -> Path:
        return self.directory / f"shard{shard:03d}_day{day:03d}.npz"

    def save_day(self, shard: int, day: int, load: ShardDayLoad) -> None:
        """Atomically persist one completed shard-day."""
        payload: dict[str, np.ndarray] = {}
        for name in _REQUIRED_FIELDS:
            payload[name] = np.asarray(getattr(load, name))
        for name in _OPTIONAL_FIELDS:
            value = getattr(load, name)
            if value is not None:
                payload[name] = np.asarray(value)
        payload["total_connected_s"] = np.float64(load.total_connected_s)
        payload["shard_day"] = np.array([shard, day], dtype=np.int64)
        checksum = _payload_digest(payload)

        final = self.day_path(shard, day)
        temporary = final.with_name(final.name + ".tmp")
        with open(temporary, "wb") as handle:
            np.savez(handle, checksum=np.array(checksum), **payload)
        os.replace(temporary, final)

    def load_day(
        self, shard: int, day: int, *, missing_ok: bool = False
    ) -> ShardDayLoad | None:
        """Restore one shard-day, validating integrity and identity.

        Returns ``None`` for an absent day when ``missing_ok`` (the
        engine's "compute it instead" signal).  Any present-but-wrong
        file — truncated, bit-flipped, or renamed onto the wrong
        (shard, day) — raises :class:`CheckpointError` naming it.
        """
        path = self.day_path(shard, day)
        if not path.exists():
            if missing_ok:
                return None
            raise CheckpointError(
                f"checkpoint {path} is missing", path=path
            )
        try:
            with np.load(path) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except Exception as err:
            raise CheckpointError(
                f"checkpoint {path} is corrupt: {err}", path=path
            ) from err
        checksum = arrays.pop("checksum", None)
        if checksum is None or str(checksum) != _payload_digest(arrays):
            raise CheckpointError(
                f"checkpoint {path} failed its checksum (truncated or "
                "tampered); delete it and resume to recompute the day",
                path=path,
            )
        identity = arrays.pop("shard_day")
        if int(identity[0]) != shard or int(identity[1]) != day:
            raise CheckpointError(
                f"checkpoint {path} holds shard {int(identity[0])} day "
                f"{int(identity[1])}, not shard {shard} day {day} "
                "(misplaced file)",
                path=path,
            )
        missing = [name for name in _REQUIRED_FIELDS if name not in arrays]
        if missing:
            raise CheckpointError(
                f"checkpoint {path} is missing arrays: {missing}",
                path=path,
            )
        return ShardDayLoad(
            presence=arrays["presence"],
            activity=arrays["activity"],
            dl_mb=arrays["dl_mb"],
            ul_mb=arrays["ul_mb"],
            voice_minutes=arrays["voice_minutes"],
            daily_dwell=arrays["daily_dwell"],
            night_dwell=arrays["night_dwell"],
            total_connected_s=float(arrays["total_connected_s"]),
            sector_presence=arrays.get("sector_presence"),
            sector_dl=arrays.get("sector_dl"),
            sector_voice=arrays.get("sector_voice"),
            dwell_s=arrays.get("dwell_s"),
        )

    def completed_days(self, shard: int) -> list[int]:
        """Day indices with a (named) checkpoint file for ``shard``.

        Presence only — integrity is validated at :meth:`load_day`
        time.  ``*.tmp`` leftovers from a crash mid-write are invisible
        here because they never carry the final name.
        """
        prefix = f"shard{shard:03d}_day"
        days = []
        for path in self.directory.glob(f"{prefix}*.npz"):
            suffix = path.name[len(prefix):-len(".npz")]
            if suffix.isdigit():
                days.append(int(suffix))
        return sorted(days)
