"""Per-user cellular data demand.

The model separates *total* application demand from the *cellular* part
the MNO carries. When a user is at home, most offloadable traffic rides
the residential WiFi — the paper's mechanism for the lockdown downlink
drop ("people likely relying more on the broadband residential Internet
access to run download intensive applications such as video
streaming"). All application-level responses (demand growth, provider
throttling, WiFi affinity) come from :mod:`repro.traffic.applications`.

Two context effects are resolved here:

- **restriction** deepens at-home offload (people lean on home WiFi
  harder once they live on it) and grows total demand;
- **home WiFi quality** varies by geodemographic cluster
  (:data:`repro.geo.oac.OAC_DEFINITIONS`): users in poorly-connected
  areas keep most of their at-home usage on cellular. This is what
  keeps rural downlink stable and pushes active users *up* in deprived
  residential districts during lockdown (§4.4, §5.1).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field

import numpy as np

from repro.mobility.pandemic import PandemicTimeline, Phase
from repro.traffic.applications import mix_summary

__all__ = ["DemandSettings", "DayDemandParameters", "DemandModel"]


@dataclass(frozen=True)
class DemandSettings:
    """Demand-model tunables."""

    # Total daily DL application demand per user (cellular + WiFi), MB.
    total_dl_mb_per_day: float = 200.0
    # Per-user heterogeneity: lognormal sigma of the demand multiplier.
    user_sigma: float = 0.8
    # Extra WiFi offload acquired during lockdown, as a multiplier on
    # the at-home *cellular* share of a well-connected home at r = 1.
    lockdown_home_cellular_factor: float = 0.30
    # Cellular share of at-home demand when the home has poor/no WiFi.
    poor_wifi_cellular_share: float = 0.75
    # Probability scale that a present user is actively transferring at
    # the busiest hour, when out and about.
    peak_activity_probability: float = 0.16
    # Activity factor at a well-connected home: baseline and its
    # additional lockdown reduction (usage moves to WiFi).
    home_activity_base: float = 0.80
    home_activity_lockdown_factor: float = 0.35
    # Activity factor at a home with poor WiFi, and how much it
    # *rises* under lockdown (cellular is that household's only
    # internet, and everyone is home using it).
    poor_wifi_activity: float = 0.95
    poor_wifi_activity_lockdown_boost: float = 0.50
    # News-driven demand bump in the early phases (the paper's week-10
    # +8% downlink increase).
    news_bump: dict[Phase, float] = field(
        default_factory=lambda: {
            Phase.OUTBREAK: 1.08,
            Phase.DECLARED: 1.10,
            Phase.DISTANCING: 1.04,
        }
    )


@dataclass(frozen=True)
class DayDemandParameters:
    """Aggregate demand parameters for one day."""

    demand_multiplier: float  # total DL demand vs baseline
    ul_dl_ratio: float  # UL:DL of the away-from-home cellular mix
    home_ul_dl_ratio: float  # UL:DL of the at-home cellular residue
    app_rate_mbps: float  # mean active-session DL rate
    home_cellular_share: float  # cellular share at a well-WiFi'd home
    home_activity: float  # activity factor at a well-WiFi'd home
    poor_wifi_cellular_share: float
    poor_wifi_activity: float
    peak_activity_probability: float

    def blended_home_factors(
        self, wifi_quality: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-user at-home (cellular share, activity factor).

        ``wifi_quality`` in [0, 1]: 1 = fully offloadable home WiFi,
        0 = all usage stays on cellular.
        """
        wifi_quality = np.asarray(wifi_quality, dtype=np.float64)
        share = (
            wifi_quality * self.home_cellular_share
            + (1.0 - wifi_quality) * self.poor_wifi_cellular_share
        )
        activity = (
            wifi_quality * self.home_activity
            + (1.0 - wifi_quality) * self.poor_wifi_activity
        )
        return share, activity


class DemandModel:
    """Resolve the application mix into per-day demand parameters."""

    def __init__(
        self,
        timeline: PandemicTimeline,
        settings: DemandSettings | None = None,
        seed: int = 2020,
    ) -> None:
        self._timeline = timeline
        self._settings = settings or DemandSettings()
        self._seed = seed
        self._baseline = mix_summary(0.0)

    @property
    def settings(self) -> DemandSettings:
        return self._settings

    def user_demand_multipliers(self, num_users: int) -> np.ndarray:
        """Fixed per-user demand heterogeneity (heavy-tailed, mean 1)."""
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self._seed, spawn_key=(7,))
        )
        sigma = self._settings.user_sigma
        return rng.lognormal(-0.5 * sigma**2, sigma, size=num_users)

    def day_parameters(self, date: dt.date) -> DayDemandParameters:
        """Aggregate demand parameters for ``date``."""
        settings = self._settings
        restriction = self._timeline.restriction_level(date)
        phase = self._timeline.phase(date)
        mix = mix_summary(restriction)

        home_share = mix["home_cellular_share"] * (
            1.0
            + restriction * (settings.lockdown_home_cellular_factor - 1.0)
        )
        home_activity = settings.home_activity_base * (
            1.0
            + restriction * (settings.home_activity_lockdown_factor - 1.0)
        )

        demand = mix["dl_demand"] / self._baseline["dl_demand"]
        demand *= settings.news_bump.get(phase, 1.0)

        return DayDemandParameters(
            demand_multiplier=float(demand),
            ul_dl_ratio=float(mix["ul_dl_ratio"]),
            home_ul_dl_ratio=float(mix["home_ul_dl_ratio"]),
            app_rate_mbps=float(mix["app_rate_mbps"]),
            home_cellular_share=float(home_share),
            home_activity=float(home_activity),
            poor_wifi_cellular_share=settings.poor_wifi_cellular_share,
            poor_wifi_activity=settings.poor_wifi_activity
            * (1.0 + settings.poor_wifi_activity_lockdown_boost * restriction),
            peak_activity_probability=settings.peak_activity_probability,
        )

    def base_daily_dl_mb(self) -> float:
        """Baseline per-user total DL application demand (MB/day)."""
        return self._settings.total_dl_mb_per_day
