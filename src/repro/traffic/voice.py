"""Conversational voice (VoLTE, QCI = 1).

§4.2 of the paper: the median voice volume spiked by 140% in week 12 —
"a predicted seven years of growth ... in the space of few days" — and
stayed ~150% above baseline after lockdown, slowly settling as the weeks
passed. The surge is behavioural (people call instead of meeting), so it
is modelled as a phase-dependent multiplier on per-user call minutes.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

import numpy as np

from repro.mobility.pandemic import PandemicTimeline, Phase

__all__ = ["VoiceSettings", "VoiceModel"]


@dataclass(frozen=True)
class VoiceSettings:
    """Voice-model tunables."""

    base_minutes_per_day: float = 4.0
    # AMR-WB voice payload plus RTP/IP overhead, per direction.
    mb_per_minute_dl: float = 0.12
    mb_per_minute_ul: float = 0.12
    user_sigma: float = 0.6
    # Phase multipliers on call minutes.
    outbreak_multiplier: float = 1.22
    declared_multiplier: float = 1.60
    distancing_multiplier: float = 2.35
    closures_multiplier: float = 2.45
    lockdown_multiplier: float = 2.25
    # During relaxation the surge slowly settles.
    relaxation_decay_per_day: float = 0.010
    relaxation_floor: float = 1.75


class VoiceModel:
    """Per-day voice minutes driven by the pandemic timeline."""

    def __init__(
        self,
        timeline: PandemicTimeline,
        settings: VoiceSettings | None = None,
        seed: int = 2020,
    ) -> None:
        self._timeline = timeline
        self._settings = settings or VoiceSettings()
        self._seed = seed

    @property
    def settings(self) -> VoiceSettings:
        return self._settings

    def user_minute_multipliers(self, num_users: int) -> np.ndarray:
        """Fixed per-user calling heterogeneity (mean 1)."""
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self._seed, spawn_key=(8,))
        )
        sigma = self._settings.user_sigma
        return rng.lognormal(-0.5 * sigma**2, sigma, size=num_users)

    def minutes_multiplier(self, date: dt.date) -> float:
        """National voice-minutes multiplier for ``date``."""
        settings = self._settings
        phase = self._timeline.phase(date)
        if phase is Phase.PRE_PANDEMIC:
            return 1.0
        if phase is Phase.OUTBREAK:
            return settings.outbreak_multiplier
        if phase is Phase.DECLARED:
            return settings.declared_multiplier
        if phase is Phase.DISTANCING:
            return settings.distancing_multiplier
        if phase is Phase.CLOSURES:
            return settings.closures_multiplier
        if phase is Phase.LOCKDOWN:
            return settings.lockdown_multiplier
        days = (date - self._timeline.relaxation_start).days
        return max(
            settings.relaxation_floor,
            settings.lockdown_multiplier
            - settings.relaxation_decay_per_day * days,
        )

    def day_minutes_per_user(self, date: dt.date) -> float:
        """Mean call minutes per user for ``date``."""
        return self._settings.base_minutes_per_day * self.minutes_multiplier(
            date
        )

    def volume_mb_per_minute(self) -> tuple[float, float]:
        """(DL, UL) MB per call minute."""
        return self._settings.mb_per_minute_dl, self._settings.mb_per_minute_ul
