"""Traffic demand: what the observed devices do with the network.

- :mod:`repro.traffic.applications` — the application mix (streaming,
  web, conferencing, ...) with downlink:uplink asymmetry, WiFi affinity
  and pandemic demand shifts. The paper's explanations lean on this mix:
  download-heavy apps moved to home WiFi and were throttled by content
  providers, while symmetric apps (calls, conferencing) surged.
- :mod:`repro.traffic.demand` — per-user cellular data demand by
  context (at home vs out), with WiFi offload and app-limited rates.
- :mod:`repro.traffic.voice` — conversational-voice model (VoLTE
  minutes, volume, simultaneous users) with the pandemic surge.
- :mod:`repro.traffic.profiles` — diurnal activity profiles shared by
  the demand and voice models.
"""

from repro.traffic.applications import APP_MIX, AppClass, mix_summary
from repro.traffic.demand import DemandModel, DemandSettings
from repro.traffic.voice import VoiceModel, VoiceSettings
from repro.traffic.profiles import (
    HOURS_PER_DAY,
    activity_hour_profile,
    hour_weights_within_bins,
)

__all__ = [
    "APP_MIX",
    "AppClass",
    "DemandModel",
    "DemandSettings",
    "HOURS_PER_DAY",
    "VoiceModel",
    "VoiceSettings",
    "activity_hour_profile",
    "hour_weights_within_bins",
    "mix_summary",
]
