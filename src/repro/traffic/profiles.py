"""Diurnal profiles shared by the demand and voice models."""

from __future__ import annotations

import numpy as np

__all__ = [
    "HOURS_PER_DAY",
    "BIN_OF_HOUR",
    "traffic_hour_profile",
    "activity_hour_profile",
    "voice_hour_profile",
    "hour_weights_within_bins",
]

HOURS_PER_DAY = 24

# 4-hour bin index of each hour (six bins, §2.3).
BIN_OF_HOUR = np.repeat(np.arange(6), 4)

# Relative traffic volume per hour: the classic residential double hump
# (morning shoulder, evening peak) with a deep night trough.
_TRAFFIC = np.array(
    [
        0.35, 0.22, 0.16, 0.14,  # 00-04
        0.16, 0.25, 0.50, 0.80,  # 04-08
        1.00, 1.05, 1.05, 1.10,  # 08-12
        1.10, 1.10, 1.05, 1.05,  # 12-16
        1.15, 1.30, 1.50, 1.65,  # 16-20
        1.70, 1.55, 1.10, 0.65,  # 20-24
    ]
)

# Probability scaling that a present user is *actively* transferring.
_ACTIVITY = _TRAFFIC / _TRAFFIC.max()

# Voice concentrates in daytime/evening more than data.
_VOICE = np.array(
    [
        0.10, 0.06, 0.05, 0.05,
        0.08, 0.15, 0.45, 0.85,
        1.10, 1.25, 1.30, 1.30,
        1.25, 1.20, 1.15, 1.10,
        1.20, 1.40, 1.55, 1.45,
        1.15, 0.85, 0.45, 0.20,
    ]
)


def traffic_hour_profile() -> np.ndarray:
    """Hourly data-traffic weights, normalized to sum to 1."""
    return _TRAFFIC / _TRAFFIC.sum()


def voice_hour_profile() -> np.ndarray:
    """Hourly voice-minute weights, normalized to sum to 1."""
    return _VOICE / _VOICE.sum()


def activity_hour_profile() -> np.ndarray:
    """Relative probability a present user is active, per hour (max 1)."""
    return _ACTIVITY.copy()


def hour_weights_within_bins(profile: np.ndarray) -> np.ndarray:
    """Renormalize an hourly profile so each 4-hour bin sums to 1.

    Used to spread per-bin quantities (computed from the dwell matrices)
    over the hours of the bin.
    """
    profile = np.asarray(profile, dtype=np.float64)
    if profile.shape != (HOURS_PER_DAY,):
        raise ValueError("profile must have 24 hourly entries")
    out = profile.copy()
    for bin_index in range(6):
        hours = slice(bin_index * 4, bin_index * 4 + 4)
        total = out[hours].sum()
        if total <= 0:
            out[hours] = 0.25
        else:
            out[hours] /= total
    return out
