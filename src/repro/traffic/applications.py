"""Application mix.

The paper's interpretation of its traffic findings is application-level:
video streaming is downlink-heavy and easily offloaded to home WiFi (and
content providers throttled bitrates in week 12), conferencing/VoIP is
symmetric and surged, web/social is in between. This module captures
that reasoning as data. The demand model reduces the mix to aggregate
per-context factors; the mix itself is public API so ablations can play
with alternative mixes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AppClass", "APP_MIX", "mix_summary"]


@dataclass(frozen=True)
class AppClass:
    """One application category in the traffic mix."""

    name: str
    dl_share: float  # share of baseline downlink volume
    ul_dl_ratio: float  # uplink bytes per downlink byte
    app_rate_mbps: float  # typical active-session DL rate
    wifi_affinity: float  # fraction offloaded to WiFi when at home
    lockdown_demand_multiplier: float  # total-demand response to lockdown
    lockdown_rate_multiplier: float  # bitrate response (provider throttling)


APP_MIX: tuple[AppClass, ...] = (
    AppClass(
        "video-streaming",
        dl_share=0.46,
        ul_dl_ratio=0.03,
        app_rate_mbps=6.0,
        wifi_affinity=0.92,
        lockdown_demand_multiplier=1.10,
        lockdown_rate_multiplier=0.90,  # SD instead of HD (week 12 throttling)
    ),
    AppClass(
        "web-social",
        dl_share=0.30,
        ul_dl_ratio=0.12,
        app_rate_mbps=2.5,
        wifi_affinity=0.62,
        lockdown_demand_multiplier=1.05,
        lockdown_rate_multiplier=1.0,
    ),
    AppClass(
        "conferencing-voip",
        dl_share=0.06,
        ul_dl_ratio=0.85,
        app_rate_mbps=1.2,
        wifi_affinity=0.85,
        lockdown_demand_multiplier=2.2,
        lockdown_rate_multiplier=1.0,
    ),
    AppClass(
        "messaging",
        dl_share=0.06,
        ul_dl_ratio=0.45,
        app_rate_mbps=0.3,
        wifi_affinity=0.40,
        lockdown_demand_multiplier=1.15,
        lockdown_rate_multiplier=1.0,
    ),
    AppClass(
        "gaming",
        dl_share=0.05,
        ul_dl_ratio=0.20,
        app_rate_mbps=1.0,
        wifi_affinity=0.80,
        lockdown_demand_multiplier=1.25,
        lockdown_rate_multiplier=1.0,
    ),
    AppClass(
        "background-updates",
        dl_share=0.07,
        ul_dl_ratio=0.08,
        app_rate_mbps=3.0,
        wifi_affinity=0.55,
        lockdown_demand_multiplier=1.0,
        lockdown_rate_multiplier=1.0,
    ),
)


def mix_summary(restriction: float = 0.0) -> dict[str, float]:
    """Aggregate factors of the mix at a restriction level.

    Returns:

    - ``dl_demand`` — total DL demand relative to baseline,
    - ``ul_dl_ratio`` — aggregate uplink bytes per downlink byte over
      *all* demand (the away-from-home cellular mix),
    - ``home_ul_dl_ratio`` — UL:DL of the at-home *cellular* residue
      (what survives WiFi offload; symmetric apps offload differently
      from streaming, so this ratio differs from the aggregate),
    - ``app_rate_mbps`` — DL-share-weighted mean active rate,
    - ``home_cellular_share`` — fraction of DL demand that stays on
      cellular when the user is at home (1 − weighted WiFi affinity).

    ``restriction`` interpolates each app's lockdown multipliers
    linearly between the baseline (0) and full-lockdown (1) values.
    """
    if not 0.0 <= restriction <= 1.0:
        raise ValueError("restriction must be in [0, 1]")
    dl_total = 0.0
    ul_total = 0.0
    rate_weighted = 0.0
    cellular_at_home = 0.0
    home_ul = 0.0
    for app in APP_MIX:
        demand = app.dl_share * (
            1.0 + restriction * (app.lockdown_demand_multiplier - 1.0)
        )
        rate = app.app_rate_mbps * (
            1.0 + restriction * (app.lockdown_rate_multiplier - 1.0)
        )
        dl_total += demand
        ul_total += demand * app.ul_dl_ratio
        rate_weighted += demand * rate
        residue = demand * (1.0 - app.wifi_affinity)
        cellular_at_home += residue
        home_ul += residue * app.ul_dl_ratio
    return {
        "dl_demand": dl_total,
        "ul_dl_ratio": ul_total / dl_total,
        "home_ul_dl_ratio": home_ul / cellular_at_home,
        "app_rate_mbps": rate_weighted / dl_total,
        "home_cellular_share": cellular_at_home / dl_total,
    }
