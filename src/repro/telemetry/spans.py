"""Span timers and counters: the recording half of the telemetry layer.

A :class:`TelemetryRecorder` accumulates two kinds of facts about a run:

- **spans** — named, nestable wall-clock timers.  Entering a span pushes
  its name on the recorder's stack; the span's *path* is the stack
  joined with ``/``, so the same code records ``simulate/build_world``
  or ``report/fig3/metrics`` depending on where it was called from.
  Repeated visits to the same path accumulate (``calls`` counts them,
  ``seconds`` sums them), which is what turns a 98-iteration day loop
  into one phase row instead of 98.
- **counters** — process-wide named tallies (rows joined, kernel vs
  naive dispatches, ...), incremented with :func:`count`.

The module-level API mirrors the recorder but routes through one global
active recorder, installed with :func:`enable` and removed with
:func:`disable`.  When no recorder is active, :func:`span` returns a
shared no-op span and :func:`count` returns immediately — the cost of
disabled telemetry is one ``None`` check per call site.

Clocks are injectable (``perf_counter`` by default, monotonic), which
keeps the examples below — and the test suite — deterministic:

>>> ticks = iter(range(10))
>>> recorder = TelemetryRecorder(clock=lambda: float(next(ticks)))
>>> with recorder.span("simulate", days=98) as run:
...     with recorder.span("build_world"):
...         pass
...     run.add("users", 240)
>>> snap = recorder.snapshot()
>>> snap["spans"]["simulate/build_world"]["seconds"]
1.0
>>> snap["spans"]["simulate"]["seconds"]
3.0
>>> snap["spans"]["simulate"]["counters"] == {"days": 98, "users": 240}
True

The global switch, and the disabled path's no-op singleton:

>>> enabled()
False
>>> span("anything") is span("anything else")  # shared no-op span
True
>>> recorder = enable()
>>> with span("analyze"):
...     count("rows", 3)
>>> snapshot()["counters"]["rows"]
3
>>> disable() is recorder
True
"""

from __future__ import annotations

import functools
import time

__all__ = [
    "Span",
    "TelemetryRecorder",
    "NOOP_SPAN",
    "enabled",
    "enable",
    "disable",
    "active",
    "swap",
    "span",
    "count",
    "absorb",
    "snapshot",
    "timed",
]

SNAPSHOT_VERSION = 1


class _NoopSpan:
    """The span handed out while telemetry is disabled: does nothing."""

    __slots__ = ()

    path = None

    def add(self, name: str, value: float = 1) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


#: Shared no-op instance — stateless, so one object serves every
#: disabled call site without allocation.
NOOP_SPAN = _NoopSpan()


class Span:
    """One live timed section; created by :meth:`TelemetryRecorder.span`.

    Use as a context manager.  ``path`` is set on entry (the recorder's
    stack joined with ``/``) and survives exit, so callers can anchor
    later merges to where a span actually ran.
    """

    __slots__ = ("_recorder", "_name", "_counters", "_start", "path")

    def __init__(
        self, recorder: "TelemetryRecorder", name: str, counters: dict
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._counters = counters
        self._start = 0.0
        self.path: str | None = None

    def add(self, name: str, value: float = 1) -> None:
        """Accumulate a per-span counter (e.g. rows/events/bytes)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def __enter__(self) -> "Span":
        recorder = self._recorder
        recorder._stack.append(self._name)
        self.path = "/".join(recorder._stack)
        self._start = recorder._clock()
        return self

    def __exit__(self, *exc_info) -> bool:
        recorder = self._recorder
        elapsed = recorder._clock() - self._start
        recorder._stack.pop()
        recorder._record(self.path, elapsed, self._counters)
        return False


class TelemetryRecorder:
    """Accumulates span timings and counters for one run.

    ``clock`` must be monotonic; it defaults to ``time.perf_counter``.
    Recorders are cheap, self-contained, and JSON-serializable via
    :meth:`snapshot`, which is what lets pool workers ship their
    measurements back to the coordinator for merging.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._stack: list[str] = []
        # path -> {"calls": int, "seconds": float, "counters": {...}}
        self._spans: dict[str, dict] = {}
        self._counters: dict[str, float] = {}

    # -- recording ----------------------------------------------------------
    def span(self, name: str, **counters: float) -> Span:
        """A new timed section; keyword arguments seed its counters."""
        return Span(self, name, dict(counters))

    def count(self, name: str, value: float = 1) -> None:
        """Increment a process-wide counter."""
        self._counters[name] = self._counters.get(name, 0) + value

    def _record(self, path: str, seconds: float, counters: dict) -> None:
        stats = self._spans.get(path)
        if stats is None:
            stats = {"calls": 0, "seconds": 0.0, "counters": {}}
            self._spans[path] = stats
        stats["calls"] += 1
        stats["seconds"] += seconds
        merged = stats["counters"]
        for name, value in counters.items():
            merged[name] = merged.get(name, 0) + value

    # -- snapshots ----------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-serializable copy of everything recorded so far."""
        return {
            "version": SNAPSHOT_VERSION,
            "spans": {
                path: {
                    "calls": stats["calls"],
                    "seconds": stats["seconds"],
                    "counters": dict(stats["counters"]),
                }
                for path, stats in self._spans.items()
            },
            "counters": dict(self._counters),
        }

    def absorb(self, snapshot: dict, prefix: str | None = None) -> None:
        """Merge a snapshot (e.g. from a pool worker) into this recorder.

        ``prefix`` re-roots the snapshot's span paths — a worker records
        ``shard/scatter`` from its own root, and the coordinator absorbs
        it under the span that dispatched the work.  Counters merge by
        name (no prefix): they are process-wide sums by definition.
        """
        for path, stats in snapshot.get("spans", {}).items():
            full = f"{prefix}/{path}" if prefix else path
            target = self._spans.get(full)
            if target is None:
                target = {"calls": 0, "seconds": 0.0, "counters": {}}
                self._spans[full] = target
            target["calls"] += stats["calls"]
            target["seconds"] += stats["seconds"]
            merged = target["counters"]
            for name, value in stats.get("counters", {}).items():
                merged[name] = merged.get(name, 0) + value
        for name, value in snapshot.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + value

    def reset(self) -> None:
        """Drop everything recorded (the stack must be empty)."""
        if self._stack:
            raise RuntimeError("cannot reset a recorder with open spans")
        self._spans.clear()
        self._counters.clear()


# -- the global switch -------------------------------------------------------
# One process-wide active recorder. `None` means disabled, and every
# recording entry point starts with that single `None` check — the
# entire cost of disabled telemetry.
_ACTIVE: TelemetryRecorder | None = None


def enabled() -> bool:
    """True when a recorder is installed (telemetry is collecting)."""
    return _ACTIVE is not None


def active() -> TelemetryRecorder | None:
    """The installed recorder, or ``None`` when disabled."""
    return _ACTIVE


def enable(recorder: TelemetryRecorder | None = None) -> TelemetryRecorder:
    """Install ``recorder`` (a fresh one by default) and return it."""
    global _ACTIVE
    _ACTIVE = recorder if recorder is not None else TelemetryRecorder()
    return _ACTIVE


def disable() -> TelemetryRecorder | None:
    """Remove and return the installed recorder (``None`` if none was)."""
    global _ACTIVE
    recorder, _ACTIVE = _ACTIVE, None
    return recorder


def swap(recorder: TelemetryRecorder | None) -> TelemetryRecorder | None:
    """Install ``recorder`` (or disable on ``None``); return the previous."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, recorder
    return previous


def span(name: str, **counters: float):
    """A span on the active recorder; the shared no-op when disabled."""
    recorder = _ACTIVE
    if recorder is None:
        return NOOP_SPAN
    return recorder.span(name, **counters)


def count(name: str, value: float = 1) -> None:
    """Increment a counter on the active recorder; no-op when disabled."""
    recorder = _ACTIVE
    if recorder is None:
        return
    recorder.count(name, value)


def absorb(snapshot: dict, prefix: str | None = None) -> None:
    """Merge a snapshot into the active recorder; no-op when disabled."""
    recorder = _ACTIVE
    if recorder is None:
        return
    recorder.absorb(snapshot, prefix=prefix)


def snapshot() -> dict | None:
    """Snapshot of the active recorder, or ``None`` when disabled."""
    recorder = _ACTIVE
    return None if recorder is None else recorder.snapshot()


def timed(name: str):
    """Decorator: time every call of the function as a span.

    The disabled path costs one ``None`` check before delegating:

    >>> @timed("square")
    ... def square(x):
    ...     return x * x
    >>> square(4)  # telemetry disabled: plain call
    16
    >>> recorder = enable()
    >>> square(5)
    25
    >>> snapshot()["spans"]["square"]["calls"]
    1
    >>> _ = disable()
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            recorder = _ACTIVE
            if recorder is None:
                return fn(*args, **kwargs)
            with recorder.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
