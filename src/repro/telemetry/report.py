"""Run reports: merging snapshots and rendering the phase table.

A *snapshot* (produced by
:meth:`~repro.telemetry.spans.TelemetryRecorder.snapshot`) is a plain
JSON-serializable dict::

    {"version": 1,
     "spans":    {"simulate/build_world": {"calls": 1,
                                           "seconds": 0.5,
                                           "counters": {"sites": 40}}},
     "counters": {"frames.join.rows_in": 1200}}

:func:`merge_snapshots` reduces any number of snapshots into one by
summing calls, seconds and counters key-wise — the reduction is
associative and commutative for the integer-valued counters shard
workers produce, which is what makes per-shard telemetry safe to merge
in any order (the same property :mod:`repro.simulation.sharding` relies
on for the data itself).

>>> left = {"version": 1, "counters": {"rows": 2},
...         "spans": {"shard": {"calls": 1, "seconds": 0.5,
...                             "counters": {"users": 100}}}}
>>> right = {"version": 1, "counters": {"rows": 3},
...          "spans": {"shard": {"calls": 1, "seconds": 0.25,
...                              "counters": {"users": 140}}}}
>>> merged = merge_snapshots(left, right)
>>> merged["spans"]["shard"]["calls"], merged["counters"]["rows"]
(2, 5)
>>> merged["spans"]["shard"]["counters"]["users"]
240

:func:`render_phase_table` turns a snapshot into the aligned text table
the CLI prints under ``--telemetry``: one row per span path (children
indented under their parents), then the process-wide counters.

>>> print(render_phase_table(merged))  # doctest: +NORMALIZE_WHITESPACE
phase                                        calls     seconds  counters
shard                                            2       0.750  users=240
<BLANKLINE>
counter                                                   total
rows                                                          5
"""

from __future__ import annotations

from repro.telemetry.spans import SNAPSHOT_VERSION

__all__ = ["empty_snapshot", "merge_snapshots", "render_phase_table"]

_PHASE_WIDTH = 44
_COUNTER_WIDTH = 56


def empty_snapshot() -> dict:
    """A snapshot with nothing recorded (the merge identity)."""
    return {"version": SNAPSHOT_VERSION, "spans": {}, "counters": {}}


def merge_snapshots(*snapshots: dict | None) -> dict:
    """Key-wise sum of snapshots; ``None`` entries are skipped.

    Associative: ``merge(merge(a, b), c)`` equals ``merge(a, merge(b,
    c))`` exactly whenever the summed values are integers (counters,
    call counts) and up to float association for seconds.
    """
    merged = empty_snapshot()
    spans = merged["spans"]
    counters = merged["counters"]
    for snapshot in snapshots:
        if not snapshot:
            continue
        for path, stats in snapshot.get("spans", {}).items():
            target = spans.setdefault(
                path, {"calls": 0, "seconds": 0.0, "counters": {}}
            )
            target["calls"] += stats.get("calls", 0)
            target["seconds"] += stats.get("seconds", 0.0)
            tallies = target["counters"]
            for name, value in stats.get("counters", {}).items():
                tallies[name] = tallies.get(name, 0) + value
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
    return merged


def _format_value(value) -> str:
    """Counters print as ints when integral, compactly otherwise."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return f"{value:.6g}"


def _format_counters(counters: dict) -> str:
    return " ".join(
        f"{name}={_format_value(value)}"
        for name, value in sorted(counters.items())
    )


def render_phase_table(snapshot: dict | None) -> str:
    """The per-phase timing/counter table, as aligned text.

    Span paths are sorted by their components, which places every child
    directly under its parent; indentation shows the nesting depth.
    Seconds are the *inclusive* wall-clock total of the span (children
    are counted inside their parents), so a parent row is always at
    least the sum of its children.
    """
    if not snapshot or (
        not snapshot.get("spans") and not snapshot.get("counters")
    ):
        return "telemetry: nothing recorded"
    lines: list[str] = []
    spans = snapshot.get("spans", {})
    if spans:
        lines.append(
            f"{'phase':<{_PHASE_WIDTH}}{'calls':>6}{'seconds':>12}"
            "  counters"
        )
        for path in sorted(spans, key=lambda p: p.split("/")):
            stats = spans[path]
            depth = path.count("/")
            label = "  " * depth + path.rsplit("/", 1)[-1]
            row = (
                f"{label:<{_PHASE_WIDTH}}{stats['calls']:>6}"
                f"{stats['seconds']:>12.3f}"
            )
            counters = _format_counters(stats.get("counters", {}))
            lines.append(f"{row}  {counters}".rstrip())
    counters = snapshot.get("counters", {})
    if counters:
        if lines:
            lines.append("")
        lines.append(f"{'counter':<{_COUNTER_WIDTH}}{'total':>7}")
        for name in sorted(counters):
            lines.append(
                f"{name:<{_COUNTER_WIDTH}}"
                f"{_format_value(counters[name]):>7}"
            )
    return "\n".join(lines)
