"""Lightweight, dependency-free observability for the pipeline.

The simulate→analyze pipeline is instrumented end to end with this
package: hierarchical span timers (context-manager and decorator APIs
over monotonic clocks, with per-span counters for rows/events/bytes),
a process-wide counter registry, and a JSON-serializable run report
that merges across the process-pool boundary of the sharded engine.

Three rules shape the design:

1. **Off by default, free when off.**  Nothing records until
   :func:`enable` installs a recorder; every instrumented call site
   pays exactly one ``None`` check while disabled (:func:`span` hands
   back a shared no-op object, :func:`count` returns immediately).
2. **Plain data out.**  A recorder's :func:`snapshot` is a nested dict
   of ints, floats and strings — picklable across
   ``ProcessPoolExecutor``, mergeable with
   :func:`~repro.telemetry.report.merge_snapshots`, and persisted
   verbatim into the run ``manifest.json`` by :mod:`repro.io.store`.
3. **Paths tell the story.**  Span names nest by call stack into
   ``/``-joined paths (``simulate/shard_execution/shard/scatter``), so
   the phase table reads as a profile of where the run actually spent
   its time.

Typical use — the same calls the engine, frames kernels and study
driver make internally:

>>> from repro import telemetry
>>> recorder = telemetry.enable()
>>> with telemetry.span("demo", rows=120) as sp:
...     sp.add("rows", 40)
...     telemetry.count("demo.calls")
>>> snap = telemetry.snapshot()
>>> snap["spans"]["demo"]["counters"]["rows"]
160
>>> snap["counters"]["demo.calls"]
1
>>> telemetry.disable() is recorder
True

See ``docs/OBSERVABILITY.md`` for the guide: the span/counter API, how
shard telemetry merges, and how to read the ``--telemetry`` table.
"""

from repro.telemetry.spans import (
    NOOP_SPAN,
    Span,
    TelemetryRecorder,
    absorb,
    active,
    count,
    disable,
    enable,
    enabled,
    snapshot,
    span,
    swap,
    timed,
)
from repro.telemetry.report import (
    empty_snapshot,
    merge_snapshots,
    render_phase_table,
)

__all__ = [
    "NOOP_SPAN",
    "Span",
    "TelemetryRecorder",
    "absorb",
    "active",
    "count",
    "disable",
    "enable",
    "enabled",
    "empty_snapshot",
    "merge_snapshots",
    "render_phase_table",
    "snapshot",
    "span",
    "swap",
    "timed",
]
