"""Agent population: anchor places and behavioural traits.

Prior work the paper builds on (refs [17, 20]) shows people have 3–8
important places; the mobility statistics pipeline keeps the top-20
towers per user per day (§2.3). Each simulated user therefore carries a
fixed set of eight *anchor slots*:

====================  ====================================================
slot                  meaning
====================  ====================================================
``HOME``              the tower the user sleeps on
``WORK``              workplace, gravity-sampled by daytime attraction
``ERRAND``            shops/school run near home
``NEARBY``            park / exercise loop within walking distance
``SOCIAL``            friends / leisure, mid-range
``TRIP``              weekend-away destination (another county)
``RELOC_PRIMARY``     secondary-residence tower (another county)
``RELOC_SECONDARY``   a second tower near the relocation residence
====================  ====================================================

Anchor *districts* are gravity-sampled (attraction × exponential
distance decay, with OAC-dependent distance scales: rural users range
wider, central-London users shorter); the anchor *site* is then drawn
among the towers of the chosen district. Relocation/trip destinations
prefer leisure-heavy (rural/coastal) counties, which is how Hampshire,
Kent and East Sussex end up as the main Inner-London relocation
destinations (§3.4) without being hard-coded as answers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.geo.build import Geography
from repro.geo.coordinates import pairwise_distance_km
from repro.geo.oac import OAC_DEFINITIONS, OacCluster
from repro.network.subscribers import SubscriberBase
from repro.network.topology import RadioTopology

__all__ = ["AnchorSlot", "WorkerType", "AgentPopulation", "build_agents"]

NUM_ANCHORS = 8


class AnchorSlot(enum.IntEnum):
    """Index of each anchor in the per-user anchor arrays."""

    HOME = 0
    WORK = 1
    ERRAND = 2
    NEARBY = 3
    SOCIAL = 4
    TRIP = 5
    RELOC_PRIMARY = 6
    RELOC_SECONDARY = 7


class WorkerType(enum.IntEnum):
    """Worker category controlling lockdown work behaviour."""

    COMMUTER = 0  # office worker, switches to WFH under restrictions
    ESSENTIAL = 1  # keeps commuting through lockdown
    HOME_BASED = 2  # not commuting even pre-pandemic


# Distance-decay scales (km) per anchor kind.
_WORK_SCALE_KM = 12.0
_ERRAND_SCALE_KM = 3.0
_NEARBY_SCALE_KM = 1.5
_SOCIAL_SCALE_KM = 12.0
_TRIP_SCALE_KM = 80.0
_RELOC_SCALE_KM = 120.0

# How attractive a district's OAC makes it for leisure trips/second homes.
_LEISURE_FACTOR = {
    OacCluster.RURAL_RESIDENTS: 3.0,
    OacCluster.SUBURBANITES: 1.2,
    OacCluster.URBANITES: 0.8,
}
_DEFAULT_LEISURE = 0.5


@dataclass
class AgentPopulation:
    """Vectorized agent attributes for the study population."""

    user_ids: np.ndarray  # subscriber ids of study users
    home_district: np.ndarray
    home_site: np.ndarray
    anchor_sites: np.ndarray  # (N, NUM_ANCHORS)
    anchor_districts: np.ndarray  # (N, NUM_ANCHORS)
    compliance: np.ndarray  # [0, 1]
    worker_type: np.ndarray  # WorkerType values
    is_student: np.ndarray
    relocation_candidate: np.ndarray
    entropy_scale: np.ndarray  # OAC-driven out-and-about multiplier
    gyration_scale: np.ndarray  # OAC-driven distance multiplier
    home_region: np.ndarray  # region name per user
    home_county: np.ndarray  # county name per user

    def __post_init__(self) -> None:
        count = self.user_ids.shape[0]
        if self.anchor_sites.shape != (count, NUM_ANCHORS):
            raise ValueError("anchor_sites must be (num_users, 8)")
        if self.anchor_districts.shape != (count, NUM_ANCHORS):
            raise ValueError("anchor_districts must be (num_users, 8)")

    @property
    def num_users(self) -> int:
        return int(self.user_ids.shape[0])

    @cached_property
    def inner_london_mask(self) -> np.ndarray:
        return self.home_county == "Inner London"


def build_agents(
    geography: Geography,
    topology: RadioTopology,
    base: SubscriberBase,
    seed: int = 2020,
    inner_london_relocation_rate: float = 0.105,
    default_relocation_rate: float = 0.02,
) -> AgentPopulation:
    """Build the agent population from the native-smartphone users."""
    rng = np.random.default_rng(seed)
    study = base.study_mask
    user_ids = base.user_ids[study]
    home_district = base.home_district[study]
    home_site = base.home_site[study]
    count = user_ids.shape[0]

    districts = geography.districts
    num_districts = len(districts)
    distance = pairwise_distance_km(
        geography.district_lats, geography.district_lons
    )
    residents = geography.district_residents
    attraction = geography.district_attraction
    counties = np.array([d.county for d in districts])
    leisure = np.array(
        [
            max(d.residents, 1)
            * _LEISURE_FACTOR.get(d.oac, _DEFAULT_LEISURE)
            for d in districts
        ],
        dtype=np.float64,
    )

    oac_per_district = [d.oac for d in districts]
    gyration_scale_d = np.array(
        [OAC_DEFINITIONS[oac].baseline_gyration_scale for oac in oac_per_district]
    )
    entropy_scale_d = np.array(
        [OAC_DEFINITIONS[oac].baseline_entropy_scale for oac in oac_per_district]
    )

    anchor_districts = np.empty((count, NUM_ANCHORS), dtype=np.int64)
    anchor_districts[:, AnchorSlot.HOME] = home_district

    # Gravity-sample anchor districts per home-district group so the
    # weight vectors are computed once per (home district, kind).
    for home in np.unique(home_district):
        members = np.flatnonzero(home_district == home)
        gyration = gyration_scale_d[home]
        row = distance[home]
        specs = (
            (AnchorSlot.WORK, attraction, _WORK_SCALE_KM * gyration, None),
            (AnchorSlot.ERRAND, residents, _ERRAND_SCALE_KM, None),
            (AnchorSlot.NEARBY, residents, _NEARBY_SCALE_KM, None),
            (AnchorSlot.SOCIAL, attraction, _SOCIAL_SCALE_KM * gyration, None),
            (AnchorSlot.TRIP, leisure, _TRIP_SCALE_KM, "other-county"),
            (AnchorSlot.RELOC_PRIMARY, leisure, _RELOC_SCALE_KM, "other-county"),
        )
        for slot, mass, scale, constraint in specs:
            weights = mass * np.exp(-row / scale)
            if constraint == "other-county":
                weights = weights * (counties != counties[home])
            total = weights.sum()
            if total <= 0:
                # Degenerate geography (single county): fall back to any
                # other district, or home itself.
                weights = np.ones(num_districts)
                weights[home] = 0.0 if num_districts > 1 else 1.0
                total = weights.sum()
            anchor_districts[members, slot] = rng.choice(
                num_districts, size=members.size, p=weights / total
            )
    # The secondary relocation tower lives in the same district as the
    # primary (people move around their destination area).
    anchor_districts[:, AnchorSlot.RELOC_SECONDARY] = anchor_districts[
        :, AnchorSlot.RELOC_PRIMARY
    ]

    # Pick a concrete site per anchor district.
    anchor_sites = np.empty((count, NUM_ANCHORS), dtype=np.int64)
    anchor_sites[:, AnchorSlot.HOME] = home_site
    for slot in range(1, NUM_ANCHORS):
        column = anchor_districts[:, slot]
        for district_index in np.unique(column):
            members = np.flatnonzero(column == district_index)
            sites = topology.sites_in_district(int(district_index))
            if sites.size == 0:
                anchor_sites[members, slot] = home_site[members]
                anchor_districts[members, slot] = home_district[members]
            else:
                anchor_sites[members, slot] = rng.choice(
                    sites, size=members.size
                )

    # -- behavioural traits ------------------------------------------------
    compliance = rng.beta(8.0, 2.0, size=count)
    worker_type = rng.choice(
        np.array(
            [WorkerType.COMMUTER, WorkerType.ESSENTIAL, WorkerType.HOME_BASED],
            dtype=np.int64,
        ),
        size=count,
        p=np.array([0.55, 0.15, 0.30]),
    )
    home_oac = np.array([oac_per_district[d] for d in home_district])
    student_p = np.where(
        home_oac == OacCluster.COSMOPOLITANS, 0.30, 0.06
    ).astype(np.float64)
    is_student = rng.random(count) < student_p

    home_county = np.array([districts[d].county for d in home_district])
    home_region = np.array([districts[d].region for d in home_district])
    inner_london = home_county == "Inner London"
    reloc_p = np.where(
        inner_london,
        np.where(is_student, 0.40, inner_london_relocation_rate * 0.60),
        np.where(is_student, 0.30, default_relocation_rate),
    )
    relocation_candidate = rng.random(count) < reloc_p

    return AgentPopulation(
        user_ids=user_ids,
        home_district=home_district,
        home_site=home_site,
        anchor_sites=anchor_sites,
        anchor_districts=anchor_districts,
        compliance=compliance,
        worker_type=worker_type.astype(np.int8),
        is_student=is_student,
        relocation_candidate=relocation_candidate,
        entropy_scale=entropy_scale_d[home_district],
        gyration_scale=gyration_scale_d[home_district],
        home_region=home_region,
        home_county=home_county,
    )
