"""Piecewise-scheduled pandemic timelines for declarative scenarios.

:class:`~repro.mobility.pandemic.PandemicTimeline` hard-codes the shape
of the real UK 2020 intervention sequence: one escalation, one
lockdown, one slow relaxation.  The scenario catalog
(:mod:`repro.datasets.scenarios`) needs timelines the 2020 shape cannot
express — second waves, regional tiers, weekend curfews, restriction
holidays — so this module provides :class:`ScheduledTimeline`: an
explicit, ordered sequence of :class:`PolicyWindow` rows, each saying
"from this date, this phase label, this restriction level".

The class is a drop-in timeline for :class:`~repro.simulation.config.
SimulationConfig.timeline`: it implements the exact surface the
behaviour, demand and voice models consume (``phase``,
``restriction_level``, ``regional_multiplier``,
``regional_restriction``, ``relaxation_start``) and nothing more.  Both
classes are plain frozen dataclasses, so configurations carrying either
pickle, compare and digest identically well.
"""

from __future__ import annotations

import bisect
import datetime as dt
from dataclasses import dataclass, field
from functools import cached_property

from repro.mobility.pandemic import Phase

__all__ = ["PolicyWindow", "ScheduledTimeline"]

#: Sentinel "never" date for :attr:`ScheduledTimeline.relaxation_start`
#: when no window is labeled RELAXATION (the voice model only reads the
#: attribute for dates whose phase *is* RELAXATION, so it never acts on
#: the sentinel).
_NEVER = dt.date(9999, 1, 1)


@dataclass(frozen=True)
class PolicyWindow:
    """One row of a scenario timeline: a dated policy regime.

    The window runs from ``start`` (inclusive) until the next window's
    start (or forever, for the last window).  ``level`` is the national
    restriction level in [0, 1]; ``weekend_level``, when given,
    replaces it on Saturdays and Sundays (curfew-style scenarios);
    ``decay_per_day`` models fading adherence inside the window; and
    ``regional`` multiplies the level per region (tiered measures) —
    regions not named keep multiplier 1.0.
    """

    start: dt.date
    phase: Phase
    level: float
    weekend_level: float | None = None
    decay_per_day: float = 0.0
    regional: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        for name, value in (
            ("level", self.level),
            ("weekend_level", self.weekend_level),
        ):
            if value is not None and not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be within [0, 1], got {value}"
                )
        if self.decay_per_day < 0.0:
            raise ValueError("decay_per_day must be non-negative")
        for region, multiplier in self.regional:
            if multiplier < 0.0:
                raise ValueError(
                    f"regional multiplier for {region!r} must be >= 0"
                )

    def level_on(self, date: dt.date) -> float:
        """National restriction level of this window on ``date``."""
        level = self.level
        if self.weekend_level is not None and date.weekday() >= 5:
            level = self.weekend_level
        if self.decay_per_day:
            level -= self.decay_per_day * (date - self.start).days
        return max(0.0, level)


@dataclass(frozen=True)
class ScheduledTimeline:
    """A pandemic timeline defined by an explicit window sequence.

    Dates before the first window are :attr:`~repro.mobility.pandemic.
    Phase.PRE_PANDEMIC` at restriction 0.  Windows must be sorted by
    strictly increasing ``start``.
    """

    windows: tuple[PolicyWindow, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        starts = [window.start for window in self.windows]
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ValueError(
                "windows must be sorted by strictly increasing start"
            )

    @cached_property
    def _starts(self) -> list[dt.date]:
        return [window.start for window in self.windows]

    def _window(self, date: dt.date) -> PolicyWindow | None:
        index = bisect.bisect_right(self._starts, date) - 1
        return None if index < 0 else self.windows[index]

    # -- the timeline surface the models consume ---------------------------
    def phase(self, date: dt.date) -> Phase:
        """Phase label for a date."""
        window = self._window(date)
        return Phase.PRE_PANDEMIC if window is None else window.phase

    def restriction_level(self, date: dt.date) -> float:
        """National restriction level in [0, 1]."""
        window = self._window(date)
        return 0.0 if window is None else window.level_on(date)

    def regional_multiplier(self, region: str, date: dt.date) -> float:
        """Multiplier on the restriction level for a region."""
        window = self._window(date)
        if window is None:
            return 1.0
        return dict(window.regional).get(region, 1.0)

    def regional_restriction(self, region: str, date: dt.date) -> float:
        """Regional restriction level (national × regional multiplier)."""
        return self.restriction_level(date) * self.regional_multiplier(
            region, date
        )

    @property
    def relaxation_start(self) -> dt.date:
        """Start of the first RELAXATION window (voice-decay anchor)."""
        for window in self.windows:
            if window.phase is Phase.RELAXATION:
                return window.start
        return _NEVER
