"""Agent-based mobility: the people whose phones the probes observe.

The paper measures *behaviour* through the network: where each device
dwells, for how long, every day, across the pandemic timeline. This
package synthesizes that behaviour:

- :mod:`repro.mobility.pandemic` — the policy timeline (phases and a
  continuous restriction level, with regional relaxation differences),
- :mod:`repro.mobility.epidemic` — the confirmed-case curve used only
  for the paper's (absence of) correlation analysis,
- :mod:`repro.mobility.agents` — per-user anchor places (home, work,
  near-home, social, weekend-trip and relocation sites) and behavioural
  traits (compliance, worker type, relocation candidacy),
- :mod:`repro.mobility.behavior` — how much time users spend out of
  home per day given the timeline (plus trips and relocation states),
- :mod:`repro.mobility.trajectories` — assembles per-user per-4h-bin
  dwell-time matrices over anchors: the simulator's ground truth.
"""

from repro.mobility.pandemic import PandemicTimeline, Phase
from repro.mobility.epidemic import EpidemicCurve
from repro.mobility.agents import AgentPopulation, AnchorSlot, build_agents
from repro.mobility.behavior import BehaviorModel, BehaviorSettings, DayState
from repro.mobility.trajectories import NUM_BINS, DayDwell, TrajectoryModel

__all__ = [
    "AgentPopulation",
    "AnchorSlot",
    "BehaviorModel",
    "BehaviorSettings",
    "DayDwell",
    "DayState",
    "EpidemicCurve",
    "NUM_BINS",
    "PandemicTimeline",
    "Phase",
    "TrajectoryModel",
    "build_agents",
]
