"""The pandemic policy timeline.

Encodes the UK intervention sequence as a *continuous restriction
level* in [0, 1] plus a phase label. Two second-order effects the paper
highlights are part of the timeline:

- **adherence decay** — "mobility slightly increases from week 15
  despite the lockdown still being enforced" (§3.1): the restriction
  level decays slowly after two full lockdown weeks;
- **regional relaxation** — London and West Yorkshire relax faster in
  weeks 18–19, while Greater Manchester and the West Midlands stay
  consistently low (§3.2).

The restriction level is policy+population behaviour; how it maps to
hours-out-of-home, traffic demand or voice minutes is owned by the
behaviour/traffic models.
"""

from __future__ import annotations

import datetime as dt
import enum
from dataclasses import dataclass, field

from repro.simulation.clock import KeyDates

__all__ = ["Phase", "PandemicTimeline"]


class Phase(enum.Enum):
    """Intervention phases of the UK timeline."""

    PRE_PANDEMIC = "pre-pandemic"
    OUTBREAK = "outbreak"  # cases rising, no measures yet
    DECLARED = "declared"  # WHO declaration, voluntary caution
    DISTANCING = "distancing"  # work-from-home recommendation
    CLOSURES = "closures"  # schools/venues closed
    LOCKDOWN = "lockdown"  # stay-at-home order
    RELAXATION = "relaxation"  # order still in force, adherence fading


# Regions that relaxed earlier/faster vs regions that did not (§3.2).
_FAST_RELAXING_REGIONS = ("London", "Yorkshire and the Humber")
_STRICT_REGIONS = ("North West", "West Midlands")


@dataclass
class PandemicTimeline:
    """Phase and restriction level for every study date."""

    key_dates: KeyDates = field(default_factory=KeyDates)
    outbreak_start: dt.date = dt.date(2020, 3, 2)  # week 10
    relaxation_start: dt.date = dt.date(2020, 4, 6)  # week 15
    fast_relaxation_start: dt.date = dt.date(2020, 4, 27)  # week 18
    declared_level: float = 0.12
    distancing_level: float = 0.45
    closures_level: float = 0.62
    lockdown_level: float = 1.0
    adherence_decay_per_day: float = 0.004

    def phase(self, date: dt.date) -> Phase:
        """Phase label for a date."""
        keys = self.key_dates
        if date < self.outbreak_start:
            return Phase.PRE_PANDEMIC
        if date < keys.pandemic_declared:
            return Phase.OUTBREAK
        if date < keys.wfh_recommended:
            return Phase.DECLARED
        if date < keys.venues_closed:
            return Phase.DISTANCING
        if date < keys.lockdown:
            return Phase.CLOSURES
        if date < self.relaxation_start:
            return Phase.LOCKDOWN
        return Phase.RELAXATION

    def restriction_level(self, date: dt.date) -> float:
        """National restriction level in [0, 1]."""
        phase = self.phase(date)
        if phase in (Phase.PRE_PANDEMIC, Phase.OUTBREAK):
            return 0.0
        if phase is Phase.DECLARED:
            return self.declared_level
        if phase is Phase.DISTANCING:
            return self.distancing_level
        if phase is Phase.CLOSURES:
            return self.closures_level
        if phase is Phase.LOCKDOWN:
            return self.lockdown_level
        days_relaxing = (date - self.relaxation_start).days
        return max(
            0.0, self.lockdown_level - self.adherence_decay_per_day * days_relaxing
        )

    def regional_multiplier(self, region: str, date: dt.date) -> float:
        """Multiplier (≤ 1) on the restriction level for a region.

        London and West Yorkshire loosen in weeks 18–19; Greater
        Manchester / West Midlands regions hold the line.
        """
        if date < self.fast_relaxation_start:
            return 1.0
        weeks_since = (date - self.fast_relaxation_start).days / 7.0
        if region in _FAST_RELAXING_REGIONS:
            return max(0.80, 1.0 - 0.07 * (1.0 + weeks_since))
        if region in _STRICT_REGIONS:
            return 1.0
        return max(0.92, 1.0 - 0.03 * (1.0 + weeks_since))

    def regional_restriction(self, region: str, date: dt.date) -> float:
        """Regional restriction level (national × regional multiplier)."""
        return self.restriction_level(date) * self.regional_multiplier(
            region, date
        )
