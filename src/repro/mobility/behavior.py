"""Behaviour model: how much time users spend where, day by day.

Produces, for every simulation day, per-user out-of-home durations per
anchor kind plus trip/relocation states. The durations respond to the
pandemic timeline through a per-user *effective restriction*:

    r_u(d) = regional_restriction(region_u, d) × (0.55 + 0.45 × compliance_u)

Responses differ per activity, reflecting UK rules and observed
behaviour: office work collapses (work-from-home), social visits nearly
stop, errands (food shopping) fall by about half, and near-home time
*rises* (the permitted daily exercise) — the mechanism that makes
entropy fall less than gyration in §3.1.

The model also owns the discrete behaviours behind §3.4:

- **temporary relocation** out of Inner London (students after school
  closures, second-home owners around the lockdown announcement), with
  a sustained component — the paper's "10% of residents temporarily
  relocated";
- the **pre-lockdown weekend exodus** from London on 21–22 March;
- the **late-April weekend trips** from London (weeks 18–19).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field

import numpy as np

from repro.mobility.agents import AgentPopulation, WorkerType
from repro.mobility.pandemic import PandemicTimeline
from repro.simulation import kernels
from repro.simulation.clock import StudyCalendar

__all__ = ["BehaviorSettings", "DayState", "BehaviorModel"]


@dataclass(frozen=True)
class BehaviorSettings:
    """Behavioural response parameters (calibration knobs)."""

    # Base out-of-home durations, hours.
    work_hours_commuter: float = 8.5
    work_hours_essential: float = 8.0
    errand_weekday_hours: float = 0.8
    errand_weekend_hours: float = 1.3
    nearby_weekday_hours: float = 0.7
    nearby_weekend_hours: float = 1.1
    social_weekday_hours: float = 1.5
    social_weekend_hours: float = 3.2
    weekend_trip_probability: float = 0.085
    london_weekend_trip_bonus: float = 0.035  # Londoners get away more

    # Responses to the effective restriction level.
    wfh_max: float = 0.88
    essential_reduction: float = 0.15
    social_reduction: float = 0.95
    errand_reduction: float = 0.30
    nearby_boost: float = 1.40
    trip_reduction: float = 0.97
    trip_restriction_exponent: float = 0.4  # trips react early and hard

    # Per-user-day duration noise (lognormal sigma).
    duration_noise_sigma: float = 0.30

    # Relocation timing.
    relocation_window: tuple[dt.date, dt.date] = (
        dt.date(2020, 3, 17),
        dt.date(2020, 3, 27),
    )
    student_exodus: tuple[dt.date, dt.date] = (
        dt.date(2020, 3, 19),
        dt.date(2020, 3, 22),
    )
    relocation_return_share: float = 0.25
    relocation_min_stay_days: int = 28

    # Special events.
    pre_lockdown_exodus_days: tuple[dt.date, ...] = (
        dt.date(2020, 3, 21),
        dt.date(2020, 3, 22),
    )
    pre_lockdown_exodus_probability: float = 0.12
    late_april_trip_start: dt.date = dt.date(2020, 4, 25)
    late_april_trip_bonus: float = 0.05


@dataclass
class DayState:
    """Per-user behavioural outcome for one day (durations in seconds)."""

    work_s: np.ndarray
    errand_s: np.ndarray
    nearby_s: np.ndarray
    social_s: np.ndarray
    on_trip: np.ndarray  # full-day away at the TRIP anchor
    relocated: np.ndarray  # living at the relocation anchors
    restriction: np.ndarray  # effective per-user restriction that day

    def take(self, indices: np.ndarray | None) -> "DayState":
        """The state restricted to a subset of users (``None`` = all).

        The full-population state is always computed first — every
        random draw is index-aligned with the agent population — so a
        sliced state is bitwise identical to the corresponding rows of
        the full one regardless of how the population is partitioned
        (the shard-count-invariance contract of
        :mod:`repro.simulation.sharding`).
        """
        if indices is None:
            return self
        return DayState(
            work_s=self.work_s[indices],
            errand_s=self.errand_s[indices],
            nearby_s=self.nearby_s[indices],
            social_s=self.social_s[indices],
            on_trip=self.on_trip[indices],
            relocated=self.relocated[indices],
            restriction=self.restriction[indices],
        )


class BehaviorModel:
    """Day-by-day behaviour driven by the pandemic timeline."""

    def __init__(
        self,
        agents: AgentPopulation,
        timeline: PandemicTimeline,
        calendar: StudyCalendar,
        settings: BehaviorSettings | None = None,
        seed: int = 2020,
    ) -> None:
        self._agents = agents
        self._timeline = timeline
        self._calendar = calendar
        self._settings = settings or BehaviorSettings()
        self._seed = seed
        self._relocation_start, self._relocation_end = (
            self._draw_relocation_schedule()
        )
        self._region_cache: dict[dt.date, dict[str, float]] = {}
        # Factorized home regions: the vectorized restriction path turns
        # the per-agent region lookup into one gather through these
        # dense codes (identical values, no per-agent Python loop).
        self._region_uniques, self._region_codes = np.unique(
            agents.home_region, return_inverse=True
        )

    # -- relocation schedule ------------------------------------------------
    def _draw_relocation_schedule(self) -> tuple[np.ndarray, np.ndarray]:
        agents = self._agents
        settings = self._settings
        calendar = self._calendar
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self._seed, spawn_key=(0,))
        )
        count = agents.num_users
        start = np.full(count, np.iinfo(np.int64).max, dtype=np.int64)
        end = np.full(count, np.iinfo(np.int64).max, dtype=np.int64)
        candidates = np.flatnonzero(agents.relocation_candidate)
        if candidates.size == 0:
            return start, end

        def clamp_day(date: dt.date) -> int:
            date = max(calendar.first_day, min(date, calendar.last_day))
            return calendar.day_of(date)

        window_start = clamp_day(settings.relocation_window[0])
        window_end = clamp_day(settings.relocation_window[1])
        student_start = clamp_day(settings.student_exodus[0])
        student_end = clamp_day(settings.student_exodus[1])
        students = agents.is_student[candidates]
        start[candidates] = np.where(
            students,
            rng.integers(student_start, student_end + 1, size=candidates.size),
            rng.integers(window_start, window_end + 1, size=candidates.size),
        )
        returns = rng.random(candidates.size) < settings.relocation_return_share
        stay = settings.relocation_min_stay_days + rng.integers(
            0, 21, size=candidates.size
        )
        end[candidates[returns]] = (
            start[candidates[returns]] + stay[returns]
        )
        return start, end

    @property
    def relocation_start_days(self) -> np.ndarray:
        """Relocation start day per user (int64 max = never)."""
        return self._relocation_start

    # -- per-day state -------------------------------------------------------
    def _effective_restriction(self, date: dt.date) -> np.ndarray:
        if date not in self._region_cache:
            self._region_cache[date] = {
                region: self._timeline.regional_restriction(region, date)
                for region in self._region_uniques
            }
        lookup = self._region_cache[date]
        if kernels.use_naive():
            # Reference path: the per-agent dictionary lookup.
            regional = np.array(
                [lookup[region] for region in self._agents.home_region]
            )
        else:
            # One gather through the factorized region codes — the same
            # float64 values, bitwise, without the O(users) Python loop.
            values = np.array(
                [lookup[region] for region in self._region_uniques]
            )
            regional = values[self._region_codes]
        return regional * (0.55 + 0.45 * self._agents.compliance)

    def day_state(self, day: int) -> DayState:
        """Compute the behavioural state for one simulation day."""
        settings = self._settings
        calendar = self._calendar
        date = calendar.date_of(day)
        weekend = bool(calendar.is_weekend[day])
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self._seed, spawn_key=(1, day))
        )
        count = self._agents.num_users
        restriction = self._effective_restriction(date)

        # Relocation overrides everything else (integer comparisons).
        relocated = (self._relocation_start <= day) & (
            day < self._relocation_end
        )

        # Both paths consume identical population-wide draws, in the
        # same order, so the RNG stream never depends on the dispatch
        # choice (the trip probabilities themselves use no randomness).
        trip_r = rng.random(count)
        noise = rng.lognormal(
            0.0, settings.duration_noise_sigma, size=(4, count)
        )

        if kernels.dispatch_naive("behavior.day_state"):
            builder = self._day_state_naive
        else:
            builder = self._day_state_vectorized
        work_s, errand_s, nearby_s, social_s, on_trip = builder(
            date, weekend, restriction, relocated, trip_r, noise
        )
        return DayState(
            work_s=work_s,
            errand_s=errand_s,
            nearby_s=nearby_s,
            social_s=social_s,
            on_trip=on_trip,
            relocated=relocated,
            restriction=restriction,
        )

    def _day_state_vectorized(
        self,
        date: dt.date,
        weekend: bool,
        restriction: np.ndarray,
        relocated: np.ndarray,
        trip_r: np.ndarray,
        noise: np.ndarray,
    ) -> tuple[np.ndarray, ...]:
        agents = self._agents
        settings = self._settings
        count = agents.num_users

        # -- trips ----------------------------------------------------------
        trip_p = np.zeros(count)
        if weekend:
            base_p = settings.weekend_trip_probability + np.where(
                agents.home_region == "London",
                settings.london_weekend_trip_bonus,
                0.0,
            )
            factor = 1.0 - settings.trip_reduction * np.power(
                np.clip(restriction, 0.0, 1.0),
                settings.trip_restriction_exponent,
            )
            trip_p = base_p * np.clip(factor, 0.0, 1.0)
            if date >= settings.late_april_trip_start:
                trip_p += np.where(
                    agents.home_region == "London",
                    settings.late_april_trip_bonus,
                    0.0,
                )
        if date in settings.pre_lockdown_exodus_days:
            trip_p += np.where(
                agents.home_county == "Inner London",
                settings.pre_lockdown_exodus_probability,
                0.0,
            )
        on_trip = (trip_r < trip_p) & ~relocated

        # -- activity durations --------------------------------------------
        if weekend:
            work_base = np.zeros(count)
        else:
            work_base = np.select(
                [
                    agents.worker_type == WorkerType.COMMUTER,
                    agents.worker_type == WorkerType.ESSENTIAL,
                ],
                [
                    settings.work_hours_commuter
                    * (1.0 - settings.wfh_max * restriction),
                    settings.work_hours_essential
                    * (1.0 - settings.essential_reduction * restriction),
                ],
                default=0.0,
            )
        errand_base = (
            settings.errand_weekend_hours
            if weekend
            else settings.errand_weekday_hours
        ) * (1.0 - settings.errand_reduction * restriction)
        # The permitted-exercise boost is strongest where everything is
        # within walking distance (dense central areas keep popping out
        # to local shops/parks), which is what keeps the entropy of the
        # central-London clusters comparatively high under lockdown
        # (§3.3: Ethnicity Central shows the smallest entropy drop).
        nearby_base = (
            settings.nearby_weekend_hours
            if weekend
            else settings.nearby_weekday_hours
        ) * (1.0 + settings.nearby_boost * restriction * agents.entropy_scale)
        social_base = (
            settings.social_weekend_hours
            if weekend
            else settings.social_weekday_hours
        ) * (1.0 - settings.social_reduction * restriction)

        entropy_scale = agents.entropy_scale
        work_s = np.maximum(work_base * noise[0], 0.0) * 3600.0
        errand_s = np.maximum(errand_base * noise[1], 0.0) * 3600.0
        nearby_s = (
            np.maximum(nearby_base * entropy_scale * noise[2], 0.0) * 3600.0
        )
        social_s = (
            np.maximum(social_base * entropy_scale * noise[3], 0.0) * 3600.0
        )
        return work_s, errand_s, nearby_s, social_s, on_trip

    def _day_state_naive(
        self,
        date: dt.date,
        weekend: bool,
        restriction: np.ndarray,
        relocated: np.ndarray,
        trip_r: np.ndarray,
        noise: np.ndarray,
    ) -> tuple[np.ndarray, ...]:
        """Reference per-agent loop behind ``REPRO_SIM_NAIVE=1``.

        Same pre-drawn random vectors, same floating-point operations in
        the same order per user — only the iteration is scalar — so the
        result is bitwise identical to :meth:`_day_state_vectorized`.
        (Adding a literal ``0.0`` to a non-negative probability is a
        bitwise no-op, so branches the vectorized path expresses with
        ``np.where(..., 0.0)`` may simply be skipped here.)
        """
        agents = self._agents
        settings = self._settings
        count = agents.num_users
        exodus = date in settings.pre_lockdown_exodus_days
        late_april = weekend and date >= settings.late_april_trip_start

        work_s = np.zeros(count)
        errand_s = np.zeros(count)
        nearby_s = np.zeros(count)
        social_s = np.zeros(count)
        on_trip = np.zeros(count, dtype=bool)
        for u in range(count):
            r = restriction[u]
            trip_p = 0.0
            if weekend:
                base_p = settings.weekend_trip_probability + (
                    settings.london_weekend_trip_bonus
                    if agents.home_region[u] == "London"
                    else 0.0
                )
                factor = 1.0 - settings.trip_reduction * np.power(
                    np.clip(r, 0.0, 1.0),
                    settings.trip_restriction_exponent,
                )
                trip_p = base_p * np.clip(factor, 0.0, 1.0)
                if late_april and agents.home_region[u] == "London":
                    trip_p = trip_p + settings.late_april_trip_bonus
            if exodus and agents.home_county[u] == "Inner London":
                trip_p = trip_p + settings.pre_lockdown_exodus_probability
            on_trip[u] = bool(trip_r[u] < trip_p) and not relocated[u]

            if weekend:
                work_base = 0.0
            elif agents.worker_type[u] == WorkerType.COMMUTER:
                work_base = settings.work_hours_commuter * (
                    1.0 - settings.wfh_max * r
                )
            elif agents.worker_type[u] == WorkerType.ESSENTIAL:
                work_base = settings.work_hours_essential * (
                    1.0 - settings.essential_reduction * r
                )
            else:
                work_base = 0.0
            errand_base = (
                settings.errand_weekend_hours
                if weekend
                else settings.errand_weekday_hours
            ) * (1.0 - settings.errand_reduction * r)
            scale = agents.entropy_scale[u]
            nearby_base = (
                settings.nearby_weekend_hours
                if weekend
                else settings.nearby_weekday_hours
            ) * (1.0 + settings.nearby_boost * r * scale)
            social_base = (
                settings.social_weekend_hours
                if weekend
                else settings.social_weekday_hours
            ) * (1.0 - settings.social_reduction * r)

            work_s[u] = np.maximum(work_base * noise[0, u], 0.0) * 3600.0
            errand_s[u] = np.maximum(errand_base * noise[1, u], 0.0) * 3600.0
            nearby_s[u] = (
                np.maximum(nearby_base * scale * noise[2, u], 0.0) * 3600.0
            )
            social_s[u] = (
                np.maximum(social_base * scale * noise[3, u], 0.0) * 3600.0
            )
        return work_s, errand_s, nearby_s, social_s, on_trip
