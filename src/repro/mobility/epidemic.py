"""Confirmed-case curve (Public Health England stand-in).

Figure 4 of the paper scatters daily mobility entropy against the
nation-wide cumulative number of lab-confirmed SARS-CoV-2 cases and
finds *no* correlation — mobility responds to announcements and orders,
not to case counts. The analysis needs a case curve with the real
qualitative shape: negligible in February, ~1,000 cases around the
March 11 declaration, inflecting in April.

A logistic curve calibrated on those waypoints provides that. The exact
magnitude is irrelevant to the result (which is an absence of
correlation driven by the *timing* mismatch between the sigmoid and the
step-shaped mobility response).
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass

import numpy as np

__all__ = ["EpidemicCurve"]


@dataclass(frozen=True)
class EpidemicCurve:
    """Logistic cumulative confirmed-case model."""

    final_size: float = 190_000.0
    midpoint: dt.date = dt.date(2020, 4, 30)
    growth_rate: float = 0.105  # per day

    def cumulative_cases(self, date: dt.date) -> float:
        """Cumulative lab-confirmed cases reported by ``date``."""
        days = (date - self.midpoint).days
        return float(
            self.final_size / (1.0 + np.exp(-self.growth_rate * days))
        )

    def cumulative_series(self, dates: tuple[dt.date, ...]) -> np.ndarray:
        """Vectorized cumulative cases for a date tuple."""
        days = np.array([(date - self.midpoint).days for date in dates])
        return self.final_size / (1.0 + np.exp(-self.growth_rate * days))

    def daily_new_cases(self, date: dt.date) -> float:
        """New cases reported on ``date``."""
        return self.cumulative_cases(date) - self.cumulative_cases(
            date - dt.timedelta(days=1)
        )
