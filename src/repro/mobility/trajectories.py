"""Daily dwell-time matrices: the simulator's mobility ground truth.

For each day the model emits, per user, the time spent attached to each
anchor tower within six disjoint 4-hour bins — exactly the aggregation
granularity of the paper's mobility statistics (§2.3: "six disjoint
4-hour bins of the day ... and also over the entire day").

Assembly: behaviour durations per activity kind are spread over the
bins with kind-specific diurnal templates (work in office hours, social
in the evening, ...), capped at the bin length; the remainder of every
bin is time at home. Trip days and relocation days override the normal
template: the user spends the whole day on their away anchors,
including the nights — which is what lets the paper's home-detection and
relocation analyses see them leave.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mobility.agents import AgentPopulation, AnchorSlot, NUM_ANCHORS
from repro.mobility.behavior import BehaviorModel, DayState
from repro.simulation import kernels

__all__ = ["NUM_BINS", "BIN_SECONDS", "DayDwell", "TrajectoryModel"]

NUM_BINS = 6
BIN_SECONDS = 14_400.0  # 4 hours

# Diurnal spread of each activity kind over the six bins
# (00-04, 04-08, 08-12, 12-16, 16-20, 20-24).
_BIN_TEMPLATES = {
    AnchorSlot.WORK: np.array([0.0, 0.05, 0.38, 0.38, 0.19, 0.0]),
    AnchorSlot.ERRAND: np.array([0.0, 0.10, 0.30, 0.30, 0.30, 0.0]),
    AnchorSlot.NEARBY: np.array([0.0, 0.15, 0.25, 0.25, 0.25, 0.10]),
    AnchorSlot.SOCIAL: np.array([0.0, 0.0, 0.10, 0.25, 0.40, 0.25]),
}

# Relocated users split their day between the two relocation towers:
# nights on the primary, daytime partly on the secondary.
_RELOC_PRIMARY_SHARE = np.array([1.0, 1.0, 0.7, 0.7, 0.75, 1.0])


@dataclass
class DayDwell:
    """Per-user anchor dwell times for one day.

    ``dwell_s`` has shape ``(num_users, NUM_BINS, NUM_ANCHORS)`` and sums
    to 86,400 seconds per user; ``anchor_sites`` has shape
    ``(num_users, NUM_ANCHORS)``.
    """

    day: int
    user_ids: np.ndarray
    anchor_sites: np.ndarray
    dwell_s: np.ndarray

    @property
    def num_users(self) -> int:
        return int(self.user_ids.shape[0])

    def daily_dwell(self) -> np.ndarray:
        """Dwell summed over bins: shape (num_users, NUM_ANCHORS)."""
        return self.dwell_s.sum(axis=1)

    def nighttime_dwell(self, night_bins: tuple[int, ...] = (0, 1)) -> np.ndarray:
        """Dwell in the night bins (00:00–08:00 by default)."""
        return self.dwell_s[:, list(night_bins), :].sum(axis=1)


class TrajectoryModel:
    """Turns behaviour day-states into dwell matrices."""

    def __init__(
        self, agents: AgentPopulation, behavior: BehaviorModel
    ) -> None:
        self._agents = agents
        self._behavior = behavior

    def day_dwell(
        self, day: int, indices: np.ndarray | None = None
    ) -> DayDwell:
        """Assemble the dwell matrix for one simulation day.

        ``indices`` restricts the output to a subset of users (a shard
        of the population).  The behavioural state is always drawn for
        the full population and then sliced, so every row of a sharded
        dwell matrix is bitwise identical to the same row of the full
        one — the property the parallel engine's merge relies on.
        """
        agents = self._agents
        state = self._behavior.day_state(day).take(indices)
        if indices is None:
            user_ids = agents.user_ids
            anchor_sites = agents.anchor_sites
        else:
            user_ids = agents.user_ids[indices]
            anchor_sites = agents.anchor_sites[indices]
        count = int(user_ids.shape[0])
        durations = {
            AnchorSlot.WORK: state.work_s,
            AnchorSlot.ERRAND: state.errand_s,
            AnchorSlot.NEARBY: state.nearby_s,
            AnchorSlot.SOCIAL: state.social_s,
        }
        if kernels.dispatch_naive("trajectories.day_dwell"):
            dwell = self._assemble_naive(count, durations, state)
        else:
            dwell = self._assemble_vectorized(count, durations, state)
        return DayDwell(
            day=day,
            user_ids=user_ids,
            anchor_sites=anchor_sites,
            dwell_s=dwell,
        )

    @staticmethod
    def _assemble_vectorized(
        count: int,
        durations: dict[AnchorSlot, np.ndarray],
        state: DayState,
    ) -> np.ndarray:
        dwell = np.zeros((count, NUM_BINS, NUM_ANCHORS), dtype=np.float64)
        for slot, seconds in durations.items():
            template = _BIN_TEMPLATES[slot]
            dwell[:, :, slot] = seconds[:, None] * template[None, :]

        # Cap out-of-home time at the bin length, rescaling kinds
        # proportionally, then fill the remainder with home time.
        out_per_bin = dwell.sum(axis=2)
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(
                out_per_bin > BIN_SECONDS, BIN_SECONDS / out_per_bin, 1.0
            )
        dwell *= scale[:, :, None]
        dwell[:, :, AnchorSlot.HOME] = np.maximum(
            BIN_SECONDS - dwell.sum(axis=2), 0.0
        )

        # Trip days: the whole day at the TRIP anchor.
        if state.on_trip.any():
            trip = state.on_trip
            dwell[trip] = 0.0
            dwell[trip, :, AnchorSlot.TRIP] = BIN_SECONDS

        # Relocation days: live on the relocation towers.
        if state.relocated.any():
            moved = state.relocated
            dwell[moved] = 0.0
            dwell[moved, :, AnchorSlot.RELOC_PRIMARY] = (
                BIN_SECONDS * _RELOC_PRIMARY_SHARE[None, :]
            )
            dwell[moved, :, AnchorSlot.RELOC_SECONDARY] = BIN_SECONDS * (
                1.0 - _RELOC_PRIMARY_SHARE[None, :]
            )
        return dwell

    @staticmethod
    def _assemble_naive(
        count: int,
        durations: dict[AnchorSlot, np.ndarray],
        state: DayState,
    ) -> np.ndarray:
        """Reference per-agent assembly behind ``REPRO_SIM_NAIVE=1``.

        One ``(NUM_BINS, NUM_ANCHORS)`` matrix at a time, with the same
        operations in the same order as the whole-population version
        (last-axis reductions are computed independently per row, so the
        per-user sums match the 3-D sums bitwise).
        """
        dwell = np.zeros((count, NUM_BINS, NUM_ANCHORS), dtype=np.float64)
        for u in range(count):
            d = dwell[u]
            for slot, seconds in durations.items():
                d[:, slot] = seconds[u] * _BIN_TEMPLATES[slot]
            out_per_bin = d.sum(axis=1)
            with np.errstate(divide="ignore", invalid="ignore"):
                scale = np.where(
                    out_per_bin > BIN_SECONDS,
                    BIN_SECONDS / out_per_bin,
                    1.0,
                )
            d *= scale[:, None]
            d[:, AnchorSlot.HOME] = np.maximum(
                BIN_SECONDS - d.sum(axis=1), 0.0
            )
            if state.on_trip[u]:
                d[:] = 0.0
                d[:, AnchorSlot.TRIP] = BIN_SECONDS
            if state.relocated[u]:
                d[:] = 0.0
                d[:, AnchorSlot.RELOC_PRIMARY] = (
                    BIN_SECONDS * _RELOC_PRIMARY_SHARE
                )
                d[:, AnchorSlot.RELOC_SECONDARY] = BIN_SECONDS * (
                    1.0 - _RELOC_PRIMARY_SHARE
                )
        return dwell
