"""Synthetic UK geography substrate.

The paper joins every measurement against three public UK datasets:

- the **National Statistics Postcode Lookup (NSPL)** — postcode →
  Local Authority District (LAD) / Upper Tier Local Authority / county,
- the **2011 Output Area Classification (OAC)** — postcode →
  geodemographic supergroup (Table 1 of the paper),
- **ONS census population estimates** per LAD (used to validate home
  detection, Fig 2).

None of those join keys require the real UK: what matters is the
*hierarchy* (postcode district ⊂ LAD ⊂ county ⊂ region), the
geodemographic labelling, and realistic population/attraction contrasts
(dense commercial centres vs dormitory suburbs vs rural areas). This
package synthesizes a UK with exactly those properties, anchored on the
real study areas (Inner/Outer London, Greater Manchester, West Midlands,
West Yorkshire) plus the counties featured in the relocation analysis
(Hampshire, Kent, East Sussex, ...).
"""

from repro.geo.coordinates import (
    LatLon,
    haversine_km,
    pairwise_distance_km,
    weighted_centroid,
)
from repro.geo.oac import OAC_DEFINITIONS, OacCluster, oac_table
from repro.geo.build import (
    CountySpec,
    Geography,
    PostcodeDistrict,
    build_uk_geography,
)
from repro.geo.nspl import PostcodeLookup

__all__ = [
    "CountySpec",
    "Geography",
    "LatLon",
    "OAC_DEFINITIONS",
    "OacCluster",
    "PostcodeDistrict",
    "PostcodeLookup",
    "build_uk_geography",
    "haversine_km",
    "oac_table",
    "pairwise_distance_km",
    "weighted_centroid",
]
