"""2011 Output Area Classification (OAC) geodemographic supergroups.

Table 1 of the paper lists the eight 2011 OAC supergroups used to slice
both the mobility and the network-performance analyses. This module is
the catalog of those supergroups plus the behavioural descriptors the
synthetic-UK builder and the mobility/traffic models need:

- ``urban_density`` — how densely built the areas labelled with the
  cluster are (0 = deep rural, 1 = central London),
- ``daytime_pull`` — how strongly the areas attract non-resident
  visitors (work/commerce/tourism), the mechanism behind the paper's
  "Cosmopolitans empty out during lockdown" findings,
- ``baseline_gyration_scale`` / ``baseline_entropy_scale`` — pre-pandemic
  mobility contrasts the paper reports in §3.3 (rural areas cover wider
  daily ranges; dense central areas move less far but less predictably),
- ``home_wifi_quality`` — how much of the cluster's at-home usage can
  offload to residential broadband (0 = none, 1 = everything). UK fixed
  broadband penetration tracks affluence and density: deprived inner
  urban areas and deep rural areas offload less, which is the mechanism
  behind the paper's §4.4/§5.1 anomalies (rural downlink stays stable
  under lockdown; the residential N London district *gains* active
  users while the well-connected suburbs lose downlink volume).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["OacCluster", "OacDefinition", "OAC_DEFINITIONS", "oac_table"]


class OacCluster(enum.Enum):
    """The eight 2011 OAC supergroups (paper Table 1)."""

    RURAL_RESIDENTS = "Rural Residents"
    COSMOPOLITANS = "Cosmopolitans"
    ETHNICITY_CENTRAL = "Ethnicity Central"
    MULTICULTURAL_METROPOLITANS = "Multicultural Metropolitans"
    URBANITES = "Urbanites"
    SUBURBANITES = "Suburbanites"
    CONSTRAINED_CITY_DWELLERS = "Constrained City Dwellers"
    HARD_PRESSED_LIVING = "Hard-pressed Living"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class OacDefinition:
    """Catalog entry for one OAC supergroup."""

    cluster: OacCluster
    definition: str
    urban_density: float
    daytime_pull: float
    baseline_gyration_scale: float
    baseline_entropy_scale: float
    home_wifi_quality: float


OAC_DEFINITIONS: dict[OacCluster, OacDefinition] = {
    definition.cluster: definition
    for definition in (
        OacDefinition(
            OacCluster.RURAL_RESIDENTS,
            "Rural areas, low density, older and educated population",
            urban_density=0.05,
            daytime_pull=0.6,
            baseline_gyration_scale=1.45,
            baseline_entropy_scale=0.88,
            home_wifi_quality=0.45,
        ),
        OacDefinition(
            OacCluster.COSMOPOLITANS,
            "Densely populated urban areas, high ethnic integration, "
            "young adults and students",
            urban_density=0.95,
            daytime_pull=4.5,
            baseline_gyration_scale=0.78,
            baseline_entropy_scale=1.15,
            home_wifi_quality=0.93,
        ),
        OacDefinition(
            OacCluster.ETHNICITY_CENTRAL,
            "Denser central areas of London, non-white ethnic groups, "
            "young adults",
            urban_density=1.0,
            daytime_pull=2.6,
            baseline_gyration_scale=0.74,
            baseline_entropy_scale=1.38,
            home_wifi_quality=0.50,
        ),
        OacDefinition(
            OacCluster.MULTICULTURAL_METROPOLITANS,
            "Urban areas in transition between centres and suburbia, "
            "high ethnic mix",
            urban_density=0.75,
            daytime_pull=1.2,
            baseline_gyration_scale=0.92,
            baseline_entropy_scale=1.08,
            home_wifi_quality=0.62,
        ),
        OacDefinition(
            OacCluster.URBANITES,
            "Urban areas mainly in southern England, average ethnic mix, "
            "low unemployment",
            urban_density=0.6,
            daytime_pull=1.0,
            baseline_gyration_scale=1.02,
            baseline_entropy_scale=1.0,
            home_wifi_quality=0.9,
        ),
        OacDefinition(
            OacCluster.SUBURBANITES,
            "Population above retirement age and parents with school age "
            "children, low unemployment",
            urban_density=0.45,
            daytime_pull=0.8,
            baseline_gyration_scale=1.12,
            baseline_entropy_scale=0.94,
            home_wifi_quality=0.93,
        ),
        OacDefinition(
            OacCluster.CONSTRAINED_CITY_DWELLERS,
            "Densely populated areas, single/divorced population, higher "
            "level of unemployment",
            urban_density=0.7,
            daytime_pull=0.9,
            baseline_gyration_scale=0.9,
            baseline_entropy_scale=1.05,
            home_wifi_quality=0.72,
        ),
        OacDefinition(
            OacCluster.HARD_PRESSED_LIVING,
            "Urban surroundings (northern England/southern Wales), higher "
            "rates of unemployment",
            urban_density=0.55,
            daytime_pull=0.85,
            baseline_gyration_scale=1.05,
            baseline_entropy_scale=0.98,
            home_wifi_quality=0.78,
        ),
    )
}


def oac_table() -> list[tuple[str, str]]:
    """Return Table 1 of the paper as (name, definition) rows."""
    return [
        (definition.cluster.value, definition.definition)
        for definition in OAC_DEFINITIONS.values()
    ]
