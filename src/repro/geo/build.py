"""Builder for the synthetic UK geography.

The generated hierarchy is::

    region  ⊃  county  ⊃  LAD (one per postcode area)  ⊃  postcode district

anchored on the study areas of the paper: Inner London, Outer London,
Greater Manchester, West Midlands and West Yorkshire (§3.2 / §4.3), the
Inner-London postal districts EC/WC/N/E/SE/SW/W/NW (§5.1), and the
counties of the relocation analysis (Hampshire, Kent, East Sussex — §3.4).

Two properties of the real UK are deliberately engineered in because the
paper's findings hinge on them:

- **Central-London asymmetry** — the EC and WC postcode areas have tiny
  residential populations (the paper quotes ~30k residents in EC vs
  ~400k in SW) but very large daytime attraction (business, commerce,
  tourism). Under lockdown their daytime population collapses.
- **Geodemographic contrast** — Inner London is ~45% "Cosmopolitans" and
  ~50% "Ethnicity Central" (paper §4.4); rural counties are dominated by
  "Rural Residents".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.geo.coordinates import LatLon, scatter_around
from repro.geo.oac import OAC_DEFINITIONS, OacCluster

__all__ = [
    "AreaSpec",
    "CountySpec",
    "PostcodeDistrict",
    "Geography",
    "DEFAULT_COUNTIES",
    "STUDY_REGIONS",
    "build_uk_geography",
]

# The five high-density analysis regions of §3.2 and §4.3.
STUDY_REGIONS = (
    "Inner London",
    "Outer London",
    "Greater Manchester",
    "West Midlands",
    "West Yorkshire",
)


@dataclass(frozen=True)
class AreaSpec:
    """A postcode area within a county (one LAD per area).

    Parameters
    ----------
    code:
        Postcode area letters, e.g. ``"EC"``.
    district_count:
        How many postcode districts (``EC1``, ``EC2``, ...) to create.
    resident_weight:
        Relative share of the county's residents living in the area.
    attraction:
        Daytime attraction multiplier per resident; values ≫ 1 mark
        commercial/business centres with many non-resident visitors.
    oac:
        Optional pinned OAC supergroup; if ``None`` the county profile
        mix is sampled.
    central:
        Whether the area sits at the county core (affects placement).
    """

    code: str
    district_count: int
    resident_weight: float
    attraction: float = 1.0
    oac: OacCluster | None = None
    central: bool = False


@dataclass(frozen=True)
class CountySpec:
    """Static description of a county used by the builder."""

    name: str
    region: str
    center: LatLon
    radius_km: float
    population: int
    profile: str
    areas: tuple[AreaSpec, ...]


@dataclass(frozen=True)
class PostcodeDistrict:
    """One postcode district — the base aggregation unit of the study."""

    code: str
    area_code: str
    lad_code: str
    lad_name: str
    county: str
    region: str
    oac: OacCluster
    lat: float
    lon: float
    residents: int
    daytime_attraction: float


# OAC sampling mixes per county profile.
_PROFILE_MIXES: dict[str, dict[OacCluster, float]] = {
    "inner_london": {
        OacCluster.COSMOPOLITANS: 0.45,
        OacCluster.ETHNICITY_CENTRAL: 0.50,
        OacCluster.MULTICULTURAL_METROPOLITANS: 0.05,
    },
    "metro": {
        OacCluster.MULTICULTURAL_METROPOLITANS: 0.35,
        OacCluster.COSMOPOLITANS: 0.12,
        OacCluster.CONSTRAINED_CITY_DWELLERS: 0.15,
        OacCluster.HARD_PRESSED_LIVING: 0.22,
        OacCluster.URBANITES: 0.10,
        OacCluster.SUBURBANITES: 0.06,
    },
    "city": {
        OacCluster.COSMOPOLITANS: 0.18,
        OacCluster.URBANITES: 0.35,
        OacCluster.SUBURBANITES: 0.25,
        OacCluster.CONSTRAINED_CITY_DWELLERS: 0.12,
        OacCluster.MULTICULTURAL_METROPOLITANS: 0.10,
    },
    "town": {
        OacCluster.URBANITES: 0.30,
        OacCluster.SUBURBANITES: 0.35,
        OacCluster.HARD_PRESSED_LIVING: 0.10,
        OacCluster.RURAL_RESIDENTS: 0.15,
        OacCluster.CONSTRAINED_CITY_DWELLERS: 0.10,
    },
    "rural": {
        OacCluster.RURAL_RESIDENTS: 0.55,
        OacCluster.SUBURBANITES: 0.20,
        OacCluster.URBANITES: 0.15,
        OacCluster.HARD_PRESSED_LIVING: 0.10,
    },
}


def _uniform_areas(
    codes: str | list[str], districts_per_area: int = 3, attraction: float = 1.0
) -> tuple[AreaSpec, ...]:
    if isinstance(codes, str):
        codes = codes.split()
    return tuple(
        AreaSpec(code, districts_per_area, 1.0, attraction) for code in codes
    )


DEFAULT_COUNTIES: tuple[CountySpec, ...] = (
    CountySpec(
        "Inner London",
        "London",
        LatLon(51.512, -0.118),
        9.0,
        3_200_000,
        "inner_london",
        (
            AreaSpec("EC", 2, 0.05, attraction=18.0,
                     oac=OacCluster.COSMOPOLITANS, central=True),
            AreaSpec("WC", 2, 0.05, attraction=20.0,
                     oac=OacCluster.COSMOPOLITANS, central=True),
            AreaSpec("N", 3, 1.55, attraction=0.9,
                     oac=OacCluster.ETHNICITY_CENTRAL),
            AreaSpec("E", 3, 1.50, attraction=1.3,
                     oac=OacCluster.ETHNICITY_CENTRAL),
            AreaSpec("SE", 3, 1.60, attraction=0.95,
                     oac=OacCluster.ETHNICITY_CENTRAL),
            AreaSpec("SW", 3, 1.80, attraction=1.2),
            AreaSpec("W", 3, 1.30, attraction=2.2,
                     oac=OacCluster.COSMOPOLITANS),
            AreaSpec("NW", 3, 1.40, attraction=1.0,
                     oac=OacCluster.MULTICULTURAL_METROPOLITANS),
        ),
    ),
    CountySpec(
        "Outer London",
        "London",
        LatLon(51.55, -0.29),
        22.0,
        5_600_000,
        "metro",
        _uniform_areas("BR CR EN HA IG KT RM SM TW UB", 2),
    ),
    CountySpec(
        "Greater Manchester",
        "North West",
        LatLon(53.48, -2.24),
        18.0,
        2_800_000,
        "metro",
        (
            AreaSpec("M", 3, 1.0, attraction=3.0, central=True),
            *_uniform_areas("OL BL SK WN", 2),
        ),
    ),
    CountySpec(
        "West Midlands",
        "West Midlands",
        LatLon(52.48, -1.90),
        17.0,
        2_900_000,
        "metro",
        (
            AreaSpec("B", 3, 1.0, attraction=3.0, central=True),
            *_uniform_areas("CV WV DY WS", 2),
        ),
    ),
    CountySpec(
        "West Yorkshire",
        "Yorkshire and the Humber",
        LatLon(53.80, -1.55),
        16.0,
        2_300_000,
        "metro",
        (
            AreaSpec("LS", 3, 1.0, attraction=2.2, central=True),
            *_uniform_areas("BD WF HX HD", 2),
        ),
    ),
    CountySpec(
        "Hampshire",
        "South East",
        LatLon(51.06, -1.31),
        30.0,
        1_850_000,
        "town",
        _uniform_areas("SO PO RG21", 3),
    ),
    CountySpec(
        "Kent",
        "South East",
        LatLon(51.28, 0.52),
        30.0,
        1_850_000,
        "town",
        _uniform_areas("ME CT TN", 3),
    ),
    CountySpec(
        "East Sussex",
        "South East",
        LatLon(50.92, 0.25),
        22.0,
        850_000,
        "rural",
        _uniform_areas("BN TN3", 3),
    ),
    CountySpec(
        "Surrey",
        "South East",
        LatLon(51.25, -0.42),
        20.0,
        1_200_000,
        "town",
        _uniform_areas("GU KT2 RH", 2),
    ),
    CountySpec(
        "Essex",
        "East of England",
        LatLon(51.75, 0.55),
        28.0,
        1_800_000,
        "town",
        _uniform_areas("CM CO SS", 3),
    ),
    CountySpec(
        "Hertfordshire",
        "East of England",
        LatLon(51.80, -0.23),
        18.0,
        1_200_000,
        "town",
        _uniform_areas("AL SG WD", 2),
    ),
    CountySpec(
        "Berkshire",
        "South East",
        LatLon(51.42, -0.94),
        18.0,
        920_000,
        "city",
        _uniform_areas("RG SL", 3),
    ),
    CountySpec(
        "Oxfordshire",
        "South East",
        LatLon(51.75, -1.26),
        22.0,
        690_000,
        "city",
        _uniform_areas("OX", 4),
    ),
    CountySpec(
        "Cambridgeshire",
        "East of England",
        LatLon(52.30, 0.08),
        25.0,
        850_000,
        "city",
        _uniform_areas("CB PE", 3),
    ),
    CountySpec(
        "Norfolk",
        "East of England",
        LatLon(52.63, 0.89),
        32.0,
        900_000,
        "rural",
        _uniform_areas("NR", 5),
    ),
    CountySpec(
        "Devon",
        "South West",
        LatLon(50.72, -3.53),
        35.0,
        1_200_000,
        "rural",
        _uniform_areas("EX PL TQ", 3),
    ),
    CountySpec(
        "Cornwall",
        "South West",
        LatLon(50.42, -4.93),
        35.0,
        570_000,
        "rural",
        _uniform_areas("TR", 4),
    ),
    CountySpec(
        "Merseyside",
        "North West",
        LatLon(53.41, -2.98),
        15.0,
        1_400_000,
        "metro",
        (
            AreaSpec("L", 3, 1.0, attraction=2.2, central=True),
            *_uniform_areas("PR4 CH", 2),
        ),
    ),
    CountySpec(
        "Tyne and Wear",
        "North East",
        LatLon(54.97, -1.61),
        14.0,
        1_100_000,
        "metro",
        (
            AreaSpec("NE", 3, 1.0, attraction=2.0, central=True),
            *_uniform_areas("SR", 2),
        ),
    ),
    CountySpec(
        "South Yorkshire",
        "Yorkshire and the Humber",
        LatLon(53.50, -1.33),
        16.0,
        1_400_000,
        "metro",
        (
            AreaSpec("S", 3, 1.0, attraction=1.8, central=True),
            *_uniform_areas("DN", 2),
        ),
    ),
    CountySpec(
        "Lancashire",
        "North West",
        LatLon(53.84, -2.63),
        28.0,
        1_500_000,
        "town",
        _uniform_areas("PR BB LA", 2),
    ),
    CountySpec(
        "Bristol",
        "South West",
        LatLon(51.45, -2.59),
        12.0,
        700_000,
        "city",
        (AreaSpec("BS", 4, 1.0, attraction=1.8, central=True),),
    ),
    CountySpec(
        "Edinburgh",
        "Scotland",
        LatLon(55.95, -3.19),
        13.0,
        900_000,
        "city",
        (AreaSpec("EH", 4, 1.0, attraction=2.0, central=True),),
    ),
    CountySpec(
        "Glasgow",
        "Scotland",
        LatLon(55.86, -4.25),
        14.0,
        1_200_000,
        "metro",
        (AreaSpec("G", 4, 1.0, attraction=2.0, central=True),),
    ),
    CountySpec(
        "Cardiff",
        "Wales",
        LatLon(51.48, -3.18),
        13.0,
        900_000,
        "city",
        (AreaSpec("CF", 4, 1.0, attraction=1.8, central=True),),
    ),
)


@dataclass
class Geography:
    """The synthetic UK: counties, LADs and postcode districts."""

    counties: tuple[CountySpec, ...]
    districts: tuple[PostcodeDistrict, ...]
    _district_by_code: dict[str, PostcodeDistrict] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self._district_by_code = {
            district.code: district for district in self.districts
        }
        if len(self._district_by_code) != len(self.districts):
            raise ValueError("duplicate postcode district codes")

    # -- lookups -------------------------------------------------------
    def district(self, code: str) -> PostcodeDistrict:
        """Return the district with the given postcode-district code."""
        try:
            return self._district_by_code[code]
        except KeyError:
            raise KeyError(f"unknown postcode district {code!r}") from None

    @property
    def county_names(self) -> tuple[str, ...]:
        return tuple(county.name for county in self.counties)

    def county(self, name: str) -> CountySpec:
        for county in self.counties:
            if county.name == name:
                return county
        raise KeyError(f"unknown county {name!r}")

    def districts_in_county(self, name: str) -> list[PostcodeDistrict]:
        return [d for d in self.districts if d.county == name]

    def districts_in_lad(self, lad_code: str) -> list[PostcodeDistrict]:
        return [d for d in self.districts if d.lad_code == lad_code]

    # -- census --------------------------------------------------------
    @cached_property
    def lad_population(self) -> dict[str, int]:
        """Census residential population per LAD (the ONS ground truth)."""
        totals: dict[str, int] = {}
        for district in self.districts:
            totals[district.lad_code] = (
                totals.get(district.lad_code, 0) + district.residents
            )
        return totals

    @property
    def total_residents(self) -> int:
        return sum(district.residents for district in self.districts)

    # -- arrays for vectorized consumers --------------------------------
    @cached_property
    def district_codes(self) -> np.ndarray:
        return np.array([d.code for d in self.districts])

    @cached_property
    def district_residents(self) -> np.ndarray:
        return np.array([d.residents for d in self.districts], dtype=np.float64)

    @cached_property
    def district_attraction(self) -> np.ndarray:
        return np.array(
            [d.daytime_attraction for d in self.districts], dtype=np.float64
        )

    @cached_property
    def district_lats(self) -> np.ndarray:
        return np.array([d.lat for d in self.districts], dtype=np.float64)

    @cached_property
    def district_lons(self) -> np.ndarray:
        return np.array([d.lon for d in self.districts], dtype=np.float64)

    def district_index(self, code: str) -> int:
        """Positional index of a district in the ``districts`` tuple."""
        codes = self.district_codes
        hits = np.flatnonzero(codes == code)
        if hits.size == 0:
            raise KeyError(f"unknown postcode district {code!r}")
        return int(hits[0])


def build_uk_geography(
    counties: tuple[CountySpec, ...] = DEFAULT_COUNTIES,
    seed: int = 2020,
    population_scale: float = 1.0,
) -> Geography:
    """Materialize the synthetic UK from county specs.

    Parameters
    ----------
    counties:
        County specifications; defaults to the 25-county UK used in all
        experiments.
    seed:
        RNG seed; the geography is fully deterministic given the seed.
    population_scale:
        Multiplier on all census populations (scale the country down for
        faster experiments without changing its structure).
    """
    rng = np.random.default_rng(seed)
    districts: list[PostcodeDistrict] = []
    for county in counties:
        districts.extend(_build_county(county, rng, population_scale))
    return Geography(counties=counties, districts=tuple(districts))


def _build_county(
    county: CountySpec, rng: np.random.Generator, population_scale: float
) -> list[PostcodeDistrict]:
    mix = _PROFILE_MIXES[county.profile]
    mix_clusters = list(mix)
    mix_weights = np.array([mix[c] for c in mix_clusters], dtype=np.float64)
    mix_weights /= mix_weights.sum()

    weight_total = sum(area.resident_weight for area in county.areas)
    golden_angle = np.pi * (3.0 - np.sqrt(5.0))
    districts: list[PostcodeDistrict] = []
    for area_index, area in enumerate(county.areas):
        # Central (commercial) areas sit at the core; residential areas
        # ring around it.
        offset_share = 0.12 if area.central or area.attraction >= 8 else 0.55
        angle = golden_angle * area_index
        km_per_deg_lat = 111.32
        km_per_deg_lon = km_per_deg_lat * np.cos(np.radians(county.center.lat))
        area_center = LatLon(
            county.center.lat
            + offset_share * county.radius_km * np.sin(angle) / km_per_deg_lat,
            county.center.lon
            + offset_share * county.radius_km * np.cos(angle) / km_per_deg_lon,
        )
        lats, lons = scatter_around(
            area_center,
            county.radius_km * 0.35,
            area.district_count,
            rng,
            concentration=1.5,
        )
        area_population = (
            county.population * area.resident_weight / weight_total
        )
        shares = rng.lognormal(0.0, 0.25, size=area.district_count)
        shares /= shares.sum()
        lad_code = f"{_slug(county.name)}-{area.code}"
        lad_name = f"{county.name} {area.code}"
        for district_index in range(area.district_count):
            oac = area.oac
            if oac is None:
                oac = mix_clusters[
                    rng.choice(len(mix_clusters), p=mix_weights)
                ]
            residents = int(
                round(
                    area_population
                    * shares[district_index]
                    * population_scale
                )
            )
            pull = OAC_DEFINITIONS[oac].daytime_pull
            attraction = (
                residents
                * area.attraction
                * pull
                * rng.lognormal(0.0, 0.2)
            )
            districts.append(
                PostcodeDistrict(
                    code=f"{area.code}{district_index + 1}",
                    area_code=area.code,
                    lad_code=lad_code,
                    lad_name=lad_name,
                    county=county.name,
                    region=county.region,
                    oac=oac,
                    lat=float(lats[district_index]),
                    lon=float(lons[district_index]),
                    residents=residents,
                    daytime_attraction=float(attraction),
                )
            )
    return districts


def _slug(name: str) -> str:
    return name.lower().replace(" ", "-")
