"""NSPL-style postcode lookup table.

The paper merges every feed "at postcode level or larger granularity"
against the National Statistics Postcode Lookup to attach LAD / UTLA /
county / geodemographic-cluster labels. :class:`PostcodeLookup` plays
that role for the synthetic UK: it is a frame-backed relation keyed by
postcode district that the analysis joins measurement frames against.
"""

from __future__ import annotations

from repro.frames import Frame, join
from repro.geo.build import Geography
from repro.geo.oac import OacCluster

__all__ = ["PostcodeLookup"]


class PostcodeLookup:
    """Postcode-district → administrative/geodemographic labels."""

    def __init__(self, geography: Geography) -> None:
        self._geography = geography
        districts = geography.districts
        self._frame = Frame(
            {
                "postcode": [d.code for d in districts],
                "area": [d.area_code for d in districts],
                "lad_code": [d.lad_code for d in districts],
                "lad_name": [d.lad_name for d in districts],
                "county": [d.county for d in districts],
                "region": [d.region for d in districts],
                "oac": [d.oac.value for d in districts],
                "lat": [d.lat for d in districts],
                "lon": [d.lon for d in districts],
                "residents": [d.residents for d in districts],
            }
        )

    def as_frame(self) -> Frame:
        """The lookup as a frame (one row per postcode district)."""
        return self._frame

    def attach(self, frame: Frame, on: str = "postcode") -> Frame:
        """Join administrative labels onto ``frame`` by postcode district.

        ``frame`` must carry a column named ``on`` holding district
        codes. Rows with unknown codes are dropped (inner join), which
        mirrors how records failing the NSPL merge are discarded.
        """
        lookup = self._frame
        if on != "postcode":
            lookup = lookup.rename({"postcode": on})
        return join(frame, lookup, on=on)

    # -- scalar conveniences --------------------------------------------
    def county_of(self, code: str) -> str:
        return self._geography.district(code).county

    def region_of(self, code: str) -> str:
        return self._geography.district(code).region

    def lad_of(self, code: str) -> str:
        return self._geography.district(code).lad_code

    def oac_of(self, code: str) -> OacCluster:
        return self._geography.district(code).oac

    def __len__(self) -> int:
        return len(self._frame)
