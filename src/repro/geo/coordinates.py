"""Geographic coordinate helpers (haversine, centroids).

All positions in the synthetic UK are WGS84-style (latitude, longitude)
pairs; distances are great-circle kilometres. The radius-of-gyration
metric (paper eq. 2) needs distances between cell towers and a
time-weighted centre of mass, which these helpers provide in vectorized
form.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

__all__ = [
    "EARTH_RADIUS_KM",
    "LatLon",
    "haversine_km",
    "pairwise_distance_km",
    "weighted_centroid",
    "scatter_around",
]

EARTH_RADIUS_KM = 6371.0088


class LatLon(NamedTuple):
    """A (latitude, longitude) pair in degrees."""

    lat: float
    lon: float


def haversine_km(
    lat1: np.ndarray | float,
    lon1: np.ndarray | float,
    lat2: np.ndarray | float,
    lon2: np.ndarray | float,
) -> np.ndarray | float:
    """Great-circle distance in km between coordinate arrays (degrees).

    Inputs broadcast like numpy ufuncs.

    >>> round(float(haversine_km(51.5, -0.12, 53.48, -2.24)), 0)
    263.0
    """
    phi1, phi2 = np.radians(lat1), np.radians(lat2)
    dphi = phi2 - phi1
    dlambda = np.radians(np.asarray(lon2) - np.asarray(lon1))
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(
        dlambda / 2.0
    ) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))


def pairwise_distance_km(
    lats: np.ndarray, lons: np.ndarray
) -> np.ndarray:
    """Full symmetric distance matrix (km) for point arrays."""
    lats = np.asarray(lats, dtype=np.float64)
    lons = np.asarray(lons, dtype=np.float64)
    return haversine_km(
        lats[:, None], lons[:, None], lats[None, :], lons[None, :]
    )


def weighted_centroid(
    lats: np.ndarray, lons: np.ndarray, weights: np.ndarray
) -> LatLon:
    """Weighted mean position, the ``l_cm`` of paper eq. 2.

    At UK scale a spherical-to-planar approximation of the centroid is
    indistinguishable from the exact spherical mean, so the centroid is
    the weight-normalized average of latitudes and longitudes.
    """
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        raise ValueError("centroid weights must have positive sum")
    share = weights / total
    return LatLon(
        float(np.dot(share, np.asarray(lats, dtype=np.float64))),
        float(np.dot(share, np.asarray(lons, dtype=np.float64))),
    )


def scatter_around(
    center: LatLon,
    radius_km: float,
    count: int,
    rng: np.random.Generator,
    concentration: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` points around ``center`` within ~``radius_km``.

    Points follow an isotropic gaussian whose standard deviation is
    ``radius_km / (2 * concentration)``: larger ``concentration`` packs
    points tighter around the centre (used for dense urban cores).
    Returns (lats, lons).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    sigma_km = radius_km / (2.0 * max(concentration, 1e-9))
    km_per_deg_lat = 111.32
    km_per_deg_lon = km_per_deg_lat * np.cos(np.radians(center.lat))
    dlat = rng.normal(0.0, sigma_km / km_per_deg_lat, size=count)
    dlon = rng.normal(0.0, sigma_km / max(km_per_deg_lon, 1e-9), size=count)
    return center.lat + dlat, center.lon + dlon
