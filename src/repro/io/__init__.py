"""Feed persistence: save a simulation run, reload it for analysis.

A full simulation takes tens of seconds at study scale; the analysis
often wants to iterate on the same run (or share it). :func:`save_feeds`
writes everything measured to a directory — KPI and RAT-time feeds as
CSV, the mobility dwell aggregates as a shard-partitioned columnar
store of memory-mappable arrays (:mod:`repro.io.columnar`), the
configuration as a pickle plus a human-readable manifest — and
:func:`load_feeds` reconstructs a
:class:`~repro.simulation.feeds.DataFeeds` by rebuilding the
deterministic world from the configuration and attaching the stored
measurements, either eagerly or (``lazy=True``) mapping the mobility
shards on demand so million-agent runs analyze in bounded memory.
"""

from repro.io.columnar import ShardedMobilityFeed
from repro.io.export import export_analysis
from repro.io.store import RunStoreError, append_feeds, load_feeds, save_feeds

__all__ = [
    "RunStoreError",
    "ShardedMobilityFeed",
    "append_feeds",
    "export_analysis",
    "load_feeds",
    "save_feeds",
]
