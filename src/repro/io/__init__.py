"""Feed persistence: save a simulation run, reload it for analysis.

A full simulation takes tens of seconds at study scale; the analysis
often wants to iterate on the same run (or share it). :func:`save_feeds`
writes everything measured to a directory — KPI and RAT-time feeds as
CSV, the mobility dwell aggregates as compressed NPZ, the configuration
as a pickle plus a human-readable manifest — and :func:`load_feeds`
reconstructs a :class:`~repro.simulation.feeds.DataFeeds` by rebuilding
the deterministic world from the configuration and attaching the stored
measurements.
"""

from repro.io.export import export_analysis
from repro.io.store import RunStoreError, load_feeds, save_feeds

__all__ = ["RunStoreError", "export_analysis", "load_feeds", "save_feeds"]
