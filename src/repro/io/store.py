"""Directory layout and (de)serialization for data feeds.

Layout of a saved run (format version 2)::

    <dir>/
      manifest.json        # provenance: sizes, window, versions (commit point)
      config.pkl           # exact SimulationConfig (nested dataclasses)
      radio_kpis.csv       # daily per-cell KPI medians
      rat_time.csv         # RAT connected-time feed
      feeds/               # shard-partitioned columnar mobility store
        shard-0000/
          rows.npy user_ids.npy anchor_sites.npy
          daily_dwell.npy night_dwell.npy
        shard-0001/ ...
      checkpoints/         # per-shard-day partial state, while running
      cache/               # analysis artifact cache (repro.analysis.cache)

The mobility feed — by far the largest payload — is partitioned by the
engine's deterministic user sharding into one memory-mappable ``.npy``
file per shard × column (:mod:`repro.io.columnar`), so
``load_feeds(..., lazy=True)`` can map a million-agent run without
materializing it.  Format version 1 (a single ``mobility.npz``) is
still read.  The world (geography, topology, subscriber base, agents)
is *not* stored: it is a pure function of the configuration and is
rebuilt on load, which keeps saved runs small and guarantees the
reloaded bundle is exactly what the simulator produced.

Persistence is atomic: every file is written under a temporary name and
``os.replace``d into place, and ``manifest.json`` is written last as
the commit point.  A crash mid-save therefore leaves either the old
run intact or a directory without a (matching) manifest — never a
half-written file a reader would silently accept.

Every way a run directory can be wrong — missing, interrupted, a file
deleted, truncated or bit-flipped — surfaces as :class:`RunStoreError`
naming the offending file, never as a leaked ``KeyError`` /
``FileNotFoundError`` / pickle traceback.  An interrupted run (a
``checkpoints/`` store but no ``manifest.json`` yet) gets a dedicated
message pointing at ``--resume``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.frames import read_csv, write_csv
from repro.geo.nspl import PostcodeLookup
from repro.io import columnar
from repro.io.columnar import (
    ColumnarWriter,
    ShardedMobilityFeed,
    materialize,
    open_columnar,
)
from repro.io.errors import RunStoreError
from repro.simulation.feeds import DataFeeds, MobilityFeed

__all__ = ["RunStoreError", "save_feeds", "load_feeds"]

_MANIFEST = "manifest.json"
_CONFIG = "config.pkl"
_KPIS = "radio_kpis.csv"
_RAT = "rat_time.csv"
_MOBILITY = "mobility.npz"  # format version 1 only

_MOBILITY_KEYS = ("user_ids", "anchor_sites", "daily_dwell", "night_dwell")

#: Small files whose SHA-256 payload digests are recorded in the
#: manifest at save time and verified on load; the per-shard columnar
#: files are digested alongside them.  The analysis artifact cache keys
#: on the full digest map (config.pkl included: the world — geography,
#: topology, calendar — is rebuilt from it, so it co-determines every
#: artifact).
_DIGESTED_FILES = (_KPIS, _RAT, _CONFIG)

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def _sha256_file(path: Path) -> str:
    sha = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            sha.update(block)
    return sha.hexdigest()


def _replace_into_place(tmp: Path, final: Path) -> None:
    os.replace(tmp, final)


def _atomic_csv(frame, final: Path) -> None:
    tmp = final.with_name(final.name + ".tmp")
    write_csv(frame, tmp)
    _replace_into_place(tmp, final)


def _atomic_pickle(obj, final: Path) -> None:
    tmp = final.with_name(final.name + ".tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(obj, handle)
    _replace_into_place(tmp, final)


def _atomic_text(text: str, final: Path) -> None:
    tmp = final.with_name(final.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    _replace_into_place(tmp, final)


def _commit_mobility(feeds: DataFeeds, path: Path) -> tuple[list[str], int]:
    """Land the mobility partition on disk; return (rel paths, K).

    A feed that is already streaming into ``path`` (the engine's
    ``stream_dir`` mode leaves :attr:`ShardedMobilityFeed.pending_writer`
    set) just commits its writer — nothing is rewritten.  Anything else
    is streamed through a fresh :class:`ColumnarWriter` one day at a
    time, partitioned exactly as the engine would (the run's configured
    shard count over the stable user hash), so saving a feed produces
    byte-identical files whether it was streamed or held in memory.
    """
    mobility = feeds.mobility
    writer = getattr(mobility, "pending_writer", None)
    if writer is not None and writer.run_directory == path:
        relative = writer.commit()
        mobility.pending_writer = None
        return relative, writer.num_shards

    from repro.simulation.sharding import parallelism_of, shard_user_indices

    num_shards = parallelism_of(feeds.config).num_shards
    indices = shard_user_indices(mobility.user_ids, num_shards)
    writer = ColumnarWriter(
        path,
        list(indices),
        mobility.user_ids,
        mobility.anchor_sites,
        mobility.num_days,
    )
    writer.write_all(mobility)
    relative = writer.commit()
    if writer is getattr(mobility, "pending_writer", None):
        mobility.pending_writer = None
    return relative, num_shards


def save_feeds(feeds: DataFeeds, directory: str | Path) -> Path:
    """Persist a simulation run to ``directory`` (created if missing).

    All writes are atomic (tmp + rename), with ``manifest.json``
    written last as the commit point; a crash mid-save never leaves a
    file a reader would half-accept.
    """
    if feeds.config is None:
        raise ValueError(
            "feeds carry no config; only simulator-produced bundles can "
            "be persisted"
        )
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    with telemetry.span("save_feeds") as sp:
        mobility = feeds.mobility
        shard_files, num_shards = _commit_mobility(feeds, path)
        _atomic_csv(feeds.radio_kpis, path / _KPIS)
        _atomic_csv(feeds.rat_time, path / _RAT)
        _atomic_pickle(feeds.config, path / _CONFIG)
        # A re-save over a format-1 run supersedes its archive.
        (path / _MOBILITY).unlink(missing_ok=True)

        from repro.simulation.sharding import parallelism_of

        parallelism = parallelism_of(feeds.config)
        digests = {
            name: _sha256_file(path / name)
            for name in (*_DIGESTED_FILES, *shard_files)
        }
        manifest = {
            "format_version": _FORMAT_VERSION,
            "num_users": int(mobility.num_users),
            "num_days": int(mobility.num_days),
            "num_kpi_rows": len(feeds.radio_kpis),
            "first_day": feeds.calendar.first_day.isoformat(),
            "last_day": feeds.calendar.last_day.isoformat(),
            "interconnect_upgrade_day": feeds.interconnect_upgrade_day,
            # Shard layout the run executed with. Results are independent
            # of it (see repro.simulation.sharding), recorded as
            # provenance for performance forensics on persisted runs.
            "parallelism": {
                "num_shards": parallelism.num_shards,
                "workers": parallelism.workers,
            },
            # The on-disk mobility partition (storage layout; always the
            # configured shard count, even when the run executed
            # serially).
            "feeds": {
                "layout": "columnar",
                "num_shards": num_shards,
            },
            # Content addresses of the persisted feed payloads: the
            # inputs of every analysis-cache key, and the integrity
            # reference load_feeds verifies files against.
            "feeds_sha256": digests,
        }
        feeds.source_digests = digests
        # Telemetry captured while the run simulated travels with the
        # run: a snapshot is plain JSON data, so it lands verbatim in
        # the manifest and round-trips through load_feeds.
        if feeds.telemetry is not None:
            manifest["telemetry"] = feeds.telemetry
        sp.add("kpi_rows", len(feeds.radio_kpis))
        sp.add("rat_rows", len(feeds.rat_time))
        sp.add("shards", num_shards)
        _atomic_text(json.dumps(manifest, indent=2), path / _MANIFEST)
    return path


def _read_manifest(path: Path) -> dict:
    manifest_path = path / _MANIFEST
    if not manifest_path.exists():
        from repro.simulation.checkpoint import CheckpointStore

        if CheckpointStore.present(path):
            raise RunStoreError(
                f"{path} is an interrupted run: it has checkpoints but "
                f"no {_MANIFEST} yet — complete it with "
                f"'python -m repro simulate --resume {path}'",
                path=manifest_path,
            )
        raise RunStoreError(
            f"{path} is not a saved run: missing {manifest_path}",
            path=manifest_path,
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        raise RunStoreError(
            f"unreadable manifest {manifest_path}: {err}",
            path=manifest_path,
        ) from err
    if manifest.get("format_version") not in _SUPPORTED_VERSIONS:
        raise RunStoreError(
            f"unsupported feed-store version "
            f"{manifest.get('format_version')!r} in {manifest_path}",
            path=manifest_path,
        )
    for key in ("num_users", "num_days"):
        if not isinstance(manifest.get(key), int):
            raise RunStoreError(
                f"manifest {manifest_path} is missing {key!r}",
                path=manifest_path,
            )
    return manifest


def _read_config(path: Path):
    config_path = path / _CONFIG
    if not config_path.exists():
        raise RunStoreError(
            f"saved run {path} is missing {config_path}", path=config_path
        )
    try:
        with open(config_path, "rb") as handle:
            return pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, OSError) as err:
        raise RunStoreError(
            f"unreadable config {config_path}: {err}", path=config_path
        ) from err


def _read_mobility_v1(path: Path) -> MobilityFeed:
    """Read the monolithic format-1 ``mobility.npz`` archive."""
    mobility_path = path / _MOBILITY
    if not mobility_path.exists():
        raise RunStoreError(
            f"saved run {path} is missing {mobility_path}",
            path=mobility_path,
        )
    try:
        with np.load(mobility_path) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except Exception as err:
        raise RunStoreError(
            f"corrupt mobility archive {mobility_path}: {err}",
            path=mobility_path,
        ) from err
    missing = [key for key in _MOBILITY_KEYS if key not in arrays]
    if missing:
        raise RunStoreError(
            f"mobility archive {mobility_path} is missing arrays: "
            f"{missing}",
            path=mobility_path,
        )
    daily = arrays["daily_dwell"]
    night = arrays["night_dwell"]
    return MobilityFeed(
        user_ids=arrays["user_ids"],
        anchor_sites=arrays["anchor_sites"],
        daily_dwell=[daily[index] for index in range(daily.shape[0])],
        night_dwell=[night[index] for index in range(night.shape[0])],
    )


def _read_mobility_v2(
    path: Path, manifest: dict, *, lazy: bool
) -> MobilityFeed | ShardedMobilityFeed:
    """Open the columnar partition described by the manifest.

    ``lazy`` keeps the dwell stacks memory-mapped (the
    :class:`ShardedMobilityFeed` view); otherwise — and always under
    ``REPRO_STORE_NAIVE=1`` — the plain in-memory feed is rebuilt.
    """
    block = manifest.get("feeds")
    if not isinstance(block, dict) or block.get("layout") != "columnar":
        raise RunStoreError(
            f"manifest {path / _MANIFEST} describes no columnar feed "
            f"layout (feeds block: {block!r})",
            path=path / _MANIFEST,
        )
    num_shards = block.get("num_shards")
    if not isinstance(num_shards, int) or num_shards < 1:
        raise RunStoreError(
            f"manifest {path / _MANIFEST} has an invalid feed shard "
            f"count {num_shards!r}",
            path=path / _MANIFEST,
        )
    effective_lazy = lazy and not columnar.use_naive()
    sharded = open_columnar(path, num_shards, lazy=effective_lazy)
    if effective_lazy:
        return sharded
    return materialize(sharded)


def _read_frame(path: Path, name: str):
    frame_path = path / name
    if not frame_path.exists():
        raise RunStoreError(
            f"saved run {path} is missing {frame_path}", path=frame_path
        )
    try:
        return read_csv(frame_path)
    except Exception as err:
        raise RunStoreError(
            f"corrupt feed {frame_path}: {err}", path=frame_path
        ) from err


@telemetry.timed("load_feeds")
def load_feeds(directory: str | Path, *, lazy: bool = False) -> DataFeeds:
    """Reload a run saved by :func:`save_feeds`.

    With ``lazy=True`` (format-2 runs) the mobility partition is
    memory-mapped shard by shard instead of materialized: the returned
    bundle's ``mobility`` is a :class:`~repro.io.columnar.
    ShardedMobilityFeed` whose day matrices are assembled on demand,
    so analysis peak memory is bounded by one shard × a day batch
    rather than the whole population.  ``REPRO_STORE_NAIVE=1`` forces
    the eager in-memory path regardless (the differential oracle).

    Raises :class:`RunStoreError` naming the offending file when the
    directory is missing, interrupted, partial, or corrupt.
    """
    path = Path(directory)
    if not path.is_dir():
        raise RunStoreError(
            f"run directory {path} does not exist", path=path
        )
    manifest = _read_manifest(path)
    digests = _verify_digests(path, manifest)
    config = _read_config(path)

    from repro.simulation.engine import build_world

    world = build_world(config)
    if manifest["format_version"] == 1:
        mobility = _read_mobility_v1(path)
        described = path / _MOBILITY
    else:
        mobility = _read_mobility_v2(path, manifest, lazy=lazy)
        described = path / columnar.FEEDS_SUBDIR
    if mobility.num_users != manifest["num_users"]:
        raise RunStoreError(
            f"mobility store {described} holds "
            f"{mobility.num_users} users but the manifest promises "
            f"{manifest['num_users']}",
            path=described,
        )
    if mobility.num_days != manifest["num_days"]:
        raise RunStoreError(
            f"mobility store {described} holds "
            f"{mobility.num_days} days but the manifest promises "
            f"{manifest['num_days']}",
            path=described,
        )

    upgrade = manifest.get("interconnect_upgrade_day")
    return DataFeeds(
        calendar=config.calendar,
        geography=world.geography,
        lookup=PostcodeLookup(world.geography),
        topology=world.topology,
        catalog=world.catalog,
        base=world.base,
        agents=world.agents,
        mobility=mobility,
        radio_kpis=_read_frame(path, _KPIS),
        rat_time=_read_frame(path, _RAT),
        epidemic=world.epidemic,
        interconnect_upgrade_day=(
            int(upgrade) if upgrade is not None else None
        ),
        config=config,
        telemetry=manifest.get("telemetry"),
        source_digests=digests,
    )


def _verify_digests(path: Path, manifest: dict) -> dict | None:
    """Check every digested feed file against the manifest's record.

    Returns the digest map (``None`` for runs saved before digests were
    recorded — those load fine, they just cannot feed the analysis
    cache).  A file whose bytes no longer hash to the recorded digest,
    and equally a file the manifest promises that is *missing* from
    disk, raises :class:`RunStoreError` naming it — a deleted shard
    must fail here, precisely, not in a later, vaguer reader.
    """
    digests = manifest.get("feeds_sha256")
    if not isinstance(digests, dict) or not digests:
        return None
    for name, expected in sorted(digests.items()):
        file_path = path / name
        if not file_path.exists():
            raise RunStoreError(
                f"saved run is missing {file_path}, which its manifest "
                f"records a digest for; the file was deleted (or the "
                f"save was interrupted) after the manifest was written",
                path=file_path,
            )
        actual = _sha256_file(file_path)
        telemetry.count("store.digest_verifications", 1)
        if actual != expected:
            raise RunStoreError(
                f"feed {file_path} does not match the digest recorded in "
                f"its manifest (expected sha256 {expected[:12]}…, found "
                f"{actual[:12]}…); the file was modified or corrupted "
                "after the run was saved",
                path=file_path,
            )
    return {str(name): str(value) for name, value in digests.items()}
