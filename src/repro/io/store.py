"""Directory layout and (de)serialization for data feeds.

Layout of a saved run::

    <dir>/
      manifest.json        # provenance: sizes, window, versions
      config.pkl           # exact SimulationConfig (nested dataclasses)
      radio_kpis.csv       # daily per-cell KPI medians
      rat_time.csv         # RAT connected-time feed
      mobility.npz         # user ids, anchor sites, dwell stacks
      checkpoints/         # per-shard-day partial state, while running

The world (geography, topology, subscriber base, agents) is *not*
stored: it is a pure function of the configuration and is rebuilt on
load, which keeps saved runs small and guarantees the reloaded bundle
is exactly what the simulator produced.

Every way a run directory can be wrong — missing, interrupted, a file
deleted, truncated or bit-flipped — surfaces as :class:`RunStoreError`
naming the offending file, never as a leaked ``KeyError`` /
``FileNotFoundError`` / pickle traceback.  An interrupted run (a
``checkpoints/`` store but no ``manifest.json`` yet) gets a dedicated
message pointing at ``--resume``.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.frames import read_csv, write_csv
from repro.geo.nspl import PostcodeLookup
from repro.simulation.feeds import DataFeeds, MobilityFeed

__all__ = ["RunStoreError", "save_feeds", "load_feeds"]

_MANIFEST = "manifest.json"
_CONFIG = "config.pkl"
_KPIS = "radio_kpis.csv"
_RAT = "rat_time.csv"
_MOBILITY = "mobility.npz"

_MOBILITY_KEYS = ("user_ids", "anchor_sites", "daily_dwell", "night_dwell")

#: Files whose SHA-256 payload digests are recorded in the manifest at
#: save time and verified on load.  The analysis artifact cache keys on
#: these digests (config.pkl included: the world — geography, topology,
#: calendar — is rebuilt from it, so it co-determines every artifact).
_DIGESTED_FILES = (_KPIS, _RAT, _MOBILITY, _CONFIG)


def _sha256_file(path: Path) -> str:
    sha = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            sha.update(block)
    return sha.hexdigest()


class RunStoreError(ValueError):
    """A saved-run directory is missing, partial, or corrupt.

    ``path`` names the offending file or directory.  Subclasses
    ``ValueError`` so code written against the historical error type
    keeps working.
    """

    def __init__(self, message: str, *, path: str | Path | None = None):
        super().__init__(message)
        self.path = None if path is None else Path(path)


def save_feeds(feeds: DataFeeds, directory: str | Path) -> Path:
    """Persist a simulation run to ``directory`` (created if missing)."""
    if feeds.config is None:
        raise ValueError(
            "feeds carry no config; only simulator-produced bundles can "
            "be persisted"
        )
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    with telemetry.span("save_feeds") as sp:
        write_csv(feeds.radio_kpis, path / _KPIS)
        write_csv(feeds.rat_time, path / _RAT)

        mobility = feeds.mobility
        np.savez_compressed(
            path / _MOBILITY,
            user_ids=mobility.user_ids,
            anchor_sites=mobility.anchor_sites,
            daily_dwell=np.stack(mobility.daily_dwell),
            night_dwell=np.stack(mobility.night_dwell),
        )
        with open(path / _CONFIG, "wb") as handle:
            pickle.dump(feeds.config, handle)

        from repro.simulation.sharding import parallelism_of

        parallelism = parallelism_of(feeds.config)
        digests = {
            name: _sha256_file(path / name) for name in _DIGESTED_FILES
        }
        manifest = {
            "format_version": 1,
            "num_users": int(mobility.num_users),
            "num_days": int(mobility.num_days),
            "num_kpi_rows": len(feeds.radio_kpis),
            "first_day": feeds.calendar.first_day.isoformat(),
            "last_day": feeds.calendar.last_day.isoformat(),
            "interconnect_upgrade_day": feeds.interconnect_upgrade_day,
            # Shard layout the run executed with. Results are independent
            # of it (see repro.simulation.sharding), recorded as
            # provenance for performance forensics on persisted runs.
            "parallelism": {
                "num_shards": parallelism.num_shards,
                "workers": parallelism.workers,
            },
            # Content addresses of the persisted feed payloads: the
            # inputs of every analysis-cache key, and the integrity
            # reference load_feeds verifies files against.
            "feeds_sha256": digests,
        }
        feeds.source_digests = digests
        # Telemetry captured while the run simulated travels with the
        # run: a snapshot is plain JSON data, so it lands verbatim in
        # the manifest and round-trips through load_feeds.
        if feeds.telemetry is not None:
            manifest["telemetry"] = feeds.telemetry
        sp.add("kpi_rows", len(feeds.radio_kpis))
        sp.add("rat_rows", len(feeds.rat_time))
        (path / _MANIFEST).write_text(
            json.dumps(manifest, indent=2), encoding="utf-8"
        )
    return path


def _read_manifest(path: Path) -> dict:
    manifest_path = path / _MANIFEST
    if not manifest_path.exists():
        from repro.simulation.checkpoint import CheckpointStore

        if CheckpointStore.present(path):
            raise RunStoreError(
                f"{path} is an interrupted run: it has checkpoints but "
                f"no {_MANIFEST} yet — complete it with "
                f"'python -m repro simulate --resume {path}'",
                path=manifest_path,
            )
        raise RunStoreError(
            f"{path} is not a saved run: missing {manifest_path}",
            path=manifest_path,
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        raise RunStoreError(
            f"unreadable manifest {manifest_path}: {err}",
            path=manifest_path,
        ) from err
    if manifest.get("format_version") != 1:
        raise RunStoreError(
            f"unsupported feed-store version "
            f"{manifest.get('format_version')!r} in {manifest_path}",
            path=manifest_path,
        )
    for key in ("num_users", "num_days"):
        if not isinstance(manifest.get(key), int):
            raise RunStoreError(
                f"manifest {manifest_path} is missing {key!r}",
                path=manifest_path,
            )
    return manifest


def _read_config(path: Path):
    config_path = path / _CONFIG
    if not config_path.exists():
        raise RunStoreError(
            f"saved run {path} is missing {config_path}", path=config_path
        )
    try:
        with open(config_path, "rb") as handle:
            return pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, OSError) as err:
        raise RunStoreError(
            f"unreadable config {config_path}: {err}", path=config_path
        ) from err


def _read_mobility(path: Path) -> MobilityFeed:
    mobility_path = path / _MOBILITY
    if not mobility_path.exists():
        raise RunStoreError(
            f"saved run {path} is missing {mobility_path}",
            path=mobility_path,
        )
    try:
        with np.load(mobility_path) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except Exception as err:
        raise RunStoreError(
            f"corrupt mobility archive {mobility_path}: {err}",
            path=mobility_path,
        ) from err
    missing = [key for key in _MOBILITY_KEYS if key not in arrays]
    if missing:
        raise RunStoreError(
            f"mobility archive {mobility_path} is missing arrays: "
            f"{missing}",
            path=mobility_path,
        )
    daily = arrays["daily_dwell"]
    night = arrays["night_dwell"]
    return MobilityFeed(
        user_ids=arrays["user_ids"],
        anchor_sites=arrays["anchor_sites"],
        daily_dwell=[daily[index] for index in range(daily.shape[0])],
        night_dwell=[night[index] for index in range(night.shape[0])],
    )


def _read_frame(path: Path, name: str):
    frame_path = path / name
    if not frame_path.exists():
        raise RunStoreError(
            f"saved run {path} is missing {frame_path}", path=frame_path
        )
    try:
        return read_csv(frame_path)
    except Exception as err:
        raise RunStoreError(
            f"corrupt feed {frame_path}: {err}", path=frame_path
        ) from err


@telemetry.timed("load_feeds")
def load_feeds(directory: str | Path) -> DataFeeds:
    """Reload a run saved by :func:`save_feeds`.

    Raises :class:`RunStoreError` naming the offending file when the
    directory is missing, interrupted, partial, or corrupt.
    """
    path = Path(directory)
    if not path.is_dir():
        raise RunStoreError(
            f"run directory {path} does not exist", path=path
        )
    manifest = _read_manifest(path)
    digests = _verify_digests(path, manifest)
    config = _read_config(path)

    from repro.simulation.engine import build_world

    world = build_world(config)
    mobility = _read_mobility(path)
    if mobility.num_users != manifest["num_users"]:
        raise RunStoreError(
            f"mobility archive {path / _MOBILITY} holds "
            f"{mobility.num_users} users but the manifest promises "
            f"{manifest['num_users']}",
            path=path / _MOBILITY,
        )
    if mobility.num_days != manifest["num_days"]:
        raise RunStoreError(
            f"mobility archive {path / _MOBILITY} holds "
            f"{mobility.num_days} days but the manifest promises "
            f"{manifest['num_days']}",
            path=path / _MOBILITY,
        )

    upgrade = manifest.get("interconnect_upgrade_day")
    return DataFeeds(
        calendar=config.calendar,
        geography=world.geography,
        lookup=PostcodeLookup(world.geography),
        topology=world.topology,
        catalog=world.catalog,
        base=world.base,
        agents=world.agents,
        mobility=mobility,
        radio_kpis=_read_frame(path, _KPIS),
        rat_time=_read_frame(path, _RAT),
        epidemic=world.epidemic,
        interconnect_upgrade_day=(
            int(upgrade) if upgrade is not None else None
        ),
        config=config,
        telemetry=manifest.get("telemetry"),
        source_digests=digests,
    )


def _verify_digests(path: Path, manifest: dict) -> dict | None:
    """Check every digested feed file against the manifest's record.

    Returns the digest map (``None`` for runs saved before digests were
    recorded — those load fine, they just cannot feed the analysis
    cache).  A file whose bytes no longer hash to the recorded digest
    raises :class:`RunStoreError` naming it; a *missing* file is left
    for its reader to report precisely.
    """
    digests = manifest.get("feeds_sha256")
    if not isinstance(digests, dict) or not digests:
        return None
    for name, expected in sorted(digests.items()):
        file_path = path / name
        if not file_path.exists():
            continue
        actual = _sha256_file(file_path)
        if actual != expected:
            raise RunStoreError(
                f"feed {file_path} does not match the digest recorded in "
                f"its manifest (expected sha256 {expected[:12]}…, found "
                f"{actual[:12]}…); the file was modified or corrupted "
                "after the run was saved",
                path=file_path,
            )
    return {str(name): str(value) for name, value in digests.items()}
