"""Directory layout and (de)serialization for data feeds.

Layout of a saved run (format version 2)::

    <dir>/
      manifest.json        # provenance: sizes, window, versions (commit point)
      config.pkl           # exact SimulationConfig (nested dataclasses)
      radio_kpis.csv       # daily per-cell KPI medians
      rat_time.csv         # RAT connected-time feed
      feeds/               # shard-partitioned columnar mobility store
        shard-0000/
          rows.npy user_ids.npy anchor_sites.npy
          daily_dwell.npy night_dwell.npy
        shard-0001/ ...
      checkpoints/         # per-shard-day partial state, while running
      cache/               # analysis artifact cache (repro.analysis.cache)

The mobility feed — by far the largest payload — is partitioned by the
engine's deterministic user sharding into one memory-mappable ``.npy``
file per shard × column (:mod:`repro.io.columnar`), so
``load_feeds(..., lazy=True)`` can map a million-agent run without
materializing it.  Format version 1 (a single ``mobility.npz``) is
still read.  The world (geography, topology, subscriber base, agents)
is *not* stored: it is a pure function of the configuration and is
rebuilt on load, which keeps saved runs small and guarantees the
reloaded bundle is exactly what the simulator produced.

Persistence is atomic: every file is written under a temporary name and
``os.replace``d into place, and ``manifest.json`` is written last as
the commit point.  A crash mid-save therefore leaves either the old
run intact or a directory without a (matching) manifest — never a
half-written file a reader would silently accept.

Live runs (:meth:`repro.api.Run.advance`) extend a persisted directory
through :func:`append_feeds`: new dwell days land in append-only
segment files, the small tables are rewritten under day-count-versioned
names, and the manifest — now carrying a ``live`` block (coordinator
state), per-segment spans under ``feeds.segments`` and the current
table names under ``feeds.tables`` — is again rewritten last as the
commit point.  Re-saving compacts the segments back into the canonical
single-file layout, and a run that reaches its horizon is byte-for-byte
a batch run.

Every way a run directory can be wrong — missing, interrupted, a file
deleted, truncated or bit-flipped — surfaces as :class:`RunStoreError`
naming the offending file, never as a leaked ``KeyError`` /
``FileNotFoundError`` / pickle traceback.  An interrupted run (a
``checkpoints/`` store but no ``manifest.json`` yet) gets a dedicated
message pointing at ``--resume``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.frames import read_csv, write_csv
from repro.geo.nspl import PostcodeLookup
from repro.io import columnar
from repro.io.columnar import (
    ColumnarWriter,
    ShardedMobilityFeed,
    materialize,
    open_columnar,
)
from repro.io.errors import RunStoreError
from repro.simulation.feeds import DataFeeds, MobilityFeed

__all__ = ["RunStoreError", "append_feeds", "save_feeds", "load_feeds"]

_MANIFEST = "manifest.json"
_CONFIG = "config.pkl"
_KPIS = "radio_kpis.csv"
_RAT = "rat_time.csv"
_MOBILITY = "mobility.npz"  # format version 1 only

_MOBILITY_KEYS = ("user_ids", "anchor_sites", "daily_dwell", "night_dwell")

#: Small files whose SHA-256 payload digests are recorded in the
#: manifest at save time and verified on load; the per-shard columnar
#: files are digested alongside them.  The analysis artifact cache keys
#: on the full digest map (config.pkl included: the world — geography,
#: topology, calendar — is rebuilt from it, so it co-determines every
#: artifact).
_DIGESTED_FILES = (_KPIS, _RAT, _CONFIG)

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def _table_name(base: str, num_days: int) -> str:
    """Versioned table file name used by append commits.

    An append rewrites the KPI and RAT tables in full (they are small),
    but under a name carrying the new day count — the previous table
    file, still referenced by the previous manifest, survives untouched
    until the manifest rewrite commits the advance.  A torn advance
    therefore leaves the run loadable at its prior day count.
    """
    stem, dot, suffix = base.partition(".")
    return f"{stem}.{num_days:05d}{dot}{suffix}"


def _sha256_file(path: Path) -> str:
    sha = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            sha.update(block)
    return sha.hexdigest()


def _replace_into_place(tmp: Path, final: Path) -> None:
    os.replace(tmp, final)


def _atomic_csv(frame, final: Path) -> None:
    tmp = final.with_name(final.name + ".tmp")
    write_csv(frame, tmp)
    _replace_into_place(tmp, final)


def _atomic_pickle(obj, final: Path) -> None:
    tmp = final.with_name(final.name + ".tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(obj, handle)
    _replace_into_place(tmp, final)


def _atomic_text(text: str, final: Path) -> None:
    tmp = final.with_name(final.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    _replace_into_place(tmp, final)


def _commit_mobility(feeds: DataFeeds, path: Path) -> tuple[list[str], int]:
    """Land the mobility partition on disk; return (rel paths, K).

    A feed that is already streaming into ``path`` (the engine's
    ``stream_dir`` mode leaves :attr:`ShardedMobilityFeed.pending_writer`
    set) just commits its writer — nothing is rewritten.  Anything else
    is streamed through a fresh :class:`ColumnarWriter` one day at a
    time, partitioned exactly as the engine would (the run's configured
    shard count over the stable user hash), so saving a feed produces
    byte-identical files whether it was streamed or held in memory.
    """
    mobility = feeds.mobility
    writer = getattr(mobility, "pending_writer", None)
    if writer is not None and writer.run_directory == path:
        relative = writer.commit()
        mobility.pending_writer = None
        return relative, writer.num_shards

    from repro.simulation.sharding import parallelism_of, shard_user_indices

    num_shards = parallelism_of(feeds.config).num_shards
    indices = shard_user_indices(mobility.user_ids, num_shards)
    writer = ColumnarWriter(
        path,
        list(indices),
        mobility.user_ids,
        mobility.anchor_sites,
        mobility.num_days,
    )
    writer.write_all(mobility)
    relative = writer.commit()
    if writer is getattr(mobility, "pending_writer", None):
        mobility.pending_writer = None
    return relative, num_shards


def _commit_events(
    feeds: DataFeeds, path: Path, num_shards: int
) -> list[str]:
    """Land the signalling-event partition; return its relative paths.

    Mirrors :func:`_commit_mobility`: an engine-streamed bundle (a
    pending :class:`~repro.io.columnar.EventsWriter`) just commits its
    writer; an in-memory per-day dict streams through a fresh writer
    one day at a time, partitioned by the same stable user hash —
    byte-identical files either way.  Bundles without signalling frames
    return ``[]`` (stale event files are dropped after the manifest
    commit).
    """
    signaling = feeds.signaling
    if signaling is None:
        return []
    writer = getattr(signaling, "pending_writer", None)
    if (
        writer is not None
        and writer.run_directory == path
        and not writer.committed
    ):
        if writer.num_shards != num_shards:
            raise RunStoreError(
                f"streamed event partition has {writer.num_shards} shards "
                f"but the mobility partition has {num_shards}",
                path=path,
            )
        return writer.commit()
    writer = columnar.EventsWriter(
        path, num_shards, feeds.mobility.num_days
    )
    writer.write_all(signaling)
    return writer.commit()


def save_feeds(feeds: DataFeeds, directory: str | Path) -> Path:
    """Persist a simulation run to ``directory`` (created if missing).

    All writes are atomic (tmp + rename), with ``manifest.json``
    written last as the commit point; a crash mid-save never leaves a
    file a reader would half-accept.

    A feed bundle shorter than its configured horizon (a live run
    growing through ``Run.advance``) additionally persists a ``live``
    manifest block with the coordinator state the engine needs to
    extend it bitwise-identically.  Saving always produces the
    canonical single-segment layout — re-saving a segmented live run
    compacts its append segments back into one file per shard column,
    byte-identical to a batch run of the same day count.
    """
    if feeds.config is None:
        raise ValueError(
            "feeds carry no config; only simulator-produced bundles can "
            "be persisted"
        )
    horizon = int(feeds.config.calendar.num_days)
    if feeds.mobility.num_days < horizon and feeds.live is None:
        raise ValueError(
            f"feeds cover {feeds.mobility.num_days} of {horizon} days but "
            "carry no live coordinator state; a partial run cannot be "
            "persisted without it (it could never be advanced)"
        )
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    with telemetry.span("save_feeds") as sp:
        mobility = feeds.mobility
        shard_files, num_shards = _commit_mobility(feeds, path)
        event_files = _commit_events(feeds, path, num_shards)
        _atomic_csv(feeds.radio_kpis, path / _KPIS)
        _atomic_csv(feeds.rat_time, path / _RAT)
        _atomic_pickle(feeds.config, path / _CONFIG)
        # A re-save over a format-1 run supersedes its archive.
        (path / _MOBILITY).unlink(missing_ok=True)

        from repro.simulation.sharding import parallelism_of

        parallelism = parallelism_of(feeds.config)
        digests = {
            name: _sha256_file(path / name)
            for name in (*_DIGESTED_FILES, *shard_files, *event_files)
        }
        feeds_block: dict = {
            "layout": "columnar",
            "num_shards": num_shards,
        }
        if event_files:
            # The signalling-event partition rides in the same shard
            # directories; recording its column list here is what makes
            # a v2-without-events manifest keep loading unchanged.
            feeds_block["events"] = {
                "columns": [name for name, _ in columnar.EVENT_COLUMNS],
            }
        manifest = {
            "format_version": _FORMAT_VERSION,
            "num_users": int(mobility.num_users),
            "num_days": int(mobility.num_days),
            "num_kpi_rows": len(feeds.radio_kpis),
            "first_day": feeds.calendar.first_day.isoformat(),
            "last_day": feeds.calendar.last_day.isoformat(),
            "interconnect_upgrade_day": feeds.interconnect_upgrade_day,
            # Shard layout the run executed with. Results are independent
            # of it (see repro.simulation.sharding), recorded as
            # provenance for performance forensics on persisted runs.
            "parallelism": {
                "num_shards": parallelism.num_shards,
                "workers": parallelism.workers,
            },
            # The on-disk mobility partition (storage layout; always the
            # configured shard count, even when the run executed
            # serially).
            "feeds": feeds_block,
            # Content addresses of the persisted feed payloads: the
            # inputs of every analysis-cache key, and the integrity
            # reference load_feeds verifies files against.
            "feeds_sha256": digests,
        }
        if mobility.num_days < horizon:
            manifest["live"] = {
                "horizon_days": horizon,
                "voice_mb_by_day": [
                    float(value) for value in feeds.live["voice_mb_by_day"]
                ],
                "baseline_dl_total": (
                    None
                    if feeds.live.get("baseline_dl_total") is None
                    else float(feeds.live["baseline_dl_total"])
                ),
            }
        feeds.source_digests = digests
        feeds.feed_segments = [(0, int(mobility.num_days))]
        feeds.source_directory = path
        # Telemetry captured while the run simulated travels with the
        # run: a snapshot is plain JSON data, so it lands verbatim in
        # the manifest and round-trips through load_feeds.
        if feeds.telemetry is not None:
            manifest["telemetry"] = feeds.telemetry
        sp.add("kpi_rows", len(feeds.radio_kpis))
        sp.add("rat_rows", len(feeds.rat_time))
        sp.add("shards", num_shards)
        _atomic_text(json.dumps(manifest, indent=2), path / _MANIFEST)
        # Only after the commit point: a compacting re-save of a
        # segmented live run supersedes its day-count-versioned table
        # files (the canonical names were just rewritten; a crash
        # before the manifest rename must leave them referenced).
        for base in (_KPIS, _RAT):
            stem, _, suffix = base.partition(".")
            for stale in path.glob(f"{stem}.*.{suffix}"):
                stale.unlink(missing_ok=True)
        if not event_files:
            # A save without signalling frames stops referencing any
            # event partition a previous save left behind.
            columnar.drop_stale_events(path)
    return path


def append_feeds(feeds: DataFeeds, chunk: DataFeeds, directory: str | Path) -> Path:
    """Commit newly simulated days onto a persisted live run.

    ``feeds`` is the loaded base run, ``chunk`` the engine's output for
    the next window of days (its mobility holds only the new days).
    The append commit is crash-safe in the same way a save is:

    1. the new days land in *new* per-shard segment files
       (:func:`~repro.io.columnar.segment_file_name`) — the digested
       base files are never touched;
    2. the KPI and RAT tables are rewritten in full under a
       day-count-versioned name, leaving the previous table files in
       place;
    3. ``manifest.json`` — new day count, extended segment list,
       updated digest map and live block — is atomically rewritten
       *last*, as the single commit point;
    4. only then are the superseded table files removed.

    A crash anywhere before step 3 leaves the previous manifest
    pointing exclusively at untouched files, so the run stays loadable
    at its prior day count; re-running the advance recovers (aided by
    the engine's per-shard-day checkpoints over the window).
    """
    path = Path(directory)
    manifest = _read_manifest(path)
    if manifest["format_version"] != _FORMAT_VERSION:
        raise RunStoreError(
            f"run {path} uses feed-store format "
            f"{manifest['format_version']}; only format "
            f"{_FORMAT_VERSION} runs can be advanced",
            path=path / _MANIFEST,
        )
    live = manifest.get("live")
    if not isinstance(live, dict):
        raise RunStoreError(
            f"run {path} is frozen (its manifest has no live block); "
            "there are no further days to append",
            path=path / _MANIFEST,
        )
    old_digests = manifest.get("feeds_sha256")
    if not isinstance(old_digests, dict) or not old_digests:
        raise RunStoreError(
            f"run {path} records no feed digests; it cannot be advanced",
            path=path / _MANIFEST,
        )
    block = manifest.get("feeds") or {}
    if block.get("events"):
        raise RunStoreError(
            f"run {path} persists a signalling-event partition, which "
            "the append commit does not extend; event-bearing runs "
            "cannot be advanced",
            path=path / _MANIFEST,
        )
    num_shards = int(block.get("num_shards", 1))
    base_days = int(manifest["num_days"])
    chunk_days = int(chunk.mobility.num_days)
    new_days = base_days + chunk_days
    horizon = int(live["horizon_days"])
    if chunk.mobility.num_users != manifest["num_users"]:
        raise RunStoreError(
            f"appended chunk holds {chunk.mobility.num_users} users but "
            f"run {path} holds {manifest['num_users']}",
            path=path / _MANIFEST,
        )

    with telemetry.span("append_feeds") as sp:
        # 1. New dwell days → a fresh segment, never touching old files.
        writer = getattr(chunk.mobility, "pending_writer", None)
        if (
            writer is not None
            and writer.run_directory == path
            and writer.day_offset == base_days
        ):
            segment_files = writer.commit()
            chunk.mobility.pending_writer = None
        else:
            from repro.simulation.sharding import shard_user_indices

            writer = ColumnarWriter(
                path,
                list(
                    shard_user_indices(chunk.mobility.user_ids, num_shards)
                ),
                chunk.mobility.user_ids,
                chunk.mobility.anchor_sites,
                chunk_days,
                day_offset=base_days,
            )
            writer.write_all(chunk.mobility)
            segment_files = writer.commit()
        if writer.num_shards != num_shards:
            raise RunStoreError(
                f"appended segment was partitioned into "
                f"{writer.num_shards} shards but run {path} stores "
                f"{num_shards}",
                path=path / _MANIFEST,
            )

        # 2. Full table rewrite under versioned names (tables are small
        # and CSV floats round-trip exactly, so the combined file is
        # byte-identical to a batch run's prefix + new rows).
        from repro.frames import concat

        tables = block.get("tables") or {}
        old_kpis = tables.get("radio_kpis", _KPIS)
        old_rat = tables.get("rat_time", _RAT)
        new_kpis = _table_name(_KPIS, new_days)
        new_rat = _table_name(_RAT, new_days)
        combined_kpis = concat([feeds.radio_kpis, chunk.radio_kpis])
        combined_rat = concat([feeds.rat_time, chunk.rat_time])
        _atomic_csv(combined_kpis, path / new_kpis)
        _atomic_csv(combined_rat, path / new_rat)

        # 3. Digest map: drop the superseded tables, add the new files.
        digests = {
            name: value
            for name, value in old_digests.items()
            if name not in (old_kpis, old_rat)
        }
        for name in (new_kpis, new_rat, *segment_files):
            digests[name] = _sha256_file(path / name)

        segments = [
            [int(start), int(days)]
            for start, days in (block.get("segments") or [[0, base_days]])
        ]
        segments.append([base_days, chunk_days])
        upgrade = manifest.get("interconnect_upgrade_day")
        if upgrade is None:
            upgrade = chunk.interconnect_upgrade_day
        voice = [float(value) for value in live.get("voice_mb_by_day", [])]
        voice.extend(
            float(value) for value in chunk.live["voice_mb_by_day"]
        )
        baseline = live.get("baseline_dl_total")
        if baseline is None:
            baseline = chunk.live.get("baseline_dl_total")

        new_manifest = dict(manifest)
        new_manifest["num_days"] = new_days
        new_manifest["num_kpi_rows"] = len(combined_kpis)
        new_manifest["interconnect_upgrade_day"] = upgrade
        new_manifest["feeds"] = {
            **block,
            "segments": segments,
            "tables": {"radio_kpis": new_kpis, "rat_time": new_rat},
        }
        new_manifest["feeds_sha256"] = digests
        if new_days < horizon:
            new_manifest["live"] = {
                "horizon_days": horizon,
                "voice_mb_by_day": voice,
                "baseline_dl_total": (
                    None if baseline is None else float(baseline)
                ),
            }
        else:
            new_manifest.pop("live", None)
        sp.add("days", chunk_days)
        sp.add("kpi_rows", len(combined_kpis))
        # The commit point: until this rename, the previous manifest
        # references only untouched files.
        _atomic_text(json.dumps(new_manifest, indent=2), path / _MANIFEST)

        # 4. Post-commit cleanup of superseded table files.
        for name in (old_kpis, old_rat):
            if name not in (new_kpis, new_rat):
                (path / name).unlink(missing_ok=True)
    return path


def _read_manifest(path: Path) -> dict:
    manifest_path = path / _MANIFEST
    if not manifest_path.exists():
        from repro.simulation.checkpoint import CheckpointStore

        if CheckpointStore.present(path):
            raise RunStoreError(
                f"{path} is an interrupted run: it has checkpoints but "
                f"no {_MANIFEST} yet — complete it with "
                f"'python -m repro simulate --resume {path}'",
                path=manifest_path,
            )
        raise RunStoreError(
            f"{path} is not a saved run: missing {manifest_path}",
            path=manifest_path,
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        raise RunStoreError(
            f"unreadable manifest {manifest_path}: {err}",
            path=manifest_path,
        ) from err
    if manifest.get("format_version") not in _SUPPORTED_VERSIONS:
        raise RunStoreError(
            f"unsupported feed-store version "
            f"{manifest.get('format_version')!r} in {manifest_path}",
            path=manifest_path,
        )
    for key in ("num_users", "num_days"):
        if not isinstance(manifest.get(key), int):
            raise RunStoreError(
                f"manifest {manifest_path} is missing {key!r}",
                path=manifest_path,
            )
    return manifest


def _read_config(path: Path):
    config_path = path / _CONFIG
    if not config_path.exists():
        raise RunStoreError(
            f"saved run {path} is missing {config_path}", path=config_path
        )
    try:
        with open(config_path, "rb") as handle:
            return pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, OSError) as err:
        raise RunStoreError(
            f"unreadable config {config_path}: {err}", path=config_path
        ) from err


def _read_mobility_v1(path: Path) -> MobilityFeed:
    """Read the monolithic format-1 ``mobility.npz`` archive."""
    mobility_path = path / _MOBILITY
    if not mobility_path.exists():
        raise RunStoreError(
            f"saved run {path} is missing {mobility_path}",
            path=mobility_path,
        )
    try:
        with np.load(mobility_path) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except Exception as err:
        raise RunStoreError(
            f"corrupt mobility archive {mobility_path}: {err}",
            path=mobility_path,
        ) from err
    missing = [key for key in _MOBILITY_KEYS if key not in arrays]
    if missing:
        raise RunStoreError(
            f"mobility archive {mobility_path} is missing arrays: "
            f"{missing}",
            path=mobility_path,
        )
    daily = arrays["daily_dwell"]
    night = arrays["night_dwell"]
    return MobilityFeed(
        user_ids=arrays["user_ids"],
        anchor_sites=arrays["anchor_sites"],
        daily_dwell=[daily[index] for index in range(daily.shape[0])],
        night_dwell=[night[index] for index in range(night.shape[0])],
    )


def _read_mobility_v2(
    path: Path, manifest: dict, *, lazy: bool
) -> MobilityFeed | ShardedMobilityFeed:
    """Open the columnar partition described by the manifest.

    ``lazy`` keeps the dwell stacks memory-mapped (the
    :class:`ShardedMobilityFeed` view); otherwise — and always under
    ``REPRO_STORE_NAIVE=1`` — the plain in-memory feed is rebuilt.
    """
    block = manifest.get("feeds")
    if not isinstance(block, dict) or block.get("layout") != "columnar":
        raise RunStoreError(
            f"manifest {path / _MANIFEST} describes no columnar feed "
            f"layout (feeds block: {block!r})",
            path=path / _MANIFEST,
        )
    num_shards = block.get("num_shards")
    if not isinstance(num_shards, int) or num_shards < 1:
        raise RunStoreError(
            f"manifest {path / _MANIFEST} has an invalid feed shard "
            f"count {num_shards!r}",
            path=path / _MANIFEST,
        )
    segments = _read_segments(path, block)
    effective_lazy = lazy and not columnar.use_naive()
    sharded = open_columnar(
        path, num_shards, lazy=effective_lazy, segments=segments
    )
    if effective_lazy:
        return sharded
    return materialize(sharded)


def _read_segments(path: Path, block: dict) -> list[tuple[int, int]] | None:
    """Validated ``(start, days)`` segment spans of a live partition."""
    raw = block.get("segments")
    if raw is None:
        return None
    spans: list[tuple[int, int]] = []
    expected = 0
    for pair in raw:
        try:
            start, days = (int(pair[0]), int(pair[1]))
        except (TypeError, ValueError, IndexError) as err:
            raise RunStoreError(
                f"manifest {path / _MANIFEST} has a malformed feed "
                f"segment entry {pair!r}",
                path=path / _MANIFEST,
            ) from err
        if start != expected or days < 0:
            raise RunStoreError(
                f"manifest {path / _MANIFEST} has non-contiguous feed "
                f"segments: segment at day {start} follows {expected} "
                f"covered days",
                path=path / _MANIFEST,
            )
        expected = start + days
        spans.append((start, days))
    return spans or None


def _read_frame(path: Path, name: str):
    frame_path = path / name
    if not frame_path.exists():
        raise RunStoreError(
            f"saved run {path} is missing {frame_path}", path=frame_path
        )
    try:
        return read_csv(frame_path)
    except Exception as err:
        raise RunStoreError(
            f"corrupt feed {frame_path}: {err}", path=frame_path
        ) from err


@telemetry.timed("load_feeds")
def load_feeds(directory: str | Path, *, lazy: bool = False) -> DataFeeds:
    """Reload a run saved by :func:`save_feeds`.

    With ``lazy=True`` (format-2 runs) the mobility partition is
    memory-mapped shard by shard instead of materialized: the returned
    bundle's ``mobility`` is a :class:`~repro.io.columnar.
    ShardedMobilityFeed` whose day matrices are assembled on demand,
    so analysis peak memory is bounded by one shard × a day batch
    rather than the whole population.  ``REPRO_STORE_NAIVE=1`` forces
    the eager in-memory path regardless (the differential oracle).

    Raises :class:`RunStoreError` naming the offending file when the
    directory is missing, interrupted, partial, or corrupt.
    """
    path = Path(directory)
    if not path.is_dir():
        raise RunStoreError(
            f"run directory {path} does not exist", path=path
        )
    manifest = _read_manifest(path)
    digests = _verify_digests(path, manifest)
    config = _read_config(path)

    from repro.simulation.engine import build_world

    world = build_world(config)
    if manifest["format_version"] == 1:
        mobility = _read_mobility_v1(path)
        described = path / _MOBILITY
    else:
        mobility = _read_mobility_v2(path, manifest, lazy=lazy)
        described = path / columnar.FEEDS_SUBDIR
    if mobility.num_users != manifest["num_users"]:
        raise RunStoreError(
            f"mobility store {described} holds "
            f"{mobility.num_users} users but the manifest promises "
            f"{manifest['num_users']}",
            path=described,
        )
    if mobility.num_days != manifest["num_days"]:
        raise RunStoreError(
            f"mobility store {described} holds "
            f"{mobility.num_days} days but the manifest promises "
            f"{manifest['num_days']}",
            path=described,
        )

    upgrade = manifest.get("interconnect_upgrade_day")
    feeds_block = (
        manifest.get("feeds") if manifest["format_version"] != 1 else {}
    ) or {}
    tables = feeds_block.get("tables") or {}
    segments = (
        _read_segments(path, feeds_block)
        if manifest["format_version"] != 1
        else None
    )
    signaling = None
    events_block = feeds_block.get("events")
    if isinstance(events_block, dict):
        effective_lazy = lazy and not columnar.use_naive()
        event_feed = columnar.open_events(
            path,
            int(feeds_block.get("num_shards", 1)),
            int(manifest["num_days"]),
            lazy=effective_lazy,
        )
        # Lazy loads keep the day frames as windowed per-shard maps;
        # eager loads (and the REPRO_STORE_NAIVE=1 oracle) rebuild the
        # engine's plain per-day dict.
        signaling = (
            event_feed if effective_lazy else event_feed.materialize()
        )
    live = manifest.get("live")
    calendar = config.calendar
    if isinstance(live, dict) and mobility.num_days < calendar.num_days:
        # A live run holds only its simulated prefix; the analysis
        # calendar must end where the data ends (the configuration
        # keeps the full horizon for Run.advance).
        from repro.simulation.clock import StudyCalendar

        calendar = StudyCalendar(
            first_day=calendar.first_day,
            num_days=mobility.num_days,
            key_dates=calendar.key_dates,
        )
    return DataFeeds(
        calendar=calendar,
        geography=world.geography,
        lookup=PostcodeLookup(world.geography),
        topology=world.topology,
        catalog=world.catalog,
        base=world.base,
        agents=world.agents,
        mobility=mobility,
        radio_kpis=_read_frame(path, tables.get("radio_kpis", _KPIS)),
        rat_time=_read_frame(path, tables.get("rat_time", _RAT)),
        epidemic=world.epidemic,
        interconnect_upgrade_day=(
            int(upgrade) if upgrade is not None else None
        ),
        signaling=signaling,
        config=config,
        telemetry=manifest.get("telemetry"),
        source_digests=digests,
        live=live if isinstance(live, dict) else None,
        feed_segments=(
            segments
            if segments is not None
            else [(0, int(manifest["num_days"]))]
        ),
        source_directory=path,
    )


def _verify_digests(path: Path, manifest: dict) -> dict | None:
    """Check every digested feed file against the manifest's record.

    Returns the digest map (``None`` for runs saved before digests were
    recorded — those load fine, they just cannot feed the analysis
    cache).  A file whose bytes no longer hash to the recorded digest,
    and equally a file the manifest promises that is *missing* from
    disk, raises :class:`RunStoreError` naming it — a deleted shard
    must fail here, precisely, not in a later, vaguer reader.
    """
    digests = manifest.get("feeds_sha256")
    if not isinstance(digests, dict) or not digests:
        return None
    for name, expected in sorted(digests.items()):
        file_path = path / name
        if not file_path.exists():
            raise RunStoreError(
                f"saved run is missing {file_path}, which its manifest "
                f"records a digest for; the file was deleted (or the "
                f"save was interrupted) after the manifest was written",
                path=file_path,
            )
        actual = _sha256_file(file_path)
        telemetry.count("store.digest_verifications", 1)
        if actual != expected:
            raise RunStoreError(
                f"feed {file_path} does not match the digest recorded in "
                f"its manifest (expected sha256 {expected[:12]}…, found "
                f"{actual[:12]}…); the file was modified or corrupted "
                "after the run was saved",
                path=file_path,
            )
    return {str(name): str(value) for name, value in digests.items()}
