"""Directory layout and (de)serialization for data feeds.

Layout of a saved run::

    <dir>/
      manifest.json        # provenance: sizes, window, versions
      config.pkl           # exact SimulationConfig (nested dataclasses)
      radio_kpis.csv       # daily per-cell KPI medians
      rat_time.csv         # RAT connected-time feed
      mobility.npz         # user ids, anchor sites, dwell stacks

The world (geography, topology, subscriber base, agents) is *not*
stored: it is a pure function of the configuration and is rebuilt on
load, which keeps saved runs small and guarantees the reloaded bundle
is exactly what the simulator produced.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.frames import read_csv, write_csv
from repro.geo.nspl import PostcodeLookup
from repro.simulation.feeds import DataFeeds, MobilityFeed

__all__ = ["save_feeds", "load_feeds"]

_MANIFEST = "manifest.json"
_CONFIG = "config.pkl"
_KPIS = "radio_kpis.csv"
_RAT = "rat_time.csv"
_MOBILITY = "mobility.npz"


def save_feeds(feeds: DataFeeds, directory: str | Path) -> Path:
    """Persist a simulation run to ``directory`` (created if missing)."""
    if feeds.config is None:
        raise ValueError(
            "feeds carry no config; only simulator-produced bundles can "
            "be persisted"
        )
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    with telemetry.span("save_feeds") as sp:
        write_csv(feeds.radio_kpis, path / _KPIS)
        write_csv(feeds.rat_time, path / _RAT)

        mobility = feeds.mobility
        np.savez_compressed(
            path / _MOBILITY,
            user_ids=mobility.user_ids,
            anchor_sites=mobility.anchor_sites,
            daily_dwell=np.stack(mobility.daily_dwell),
            night_dwell=np.stack(mobility.night_dwell),
        )
        with open(path / _CONFIG, "wb") as handle:
            pickle.dump(feeds.config, handle)

        from repro.simulation.sharding import parallelism_of

        parallelism = parallelism_of(feeds.config)
        manifest = {
            "format_version": 1,
            "num_users": int(mobility.num_users),
            "num_days": int(mobility.num_days),
            "num_kpi_rows": len(feeds.radio_kpis),
            "first_day": feeds.calendar.first_day.isoformat(),
            "last_day": feeds.calendar.last_day.isoformat(),
            "interconnect_upgrade_day": feeds.interconnect_upgrade_day,
            # Shard layout the run executed with. Results are independent
            # of it (see repro.simulation.sharding), recorded as
            # provenance for performance forensics on persisted runs.
            "parallelism": {
                "num_shards": parallelism.num_shards,
                "workers": parallelism.workers,
            },
        }
        # Telemetry captured while the run simulated travels with the
        # run: a snapshot is plain JSON data, so it lands verbatim in
        # the manifest and round-trips through load_feeds.
        if feeds.telemetry is not None:
            manifest["telemetry"] = feeds.telemetry
        sp.add("kpi_rows", len(feeds.radio_kpis))
        sp.add("rat_rows", len(feeds.rat_time))
        (path / _MANIFEST).write_text(
            json.dumps(manifest, indent=2), encoding="utf-8"
        )
    return path


@telemetry.timed("load_feeds")
def load_feeds(directory: str | Path) -> DataFeeds:
    """Reload a run saved by :func:`save_feeds`."""
    path = Path(directory)
    manifest = json.loads((path / _MANIFEST).read_text(encoding="utf-8"))
    if manifest.get("format_version") != 1:
        raise ValueError(
            f"unsupported feed-store version {manifest.get('format_version')}"
        )
    with open(path / _CONFIG, "rb") as handle:
        config = pickle.load(handle)

    from repro.simulation.engine import build_world

    world = build_world(config)
    archive = np.load(path / _MOBILITY)
    daily = archive["daily_dwell"]
    night = archive["night_dwell"]
    mobility = MobilityFeed(
        user_ids=archive["user_ids"],
        anchor_sites=archive["anchor_sites"],
        daily_dwell=[daily[index] for index in range(daily.shape[0])],
        night_dwell=[night[index] for index in range(night.shape[0])],
    )
    if mobility.num_users != manifest["num_users"]:
        raise ValueError("stored mobility arrays do not match manifest")

    upgrade = manifest.get("interconnect_upgrade_day")
    return DataFeeds(
        calendar=config.calendar,
        geography=world.geography,
        lookup=PostcodeLookup(world.geography),
        topology=world.topology,
        catalog=world.catalog,
        base=world.base,
        agents=world.agents,
        mobility=mobility,
        radio_kpis=read_csv(path / _KPIS),
        rat_time=read_csv(path / _RAT),
        epidemic=world.epidemic,
        interconnect_upgrade_day=(
            int(upgrade) if upgrade is not None else None
        ),
        config=config,
        telemetry=manifest.get("telemetry"),
    )
