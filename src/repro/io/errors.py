"""The feed-store error type, importable from every storage layer.

Lives in its own module so :mod:`repro.io.store` (the run-directory
lifecycle) and :mod:`repro.io.columnar` (the shard-partitioned feed
partition) can both raise it without importing each other.  The public
import path stays ``repro.io.store.RunStoreError`` (re-exported there
and from :mod:`repro.io`).
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["RunStoreError"]


class RunStoreError(ValueError):
    """A saved-run directory is missing, partial, or corrupt.

    ``path`` names the offending file or directory.  Subclasses
    ``ValueError`` so code written against the historical error type
    keeps working.
    """

    def __init__(self, message: str, *, path: str | Path | None = None):
        super().__init__(message)
        self.path = None if path is None else Path(path)
