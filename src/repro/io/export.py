"""Export the analysis results as CSV files for external tooling.

The in-repo "figures" are text renderings; anyone wanting to plot with
matplotlib/ggplot/Excel gets the underlying series here: one CSV per
figure, in tidy long format (figure, metric, group, week/day, value).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.frames import Frame, write_csv

__all__ = ["export_analysis"]


def _weekly_rows(figure: str, panels) -> list[dict]:
    rows: list[dict] = []
    for metric, series in panels.items():
        for group, values in series.values.items():
            for week, value in zip(series.weeks.tolist(), values):
                rows.append(
                    {
                        "figure": figure,
                        "metric": metric,
                        "group": str(group),
                        "week": int(week),
                        "value": float(value),
                    }
                )
    return rows


def export_analysis(study, directory: str | Path) -> Path:
    """Write every figure's series to ``directory`` as CSVs.

    Produces: ``mobility_daily.csv`` (Fig 3), ``mobility_weekly.csv``
    (Figs 5–6), ``performance_weekly.csv`` (Figs 8–12 + Fig 9),
    ``fig2_census.csv``, ``fig4_cases.csv``, ``fig7_matrix.csv`` and
    ``summary.csv``. Returns the directory path.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    calendar = study.feeds.calendar

    # Fig 3 — daily national series.
    fig3 = study.fig3()
    daily_rows: list[dict] = []
    for metric, series in fig3.items():
        for day, value in zip(series.x.tolist(), series.values["UK"]):
            daily_rows.append(
                {
                    "metric": metric,
                    "day": int(day),
                    "date": calendar.date_of(int(day)).isoformat(),
                    "week": int(calendar.iso_week(int(day))),
                    "change_pct": float(value),
                }
            )
    write_csv(Frame.from_rows(daily_rows), path / "mobility_daily.csv")

    # Figs 5-6 — weekly mobility panels.
    weekly_rows: list[dict] = []
    for figure, panels in (("fig5", study.fig5()), ("fig6", study.fig6())):
        for metric, series in panels.items():
            for group, values in series.values.items():
                for week, value in zip(series.x.tolist(), values):
                    weekly_rows.append(
                        {
                            "figure": figure,
                            "metric": metric,
                            "group": str(group),
                            "week": int(week),
                            "change_pct": float(value),
                        }
                    )
    write_csv(Frame.from_rows(weekly_rows), path / "mobility_weekly.csv")

    # Figs 8-12 — weekly KPI panels.
    perf_rows: list[dict] = []
    for figure, panels in (
        ("fig8", study.fig8()),
        ("fig9", study.fig9()),
        ("fig10", study.fig10()),
        ("fig11", study.fig11()),
        ("fig12", study.fig12()),
    ):
        perf_rows.extend(_weekly_rows(figure, panels))
    renamed = [
        {**row, "change_pct": row.pop("value")} for row in perf_rows
    ]
    write_csv(
        Frame.from_rows(renamed), path / "performance_weekly.csv"
    )

    # Fig 2 — census validation points.
    write_csv(study.fig2().table, path / "fig2_census.csv")

    # Fig 4 — the scatter.
    fig4 = study.fig4()
    write_csv(
        Frame(
            {
                "day": fig4.days,
                "cumulative_cases": fig4.cumulative_cases,
                "entropy_change_pct": fig4.entropy_change_pct,
                "is_weekend": fig4.is_weekend.astype(np.int64),
            }
        ),
        path / "fig4_cases.csv",
    )

    # Fig 7 — the relocation matrix (wide form).
    write_csv(study.fig7().to_frame(), path / "fig7_matrix.csv")

    # Headline summary.
    summary = study.summary()
    write_csv(
        Frame(
            {
                "metric": list(summary),
                "value": [summary[key] for key in summary],
            }
        ),
        path / "summary.csv",
    )
    return path
