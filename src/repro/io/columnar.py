"""Shard-partitioned columnar on-disk layout for the mobility feeds.

The paper's substrate is 22M subscribers; holding every per-user
per-day dwell matrix in RAM caps a reproduction at laptop-memory
populations.  This module stores the mobility feed *out of core*
instead: one memory-mappable ``.npy`` file per shard × column under
``<run>/feeds/``, partitioned by the same deterministic user sharding
the parallel engine executes with (:mod:`repro.simulation.sharding`)::

    <run>/feeds/
      shard-0000/
        rows.npy          # population row indices of the shard's users
        user_ids.npy
        anchor_sites.npy  # (n, NUM_ANCHORS)
        daily_dwell.npy   # (num_days, n, NUM_ANCHORS) float32
        night_dwell.npy   # same shape, post-dropout
      shard-0001/
        ...

Three cooperating pieces:

- :class:`ColumnarWriter` — creates the partition and accepts one
  merged day at a time (``write_day``), so the engine can land shard
  outputs directly on disk instead of accumulating 98 days of matrices
  in RAM.  All files are written under temporary names;
  :meth:`ColumnarWriter.commit` flushes and atomically renames them
  (the tmp+rename pattern of :mod:`repro.analysis.cache`), returning
  the relative paths for the manifest's per-shard digests.
- :class:`ShardedMobilityFeed` — a
  :class:`~repro.simulation.feeds.MobilityFeed`-compatible view over
  the partition.  ``dwell(day)`` / ``night(day)`` assemble one day at
  a time from the shard maps, so every existing day-at-a-time consumer
  (home detection, relocation, the mobility graph) runs with bounded
  peak memory unchanged; streaming reductions iterate ``shards``
  directly.
- :func:`open_columnar` — reopens a partition, either *lazy*
  (``np.load(mmap_mode="r")``: shards are mapped, pages fault in on
  demand) or eager (:func:`materialize` rebuilds the plain in-memory
  :class:`~repro.simulation.feeds.MobilityFeed`).

``REPRO_STORE_NAIVE=1`` (read at call time, like the other naive
switches) forces the eager in-memory path everywhere — it is the
differential oracle the streaming results are asserted bitwise against.

Telemetry: ``store.bytes_mapped`` counts bytes opened for on-demand
mapping, ``store.shards_streamed`` counts shard partitions fed through
a streaming reduction, and ``store.digest_verifications`` (bumped by
:mod:`repro.io.store`) counts files checked against manifest digests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.io.errors import RunStoreError
from repro.simulation.feeds import MobilityFeed

__all__ = [
    "EVENT_COLUMNS",
    "FEEDS_SUBDIR",
    "SHARD_COLUMNS",
    "ColumnarWriter",
    "EventsWriter",
    "MobilityShard",
    "SegmentedStack",
    "ShardedEventFeed",
    "ShardedMobilityFeed",
    "drop_stale_events",
    "event_file_name",
    "event_relative_paths",
    "materialize",
    "open_columnar",
    "open_events",
    "open_shard",
    "segment_file_name",
    "segment_relative_paths",
    "shard_dir_name",
    "shard_relative_paths",
    "use_naive",
    "window_days",
]

FEEDS_SUBDIR = "feeds"

#: The five columns of one shard directory.  ``rows``/``user_ids``/
#: ``anchor_sites`` are small and always materialized; the two dwell
#: stacks are the out-of-core payload.
SHARD_COLUMNS = (
    "rows",
    "user_ids",
    "anchor_sites",
    "daily_dwell",
    "night_dwell",
)

_DWELL_COLUMNS = ("daily_dwell", "night_dwell")

#: Column name → dtype of one shard's signalling-event partition.  The
#: dtypes mirror :meth:`repro.network.signaling.SignalingGenerator.
#: generate_day` exactly, so a round-trip through the store is bitwise.
EVENT_COLUMNS = (
    ("user_id", np.dtype(np.int64)),
    ("site_id", np.dtype(np.int64)),
    ("timestamp_s", np.dtype(np.float64)),
    ("event", np.dtype(np.int64)),
    ("result", np.dtype(np.int64)),
)

_EVENT_OFFSETS = "events_offsets.npy"


def use_naive() -> bool:
    """Whether ``REPRO_STORE_NAIVE=1`` forces the in-memory oracle path.

    Read at call time so tests (and users) can flip the environment
    variable between calls without reimporting.
    """
    return os.environ.get("REPRO_STORE_NAIVE") == "1"


def shard_dir_name(index: int) -> str:
    return f"shard-{index:04d}"


def segment_file_name(column: str, start_day: int) -> str:
    """File name of one dwell-stack segment.

    The base segment (``start_day == 0``) keeps the canonical
    single-file name so a never-appended run is byte-identical to the
    pre-live layout; appended segments carry their absolute start day.
    """
    if start_day == 0:
        return f"{column}.npy"
    return f"{column}.{start_day:05d}.npy"


def shard_relative_paths(num_shards: int) -> list[str]:
    """Manifest-relative paths of every shard column file, in order."""
    return [
        f"{FEEDS_SUBDIR}/{shard_dir_name(index)}/{column}.npy"
        for index in range(num_shards)
        for column in SHARD_COLUMNS
    ]


def segment_relative_paths(num_shards: int, start_day: int) -> list[str]:
    """Manifest-relative paths of one appended segment's dwell files."""
    return [
        f"{FEEDS_SUBDIR}/{shard_dir_name(index)}/"
        f"{segment_file_name(column, start_day)}"
        for index in range(num_shards)
        for column in _DWELL_COLUMNS
    ]


def event_file_name(column: str) -> str:
    return f"events_{column}.npy"


def event_relative_paths(num_shards: int) -> list[str]:
    """Manifest-relative paths of every event-partition file, in order."""
    return [
        f"{FEEDS_SUBDIR}/{shard_dir_name(index)}/{name}"
        for index in range(num_shards)
        for name in (
            [_EVENT_OFFSETS]
            + [event_file_name(column) for column, _ in EVENT_COLUMNS]
        )
    ]


class SegmentedStack:
    """Day-indexed view over the dwell segments of one live shard.

    A run grown through ``Run.advance`` stores its dwell stack as a
    base file plus one file per append commit.  This view routes a day
    index to the segment holding it, so every ``stack[day]`` consumer
    (``ShardedMobilityFeed._assemble``, the streaming metrics) works
    unchanged on live runs.
    """

    def __init__(self, segments: list[tuple[int, np.ndarray]]) -> None:
        if not segments:
            raise ValueError("a segmented stack needs at least one segment")
        self._segments = sorted(segments, key=lambda pair: pair[0])
        self._starts = [start for start, _ in self._segments]
        expected = 0
        for start, stack in self._segments:
            if start != expected:
                raise ValueError(
                    f"dwell segments are not contiguous: segment at day "
                    f"{start} follows {expected} covered days"
                )
            expected = start + stack.shape[0]
        total = expected
        first = self._segments[0][1]
        self.shape = (total, *first.shape[1:])
        self.ndim = first.ndim
        self.dtype = first.dtype

    def __len__(self) -> int:
        return self.shape[0]

    def __getitem__(self, day):
        if isinstance(day, slice):
            return [self[index] for index in range(*day.indices(len(self)))]
        day = int(day)
        if day < 0:
            day += len(self)
        if not 0 <= day < len(self):
            raise IndexError(f"day {day} out of range")
        import bisect

        position = bisect.bisect_right(self._starts, day) - 1
        start, stack = self._segments[position]
        return stack[day - start]

    def __iter__(self):
        return (self[day] for day in range(len(self)))


@dataclass
class MobilityShard:
    """One shard of the columnar partition.

    ``rows`` are the shard's indices into population row order
    (ascending); the dwell stacks are ``(num_days, n, NUM_ANCHORS)``
    and may be memory maps (lazy open) or plain arrays.
    """

    index: int
    rows: np.ndarray
    user_ids: np.ndarray
    anchor_sites: np.ndarray
    daily_dwell: np.ndarray
    night_dwell: np.ndarray
    #: Column → ``[(start_day, num_days, path)]`` of the backing segment
    #: files, recorded on lazy opens so :func:`window_days` can map a
    #: day window fresh and release it after consumption.
    sources: dict[str, list[tuple[int, int, Path]]] | None = None

    @property
    def num_rows(self) -> int:
        return int(self.rows.shape[0])


class _DayStack:
    """Sequence view presenting per-shard stacks as a list of day matrices.

    Keeps :class:`ShardedMobilityFeed` drop-in compatible with code
    written against ``MobilityFeed.daily_dwell[day]`` — each access
    assembles exactly one day, so iteration stays bounded-memory.
    """

    def __init__(self, feed: "ShardedMobilityFeed", column: str) -> None:
        self._feed = feed
        self._column = column

    def __len__(self) -> int:
        return self._feed.num_days

    def __getitem__(self, day):
        if isinstance(day, slice):
            return [self[index] for index in range(*day.indices(len(self)))]
        day = int(day)
        if day < 0:
            day += len(self)
        if not 0 <= day < len(self):
            raise IndexError(f"day {day} out of range")
        return self._feed._assemble(self._column, day)

    def __iter__(self):
        return (self[day] for day in range(len(self)))


class ShardedMobilityFeed:
    """A mobility feed assembled on demand from its columnar shards.

    Drop-in for :class:`~repro.simulation.feeds.MobilityFeed`:
    ``user_ids`` / ``anchor_sites`` are assembled once (they are small),
    ``dwell(day)`` / ``night(day)`` / ``daily_dwell[day]`` materialize
    one full-population day matrix per call, and streaming consumers
    read :attr:`shards` directly for bounded per-shard access.
    """

    def __init__(
        self,
        shards: list[MobilityShard],
        *,
        bin_dwell: list[np.ndarray] | None = None,
        pending_writer: "ColumnarWriter | None" = None,
    ) -> None:
        if not shards:
            raise ValueError("a sharded feed needs at least one shard")
        self.shards = list(shards)
        self.bin_dwell = bin_dwell
        #: Set while the backing files are still uncommitted (engine
        #: streaming mode); :func:`repro.io.store.save_feeds` commits
        #: the writer instead of rewriting the arrays.
        self.pending_writer = pending_writer
        total = sum(shard.num_rows for shard in self.shards)
        first = self.shards[0]
        self.user_ids = np.empty(total, dtype=first.user_ids.dtype)
        self.anchor_sites = np.empty(
            (total, first.anchor_sites.shape[1]),
            dtype=first.anchor_sites.dtype,
        )
        for shard in self.shards:
            if shard.rows.size:
                self.user_ids[shard.rows] = shard.user_ids
                self.anchor_sites[shard.rows] = shard.anchor_sites

    @property
    def num_users(self) -> int:
        return int(self.user_ids.shape[0])

    @property
    def num_days(self) -> int:
        return int(self.shards[0].daily_dwell.shape[0])

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def daily_dwell(self) -> _DayStack:
        return _DayStack(self, "daily_dwell")

    @property
    def night_dwell(self) -> _DayStack:
        return _DayStack(self, "night_dwell")

    def dwell(self, day: int) -> np.ndarray:
        """Full-day dwell seconds, shape (num_users, num_anchors)."""
        return self._assemble("daily_dwell", day)

    def night(self, day: int) -> np.ndarray:
        """Nighttime dwell seconds, shape (num_users, num_anchors)."""
        return self._assemble("night_dwell", day)

    def _assemble(self, column: str, day: int) -> np.ndarray:
        first = self.shards[0]
        stack = getattr(first, column)
        out = np.empty(
            (self.num_users, self.anchor_sites.shape[1]),
            dtype=stack.dtype,
        )
        for shard in self.shards:
            if shard.rows.size:
                out[shard.rows] = getattr(shard, column)[day]
        return out


def materialize(feed: ShardedMobilityFeed) -> MobilityFeed:
    """Rebuild the plain in-memory feed, one assembled day at a time."""
    return MobilityFeed(
        user_ids=feed.user_ids,
        anchor_sites=feed.anchor_sites,
        daily_dwell=[feed.dwell(day) for day in range(feed.num_days)],
        night_dwell=[feed.night(day) for day in range(feed.num_days)],
        bin_dwell=feed.bin_dwell,
    )


def _save_npy(path: Path, array: np.ndarray) -> None:
    """``np.save`` to the exact path (no implicit ``.npy`` suffixing)."""
    with open(path, "wb") as handle:
        np.save(handle, array)


def _create_stack(path: Path, shape: tuple[int, ...]) -> np.ndarray:
    """A float32 output array backed by ``path`` when it has any bytes.

    Zero-size stacks (empty shards, zero-day calendars) cannot be
    memory-mapped, so they are held in RAM (they are free) and written
    by ``np.save`` at commit time.
    """
    if int(np.prod(shape)) == 0:
        return np.zeros(shape, dtype=np.float32)
    from numpy.lib.format import open_memmap

    return open_memmap(path, mode="w+", dtype=np.float32, shape=shape)


class ColumnarWriter:
    """Creates one run's feed partition, a day at a time, atomically.

    ``shard_indices`` follows the engine's convention: a list of
    population row-index arrays, or ``[None]`` for the serial
    whole-population shard.  Dwell stacks stream straight into
    ``*.npy.tmp`` memory maps as :meth:`write_day` is called;
    :meth:`commit` flushes, writes the small identity columns, and
    atomically renames everything into place.  Until commit, a crash
    leaves only ``*.tmp`` files — a reader never half-accepts them.

    With ``day_offset > 0`` the writer runs in *append* mode for a live
    run: it lands days ``[day_offset, day_offset + num_days)`` in a new
    per-shard segment file (:func:`segment_file_name`), never touching
    the already-digested base files, and :meth:`commit` renames only
    the new segment into place.  The caller's manifest rewrite remains
    the single commit point — a crash before it leaves the new files
    unreferenced and the run loadable at its previous day count.
    """

    def __init__(
        self,
        directory: str | Path,
        shard_indices: list[np.ndarray | None],
        user_ids: np.ndarray,
        anchor_sites: np.ndarray,
        num_days: int,
        *,
        day_offset: int = 0,
    ) -> None:
        self.run_directory = Path(directory)
        self.feeds_directory = self.run_directory / FEEDS_SUBDIR
        self.num_days = int(num_days)
        self.day_offset = int(day_offset)
        self._rows: list[np.ndarray] = [
            np.arange(user_ids.shape[0], dtype=np.int64)
            if indices is None
            else np.asarray(indices, dtype=np.int64)
            for indices in shard_indices
        ]
        self._user_ids = user_ids
        self._anchor_sites = anchor_sites
        self._daily: list[np.ndarray] = []
        self._night: list[np.ndarray] = []
        num_anchors = anchor_sites.shape[1]
        for index, rows in enumerate(self._rows):
            shard_dir = self.feeds_directory / shard_dir_name(index)
            shard_dir.mkdir(parents=True, exist_ok=True)
            shape = (self.num_days, rows.shape[0], num_anchors)
            self._daily.append(
                _create_stack(self._tmp(index, "daily_dwell"), shape)
            )
            self._night.append(
                _create_stack(self._tmp(index, "night_dwell"), shape)
            )

    @property
    def num_shards(self) -> int:
        return len(self._rows)

    def _final(self, index: int, column: str) -> Path:
        name = (
            segment_file_name(column, self.day_offset)
            if column in _DWELL_COLUMNS
            else f"{column}.npy"
        )
        return self.feeds_directory / shard_dir_name(index) / name

    def _tmp(self, index: int, column: str) -> Path:
        final = self._final(index, column)
        return final.with_name(final.name + ".tmp")

    def write_day(
        self, day: int, daily: np.ndarray, night: np.ndarray
    ) -> None:
        """Land one merged (absolute) day's rows in every shard."""
        offset = day - self.day_offset
        for rows, daily_out, night_out in zip(
            self._rows, self._daily, self._night
        ):
            if rows.size:
                daily_out[offset] = daily[rows]
                night_out[offset] = night[rows]

    def write_all(self, mobility) -> None:
        """Stream every day of an existing feed through the writer."""
        for day in range(self.num_days):
            self.write_day(
                self.day_offset + day, mobility.dwell(day), mobility.night(day)
            )

    def finish(
        self, bin_dwell: list[np.ndarray] | None = None
    ) -> ShardedMobilityFeed:
        """The feed view over the (still uncommitted) partition."""
        shards = [
            MobilityShard(
                index=index,
                rows=rows,
                user_ids=self._user_ids[rows],
                anchor_sites=self._anchor_sites[rows],
                daily_dwell=daily,
                night_dwell=night,
            )
            for index, (rows, daily, night) in enumerate(
                zip(self._rows, self._daily, self._night)
            )
        ]
        return ShardedMobilityFeed(
            shards, bin_dwell=bin_dwell, pending_writer=self
        )

    def commit(self) -> list[str]:
        """Flush, rename every new column file into place.

        Returns the manifest-relative paths of the committed files (the
        digest set).  Every rename is atomic; the caller's manifest
        write is the overall commit point.  A base-segment commit
        (``day_offset == 0``) also writes the identity columns and
        drops shard directories and dwell segments a previous layout
        left behind; an append commit touches nothing but its own new
        segment files.
        """
        appending = self.day_offset > 0
        columns = _DWELL_COLUMNS if appending else SHARD_COLUMNS
        with telemetry.span("columnar_commit") as sp:
            written = 0
            for index, rows in enumerate(self._rows):
                if not appending:
                    for column, array in (
                        ("rows", rows),
                        ("user_ids", self._user_ids[rows]),
                        ("anchor_sites", self._anchor_sites[rows]),
                    ):
                        _save_npy(self._tmp(index, column), array)
                for column, stack in (
                    ("daily_dwell", self._daily[index]),
                    ("night_dwell", self._night[index]),
                ):
                    tmp = self._tmp(index, column)
                    if isinstance(stack, np.memmap):
                        stack.flush()
                    else:
                        _save_npy(tmp, stack)
                for column in columns:
                    tmp = self._tmp(index, column)
                    os.replace(tmp, self._final(index, column))
                    written += self._final(index, column).stat().st_size
            if not appending:
                self._drop_stale_shards()
                self._drop_stale_segments()
            sp.add("bytes", written)
        if appending:
            return segment_relative_paths(self.num_shards, self.day_offset)
        return shard_relative_paths(self.num_shards)

    def _drop_stale_shards(self) -> None:
        """Remove shard directories a previous save left behind.

        A re-save with a different shard count must not leave orphan
        ``shard-*`` directories that the new manifest never mentions.
        """
        import shutil

        for entry in sorted(self.feeds_directory.glob("shard-*")):
            try:
                index = int(entry.name.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            if index >= self.num_shards and entry.is_dir():
                shutil.rmtree(entry, ignore_errors=True)

    def _drop_stale_segments(self) -> None:
        """Remove appended-segment files after a compacting full save.

        A full (base) commit writes the whole window into the canonical
        single-file stacks, so ``daily_dwell.00042.npy``-style segment
        files from a previous live phase — and any ``*.tmp`` leftovers
        — are superseded and must not outlive the manifest that stops
        referencing them.  The event partition (``events_*``) has its
        own writer and staleness rules (:func:`drop_stale_events`), so
        it is left alone here.
        """
        keep = {f"{column}.npy" for column in SHARD_COLUMNS}
        for index in range(self.num_shards):
            shard_dir = self.feeds_directory / shard_dir_name(index)
            for entry in shard_dir.glob("*.npy*"):
                if entry.name not in keep and not entry.name.startswith(
                    "events_"
                ):
                    entry.unlink(missing_ok=True)


def _load_column(path: Path, *, lazy: bool) -> np.ndarray:
    if not path.exists():
        raise RunStoreError(
            f"saved run is missing feed shard file {path}", path=path
        )
    try:
        if lazy:
            try:
                array = np.load(path, mmap_mode="r")
                telemetry.count("store.bytes_mapped", int(array.nbytes))
                return array
            except ValueError:
                # Zero-size stacks cannot be mapped; fall through to a
                # plain read (they cost nothing in memory).
                pass
        return np.load(path)
    except RunStoreError:
        raise
    except Exception as err:
        raise RunStoreError(
            f"corrupt feed shard file {path}: {err}", path=path
        ) from err


def open_shard(
    directory: str | Path,
    shard_index: int,
    *,
    lazy: bool,
    segments: list[tuple[int, int]] | None = None,
) -> MobilityShard:
    """Open exactly one shard of a committed feed partition.

    The unit a parallel analysis worker maps: given ``(run_dir,
    shard_id)`` it opens only that shard's files — no feed object
    crosses the process boundary.  Lazy opens also record each dwell
    column's backing files on :attr:`MobilityShard.sources` so
    :func:`window_days` can re-map day windows with bounded residency.
    """
    path = Path(directory)
    spans = [(0, None)] if not segments else [
        (int(start), int(days)) for start, days in segments
    ]
    shard_dir = path / FEEDS_SUBDIR / shard_dir_name(shard_index)
    columns = {
        column: _load_column(shard_dir / f"{column}.npy", lazy=False)
        for column in SHARD_COLUMNS
        if column not in _DWELL_COLUMNS
    }
    shard = MobilityShard(
        index=shard_index, daily_dwell=None, night_dwell=None, **columns
    )
    sources: dict[str, list[tuple[int, int, Path]]] = {}
    for column in _DWELL_COLUMNS:
        pieces: list[tuple[int, np.ndarray]] = []
        files: list[tuple[int, int, Path]] = []
        for start, days in spans:
            file = shard_dir / segment_file_name(column, start)
            stack = _load_column(file, lazy=lazy)
            if stack.ndim != 3 or stack.shape[1] != shard.num_rows:
                raise RunStoreError(
                    f"feed shard file {file} has shape {stack.shape}, "
                    f"inconsistent with its {shard.num_rows} rows",
                    path=file,
                )
            if days is not None and stack.shape[0] != days:
                raise RunStoreError(
                    f"feed shard file {file} holds {stack.shape[0]} "
                    f"days where the manifest records {days}",
                    path=file,
                )
            pieces.append((start, stack))
            files.append((start, int(stack.shape[0]), file))
        setattr(
            shard,
            column,
            pieces[0][1] if len(pieces) == 1 else SegmentedStack(pieces),
        )
        sources[column] = files
    if lazy:
        shard.sources = sources
    return shard


def open_columnar(
    directory: str | Path,
    num_shards: int,
    *,
    lazy: bool,
    segments: list[tuple[int, int]] | None = None,
) -> ShardedMobilityFeed:
    """Reopen a committed feed partition.

    ``lazy`` keeps the dwell stacks as read-only memory maps; otherwise
    they are read into RAM (the small identity columns always are).
    ``segments`` — ``[(start_day, num_days), ...]`` from a live run's
    manifest — opens each dwell stack as a :class:`SegmentedStack` over
    its append-commit files; ``None`` (or one segment) is the canonical
    single-file layout.  Raises
    :class:`~repro.io.errors.RunStoreError` naming the precise file for
    anything missing, truncated or malformed.
    """
    return ShardedMobilityFeed(
        [
            open_shard(directory, index, lazy=lazy, segments=segments)
            for index in range(num_shards)
        ]
    )


def _map_segment(path: Path) -> np.ndarray:
    """A short-lived read-only map of one segment file."""
    try:
        return np.load(path, mmap_mode="r")
    except ValueError:
        # Zero-size stacks cannot be mapped; a plain read is free.
        return np.load(path)
    except Exception as err:  # pragma: no cover - disk corruption
        raise RunStoreError(
            f"corrupt feed shard file {path}: {err}", path=path
        ) from err


def window_days(
    shard: MobilityShard, column: str, start: int, stop: int
) -> list[np.ndarray]:
    """Day matrices for ``[start, stop)`` of one shard column, windowed.

    When the shard records its backing files (lazy opens), the window
    is served from *fresh* memory maps: the returned day views are the
    only thing keeping those maps alive, so dropping the list releases
    every consumed page.  A streaming reduction that walks windows this
    way keeps its resident set bounded by one window rather than by
    every page it ever touched — the peak-RSS-below-payload property
    the scale bench gates.  Falls back to slicing the shard's persistent
    stacks (eager arrays, pending writers) with identical values.
    """
    sources = (shard.sources or {}).get(column)
    if not sources:
        stack = getattr(shard, column)
        return [stack[day] for day in range(start, stop)]
    out: list[np.ndarray | None] = [None] * (stop - start)
    for seg_start, seg_days, path in sources:
        lo, hi = max(start, seg_start), min(stop, seg_start + seg_days)
        if lo >= hi:
            continue
        stack = _map_segment(path)
        for day in range(lo, hi):
            out[day - start] = stack[day - seg_start]
    missing = [start + i for i, block in enumerate(out) if block is None]
    if missing:
        raise RunStoreError(
            f"shard {shard.index} column {column} has no segment covering "
            f"day {missing[0]}"
        )
    telemetry.count("store.windows_mapped", 1)
    return out


# ---------------------------------------------------------------------------
# Signalling-event partition
# ---------------------------------------------------------------------------


class _AppendColumn:
    """A ``.npy`` file grown by appends, finalized by a header patch.

    The engine produces signalling events one day at a time; buffering
    a whole run's worth before ``np.save`` would defeat the out-of-core
    store.  Instead the file starts with a fixed-width (space-padded)
    version-1 header declaring zero rows, each day's rows are appended
    raw, and :meth:`close` seeks back and rewrites the header with the
    final shape — same padded length, so the data never moves.  The
    bytes are a function of the appended arrays alone: streaming from
    the engine and rewriting from an in-memory dict produce identical
    files.
    """

    _HEADER_BYTES = 128

    def __init__(self, path: Path, dtype: np.dtype) -> None:
        self.path = path
        self.dtype = np.dtype(dtype)
        self.rows = 0
        self._handle = open(path, "wb")
        self._handle.write(self._header(0))

    def _header(self, rows: int) -> bytes:
        import struct

        magic = b"\x93NUMPY\x01\x00"
        body = (
            "{'descr': '%s', 'fortran_order': False, 'shape': (%d,), }"
            % (np.lib.format.dtype_to_descr(self.dtype), rows)
        ).encode("latin1")
        pad = self._HEADER_BYTES - len(magic) - 2 - 1 - len(body)
        if pad < 0:  # pragma: no cover - fixed dtypes keep headers short
            raise RunStoreError(
                f"npy header for {self.path} exceeds {self._HEADER_BYTES} "
                "bytes"
            )
        header = body + b" " * pad + b"\n"
        return magic + struct.pack("<H", len(header)) + header

    def append(self, array: np.ndarray) -> None:
        array = np.ascontiguousarray(array, dtype=self.dtype)
        self._handle.write(array.tobytes())
        self.rows += int(array.shape[0])

    def close(self) -> int:
        """Patch the final row count into the header; bytes written."""
        self._handle.seek(0)
        self._handle.write(self._header(self.rows))
        self._handle.close()
        return self.path.stat().st_size


class EventsWriter:
    """Creates one run's per-shard signalling-event partition.

    Events partition by the same deterministic user hash as the
    mobility shards (:func:`repro.simulation.sharding.stable_shard_of`),
    so a user's events live next to their dwell rows and per-shard
    analyses never cross shard boundaries.  Within a shard the layout
    is day-major append order plus a ``(num_days + 1,)`` prefix-sum
    offsets column — one slice per (shard, day) window::

        shard-NNNN/
          events_offsets.npy     # int64 prefix sums, day -> [lo, hi)
          events_user_id.npy     # 1-D, day-major
          events_site_id.npy
          events_timestamp_s.npy # float64
          events_event.npy
          events_result.npy

    Like :class:`ColumnarWriter`, everything lands under ``*.tmp``
    names and :meth:`commit` renames atomically; the caller's manifest
    write is the overall commit point.
    """

    def __init__(
        self, directory: str | Path, num_shards: int, num_days: int
    ) -> None:
        self.run_directory = Path(directory)
        self.feeds_directory = self.run_directory / FEEDS_SUBDIR
        self.num_shards = int(num_shards)
        self.num_days = int(num_days)
        self.committed = False
        self._next_day = 0
        self._counts = np.zeros(
            (self.num_shards, self.num_days), dtype=np.int64
        )
        self._columns: list[dict[str, _AppendColumn]] = []
        for index in range(self.num_shards):
            shard_dir = self.feeds_directory / shard_dir_name(index)
            shard_dir.mkdir(parents=True, exist_ok=True)
            self._columns.append(
                {
                    column: _AppendColumn(
                        shard_dir / (event_file_name(column) + ".tmp"),
                        dtype,
                    )
                    for column, dtype in EVENT_COLUMNS
                }
            )

    def write_day(self, day: int, frame) -> None:
        """Append one day's event frame, partitioned across the shards.

        Days must arrive in order — the layout is day-major and the
        offsets column is a prefix sum.
        """
        if day != self._next_day:
            raise RunStoreError(
                f"signalling events must be written in day order: got day "
                f"{day}, expected {self._next_day}"
            )
        user_ids = frame["user_id"]
        if self.num_shards == 1:
            assignments = None
        else:
            from repro.simulation.sharding import stable_shard_of

            assignments = stable_shard_of(user_ids, self.num_shards)
        for index in range(self.num_shards):
            if assignments is None:
                rows = None
                count = int(user_ids.shape[0])
            else:
                rows = np.flatnonzero(assignments == index)
                count = int(rows.shape[0])
            for column, writer in self._columns[index].items():
                values = frame[column]
                writer.append(values if rows is None else values[rows])
            self._counts[index, day] = count
        self._next_day += 1

    def write_all(self, signaling) -> None:
        """Stream every day of an existing mapping through the writer."""
        for day in range(self.num_days):
            self.write_day(day, signaling[day])

    def finish(self) -> "ShardedEventFeed":
        """The feed view over the (still uncommitted) partition."""
        return ShardedEventFeed(
            self.run_directory,
            self.num_shards,
            self.num_days,
            pending_writer=self,
        )

    def commit(self) -> list[str]:
        """Flush, patch headers, rename every event file into place."""
        if self._next_day != self.num_days:
            raise RunStoreError(
                f"event partition covers {self._next_day} of "
                f"{self.num_days} days; cannot commit"
            )
        with telemetry.span("events_commit") as sp:
            written = 0
            for index in range(self.num_shards):
                shard_dir = self.feeds_directory / shard_dir_name(index)
                offsets = np.concatenate(
                    [
                        np.zeros(1, dtype=np.int64),
                        np.cumsum(self._counts[index]),
                    ]
                )
                tmp = shard_dir / (_EVENT_OFFSETS + ".tmp")
                _save_npy(tmp, offsets)
                os.replace(tmp, shard_dir / _EVENT_OFFSETS)
                for writer in self._columns[index].values():
                    written += writer.close()
                    os.replace(
                        writer.path, writer.path.with_suffix("")
                    )
            sp.add("bytes", written)
        self.committed = True
        return event_relative_paths(self.num_shards)


def drop_stale_events(directory: str | Path) -> None:
    """Remove every event-partition file under a run's shard dirs.

    Called when a save stops referencing events (the feed bundle has
    no signalling frames) so a previous event-bearing save cannot leave
    orphans behind, and to clear ``*.tmp`` leftovers of a crashed
    events commit.
    """
    feeds_dir = Path(directory) / FEEDS_SUBDIR
    if not feeds_dir.is_dir():
        return
    for shard_dir in feeds_dir.glob("shard-*"):
        for entry in shard_dir.glob("events_*"):
            entry.unlink(missing_ok=True)


class ShardedEventFeed:
    """Day-keyed view over a per-shard signalling-event partition.

    Drop-in for the engine's eager ``dict[int, Frame]`` — mapping-style
    ``feeds.signaling[day]`` / ``len`` / iteration all work — but each
    day is assembled from per-shard windows mapped *fresh* on every
    call, so consuming a day and dropping the frame releases its pages.
    Streaming consumers iterate :meth:`chunks` for the per-shard
    user-partitioned pieces (ready for
    :func:`repro.core.sessionize.sessionize_events_stream`).
    """

    def __init__(
        self,
        directory: str | Path,
        num_shards: int,
        num_days: int,
        *,
        lazy: bool = True,
        pending_writer: EventsWriter | None = None,
    ) -> None:
        self.run_directory = Path(directory)
        self.feeds_directory = self.run_directory / FEEDS_SUBDIR
        self.num_shards = int(num_shards)
        self.num_days = int(num_days)
        self.lazy = bool(lazy)
        self.pending_writer = pending_writer
        self._offsets: dict[int, np.ndarray] = {}

    # -- mapping protocol (dict[int, Frame] compatibility) --------------

    def __len__(self) -> int:
        return self.num_days

    def __iter__(self):
        return iter(range(self.num_days))

    def __contains__(self, day) -> bool:
        return isinstance(day, int) and 0 <= day < self.num_days

    def __getitem__(self, day: int):
        return self.day(day)

    def keys(self):
        return range(self.num_days)

    def values(self):
        return (self.day(day) for day in range(self.num_days))

    def items(self):
        return ((day, self.day(day)) for day in range(self.num_days))

    # -- access ---------------------------------------------------------

    def _check_committed(self) -> None:
        if self.pending_writer is not None and not self.pending_writer.committed:
            raise RunStoreError(
                "signalling events were streamed to disk but not yet "
                "committed; save the run before reading them back"
            )

    def _shard_offsets(self, index: int) -> np.ndarray:
        offsets = self._offsets.get(index)
        if offsets is None:
            path = (
                self.feeds_directory / shard_dir_name(index) / _EVENT_OFFSETS
            )
            offsets = _load_column(path, lazy=False)
            if offsets.shape != (self.num_days + 1,):
                raise RunStoreError(
                    f"event offsets file {path} has shape {offsets.shape}; "
                    f"expected ({self.num_days + 1},)",
                    path=path,
                )
            self._offsets[index] = offsets
        return offsets

    @property
    def num_events(self) -> int:
        self._check_committed()
        return sum(
            int(self._shard_offsets(index)[-1])
            for index in range(self.num_shards)
        )

    def shard_day(self, shard_index: int, day: int):
        """One shard's slice of one day, as a Frame of window views.

        The returned frame's columns are views into maps opened by this
        call — dropping the frame releases them (windowed consumption).
        """
        from repro.frames import Frame

        self._check_committed()
        if not 0 <= day < self.num_days:
            raise IndexError(f"day {day} out of range")
        offsets = self._shard_offsets(shard_index)
        lo, hi = int(offsets[day]), int(offsets[day + 1])
        shard_dir = self.feeds_directory / shard_dir_name(shard_index)
        columns = {}
        for column, dtype in EVENT_COLUMNS:
            path = shard_dir / event_file_name(column)
            if self.lazy and hi > lo:
                values = _map_segment(path)[lo:hi]
            else:
                values = _load_column(path, lazy=False)[lo:hi]
            if values.dtype != dtype:
                raise RunStoreError(
                    f"event file {path} has dtype {values.dtype}; "
                    f"expected {dtype}",
                    path=path,
                )
            columns[column] = values
        telemetry.count("store.event_windows_mapped", 1)
        return Frame(columns)

    def chunks(self, day: int):
        """Per-shard user-partitioned frames of one day, in shard order."""
        return (
            self.shard_day(index, day) for index in range(self.num_shards)
        )

    def day(self, day: int):
        """One full day's frame, bitwise equal to the engine's output.

        The generator emits day frames sorted by ``(user_id,
        timestamp_s)`` and the partition keeps each user's rows in one
        shard in original order, so concatenating the shard slices and
        stable-sorting on ``user_id`` alone reproduces the original
        row order exactly.
        """
        from repro.frames import concat

        pieces = [self.shard_day(index, day) for index in range(self.num_shards)]
        if len(pieces) == 1:
            return pieces[0]
        return concat(pieces).sort_by(["user_id"])

    def materialize(self) -> dict[int, "object"]:
        """Rebuild the eager per-day dict, one assembled day at a time."""
        return {day: self.day(day) for day in range(self.num_days)}


def open_events(
    directory: str | Path,
    num_shards: int,
    num_days: int,
    *,
    lazy: bool,
) -> ShardedEventFeed:
    """Reopen a committed event partition as a day-keyed feed view."""
    feed = ShardedEventFeed(directory, num_shards, num_days, lazy=lazy)
    for index in range(num_shards):
        feed._shard_offsets(index)  # validates presence and shape
    return feed
