"""Shard-partitioned columnar on-disk layout for the mobility feeds.

The paper's substrate is 22M subscribers; holding every per-user
per-day dwell matrix in RAM caps a reproduction at laptop-memory
populations.  This module stores the mobility feed *out of core*
instead: one memory-mappable ``.npy`` file per shard × column under
``<run>/feeds/``, partitioned by the same deterministic user sharding
the parallel engine executes with (:mod:`repro.simulation.sharding`)::

    <run>/feeds/
      shard-0000/
        rows.npy          # population row indices of the shard's users
        user_ids.npy
        anchor_sites.npy  # (n, NUM_ANCHORS)
        daily_dwell.npy   # (num_days, n, NUM_ANCHORS) float32
        night_dwell.npy   # same shape, post-dropout
      shard-0001/
        ...

Three cooperating pieces:

- :class:`ColumnarWriter` — creates the partition and accepts one
  merged day at a time (``write_day``), so the engine can land shard
  outputs directly on disk instead of accumulating 98 days of matrices
  in RAM.  All files are written under temporary names;
  :meth:`ColumnarWriter.commit` flushes and atomically renames them
  (the tmp+rename pattern of :mod:`repro.analysis.cache`), returning
  the relative paths for the manifest's per-shard digests.
- :class:`ShardedMobilityFeed` — a
  :class:`~repro.simulation.feeds.MobilityFeed`-compatible view over
  the partition.  ``dwell(day)`` / ``night(day)`` assemble one day at
  a time from the shard maps, so every existing day-at-a-time consumer
  (home detection, relocation, the mobility graph) runs with bounded
  peak memory unchanged; streaming reductions iterate ``shards``
  directly.
- :func:`open_columnar` — reopens a partition, either *lazy*
  (``np.load(mmap_mode="r")``: shards are mapped, pages fault in on
  demand) or eager (:func:`materialize` rebuilds the plain in-memory
  :class:`~repro.simulation.feeds.MobilityFeed`).

``REPRO_STORE_NAIVE=1`` (read at call time, like the other naive
switches) forces the eager in-memory path everywhere — it is the
differential oracle the streaming results are asserted bitwise against.

Telemetry: ``store.bytes_mapped`` counts bytes opened for on-demand
mapping, ``store.shards_streamed`` counts shard partitions fed through
a streaming reduction, and ``store.digest_verifications`` (bumped by
:mod:`repro.io.store`) counts files checked against manifest digests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.io.errors import RunStoreError
from repro.simulation.feeds import MobilityFeed

__all__ = [
    "FEEDS_SUBDIR",
    "SHARD_COLUMNS",
    "ColumnarWriter",
    "MobilityShard",
    "SegmentedStack",
    "ShardedMobilityFeed",
    "materialize",
    "open_columnar",
    "segment_file_name",
    "segment_relative_paths",
    "shard_dir_name",
    "shard_relative_paths",
    "use_naive",
]

FEEDS_SUBDIR = "feeds"

#: The five columns of one shard directory.  ``rows``/``user_ids``/
#: ``anchor_sites`` are small and always materialized; the two dwell
#: stacks are the out-of-core payload.
SHARD_COLUMNS = (
    "rows",
    "user_ids",
    "anchor_sites",
    "daily_dwell",
    "night_dwell",
)

_DWELL_COLUMNS = ("daily_dwell", "night_dwell")


def use_naive() -> bool:
    """Whether ``REPRO_STORE_NAIVE=1`` forces the in-memory oracle path.

    Read at call time so tests (and users) can flip the environment
    variable between calls without reimporting.
    """
    return os.environ.get("REPRO_STORE_NAIVE") == "1"


def shard_dir_name(index: int) -> str:
    return f"shard-{index:04d}"


def segment_file_name(column: str, start_day: int) -> str:
    """File name of one dwell-stack segment.

    The base segment (``start_day == 0``) keeps the canonical
    single-file name so a never-appended run is byte-identical to the
    pre-live layout; appended segments carry their absolute start day.
    """
    if start_day == 0:
        return f"{column}.npy"
    return f"{column}.{start_day:05d}.npy"


def shard_relative_paths(num_shards: int) -> list[str]:
    """Manifest-relative paths of every shard column file, in order."""
    return [
        f"{FEEDS_SUBDIR}/{shard_dir_name(index)}/{column}.npy"
        for index in range(num_shards)
        for column in SHARD_COLUMNS
    ]


def segment_relative_paths(num_shards: int, start_day: int) -> list[str]:
    """Manifest-relative paths of one appended segment's dwell files."""
    return [
        f"{FEEDS_SUBDIR}/{shard_dir_name(index)}/"
        f"{segment_file_name(column, start_day)}"
        for index in range(num_shards)
        for column in _DWELL_COLUMNS
    ]


class SegmentedStack:
    """Day-indexed view over the dwell segments of one live shard.

    A run grown through ``Run.advance`` stores its dwell stack as a
    base file plus one file per append commit.  This view routes a day
    index to the segment holding it, so every ``stack[day]`` consumer
    (``ShardedMobilityFeed._assemble``, the streaming metrics) works
    unchanged on live runs.
    """

    def __init__(self, segments: list[tuple[int, np.ndarray]]) -> None:
        if not segments:
            raise ValueError("a segmented stack needs at least one segment")
        self._segments = sorted(segments, key=lambda pair: pair[0])
        self._starts = [start for start, _ in self._segments]
        expected = 0
        for start, stack in self._segments:
            if start != expected:
                raise ValueError(
                    f"dwell segments are not contiguous: segment at day "
                    f"{start} follows {expected} covered days"
                )
            expected = start + stack.shape[0]
        total = expected
        first = self._segments[0][1]
        self.shape = (total, *first.shape[1:])
        self.ndim = first.ndim
        self.dtype = first.dtype

    def __len__(self) -> int:
        return self.shape[0]

    def __getitem__(self, day):
        if isinstance(day, slice):
            return [self[index] for index in range(*day.indices(len(self)))]
        day = int(day)
        if day < 0:
            day += len(self)
        if not 0 <= day < len(self):
            raise IndexError(f"day {day} out of range")
        import bisect

        position = bisect.bisect_right(self._starts, day) - 1
        start, stack = self._segments[position]
        return stack[day - start]

    def __iter__(self):
        return (self[day] for day in range(len(self)))


@dataclass
class MobilityShard:
    """One shard of the columnar partition.

    ``rows`` are the shard's indices into population row order
    (ascending); the dwell stacks are ``(num_days, n, NUM_ANCHORS)``
    and may be memory maps (lazy open) or plain arrays.
    """

    index: int
    rows: np.ndarray
    user_ids: np.ndarray
    anchor_sites: np.ndarray
    daily_dwell: np.ndarray
    night_dwell: np.ndarray

    @property
    def num_rows(self) -> int:
        return int(self.rows.shape[0])


class _DayStack:
    """Sequence view presenting per-shard stacks as a list of day matrices.

    Keeps :class:`ShardedMobilityFeed` drop-in compatible with code
    written against ``MobilityFeed.daily_dwell[day]`` — each access
    assembles exactly one day, so iteration stays bounded-memory.
    """

    def __init__(self, feed: "ShardedMobilityFeed", column: str) -> None:
        self._feed = feed
        self._column = column

    def __len__(self) -> int:
        return self._feed.num_days

    def __getitem__(self, day):
        if isinstance(day, slice):
            return [self[index] for index in range(*day.indices(len(self)))]
        day = int(day)
        if day < 0:
            day += len(self)
        if not 0 <= day < len(self):
            raise IndexError(f"day {day} out of range")
        return self._feed._assemble(self._column, day)

    def __iter__(self):
        return (self[day] for day in range(len(self)))


class ShardedMobilityFeed:
    """A mobility feed assembled on demand from its columnar shards.

    Drop-in for :class:`~repro.simulation.feeds.MobilityFeed`:
    ``user_ids`` / ``anchor_sites`` are assembled once (they are small),
    ``dwell(day)`` / ``night(day)`` / ``daily_dwell[day]`` materialize
    one full-population day matrix per call, and streaming consumers
    read :attr:`shards` directly for bounded per-shard access.
    """

    def __init__(
        self,
        shards: list[MobilityShard],
        *,
        bin_dwell: list[np.ndarray] | None = None,
        pending_writer: "ColumnarWriter | None" = None,
    ) -> None:
        if not shards:
            raise ValueError("a sharded feed needs at least one shard")
        self.shards = list(shards)
        self.bin_dwell = bin_dwell
        #: Set while the backing files are still uncommitted (engine
        #: streaming mode); :func:`repro.io.store.save_feeds` commits
        #: the writer instead of rewriting the arrays.
        self.pending_writer = pending_writer
        total = sum(shard.num_rows for shard in self.shards)
        first = self.shards[0]
        self.user_ids = np.empty(total, dtype=first.user_ids.dtype)
        self.anchor_sites = np.empty(
            (total, first.anchor_sites.shape[1]),
            dtype=first.anchor_sites.dtype,
        )
        for shard in self.shards:
            if shard.rows.size:
                self.user_ids[shard.rows] = shard.user_ids
                self.anchor_sites[shard.rows] = shard.anchor_sites

    @property
    def num_users(self) -> int:
        return int(self.user_ids.shape[0])

    @property
    def num_days(self) -> int:
        return int(self.shards[0].daily_dwell.shape[0])

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def daily_dwell(self) -> _DayStack:
        return _DayStack(self, "daily_dwell")

    @property
    def night_dwell(self) -> _DayStack:
        return _DayStack(self, "night_dwell")

    def dwell(self, day: int) -> np.ndarray:
        """Full-day dwell seconds, shape (num_users, num_anchors)."""
        return self._assemble("daily_dwell", day)

    def night(self, day: int) -> np.ndarray:
        """Nighttime dwell seconds, shape (num_users, num_anchors)."""
        return self._assemble("night_dwell", day)

    def _assemble(self, column: str, day: int) -> np.ndarray:
        first = self.shards[0]
        stack = getattr(first, column)
        out = np.empty(
            (self.num_users, self.anchor_sites.shape[1]),
            dtype=stack.dtype,
        )
        for shard in self.shards:
            if shard.rows.size:
                out[shard.rows] = getattr(shard, column)[day]
        return out


def materialize(feed: ShardedMobilityFeed) -> MobilityFeed:
    """Rebuild the plain in-memory feed, one assembled day at a time."""
    return MobilityFeed(
        user_ids=feed.user_ids,
        anchor_sites=feed.anchor_sites,
        daily_dwell=[feed.dwell(day) for day in range(feed.num_days)],
        night_dwell=[feed.night(day) for day in range(feed.num_days)],
        bin_dwell=feed.bin_dwell,
    )


def _save_npy(path: Path, array: np.ndarray) -> None:
    """``np.save`` to the exact path (no implicit ``.npy`` suffixing)."""
    with open(path, "wb") as handle:
        np.save(handle, array)


def _create_stack(path: Path, shape: tuple[int, ...]) -> np.ndarray:
    """A float32 output array backed by ``path`` when it has any bytes.

    Zero-size stacks (empty shards, zero-day calendars) cannot be
    memory-mapped, so they are held in RAM (they are free) and written
    by ``np.save`` at commit time.
    """
    if int(np.prod(shape)) == 0:
        return np.zeros(shape, dtype=np.float32)
    from numpy.lib.format import open_memmap

    return open_memmap(path, mode="w+", dtype=np.float32, shape=shape)


class ColumnarWriter:
    """Creates one run's feed partition, a day at a time, atomically.

    ``shard_indices`` follows the engine's convention: a list of
    population row-index arrays, or ``[None]`` for the serial
    whole-population shard.  Dwell stacks stream straight into
    ``*.npy.tmp`` memory maps as :meth:`write_day` is called;
    :meth:`commit` flushes, writes the small identity columns, and
    atomically renames everything into place.  Until commit, a crash
    leaves only ``*.tmp`` files — a reader never half-accepts them.

    With ``day_offset > 0`` the writer runs in *append* mode for a live
    run: it lands days ``[day_offset, day_offset + num_days)`` in a new
    per-shard segment file (:func:`segment_file_name`), never touching
    the already-digested base files, and :meth:`commit` renames only
    the new segment into place.  The caller's manifest rewrite remains
    the single commit point — a crash before it leaves the new files
    unreferenced and the run loadable at its previous day count.
    """

    def __init__(
        self,
        directory: str | Path,
        shard_indices: list[np.ndarray | None],
        user_ids: np.ndarray,
        anchor_sites: np.ndarray,
        num_days: int,
        *,
        day_offset: int = 0,
    ) -> None:
        self.run_directory = Path(directory)
        self.feeds_directory = self.run_directory / FEEDS_SUBDIR
        self.num_days = int(num_days)
        self.day_offset = int(day_offset)
        self._rows: list[np.ndarray] = [
            np.arange(user_ids.shape[0], dtype=np.int64)
            if indices is None
            else np.asarray(indices, dtype=np.int64)
            for indices in shard_indices
        ]
        self._user_ids = user_ids
        self._anchor_sites = anchor_sites
        self._daily: list[np.ndarray] = []
        self._night: list[np.ndarray] = []
        num_anchors = anchor_sites.shape[1]
        for index, rows in enumerate(self._rows):
            shard_dir = self.feeds_directory / shard_dir_name(index)
            shard_dir.mkdir(parents=True, exist_ok=True)
            shape = (self.num_days, rows.shape[0], num_anchors)
            self._daily.append(
                _create_stack(self._tmp(index, "daily_dwell"), shape)
            )
            self._night.append(
                _create_stack(self._tmp(index, "night_dwell"), shape)
            )

    @property
    def num_shards(self) -> int:
        return len(self._rows)

    def _final(self, index: int, column: str) -> Path:
        name = (
            segment_file_name(column, self.day_offset)
            if column in _DWELL_COLUMNS
            else f"{column}.npy"
        )
        return self.feeds_directory / shard_dir_name(index) / name

    def _tmp(self, index: int, column: str) -> Path:
        final = self._final(index, column)
        return final.with_name(final.name + ".tmp")

    def write_day(
        self, day: int, daily: np.ndarray, night: np.ndarray
    ) -> None:
        """Land one merged (absolute) day's rows in every shard."""
        offset = day - self.day_offset
        for rows, daily_out, night_out in zip(
            self._rows, self._daily, self._night
        ):
            if rows.size:
                daily_out[offset] = daily[rows]
                night_out[offset] = night[rows]

    def write_all(self, mobility) -> None:
        """Stream every day of an existing feed through the writer."""
        for day in range(self.num_days):
            self.write_day(
                self.day_offset + day, mobility.dwell(day), mobility.night(day)
            )

    def finish(
        self, bin_dwell: list[np.ndarray] | None = None
    ) -> ShardedMobilityFeed:
        """The feed view over the (still uncommitted) partition."""
        shards = [
            MobilityShard(
                index=index,
                rows=rows,
                user_ids=self._user_ids[rows],
                anchor_sites=self._anchor_sites[rows],
                daily_dwell=daily,
                night_dwell=night,
            )
            for index, (rows, daily, night) in enumerate(
                zip(self._rows, self._daily, self._night)
            )
        ]
        return ShardedMobilityFeed(
            shards, bin_dwell=bin_dwell, pending_writer=self
        )

    def commit(self) -> list[str]:
        """Flush, rename every new column file into place.

        Returns the manifest-relative paths of the committed files (the
        digest set).  Every rename is atomic; the caller's manifest
        write is the overall commit point.  A base-segment commit
        (``day_offset == 0``) also writes the identity columns and
        drops shard directories and dwell segments a previous layout
        left behind; an append commit touches nothing but its own new
        segment files.
        """
        appending = self.day_offset > 0
        columns = _DWELL_COLUMNS if appending else SHARD_COLUMNS
        with telemetry.span("columnar_commit") as sp:
            written = 0
            for index, rows in enumerate(self._rows):
                if not appending:
                    for column, array in (
                        ("rows", rows),
                        ("user_ids", self._user_ids[rows]),
                        ("anchor_sites", self._anchor_sites[rows]),
                    ):
                        _save_npy(self._tmp(index, column), array)
                for column, stack in (
                    ("daily_dwell", self._daily[index]),
                    ("night_dwell", self._night[index]),
                ):
                    tmp = self._tmp(index, column)
                    if isinstance(stack, np.memmap):
                        stack.flush()
                    else:
                        _save_npy(tmp, stack)
                for column in columns:
                    tmp = self._tmp(index, column)
                    os.replace(tmp, self._final(index, column))
                    written += self._final(index, column).stat().st_size
            if not appending:
                self._drop_stale_shards()
                self._drop_stale_segments()
            sp.add("bytes", written)
        if appending:
            return segment_relative_paths(self.num_shards, self.day_offset)
        return shard_relative_paths(self.num_shards)

    def _drop_stale_shards(self) -> None:
        """Remove shard directories a previous save left behind.

        A re-save with a different shard count must not leave orphan
        ``shard-*`` directories that the new manifest never mentions.
        """
        import shutil

        for entry in sorted(self.feeds_directory.glob("shard-*")):
            try:
                index = int(entry.name.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            if index >= self.num_shards and entry.is_dir():
                shutil.rmtree(entry, ignore_errors=True)

    def _drop_stale_segments(self) -> None:
        """Remove appended-segment files after a compacting full save.

        A full (base) commit writes the whole window into the canonical
        single-file stacks, so ``daily_dwell.00042.npy``-style segment
        files from a previous live phase — and any ``*.tmp`` leftovers
        — are superseded and must not outlive the manifest that stops
        referencing them.
        """
        keep = {f"{column}.npy" for column in SHARD_COLUMNS}
        for index in range(self.num_shards):
            shard_dir = self.feeds_directory / shard_dir_name(index)
            for entry in shard_dir.glob("*.npy*"):
                if entry.name not in keep:
                    entry.unlink(missing_ok=True)


def _load_column(path: Path, *, lazy: bool) -> np.ndarray:
    if not path.exists():
        raise RunStoreError(
            f"saved run is missing feed shard file {path}", path=path
        )
    try:
        if lazy:
            try:
                array = np.load(path, mmap_mode="r")
                telemetry.count("store.bytes_mapped", int(array.nbytes))
                return array
            except ValueError:
                # Zero-size stacks cannot be mapped; fall through to a
                # plain read (they cost nothing in memory).
                pass
        return np.load(path)
    except RunStoreError:
        raise
    except Exception as err:
        raise RunStoreError(
            f"corrupt feed shard file {path}: {err}", path=path
        ) from err


def open_columnar(
    directory: str | Path,
    num_shards: int,
    *,
    lazy: bool,
    segments: list[tuple[int, int]] | None = None,
) -> ShardedMobilityFeed:
    """Reopen a committed feed partition.

    ``lazy`` keeps the dwell stacks as read-only memory maps; otherwise
    they are read into RAM (the small identity columns always are).
    ``segments`` — ``[(start_day, num_days), ...]`` from a live run's
    manifest — opens each dwell stack as a :class:`SegmentedStack` over
    its append-commit files; ``None`` (or one segment) is the canonical
    single-file layout.  Raises
    :class:`~repro.io.errors.RunStoreError` naming the precise file for
    anything missing, truncated or malformed.
    """
    path = Path(directory)
    spans = [(0, None)] if not segments else [
        (int(start), int(days)) for start, days in segments
    ]
    shards = []
    for index in range(num_shards):
        shard_dir = path / FEEDS_SUBDIR / shard_dir_name(index)
        columns = {
            column: _load_column(shard_dir / f"{column}.npy", lazy=False)
            for column in SHARD_COLUMNS
            if column not in _DWELL_COLUMNS
        }
        shard = MobilityShard(
            index=index, daily_dwell=None, night_dwell=None, **columns
        )
        for column in _DWELL_COLUMNS:
            pieces: list[tuple[int, np.ndarray]] = []
            for start, days in spans:
                file = shard_dir / segment_file_name(column, start)
                stack = _load_column(file, lazy=lazy)
                if stack.ndim != 3 or stack.shape[1] != shard.num_rows:
                    raise RunStoreError(
                        f"feed shard file {file} has shape {stack.shape}, "
                        f"inconsistent with its {shard.num_rows} rows",
                        path=file,
                    )
                if days is not None and stack.shape[0] != days:
                    raise RunStoreError(
                        f"feed shard file {file} holds {stack.shape[0]} "
                        f"days where the manifest records {days}",
                        path=file,
                    )
                pieces.append((start, stack))
            setattr(
                shard,
                column,
                pieces[0][1] if len(pieces) == 1 else SegmentedStack(pieces),
            )
        shards.append(shard)
    return ShardedMobilityFeed(shards)
