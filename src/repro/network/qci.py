"""QoS Class Identifiers (QCI) for LTE bearers.

The paper's metric definitions hang off QCI values (§2.4):

- "all data traffic" aggregates every bearer with **QCI 1 through 8**
  (this *includes* conversational voice),
- "voice traffic" isolates bearers with **QCI = 1** (VoLTE
  conversational voice).

The catalog below follows 3GPP TS 23.203 Table 6.1.7; only the fields
the simulation uses are retained.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QciClass", "qci_catalog", "VOICE_QCI", "ALL_BEARER_QCIS", "is_voice"]

VOICE_QCI = 1
ALL_BEARER_QCIS = tuple(range(1, 9))


@dataclass(frozen=True)
class QciClass:
    """One QCI row of the 3GPP bearer QoS table."""

    qci: int
    guaranteed_bitrate: bool
    priority: int
    packet_delay_budget_ms: int
    packet_error_loss_rate: float
    service: str

    @property
    def is_voice(self) -> bool:
        return self.qci == VOICE_QCI


_CATALOG = (
    QciClass(1, True, 2, 100, 1e-2, "Conversational voice (VoLTE)"),
    QciClass(2, True, 4, 150, 1e-3, "Conversational video"),
    QciClass(3, True, 3, 50, 1e-3, "Real-time gaming"),
    QciClass(4, True, 5, 300, 1e-6, "Non-conversational video (buffered)"),
    QciClass(5, False, 1, 100, 1e-6, "IMS signalling"),
    QciClass(6, False, 6, 300, 1e-6, "Buffered video, TCP apps (premium)"),
    QciClass(7, False, 7, 100, 1e-3, "Voice, live video, interactive gaming"),
    QciClass(8, False, 8, 300, 1e-6, "Buffered video, TCP apps (standard)"),
    QciClass(9, False, 9, 300, 1e-6, "Buffered video, TCP apps (default)"),
)


def qci_catalog() -> tuple[QciClass, ...]:
    """The full QCI table (QCI 1–9)."""
    return _CATALOG


def qci_class(qci: int) -> QciClass:
    """Look up one QCI row."""
    for entry in _CATALOG:
        if entry.qci == qci:
            return entry
    raise KeyError(f"unknown QCI {qci}")


def is_voice(qci: int) -> bool:
    """True for the conversational-voice bearer the paper isolates."""
    return qci == VOICE_QCI
