"""Per-cell KPI records: the Radio Network Performance feed.

The paper's commercial KPI solution exports hourly per-cell metrics;
the analysis then "aggregate[s] them per day and extract[s] the (hourly)
median value per cell" (§2.4). :class:`KpiAccumulator` implements that
exact reduction: the simulation pushes hourly vectors, and the
accumulator emits one row per (cell, day) holding the median over the
day's hours for every metric — the shape all of Figs 8–12 consume.

Metrics (hourly, per 4G cell), following §2.4:

==============================  ==================================================
column                          meaning
==============================  ==================================================
``dl_volume_mb``                downlink data volume, all bearers QCI 1–8
``ul_volume_mb``                uplink data volume, all bearers QCI 1–8
``dl_active_users``             avg users with active data in the DL buffer
``radio_load_pct``              TTI utilization (percent)
``user_dl_throughput_mbps``     avg per-user DL throughput
``active_seconds``              seconds with active data in the cell
``connected_users``             total users attached to the cell (active + idle)
``voice_volume_mb``             conversational voice volume (QCI = 1)
``voice_users``                 avg simultaneous voice-active users
``voice_ul_loss_rate``          UL packet loss for voice bearers
``voice_dl_loss_rate``          DL packet loss for voice bearers
==============================  ==================================================
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.frames import Frame, concat

__all__ = ["KPI_COLUMNS", "KpiAccumulator"]

KPI_COLUMNS = (
    "dl_volume_mb",
    "ul_volume_mb",
    "dl_active_users",
    "radio_load_pct",
    "user_dl_throughput_mbps",
    "active_seconds",
    "connected_users",
    "voice_volume_mb",
    "voice_users",
    "voice_ul_loss_rate",
    "voice_dl_loss_rate",
)


class KpiAccumulator:
    """Collect hourly per-cell KPI vectors; emit daily per-cell medians.

    Parameters
    ----------
    cell_ids:
        Cell identifiers, fixed for the accumulator's lifetime.
    postcodes:
        Postcode district of each cell (same order), carried on every
        output row so the analysis can merge administrative labels.
    keep_hourly:
        Also retain the raw hourly rows (memory-heavy; meant for small
        configurations and tests that exercise the hourly→daily path).
    """

    def __init__(
        self,
        cell_ids: np.ndarray,
        postcodes: np.ndarray,
        keep_hourly: bool = False,
    ) -> None:
        if cell_ids.shape != postcodes.shape:
            raise ValueError("cell_ids and postcodes must align")
        self._cell_ids = cell_ids.astype(np.int64)
        self._postcodes = postcodes
        self._keep_hourly = keep_hourly
        self._pending: dict[str, list[np.ndarray]] = {}
        self._pending_day: int | None = None
        self._daily_frames: list[Frame] = []
        self._hourly_frames: list[Frame] = []

    @property
    def num_cells(self) -> int:
        return int(self._cell_ids.shape[0])

    def add_hour(
        self, day: int, hour: int, metrics: dict[str, np.ndarray]
    ) -> None:
        """Push one hour of per-cell metric vectors for ``day``."""
        telemetry.count("sim.kpi.add_hour")
        if self._pending_day is not None and day != self._pending_day:
            raise ValueError(
                f"day {day} pushed before finalizing day {self._pending_day}"
            )
        missing = set(KPI_COLUMNS) - set(metrics)
        if missing:
            raise ValueError(f"missing KPI metrics: {sorted(missing)}")
        self._pending_day = day
        for name in KPI_COLUMNS:
            vector = np.asarray(metrics[name], dtype=np.float64)
            if vector.shape != self._cell_ids.shape:
                raise ValueError(
                    f"metric {name} has shape {vector.shape}, expected "
                    f"{self._cell_ids.shape}"
                )
            self._pending.setdefault(name, []).append(vector)
        if self._keep_hourly:
            data = {
                "cell_id": self._cell_ids,
                "postcode": self._postcodes,
                "day": np.full(self.num_cells, day, dtype=np.int64),
                "hour": np.full(self.num_cells, hour, dtype=np.int64),
            }
            data.update(
                {name: np.asarray(metrics[name], dtype=np.float64)
                 for name in KPI_COLUMNS}
            )
            self._hourly_frames.append(Frame(data))

    def add_day(
        self, day: int, metrics: dict[str, np.ndarray], num_hours: int
    ) -> None:
        """Push a whole day of per-cell metric blocks and finalize it.

        Each metric is either ``(num_hours, num_cells)`` or a
        ``(num_cells,)`` vector that is broadcast over the hours (a
        metric constant within the day).  The daily reduction is the
        same per-cell median over hours as the ``add_hour`` +
        ``finalize_day`` path — ``np.median`` over the hour axis — so
        both paths produce bitwise-identical daily frames.  The bulk
        form exists for the engine's vectorized day loop, where pushing
        24 separate hourly dictionaries dominated small-array overhead.
        """
        telemetry.count("sim.kpi.add_day")
        if self._pending_day is not None:
            raise ValueError(
                f"day {self._pending_day} is still pending; finalize it first"
            )
        missing = set(KPI_COLUMNS) - set(metrics)
        if missing:
            raise ValueError(f"missing KPI metrics: {sorted(missing)}")
        blocks: dict[str, np.ndarray] = {}
        for name in KPI_COLUMNS:
            block = np.asarray(metrics[name], dtype=np.float64)
            if block.ndim == 1:
                block = np.broadcast_to(
                    block, (num_hours, self.num_cells)
                )
            if block.shape != (num_hours, self.num_cells):
                raise ValueError(
                    f"metric {name} has shape {block.shape}, expected "
                    f"({num_hours}, {self.num_cells})"
                )
            blocks[name] = block
        data = {
            "cell_id": self._cell_ids,
            "postcode": self._postcodes,
            "day": np.full(self.num_cells, day, dtype=np.int64),
        }
        for name in KPI_COLUMNS:
            data[name] = np.median(blocks[name], axis=0)
        self._daily_frames.append(Frame(data))
        if self._keep_hourly:
            for hour in range(num_hours):
                hourly = {
                    "cell_id": self._cell_ids,
                    "postcode": self._postcodes,
                    "day": np.full(self.num_cells, day, dtype=np.int64),
                    "hour": np.full(self.num_cells, hour, dtype=np.int64),
                }
                hourly.update(
                    {
                        name: np.ascontiguousarray(blocks[name][hour])
                        for name in KPI_COLUMNS
                    }
                )
                self._hourly_frames.append(Frame(hourly))

    def finalize_day(self) -> None:
        """Reduce the pending day's hours to per-cell medians."""
        if self._pending_day is None:
            raise ValueError("no pending day to finalize")
        data = {
            "cell_id": self._cell_ids,
            "postcode": self._postcodes,
            "day": np.full(self.num_cells, self._pending_day, dtype=np.int64),
        }
        for name in KPI_COLUMNS:
            stacked = np.vstack(self._pending[name])
            data[name] = np.median(stacked, axis=0)
        self._daily_frames.append(Frame(data))
        self._pending = {}
        self._pending_day = None

    def daily_frame(self) -> Frame:
        """All finalized (cell, day) rows."""
        if self._pending_day is not None:
            raise ValueError(
                f"day {self._pending_day} is still pending; finalize it first"
            )
        if not self._daily_frames:
            return Frame(
                {"cell_id": np.empty(0, dtype=np.int64),
                 "postcode": np.empty(0, dtype=str),
                 "day": np.empty(0, dtype=np.int64),
                 **{name: np.empty(0) for name in KPI_COLUMNS}}
            )
        return concat(self._daily_frames)

    def hourly_frame(self) -> Frame:
        """Raw hourly rows (only if ``keep_hourly`` was requested)."""
        if not self._keep_hourly:
            raise ValueError("accumulator was created with keep_hourly=False")
        if not self._hourly_frames:
            return Frame()
        return concat(self._hourly_frames)
