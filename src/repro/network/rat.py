"""Radio Access Technologies supported by the simulated MNO.

The studied operator runs 2G (GSM), 3G (UMTS) and 4G (LTE). The paper's
network-performance analysis focuses on 4G because users spend ~75% of
their connected time on LTE cells (§2.4); the other RATs still exist in
the topology and signalling feeds so that the RAT-time-share analysis
has something real to measure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Rat", "RatProfile", "RAT_PROFILES"]


class Rat(enum.Enum):
    """A radio access technology generation."""

    GSM_2G = "2G"
    UMTS_3G = "3G"
    LTE_4G = "4G"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class RatProfile:
    """Capacity characteristics of one RAT as deployed by the MNO."""

    rat: Rat
    bandwidth_mhz: float
    spectral_efficiency: float  # bit/s/Hz, sector average
    signalling_interface: str  # the monitored control-plane interface
    attach_share: float  # fraction of device connected-time on this RAT

    @property
    def sector_capacity_mbps(self) -> float:
        """Deliverable air-interface throughput of one sector."""
        return self.bandwidth_mhz * self.spectral_efficiency


RAT_PROFILES: dict[Rat, RatProfile] = {
    profile.rat: profile
    for profile in (
        RatProfile(
            Rat.GSM_2G,
            bandwidth_mhz=5.0,
            spectral_efficiency=0.2,
            signalling_interface="Gb/A",
            attach_share=0.05,
        ),
        RatProfile(
            Rat.UMTS_3G,
            bandwidth_mhz=10.0,
            spectral_efficiency=0.8,
            signalling_interface="Iu-PS/Iu-CS",
            attach_share=0.20,
        ),
        RatProfile(
            Rat.LTE_4G,
            bandwidth_mhz=20.0,
            spectral_efficiency=2.2,
            signalling_interface="S1-MME/S1-UP",
            attach_share=0.75,
        ),
    )
}
