"""Inter-MNO voice interconnection infrastructure.

The one operational incident the paper reports (§4.2): the surge in
conversational-voice traffic around the lockdown announcement exceeded
the capacity of the interconnect MNOs use to exchange voice calls,
which more than doubled the *downlink* packet-loss rate for voice in
weeks 10–12; network operations responded quickly, adding capacity, and
loss fell back below normal values.

:class:`VoiceInterconnect` is a stateful per-day model of that link:

- offered inter-MNO voice load is a share of total voice volume,
- loss grows super-linearly once utilization passes a congestion knee,
- an operations team watches the loss KPI and, after a detection lag,
  upgrades capacity (the "rapid response" of the paper).

Uplink voice loss is radio-side, not interconnect-side: it tracks radio
congestion and therefore *decreases* during lockdown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["InterconnectSettings", "VoiceInterconnect"]


@dataclass(frozen=True)
class InterconnectSettings:
    """Dimensioning and operations parameters for the voice interconnect."""

    # Capacity in MB of voice per day the interconnect can carry without
    # congestion; set by the engine from baseline voice volume.
    capacity_mb_per_day: float
    # Share of total voice minutes that crosses MNO boundaries.
    inter_mno_share: float = 0.55
    # Utilization above which congestion loss kicks in.
    congestion_knee: float = 0.85
    # Congestion loss saturates at this extra rate (drop-tail queueing
    # sheds a bounded fraction of packets, it does not diverge).
    max_congestion_loss: float = 0.012
    # How fast congestion loss approaches the ceiling past the knee.
    congestion_steepness: float = 2.5
    # Baseline (uncongested) DL packet loss rate for voice.
    base_dl_loss: float = 0.004
    # Fraction of base loss that scales with utilization (so a quieter
    # link after the upgrade sits *below* the pre-pandemic normal).
    utilization_coupling: float = 0.6
    # Ops response: consecutive days of loss above alarm level before
    # the capacity upgrade lands, and the upgrade multiplier.
    alarm_loss: float = 0.010
    detection_days: int = 10
    upgrade_factor: float = 2.2


class VoiceInterconnect:
    """Stateful day-by-day model of the inter-MNO voice link."""

    def __init__(self, settings: InterconnectSettings) -> None:
        if settings.capacity_mb_per_day <= 0:
            raise ValueError("interconnect capacity must be positive")
        self._settings = settings
        self._capacity = settings.capacity_mb_per_day
        self._alarm_streak = 0
        self._upgraded = False

    @property
    def capacity_mb_per_day(self) -> float:
        """Current capacity (grows once operations react)."""
        return self._capacity

    @property
    def upgraded(self) -> bool:
        """Whether the operations capacity upgrade has landed."""
        return self._upgraded

    def process_day(self, total_voice_mb: float) -> float:
        """Advance one day; return the DL voice packet-loss rate.

        ``total_voice_mb`` is the MNO-wide conversational voice volume
        for the day (QCI = 1, both directions).
        """
        if total_voice_mb < 0:
            raise ValueError("voice volume cannot be negative")
        settings = self._settings
        offered = total_voice_mb * settings.inter_mno_share
        utilization = offered / self._capacity

        loss = settings.base_dl_loss * (
            (1.0 - settings.utilization_coupling)
            + settings.utilization_coupling
            * min(utilization / settings.congestion_knee, 1.5)
        )
        if utilization > settings.congestion_knee:
            excess = utilization - settings.congestion_knee
            loss += settings.max_congestion_loss * (
                1.0 - np.exp(-settings.congestion_steepness * excess)
            )

        if not self._upgraded:
            if loss > settings.alarm_loss:
                self._alarm_streak += 1
            else:
                self._alarm_streak = 0
            if self._alarm_streak >= settings.detection_days:
                self._capacity *= settings.upgrade_factor
                self._upgraded = True
        return float(min(loss, 1.0))
