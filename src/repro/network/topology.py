"""Radio network topology: population-driven deployment + daily snapshots.

The deployment heuristic mirrors how a real RAN is dimensioned: sites
per postcode district proportional to the larger of the residential and
the daytime population (commercial centres like London EC/WC get far
more capacity than their resident counts suggest), with a minimum of one
site everywhere. The paper consumes a *daily snapshot* of the topology
("to account for potential structural changes ... metadata and the
status (active/inactive) of each cell tower"); :meth:`RadioTopology.
snapshot` reproduces that feed, including rare outages and a few
mid-study site activations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.geo.build import Geography
from repro.geo.coordinates import LatLon, scatter_around
from repro.network.cells import Cell, CellSite
from repro.network.rat import Rat

__all__ = ["RadioTopology", "build_topology"]


@dataclass
class RadioTopology:
    """The deployed RAN: sites, cells and daily status snapshots."""

    sites: tuple[CellSite, ...]
    cells: tuple[Cell, ...]
    outage_rate: float = 0.002
    seed: int = 0
    _sites_by_district: dict[int, np.ndarray] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        by_district: dict[int, list[int]] = {}
        for site in self.sites:
            by_district.setdefault(site.district_index, []).append(site.site_id)
        self._sites_by_district = {
            district: np.asarray(ids, dtype=np.int64)
            for district, ids in by_district.items()
        }

    # -- vectorized site metadata ---------------------------------------
    @cached_property
    def site_lats(self) -> np.ndarray:
        return np.array([s.lat for s in self.sites], dtype=np.float64)

    @cached_property
    def site_lons(self) -> np.ndarray:
        return np.array([s.lon for s in self.sites], dtype=np.float64)

    @cached_property
    def site_postcodes(self) -> np.ndarray:
        return np.array([s.postcode for s in self.sites])

    @cached_property
    def site_district_indices(self) -> np.ndarray:
        return np.array([s.district_index for s in self.sites], dtype=np.int64)

    @cached_property
    def site_activation_days(self) -> np.ndarray:
        return np.array([s.activation_day for s in self.sites], dtype=np.int64)

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    def sites_in_district(self, district_index: int) -> np.ndarray:
        """Site ids deployed in one postcode district (possibly empty)."""
        return self._sites_by_district.get(
            district_index, np.empty(0, dtype=np.int64)
        )

    # -- cells -----------------------------------------------------------
    @cached_property
    def cells_by_rat(self) -> dict[Rat, tuple[Cell, ...]]:
        grouped: dict[Rat, list[Cell]] = {}
        for cell in self.cells:
            grouped.setdefault(cell.rat, []).append(cell)
        return {rat: tuple(cells) for rat, cells in grouped.items()}

    @cached_property
    def site_to_4g_cell(self) -> dict[int, int]:
        """site_id → cell_id of the site's LTE cell (if deployed)."""
        return {
            cell.site_id: cell.cell_id
            for cell in self.cells
            if cell.rat is Rat.LTE_4G
        }

    # -- snapshots ---------------------------------------------------------
    def snapshot_frame(self, day: int):
        """The §2.2 daily topology feed: per-site metadata + status.

        Returns a :class:`repro.frames.Frame` with one row per site:
        id, postcode, coordinates, supported RATs and the day's
        active/inactive status.
        """
        from repro.frames import Frame

        active = self.snapshot(day)
        return Frame(
            {
                "site_id": np.arange(self.num_sites, dtype=np.int64),
                "postcode": self.site_postcodes,
                "lat": self.site_lats,
                "lon": self.site_lons,
                "rats": np.array(
                    [
                        "+".join(rat.value for rat in site.rats)
                        for site in self.sites
                    ]
                ),
                "active": active,
            }
        )

    def snapshot(self, day: int) -> np.ndarray:
        """Boolean active-status per site for a study day.

        Deterministic given (topology seed, day). A site is inactive if
        it has not been activated yet or suffers a (rare) outage.
        """
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(day,))
        )
        active = self.site_activation_days <= day
        outages = rng.random(self.num_sites) < self.outage_rate
        return active & ~outages


def build_topology(
    geography: Geography,
    target_site_count: int = 1000,
    seed: int = 2020,
    outage_rate: float = 0.002,
    late_activation_share: float = 0.01,
    study_days: int = 77,
    daytime_weight: float = 0.7,
) -> RadioTopology:
    """Deploy a RAN over the synthetic UK.

    Parameters
    ----------
    geography:
        The synthetic UK to cover.
    target_site_count:
        Approximate number of cell sites nationwide. Scale it with the
        simulated subscriber count so per-cell user counts stay
        realistic (the default pairs with ~20k simulated users).
    seed:
        Deployment RNG seed (placement, RAT mix, activation days).
    outage_rate:
        Per-site per-day probability of appearing inactive in snapshots.
    late_activation_share:
        Fraction of sites deployed *during* the study window — the
        structural change the daily topology snapshot exists to catch.
    study_days:
        Length of the study window, for drawing activation days.
    daytime_weight:
        How much deployment follows daytime (business/commercial)
        population vs residential population. Real RANs are dimensioned
        for busy-hour traffic, which concentrates where people spend
        the day, so the default leans daytime.
    """
    if not 0.0 <= daytime_weight <= 1.0:
        raise ValueError("daytime_weight must be in [0, 1]")
    rng = np.random.default_rng(seed)
    residents = geography.district_residents
    attraction = geography.district_attraction
    # Normalize attraction to a daytime population on the residents scale.
    daytime = attraction * residents.sum() / max(attraction.sum(), 1e-12)
    demand_proxy = (
        (1.0 - daytime_weight) * residents + daytime_weight * daytime
    )
    raw = demand_proxy / demand_proxy.sum() * target_site_count
    site_counts = np.maximum(1, np.round(raw).astype(int))

    sites: list[CellSite] = []
    cells: list[Cell] = []
    site_id = 0
    cell_id = 0
    for district_index, district in enumerate(geography.districts):
        count = int(site_counts[district_index])
        lats, lons = scatter_around(
            LatLon(district.lat, district.lon),
            radius_km=2.5,
            count=count,
            rng=rng,
            concentration=1.2,
        )
        for position in range(count):
            rats: list[Rat] = [Rat.LTE_4G]
            if rng.random() < 0.6:
                rats.append(Rat.UMTS_3G)
            if rng.random() < 0.3:
                rats.append(Rat.GSM_2G)
            activation_day = 0
            if rng.random() < late_activation_share:
                activation_day = int(rng.integers(1, max(study_days, 2)))
            site = CellSite(
                site_id=site_id,
                postcode=district.code,
                district_index=district_index,
                lat=float(lats[position]),
                lon=float(lons[position]),
                rats=tuple(rats),
                sector_count=3,
                activation_day=activation_day,
            )
            sites.append(site)
            for rat in rats:
                cells.append(
                    Cell(
                        cell_id=cell_id,
                        site_id=site_id,
                        rat=rat,
                        sector_count=3,
                    )
                )
                cell_id += 1
            site_id += 1
    return RadioTopology(
        sites=tuple(sites), cells=tuple(cells),
        outage_rate=outage_rate, seed=seed,
    )
