"""Synthetic GSMA-style TAC device catalog.

The paper uses the GSMA TAC database to keep only smartphones ("likely
used as primary devices") and drop Machine-to-Machine devices before any
mobility analysis (§2.3). This module generates a catalog with the same
discriminating power: each TAC (the first 8 IMEI digits, statically
allocated per device model) maps to manufacturer/model/OS metadata and
an ``is_smartphone`` flag, with market-share-like popularity weights so
sampled fleets look like a consumer base.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

__all__ = ["DeviceRecord", "DeviceCatalog"]

_SMARTPHONE_VENDORS = (
    ("Apricot", "aOS"),
    ("Samsong", "Android"),
    ("Huaway", "Android"),
    ("Xiaomy", "Android"),
    ("OneMinus", "Android"),
    ("Googol", "Android"),
    ("Nokla", "Android"),
    ("Sany", "Android"),
)

_M2M_VENDORS = (
    ("Telit", "smart meter"),
    ("Quectel", "tracker"),
    ("Sierra", "payment terminal"),
    ("UBlox", "telematics unit"),
    ("Cinterion", "alarm panel"),
)


@dataclass(frozen=True)
class DeviceRecord:
    """One TAC row of the catalog."""

    tac: int
    manufacturer: str
    model: str
    operating_system: str
    is_smartphone: bool
    supports_lte: bool
    popularity: float


class DeviceCatalog:
    """A TAC → device-properties lookup with popularity weights."""

    def __init__(self, records: tuple[DeviceRecord, ...]) -> None:
        if not records:
            raise ValueError("device catalog cannot be empty")
        self._records = records
        self._by_tac = {record.tac: record for record in records}
        if len(self._by_tac) != len(records):
            raise ValueError("duplicate TACs in catalog")

    @classmethod
    def generate(
        cls,
        seed: int = 2020,
        smartphone_models: int = 60,
        m2m_models: int = 24,
    ) -> "DeviceCatalog":
        """Generate a catalog with Zipf-like model popularity."""
        rng = np.random.default_rng(seed)
        records: list[DeviceRecord] = []
        ranks = np.arange(1, smartphone_models + 1, dtype=np.float64)
        popularity = 1.0 / ranks**1.1
        popularity /= popularity.sum()
        for index in range(smartphone_models):
            vendor, os_name = _SMARTPHONE_VENDORS[
                index % len(_SMARTPHONE_VENDORS)
            ]
            records.append(
                DeviceRecord(
                    tac=35_000_000 + index,
                    manufacturer=vendor,
                    model=f"{vendor} P{index + 1}",
                    operating_system=os_name,
                    is_smartphone=True,
                    supports_lte=bool(rng.random() < 0.92),
                    popularity=float(popularity[index]),
                )
            )
        m2m_ranks = np.arange(1, m2m_models + 1, dtype=np.float64)
        m2m_popularity = 1.0 / m2m_ranks
        m2m_popularity /= m2m_popularity.sum()
        for index in range(m2m_models):
            vendor, kind = _M2M_VENDORS[index % len(_M2M_VENDORS)]
            records.append(
                DeviceRecord(
                    tac=86_000_000 + index,
                    manufacturer=vendor,
                    model=f"{vendor} {kind} v{index + 1}",
                    operating_system="embedded",
                    is_smartphone=False,
                    supports_lte=bool(rng.random() < 0.4),
                    popularity=float(m2m_popularity[index]),
                )
            )
        return cls(tuple(records))

    # -- lookups ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def record(self, tac: int) -> DeviceRecord:
        try:
            return self._by_tac[tac]
        except KeyError:
            raise KeyError(f"unknown TAC {tac}") from None

    @cached_property
    def smartphone_tacs(self) -> np.ndarray:
        return np.array(
            [r.tac for r in self._records if r.is_smartphone], dtype=np.int64
        )

    @cached_property
    def m2m_tacs(self) -> np.ndarray:
        return np.array(
            [r.tac for r in self._records if not r.is_smartphone],
            dtype=np.int64,
        )

    def sample_tacs(
        self,
        rng: np.random.Generator,
        count: int,
        smartphone_share: float = 0.9,
    ) -> np.ndarray:
        """Sample ``count`` device TACs for a subscriber population."""
        if not 0.0 <= smartphone_share <= 1.0:
            raise ValueError("smartphone_share must be in [0, 1]")
        smartphones = [r for r in self._records if r.is_smartphone]
        m2m = [r for r in self._records if not r.is_smartphone]
        is_phone = rng.random(count) < smartphone_share
        out = np.empty(count, dtype=np.int64)
        for mask, pool in ((is_phone, smartphones), (~is_phone, m2m)):
            size = int(mask.sum())
            if size == 0:
                continue
            if not pool:
                raise ValueError("catalog lacks devices for requested mix")
            weights = np.array([r.popularity for r in pool])
            weights /= weights.sum()
            choice = rng.choice(len(pool), size=size, p=weights)
            pool_tacs = np.array([record.tac for record in pool], dtype=np.int64)
            out[mask] = pool_tacs[choice]
        return out

    def is_smartphone(self, tacs: np.ndarray) -> np.ndarray:
        """Vectorized smartphone flag for an array of TACs."""
        return np.isin(np.asarray(tacs), self.smartphone_tacs)
