"""3GPP signalling interfaces monitored by the measurement system.

Figure 1 of the paper marks the taps: the Gb and A interfaces for 2G,
Iu-PS and Iu-CS for 3G, S1-MME and S1-U for LTE. Control-plane events
are observed on different interfaces depending on the RAT serving the
device and whether the event belongs to the packet-switched (PS) or
circuit-switched (CS) domain; this catalog encodes that mapping so the
signalling generator can stamp each event with the interface a real
probe would have captured it on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.network.rat import Rat
from repro.network.signaling import EventType

__all__ = [
    "Domain",
    "Interface",
    "INTERFACES",
    "interface_for",
    "monitored_elements",
]


class Domain(enum.Enum):
    """Core-network domain of a signalling exchange."""

    PACKET_SWITCHED = "PS"
    CIRCUIT_SWITCHED = "CS"


@dataclass(frozen=True)
class Interface:
    """One monitored reference point of Figure 1."""

    name: str
    rat: Rat
    domain: Domain
    network_element: str  # where the probe sits
    spec: str  # the defining 3GPP series


INTERFACES: tuple[Interface, ...] = (
    Interface("Gb", Rat.GSM_2G, Domain.PACKET_SWITCHED, "SGSN", "3GPP TS 48.016"),
    Interface("A", Rat.GSM_2G, Domain.CIRCUIT_SWITCHED, "MSC", "3GPP TS 48.008"),
    Interface("Iu-PS", Rat.UMTS_3G, Domain.PACKET_SWITCHED, "SGSN", "3GPP TS 25.413"),
    Interface("Iu-CS", Rat.UMTS_3G, Domain.CIRCUIT_SWITCHED, "MSC", "3GPP TS 25.413"),
    Interface("S1-MME", Rat.LTE_4G, Domain.PACKET_SWITCHED, "MME", "3GPP TS 36.413"),
    Interface("S1-U", Rat.LTE_4G, Domain.PACKET_SWITCHED, "SGW", "3GPP TS 29.281"),
)

_BY_KEY = {
    (interface.rat, interface.domain): interface
    for interface in INTERFACES
    if interface.name != "S1-U"  # control plane rides S1-MME on LTE
}

# Events carried on the CS domain for 2G/3G (voice-side signalling);
# everything else is PS. On LTE everything is PS (voice is VoLTE).
_CS_EVENTS = frozenset({EventType.SERVICE_REQUEST})


def interface_for(rat: Rat, event: EventType) -> Interface:
    """The interface a probe captures ``event`` on for ``rat``."""
    domain = Domain.PACKET_SWITCHED
    if rat is not Rat.LTE_4G and event in _CS_EVENTS:
        domain = Domain.CIRCUIT_SWITCHED
    return _BY_KEY[(rat, domain)]


def monitored_elements() -> tuple[str, ...]:
    """The network elements carrying probes (Fig 1's red pins)."""
    seen: list[str] = []
    for interface in INTERFACES:
        if interface.network_element not in seen:
            seen.append(interface.network_element)
    return tuple(seen)
