"""LTE capacity / scheduler model: offered load → radio KPIs.

The paper's radio KPIs (§2.4) are produced by the eNodeB scheduler:
TTI (Transmission Time Interval) utilization — "the number of active
UEs the LTE scheduler assigns per TTI" — average active downlink users,
and the average per-user downlink throughput over all active bearers.

:class:`CellScheduler` turns per-cell-hour *offered* traffic into those
KPIs. Modelling choices that matter for reproducing the paper:

- **Served vs offered** — cells clip at air-interface capacity; at the
  operating points of this study cells are far from saturated (the
  paper observes ~15% load reductions, not congestion).
- **Application-limited throughput** — per-user throughput is
  ``min(application demand rate, fair share of capacity)``, degraded
  slightly by cell load. During the pandemic content providers throttled
  bitrates and heavy applications moved to WiFi, so the *application*
  term drops — how the paper explains throughput falling while the
  radio got quieter (§4.1).
- **Sampling correction** — the simulation carries a ~0.1% sample of
  the real subscriber base, so absolute per-cell volumes are tiny
  compared to a production cell. ``prb_share`` rescales volume into TTI
  occupancy so the *radio load* KPI sits at realistic absolute levels
  while remaining exactly proportional to the sampled traffic. All of
  the paper's figures are relative (delta vs week 9), which this
  preserves by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SchedulerSettings", "CellScheduler", "HourlyRadioKpis"]


@dataclass(frozen=True)
class SchedulerSettings:
    """Tunables of the scheduler model."""

    # TTI occupancy present even with little traffic (control channels,
    # signalling, SIB broadcasts).
    baseline_load: float = 0.015
    # Sampling correction: fraction of air-interface capacity the
    # sampled traffic is scaled against when computing TTI occupancy.
    prb_share: float = 0.03
    # TTI occupancy contributed by each simultaneously active UE.
    per_user_tti_load: float = 0.002
    # How strongly cell load degrades achieved per-user throughput.
    load_penalty: float = 0.35


@dataclass
class HourlyRadioKpis:
    """Vectorized per-cell KPIs for one hour (or an (hours, cells) block)."""

    served_dl_mb: np.ndarray
    served_ul_mb: np.ndarray
    dl_active_users: np.ndarray
    radio_load_pct: np.ndarray
    user_dl_throughput_mbps: np.ndarray
    active_seconds: np.ndarray


class CellScheduler:
    """Compute per-cell-hour radio KPIs from offered load."""

    def __init__(self, settings: SchedulerSettings | None = None) -> None:
        self._settings = settings or SchedulerSettings()

    @property
    def settings(self) -> SchedulerSettings:
        return self._settings

    def active_users_from_volume(
        self,
        dl_volume_mb: np.ndarray,
        app_rate_mbps: np.ndarray,
        connected_users: np.ndarray,
    ) -> np.ndarray:
        """Average users with data in the DL buffer during the hour.

        A user transferring ``v`` MB at an application rate ``r`` Mbps
        keeps a DL buffer busy for ``8 v / r`` seconds; summing over the
        cell's users and dividing by the hour gives the average active
        count. A small presence-coupled term models always-on background
        activity of attached devices.
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            transfer_seconds = np.where(
                app_rate_mbps > 0, dl_volume_mb * 8.0 / app_rate_mbps, 0.0
            )
        return transfer_seconds / 3600.0 + 0.01 * connected_users

    def schedule_hour(
        self,
        capacity_mbps: np.ndarray,
        offered_dl_mb: np.ndarray,
        offered_ul_mb: np.ndarray,
        active_users: np.ndarray,
        app_rate_dl_mbps: np.ndarray,
    ) -> HourlyRadioKpis:
        """Schedule one hour across all cells (arrays are per-cell)."""
        return self.schedule_hours(
            capacity_mbps=capacity_mbps,
            offered_dl_mb=offered_dl_mb,
            offered_ul_mb=offered_ul_mb,
            active_users=active_users,
            app_rate_dl_mbps=app_rate_dl_mbps,
        )

    def schedule_hours(
        self,
        capacity_mbps: np.ndarray,
        offered_dl_mb: np.ndarray,
        offered_ul_mb: np.ndarray,
        active_users: np.ndarray,
        app_rate_dl_mbps: np.ndarray,
    ) -> HourlyRadioKpis:
        """Schedule a block of hours across all cells in one shot.

        The offered-load arrays may be ``(num_cells,)`` for a single
        hour or ``(num_hours, num_cells)`` for a whole day;
        ``capacity_mbps`` and ``app_rate_dl_mbps`` are per-cell and
        broadcast over hours.  Every operation is elementwise, so the
        blocked form is bitwise identical to scheduling the hours one
        at a time — which is what lets the engine vectorize its hourly
        loop without disturbing the serial-equivalence contract.
        """
        settings = self._settings
        capacity_mb_per_hour = capacity_mbps * 3600.0 / 8.0
        served_dl = np.minimum(offered_dl_mb, capacity_mb_per_hour)
        # Uplink capacity of the deployments we model is ~half of DL.
        served_ul = np.minimum(offered_ul_mb, capacity_mb_per_hour * 0.5)

        reference = capacity_mb_per_hour * settings.prb_share
        data_load = np.divide(
            served_dl,
            reference,
            out=np.zeros_like(served_dl),
            where=reference > 0,
        )
        radio_load = np.clip(
            settings.baseline_load
            + data_load
            + settings.per_user_tti_load * active_users,
            0.0,
            1.0,
        )

        fair_share = np.divide(
            capacity_mbps,
            np.maximum(active_users, 1.0),
            out=np.zeros(np.shape(served_dl), dtype=np.float64),
            where=capacity_mbps > 0,
        )
        degradation = 1.0 - settings.load_penalty * radio_load
        throughput = np.minimum(app_rate_dl_mbps, fair_share) * degradation
        throughput = np.maximum(throughput, 0.0)

        # Seconds with active data in the cell during the hour.
        active_seconds = np.clip(active_users * 3600.0, 0.0, 3600.0)

        return HourlyRadioKpis(
            served_dl_mb=served_dl,
            served_ul_mb=served_ul,
            dl_active_users=active_users,
            radio_load_pct=radio_load * 100.0,
            user_dl_throughput_mbps=throughput,
            active_seconds=active_seconds,
        )
