"""Cellular-network substrate: the MNO the measurements are taken from.

The paper instruments a production 2G/3G/4G network (Figure 1): cell
sites and their radio sectors, the signalling interfaces (S1-MME, Iu-PS,
Gb, A, Iu-CS), the GSMA TAC device catalog, and a commercial KPI feed.
This package rebuilds each of those elements as a simulation substrate:

- :mod:`repro.network.rat` / :mod:`repro.network.qci` — radio access
  technologies and bearer QoS classes (QCI 1 = conversational voice,
  QCI 1–8 = "all bearers" in the paper's aggregations).
- :mod:`repro.network.cells` / :mod:`repro.network.topology` — cell
  sites, sectors and the population-driven deployment with daily
  topology snapshots.
- :mod:`repro.network.devices` — a synthetic GSMA-style TAC catalog
  (smartphones vs M2M).
- :mod:`repro.network.subscribers` — the subscriber base: native SIMs
  vs inbound roamers, device assignment, home districts.
- :mod:`repro.network.signaling` — control-plane event vocabulary and
  event-stream generation from dwell segments.
- :mod:`repro.network.scheduler` — LTE capacity / TTI-utilization model
  that turns offered load into radio KPIs.
- :mod:`repro.network.interconnect` — the inter-MNO voice interconnect
  whose congestion produced the paper's packet-loss incident.
- :mod:`repro.network.kpi` — the per-cell KPI record schema.
"""

from repro.network.rat import Rat
from repro.network.qci import ALL_BEARER_QCIS, VOICE_QCI, QciClass, qci_catalog
from repro.network.cells import Cell, CellSite
from repro.network.topology import RadioTopology, build_topology
from repro.network.devices import DeviceCatalog, DeviceRecord
from repro.network.subscribers import SubscriberBase, build_subscriber_base
from repro.network.signaling import EventType, SignalingGenerator
from repro.network.scheduler import CellScheduler, SchedulerSettings
from repro.network.interconnect import VoiceInterconnect, InterconnectSettings
from repro.network.kpi import KPI_COLUMNS, KpiAccumulator

__all__ = [
    "ALL_BEARER_QCIS",
    "Cell",
    "CellSite",
    "CellScheduler",
    "DeviceCatalog",
    "DeviceRecord",
    "EventType",
    "InterconnectSettings",
    "KPI_COLUMNS",
    "KpiAccumulator",
    "QciClass",
    "RadioTopology",
    "Rat",
    "SchedulerSettings",
    "SignalingGenerator",
    "SubscriberBase",
    "VOICE_QCI",
    "VoiceInterconnect",
    "build_subscriber_base",
    "build_topology",
    "qci_catalog",
]
