"""Cell sites and radio cells.

A *cell site* (tower) is the physical location: it anchors mobility
(users are observed at towers) and carries metadata used by the paper's
merges (postcode district, coordinates). A *cell* is one radio carrier
on a site for one RAT; KPIs are collected per cell. Sites host multiple
sectors per RAT — the per-sector breakdown is summarized by
``sector_count`` and sector capacity is aggregated at the cell level,
matching the paper's per-cell (postcode-aggregated) reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.rat import RAT_PROFILES, Rat

__all__ = ["Cell", "CellSite"]


@dataclass(frozen=True)
class CellSite:
    """A physical tower location."""

    site_id: int
    postcode: str
    district_index: int
    lat: float
    lon: float
    rats: tuple[Rat, ...]
    sector_count: int = 3
    activation_day: int = 0

    def supports(self, rat: Rat) -> bool:
        return rat in self.rats


@dataclass(frozen=True)
class Cell:
    """One radio cell: a RAT carrier on a site."""

    cell_id: int
    site_id: int
    rat: Rat
    sector_count: int

    @property
    def capacity_mbps(self) -> float:
        """Aggregate deliverable throughput over the cell's sectors."""
        return RAT_PROFILES[self.rat].sector_capacity_mbps * self.sector_count
