"""The MNO subscriber base.

Synthesizes the population of SIMs the signalling probes observe:

- **native smartphone users** — the study population (§2.3 keeps only
  smartphones on the home PLMN). Homes are drawn proportional to
  district census populations with mild per-LAD market-share noise, so
  the home-detection validation against census (Fig 2) is a real test
  of the pipeline, not an identity.
- **inbound roamers** — foreign SIMs concentrated where tourists and
  business visitors go (high-attraction districts); dropped by the
  analysis exactly as the paper drops them.
- **M2M devices** — smart meters, trackers, etc.; static, dropped via
  the TAC catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.geo.build import Geography
from repro.network.devices import DeviceCatalog
from repro.network.topology import RadioTopology

__all__ = ["SubscriberBase", "build_subscriber_base"]

NATIVE_MCC = 234
NATIVE_MNC = 10
_FOREIGN_MCCS = (208, 262, 214, 222, 310, 240, 204)


@dataclass
class SubscriberBase:
    """Vectorized subscriber attributes, one entry per SIM."""

    user_ids: np.ndarray
    tacs: np.ndarray
    is_smartphone: np.ndarray
    mccs: np.ndarray
    mncs: np.ndarray
    home_district: np.ndarray  # district index per SIM
    home_site: np.ndarray  # site id the SIM spends nights on

    def __post_init__(self) -> None:
        length = self.user_ids.shape[0]
        for name in ("tacs", "is_smartphone", "mccs", "mncs",
                     "home_district", "home_site"):
            if getattr(self, name).shape[0] != length:
                raise ValueError(f"subscriber column {name} length mismatch")

    @property
    def num_subscribers(self) -> int:
        return int(self.user_ids.shape[0])

    @cached_property
    def is_native(self) -> np.ndarray:
        return (self.mccs == NATIVE_MCC) & (self.mncs == NATIVE_MNC)

    @cached_property
    def study_mask(self) -> np.ndarray:
        """The paper's §2.3 filter: native smartphones only."""
        return self.is_native & self.is_smartphone

    def study_user_ids(self) -> np.ndarray:
        """IDs of the native-smartphone study population."""
        return self.user_ids[self.study_mask]


def build_subscriber_base(
    geography: Geography,
    topology: RadioTopology,
    catalog: DeviceCatalog,
    num_users: int = 20_000,
    roamer_share: float = 0.03,
    m2m_share: float = 0.08,
    market_share_noise: float = 0.08,
    seed: int = 2020,
) -> SubscriberBase:
    """Create the SIM population observed by the probes.

    Parameters
    ----------
    num_users:
        Total SIMs (natives + roamers + M2M).
    roamer_share:
        Fraction of SIMs that are international inbound roamers.
    m2m_share:
        Fraction of *native* SIMs that are M2M devices.
    market_share_noise:
        Sigma of the per-LAD lognormal multiplier on the operator's
        market share — the imperfection that keeps the Fig 2 regression
        below r² = 1.
    """
    if num_users <= 0:
        raise ValueError("num_users must be positive")
    rng = np.random.default_rng(seed)
    num_roamers = int(round(num_users * roamer_share))
    num_native = num_users - num_roamers

    # --- native homes: census-proportional with per-LAD share noise ----
    residents = geography.district_residents.copy()
    lad_codes = np.array([d.lad_code for d in geography.districts])
    lad_noise: dict[str, float] = {}
    for lad in np.unique(lad_codes):
        lad_noise[lad] = float(rng.lognormal(0.0, market_share_noise))
    weights = residents * np.array([lad_noise[lad] for lad in lad_codes])
    weights /= weights.sum()
    native_homes = rng.choice(len(weights), size=num_native, p=weights)

    # --- roamer homes: attraction-weighted (hotels, centres) ------------
    attraction = geography.district_attraction.copy()
    attraction /= attraction.sum()
    roamer_homes = rng.choice(len(attraction), size=num_roamers, p=attraction)

    home_district = np.concatenate([native_homes, roamer_homes])

    # --- devices ---------------------------------------------------------
    native_tacs = catalog.sample_tacs(
        rng, num_native, smartphone_share=1.0 - m2m_share
    )
    roamer_tacs = catalog.sample_tacs(rng, num_roamers, smartphone_share=0.99)
    tacs = np.concatenate([native_tacs, roamer_tacs])

    mccs = np.full(num_users, NATIVE_MCC, dtype=np.int64)
    mncs = np.full(num_users, NATIVE_MNC, dtype=np.int64)
    if num_roamers:
        mccs[num_native:] = rng.choice(
            np.asarray(_FOREIGN_MCCS), size=num_roamers
        )
        mncs[num_native:] = rng.integers(1, 30, size=num_roamers)

    # --- home tower: a site within the home district --------------------
    home_site = np.empty(num_users, dtype=np.int64)
    for district_index in np.unique(home_district):
        mask = home_district == district_index
        sites = topology.sites_in_district(int(district_index))
        if sites.size == 0:
            # Shouldn't happen (deployment guarantees ≥1 site) but keep
            # the base buildable for exotic topologies.
            sites = np.array([0], dtype=np.int64)
        home_site[mask] = rng.choice(sites, size=int(mask.sum()))

    return SubscriberBase(
        user_ids=np.arange(num_users, dtype=np.int64),
        tacs=tacs,
        is_smartphone=catalog.is_smartphone(tacs),
        mccs=mccs,
        mncs=mncs,
        home_district=home_district.astype(np.int64),
        home_site=home_site,
    )
