"""Control-plane signalling events.

The measurement infrastructure of the paper (Fig 1) captures signalling
on the S1-MME / Iu-PS / Gb / A interfaces: Attach, Authentication,
Session establishment, bearer management, Tracking Area Updates,
ECM-IDLE transitions, Service Requests, Handovers and Detach, each
carrying the anonymized user id, SIM MCC/MNC, TAC, the radio sector
handling the event, a timestamp, and a result code.

:class:`SignalingGenerator` emits exactly that feed from per-user dwell
segments (the ground truth of where a device spends its day). The design
guarantee that makes event-mode and dwell-mode pipelines reconcile: the
generator always emits a mobility event (Attach / Handover / TAU) at the
*start* of every dwell segment, so sessionization can recover segment
boundaries exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.frames import Frame
from repro.simulation import kernels

__all__ = [
    "EventType",
    "SignalingGenerator",
    "DwellSegments",
    "segments_from_dwell",
    "attach_subscriber_context",
]


class EventType(enum.IntEnum):
    """Signalling event vocabulary (§2.2 General Signaling Dataset)."""

    ATTACH = 0
    AUTHENTICATION = 1
    SESSION_ESTABLISHMENT = 2
    BEARER_SETUP = 3
    BEARER_RELEASE = 4
    TRACKING_AREA_UPDATE = 5
    ECM_IDLE_TRANSITION = 6
    SERVICE_REQUEST = 7
    HANDOVER = 8
    DETACH = 9


# Events that mark the device moving to (or appearing at) a new cell.
MOBILITY_EVENTS = (
    EventType.ATTACH,
    EventType.TRACKING_AREA_UPDATE,
    EventType.HANDOVER,
)


@dataclass
class DwellSegments:
    """Per-user dwell segments for one day (the simulator ground truth).

    Arrays are parallel, ordered by (user, start). ``start_s`` and
    ``duration_s`` are seconds since midnight.
    """

    user_ids: np.ndarray
    site_ids: np.ndarray
    start_s: np.ndarray
    duration_s: np.ndarray

    def __post_init__(self) -> None:
        length = self.user_ids.shape[0]
        for name in ("site_ids", "start_s", "duration_s"):
            if getattr(self, name).shape[0] != length:
                raise ValueError(f"segment column {name} length mismatch")

    @property
    def num_segments(self) -> int:
        return int(self.user_ids.shape[0])


def segments_from_dwell(
    dwell_s: np.ndarray,
    anchor_sites: np.ndarray,
    user_ids: np.ndarray,
    bin_seconds: float,
) -> DwellSegments:
    """Flatten a ``(N, B, K)`` dwell matrix into ordered dwell segments.

    Within each ``bin_seconds``-long bin, the user's anchors with more
    than one second of dwell are laid out sequentially (the exact
    sub-bin ordering is not observable at the paper's aggregation
    granularity).  Output order is (user, bin, anchor) — C order.
    """
    if kernels.dispatch_naive("signaling.segments"):
        return _segments_naive(dwell_s, anchor_sites, user_ids, bin_seconds)
    num_bins = dwell_s.shape[1]
    mask = dwell_s > 1.0
    kept = np.where(mask, dwell_s, 0.0)
    # Each kept anchor starts where the previous kept anchor in the
    # same bin ended.  A cumulative sum over a seed array — the bin
    # start in lane 0, the kept seconds shifted one lane right —
    # reproduces the naive left-to-right accumulation exactly: skipped
    # anchors contribute ``+0.0``, a bitwise no-op on the non-negative
    # running total, and ``np.cumsum`` associates left like the loop.
    seed = np.empty_like(kept)
    seed[:, :, 0] = np.arange(num_bins) * bin_seconds
    seed[:, :, 1:] = kept[:, :, :-1]
    starts = np.cumsum(seed, axis=2)
    user_index, _, anchor_index = np.nonzero(mask)
    return DwellSegments(
        user_ids=user_ids[user_index].astype(np.int64),
        site_ids=anchor_sites[user_index, anchor_index].astype(np.int64),
        start_s=starts[mask],
        duration_s=dwell_s[mask].astype(np.float64),
    )


def _segments_naive(
    dwell_s: np.ndarray,
    anchor_sites: np.ndarray,
    user_ids: np.ndarray,
    bin_seconds: float,
) -> DwellSegments:
    """Reference triple loop behind ``REPRO_SIM_NAIVE=1``."""
    num_users, num_bins, num_anchors = dwell_s.shape
    rows: list[tuple[int, int, float, float]] = []
    for user_index in range(num_users):
        for bin_index in range(num_bins):
            cursor = bin_index * bin_seconds
            for anchor in range(num_anchors):
                seconds = float(dwell_s[user_index, bin_index, anchor])
                if seconds <= 1.0:
                    continue
                rows.append(
                    (
                        int(user_ids[user_index]),
                        int(anchor_sites[user_index, anchor]),
                        cursor,
                        seconds,
                    )
                )
                cursor += seconds
    if not rows:
        empty = np.empty(0, dtype=np.int64)
        return DwellSegments(
            empty, empty, empty.astype(float), empty.astype(float)
        )
    users, sites, starts, durations = zip(*rows)
    return DwellSegments(
        user_ids=np.asarray(users, dtype=np.int64),
        site_ids=np.asarray(sites, dtype=np.int64),
        start_s=np.asarray(starts, dtype=np.float64),
        duration_s=np.asarray(durations, dtype=np.float64),
    )


class SignalingGenerator:
    """Turn dwell segments into a raw signalling event feed."""

    def __init__(
        self,
        service_request_rate_per_hour: float = 1.2,
        idle_transition_rate_per_hour: float = 0.8,
        failure_rate: float = 0.015,
    ) -> None:
        if service_request_rate_per_hour < 0 or idle_transition_rate_per_hour < 0:
            raise ValueError("event rates must be non-negative")
        if not 0 <= failure_rate < 1:
            raise ValueError("failure_rate must be in [0, 1)")
        self._service_rate = service_request_rate_per_hour
        self._idle_rate = idle_transition_rate_per_hour
        self._failure_rate = failure_rate

    def generate_day(
        self, segments: DwellSegments, rng: np.random.Generator
    ) -> Frame:
        """Emit the day's event feed as a frame.

        Columns: ``user_id``, ``site_id``, ``timestamp_s`` (seconds since
        midnight), ``event`` (``EventType`` int value), ``result``
        (1 = success, 0 = failure).

        Both dispatch paths draw the same random vectors in the same
        order and emit events in the same pre-sort block order, so the
        stable final sort produces bitwise-identical feeds.
        """
        if kernels.dispatch_naive("signaling.generate_day"):
            return self._generate_day_naive(segments, rng)
        users = segments.user_ids
        sites = segments.site_ids
        starts = segments.start_s.astype(np.float64)
        durations = segments.duration_s.astype(np.float64)

        out_users: list[np.ndarray] = []
        out_sites: list[np.ndarray] = []
        out_times: list[np.ndarray] = []
        out_events: list[np.ndarray] = []

        # 1. Mobility event at every segment start: ATTACH for a user's
        #    first segment, HANDOVER/TAU afterwards.
        first_of_user = np.ones(segments.num_segments, dtype=bool)
        first_of_user[1:] = users[1:] != users[:-1]
        boundary_events = np.where(
            first_of_user,
            EventType.ATTACH.value,
            np.where(
                rng.random(segments.num_segments) < 0.5,
                EventType.HANDOVER.value,
                EventType.TRACKING_AREA_UPDATE.value,
            ),
        )
        out_users.append(users)
        out_sites.append(sites)
        out_times.append(starts)
        out_events.append(boundary_events)

        # Authentication rides along with every attach.
        attach_mask = first_of_user
        out_users.append(users[attach_mask])
        out_sites.append(sites[attach_mask])
        out_times.append(starts[attach_mask] + 0.5)
        out_events.append(
            np.full(int(attach_mask.sum()), EventType.AUTHENTICATION.value)
        )

        # 2. In-segment activity: service requests & ECM-IDLE transitions,
        #    Poisson by dwell duration.
        hours = durations / 3600.0
        for rate, event in (
            (self._service_rate, EventType.SERVICE_REQUEST),
            (self._idle_rate, EventType.ECM_IDLE_TRANSITION),
        ):
            counts = rng.poisson(rate * hours)
            total = int(counts.sum())
            if total == 0:
                continue
            segment_index = np.repeat(
                np.arange(segments.num_segments), counts
            )
            offsets = rng.random(total) * durations[segment_index]
            out_users.append(users[segment_index])
            out_sites.append(sites[segment_index])
            out_times.append(starts[segment_index] + offsets)
            out_events.append(np.full(total, event.value))

        # 3. Detach at end of the user's last segment (phones typically
        #    stay attached overnight; sample a subset).
        last_of_user = np.ones(segments.num_segments, dtype=bool)
        last_of_user[:-1] = users[:-1] != users[1:]
        detach_mask = last_of_user & (rng.random(segments.num_segments) < 0.25)
        out_users.append(users[detach_mask])
        out_sites.append(sites[detach_mask])
        out_times.append(
            starts[detach_mask] + durations[detach_mask] - 0.5
        )
        out_events.append(
            np.full(int(detach_mask.sum()), EventType.DETACH.value)
        )

        all_users = np.concatenate(out_users)
        all_sites = np.concatenate(out_sites)
        all_times = np.concatenate(out_times)
        all_events = np.concatenate(out_events).astype(np.int64)
        results = (rng.random(all_users.shape[0]) >= self._failure_rate).astype(
            np.int64
        )
        frame = Frame(
            {
                "user_id": all_users,
                "site_id": all_sites,
                "timestamp_s": all_times,
                "event": all_events,
                "result": results,
            }
        )
        return frame.sort_by(["user_id", "timestamp_s"])

    def _generate_day_naive(
        self, segments: DwellSegments, rng: np.random.Generator
    ) -> Frame:
        """Reference per-segment loop behind ``REPRO_SIM_NAIVE=1``.

        The random vectors are pre-drawn population-wide, in the same
        order as the vectorized path (the kernels-module contract), and
        the assembly loops emit rows in the same block order; only the
        per-event arithmetic runs one segment at a time.
        """
        users = segments.user_ids
        sites = segments.site_ids
        starts = segments.start_s.astype(np.float64)
        durations = segments.duration_s.astype(np.float64)
        count = segments.num_segments

        first_of_user = np.ones(count, dtype=bool)
        first_of_user[1:] = users[1:] != users[:-1]
        last_of_user = np.ones(count, dtype=bool)
        last_of_user[:-1] = users[:-1] != users[1:]

        row_users: list[int] = []
        row_sites: list[int] = []
        row_times: list[float] = []
        row_events: list[int] = []

        # 1. Mobility event at every segment start.
        boundary_r = rng.random(count)
        for i in range(count):
            if first_of_user[i]:
                event = EventType.ATTACH.value
            elif boundary_r[i] < 0.5:
                event = EventType.HANDOVER.value
            else:
                event = EventType.TRACKING_AREA_UPDATE.value
            row_users.append(int(users[i]))
            row_sites.append(int(sites[i]))
            row_times.append(float(starts[i]))
            row_events.append(event)

        # Authentication rides along with every attach.
        for i in range(count):
            if first_of_user[i]:
                row_users.append(int(users[i]))
                row_sites.append(int(sites[i]))
                row_times.append(float(starts[i] + 0.5))
                row_events.append(EventType.AUTHENTICATION.value)

        # 2. In-segment activity, Poisson by dwell duration.
        hours = durations / 3600.0
        for rate, event_type in (
            (self._service_rate, EventType.SERVICE_REQUEST),
            (self._idle_rate, EventType.ECM_IDLE_TRANSITION),
        ):
            counts = rng.poisson(rate * hours)
            total = int(counts.sum())
            if total == 0:
                continue
            offset_r = rng.random(total)
            position = 0
            for i in range(count):
                for _ in range(int(counts[i])):
                    offset = offset_r[position] * durations[i]
                    row_users.append(int(users[i]))
                    row_sites.append(int(sites[i]))
                    row_times.append(float(starts[i] + offset))
                    row_events.append(event_type.value)
                    position += 1

        # 3. Detach at end of the user's last segment.
        detach_r = rng.random(count)
        for i in range(count):
            if last_of_user[i] and detach_r[i] < 0.25:
                row_users.append(int(users[i]))
                row_sites.append(int(sites[i]))
                row_times.append(float(starts[i] + durations[i] - 0.5))
                row_events.append(EventType.DETACH.value)

        result_r = rng.random(len(row_users))
        results = np.empty(len(row_users), dtype=np.int64)
        for k in range(len(row_users)):
            results[k] = int(result_r[k] >= self._failure_rate)
        frame = Frame(
            {
                "user_id": np.asarray(row_users, dtype=np.int64),
                "site_id": np.asarray(row_sites, dtype=np.int64),
                "timestamp_s": np.asarray(row_times, dtype=np.float64),
                "event": np.asarray(row_events, dtype=np.int64),
                "result": results,
            }
        )
        return frame.sort_by(["user_id", "timestamp_s"])


def attach_subscriber_context(
    feed: Frame,
    tacs_by_user: np.ndarray,
    mccs_by_user: np.ndarray,
    mncs_by_user: np.ndarray,
    rng: np.random.Generator,
    rat_shares: tuple[float, float, float] = (0.05, 0.20, 0.75),
) -> Frame:
    """Stamp each event with the §2.2 record fields.

    The paper's signalling records carry the anonymized user id, the SIM
    MCC/MNC, the device TAC, the serving radio sector, a timestamp and a
    result code. The generator produces the structural fields; this
    helper joins the subscriber attributes (indexed by user id) and
    samples the serving RAT / monitored interface per event.

    Returns the feed with ``tac``, ``mcc``, ``mnc``, ``rat`` and
    ``interface`` columns added.
    """
    from repro.network.interfaces import interface_for
    from repro.network.rat import Rat

    users = feed["user_id"]
    events = feed["event"]
    rats = list(Rat)
    rat_choice = rng.choice(
        len(rats), size=len(feed), p=np.asarray(rat_shares)
    )
    if kernels.dispatch_naive("signaling.subscriber_context"):
        # Reference path: resolve RAT and interface one event at a time.
        rat_values = np.array([rats[i].value for i in rat_choice])
        interface_values = np.array(
            [
                interface_for(rats[rat_index], EventType(int(event))).name
                for rat_index, event in zip(rat_choice, events)
            ]
        )
    else:
        # Two small lookup tables — (rat,) and (rat, event) — turn the
        # per-event enum resolution into plain integer gathers.
        rat_table = np.array([rat.value for rat in rats])
        interface_table = np.array(
            [
                [
                    interface_for(rat, event_type).name
                    for event_type in EventType
                ]
                for rat in rats
            ]
        )
        rat_values = rat_table[rat_choice]
        interface_values = interface_table[rat_choice, events]
    out = feed.with_column("tac", tacs_by_user[users])
    out = out.with_column("mcc", mccs_by_user[users])
    out = out.with_column("mnc", mncs_by_user[users])
    out = out.with_column("rat", rat_values)
    return out.with_column("interface", interface_values)
