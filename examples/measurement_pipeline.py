"""The passive-measurement path, end to end (event mode).

The paper's infrastructure captures raw signalling events at the core
network and reduces them to per-user tower dwell times (§2.1–§2.3).
This example runs the simulator with event emission on, reconstructs
dwell via sessionization, and verifies that mobility metrics computed
from the *events* match the simulator's ground truth — the fidelity
check that justifies running the large analyses in dwell mode.

    python examples/measurement_pipeline.py
"""

import numpy as np

from repro.core import mobility_entropy, sessionize_events
from repro.network.signaling import EventType
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator


def main() -> None:
    config = SimulationConfig(
        num_users=500,
        target_site_count=80,
        seed=2020,
        emit_signaling=True,
    )
    print(
        f"simulating {config.num_users} users with raw signalling "
        "emission ..."
    )
    feeds = Simulator(config).run()
    day = feeds.calendar.day_of(
        __import__("datetime").date(2020, 2, 25)
    )
    events = feeds.signaling[day]

    print(f"\nday {day} event feed: {len(events)} events")
    names = {event.value: event.name for event in EventType}
    values, counts = np.unique(events["event"], return_counts=True)
    for value, count in sorted(
        zip(values, counts), key=lambda item: -item[1]
    ):
        print(f"  {names[int(value)]:<24} {count:>8d}")
    success_rate = events["result"].mean()
    print(f"  event success rate: {success_rate:.1%}")

    # ------------------------------------------------------------------
    # Sessionize: events → per-(user, tower) dwell.
    print("\nsessionizing ...")
    dwell_frame = sessionize_events(events)
    print(
        f"reconstructed {len(dwell_frame)} (user, tower) dwell records "
        f"for {len(np.unique(dwell_frame['user_id']))} users"
    )

    # ------------------------------------------------------------------
    # Compare entropy computed from events vs from ground-truth dwell.
    mobility = feeds.mobility
    truth_dwell = mobility.dwell(day).astype(np.float64)
    truth_entropy = mobility_entropy(truth_dwell, mobility.anchor_sites)

    user_index = {int(u): i for i, u in enumerate(mobility.user_ids)}
    max_anchors = mobility.anchor_sites.shape[1]
    measured_dwell = np.zeros_like(truth_dwell)
    measured_sites = mobility.anchor_sites.copy()
    overflow = 0
    for user, site, seconds in zip(
        dwell_frame["user_id"], dwell_frame["site_id"], dwell_frame["dwell_s"]
    ):
        row = user_index[int(user)]
        slots = np.flatnonzero(measured_sites[row] == site)
        if slots.size:
            measured_dwell[row, slots[0]] += seconds
        else:
            overflow += 1
    measured_entropy = mobility_entropy(measured_dwell, measured_sites)

    observed = truth_dwell.sum(axis=1) > 0
    gap = np.abs(measured_entropy[observed] - truth_entropy[observed])
    print(f"\nentropy from events vs ground truth "
          f"({int(observed.sum())} users):")
    print(f"  mean abs gap   : {gap.mean():.4f} nats")
    print(f"  95th pct gap   : {np.percentile(gap, 95):.4f} nats")
    print(f"  unmatched rows : {overflow}")
    if gap.mean() < 0.02:
        print(
            "\nevent-mode and dwell-mode pipelines agree: the analysis "
            "can safely run on dwell aggregates at scale."
        )


if __name__ == "__main__":
    main()
