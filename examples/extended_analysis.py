"""Beyond the paper: the extended analysis toolkit.

Four analyses the library offers on top of the paper's figures:

1. **Growth framings** — the paper's "rewound one year of data growth"
   and "seven years of voice growth in days" quotes, measured.
2. **Significance tests** — Mann-Whitney/KS tests per KPI: was each
   reported shift statistically significant?
3. **Mobility graphs** — the network-science view: how lockdown shreds
   the tower co-visitation graph.
4. **Predictability** — Song-et-al. predictability bounds: how much
   more predictable people became under confinement.

    python examples/extended_analysis.py
"""

import datetime as dt

import numpy as np

from repro.core import (
    CovidImpactStudy,
    build_mobility_graph,
    contextualize_summary,
    graph_summary,
    mobility_entropy,
    predictability_bound,
    shift_table,
    visited_towers,
)
from repro.simulation.config import SimulationConfig


def main() -> None:
    study = CovidImpactStudy.run(SimulationConfig.small(seed=2020))
    feeds = study.feeds
    calendar = feeds.calendar
    day_before = calendar.day_of(dt.date(2020, 2, 25))
    day_during = calendar.day_of(dt.date(2020, 3, 31))

    # ------------------------------------------------------------------
    print("1. Growth framings (§4.1 / §4.2)")
    print("-" * 40)
    context = contextualize_summary(study.summary())
    print(
        f"data traffic rewound by {context['data_years_rewound']:.1f} "
        "years (paper: 'to levels similar to those of March 2019')"
    )
    print(
        f"voice surge equals {context['voice_years_of_growth']:.1f} "
        "years of growth (paper: 'a predicted seven years of growth')"
    )

    # ------------------------------------------------------------------
    print("\n2. Distribution-shift significance (lockdown vs week 9)")
    print("-" * 60)
    table = shift_table(
        study.labeled_kpis,
        (
            "dl_volume_mb", "ul_volume_mb", "dl_active_users",
            "radio_load_pct", "voice_volume_mb",
        ),
    )
    print(f"{'metric':<26}{'direction':>10}{'MW p':>12}{'KS p':>12}")
    for row in table:
        print(
            f"{row.metric:<26}{row.direction:>10}"
            f"{row.mannwhitney_p:>12.2e}{row.ks_p:>12.2e}"
        )

    # ------------------------------------------------------------------
    print("\n3. The mobility graph, before vs during lockdown")
    print("-" * 60)
    for label, day in (("before", day_before), ("during", day_during)):
        graph = build_mobility_graph(feeds, day)
        summary = graph_summary(graph, day)
        print(
            f"{label:<8} nodes={summary.num_nodes:>5} "
            f"edges={summary.num_edges:>6} "
            f"trips={summary.total_trip_weight:>8.0f} "
            f"mean edge={summary.mean_edge_length_km:5.1f} km "
            f"giant comp={summary.largest_component_share:.0%}"
        )

    # ------------------------------------------------------------------
    print("\n4. Location predictability (Song et al. bound)")
    print("-" * 60)
    mobility = feeds.mobility
    sites = mobility.anchor_sites
    sample = slice(0, 1500)
    for label, day in (("before", day_before), ("during", day_during)):
        dwell = mobility.dwell(day).astype(np.float64)
        entropy = mobility_entropy(dwell, sites)[sample]
        counts = visited_towers(dwell, sites)[sample].astype(float)
        bound = predictability_bound(entropy, counts)
        print(
            f"{label:<8} mean entropy={entropy.mean():.3f} nats   "
            f"mean predictability bound={bound.mean():.1%}"
        )
    print(
        "\nconfinement makes people's locations substantially more "
        "predictable — the flip side of the paper's entropy drop."
    )


if __name__ == "__main__":
    main()
