"""Quickstart: simulate the study and print the headline results.

Runs a small-scale replica of the paper's setting (a synthetic UK MNO
through February–May 2020), executes the full analysis pipeline, and
prints the takeaway numbers next to what the paper reports.

    python examples/quickstart.py [seed]
"""

import sys

from repro.core import CovidImpactStudy
from repro.simulation.config import SimulationConfig

# (summary key, paper value, description)
PAPER_TARGETS = [
    ("gyration_change_lockdown_pct", "-50%", "radius of gyration, lockdown"),
    ("entropy_change_lockdown_pct", "smaller than gyration", "entropy, lockdown"),
    ("home_detection_rate", "~0.73 (16M of 22M)", "home-detection yield"),
    ("fig2_r_squared", "0.955", "census validation r²"),
    ("fig4_pearson_pre_declaration", "~0 (no correlation)", "entropy vs cases"),
    ("dl_volume_week10_pct", "+8%", "downlink volume, week 10"),
    ("dl_volume_min_pct", "-24% (week 17)", "downlink volume, minimum"),
    ("ul_volume_lockdown_min_pct", "-7%..+1.5%", "uplink volume under lockdown"),
    ("active_users_min_pct", "-28.6%", "active DL users, minimum"),
    ("throughput_min_pct", "-10%", "per-user DL throughput, minimum"),
    ("radio_load_min_pct", "-15.1%", "radio load, minimum"),
    ("voice_volume_peak_pct", "+140% (week 12)", "voice volume peak"),
    ("voice_dl_loss_peak_pct", ">+100%", "voice DL packet-loss spike"),
    ("inner_london_away_share_lockdown", "~10%", "Inner Londoners relocated"),
    ("rat_share_4g", "0.75", "time connected on 4G"),
]


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2020
    print(f"simulating (seed={seed}) ...")
    study = CovidImpactStudy.run(SimulationConfig.small(seed=seed))
    summary = study.summary()

    print()
    print(f"{'metric':<38}{'measured':>12}  paper")
    print("-" * 78)
    for key, paper, label in PAPER_TARGETS:
        print(f"{label:<38}{summary[key]:>12.2f}  {paper}")

    print()
    from repro.core.paper_targets import render_verdicts

    print(render_verdicts(study.verdicts()))

    print()
    print("Full weekly series (Fig 3 / Fig 8 / Fig 9):")
    print()
    print(study.report())


if __name__ == "__main__":
    main()
