"""Mobility under lockdown: the §3 analysis end to end.

Reproduces the mobility half of the paper — national time series
(Fig 3), the cases-vs-mobility scatter (Fig 4), regional contrasts
(Fig 5), and geodemographic contrasts (Fig 6) — and prints each as a
text panel.

    python examples/national_lockdown_study.py
"""

import numpy as np

from repro.core import CovidImpactStudy
from repro.core.baseline import weekly_mean
from repro.core.report import render_series_block
from repro.simulation.config import SimulationConfig


def main() -> None:
    study = CovidImpactStudy.run(SimulationConfig.small(seed=2020))
    feeds = study.feeds
    calendar = feeds.calendar

    # ------------------------------------------------------------------
    # Fig 3 — national daily percent change, shown as weekly means.
    fig3 = study.fig3()
    weeks_of_day = calendar.weeks[fig3["gyration"].x]
    for metric in ("gyration", "entropy"):
        weeks, weekly = weekly_mean(fig3[metric].values["UK"], weeks_of_day)
        print(
            render_series_block(
                f"Fig 3 — national {metric} (% change vs week 9)",
                weeks,
                {"UK": weekly},
            )
        )
        print()

    # ------------------------------------------------------------------
    # Fig 4 — mobility does not track case counts.
    fig4 = study.fig4()
    print("Fig 4 — entropy change vs cumulative confirmed cases")
    print("-" * 52)
    print(
        f"pearson r (before the WHO declaration) : "
        f"{fig4.pearson_r_pre_declaration:+.3f}"
    )
    print(
        f"pearson r (before the lockdown order)  : "
        f"{fig4.pearson_r_pre_lockdown:+.3f}"
    )
    print(
        "interpretation: cases grow smoothly through the whole window, "
        "but entropy only moves at the announcements — the same "
        "no-correlation finding as the paper."
    )
    # A tiny scatter, text form: bucket cases into deciles.
    buckets = np.percentile(fig4.cumulative_cases, np.arange(0, 101, 10))
    print("cases decile → mean entropy change:")
    for low, high in zip(buckets[:-1], buckets[1:]):
        mask = (fig4.cumulative_cases >= low) & (
            fig4.cumulative_cases <= high
        )
        if mask.any():
            print(
                f"  cases {low:>9.0f}..{high:>9.0f} : "
                f"{fig4.entropy_change_pct[mask].mean():+6.1f}%"
            )
    print()

    # ------------------------------------------------------------------
    # Fig 5 — regions; Fig 6 — geodemographic clusters.
    for title, figure in (
        ("Fig 5 — regional", study.fig5()),
        ("Fig 6 — geodemographic", study.fig6()),
    ):
        for metric in ("gyration", "entropy"):
            series = figure[metric]
            print(
                render_series_block(
                    f"{title} {metric} (% change vs national week 9)",
                    series.x,
                    series.values,
                )
            )
            print()

    # ------------------------------------------------------------------
    # Takeaways in the paper's own terms.
    summary = study.summary()
    print("Takeaways")
    print("---------")
    print(
        f"* mobility dropped "
        f"{abs(summary['gyration_change_lockdown_pct']):.0f}% (gyration) / "
        f"{abs(summary['entropy_change_lockdown_pct']):.0f}% (entropy) in "
        f"weeks 13-14 — entropy falls less: people move close to home."
    )
    fig5 = study.fig5()["gyration"]
    london_recovery = fig5.at_week("Inner London", 19) - fig5.at_week(
        "Inner London", 14
    )
    midlands_recovery = fig5.at_week("West Midlands", 19) - fig5.at_week(
        "West Midlands", 14
    )
    print(
        f"* by week 19 London recovered {london_recovery:+.1f} pp vs "
        f"West Midlands {midlands_recovery:+.1f} pp — the regional "
        f"relaxation difference of §3.2."
    )


if __name__ == "__main__":
    main()
