"""A micro experiment grid: catalog scenarios × seeds, compared.

Runs three catalog scenarios (the calibrated baseline, the
no-intervention counterfactual and a second-wave world) across two
seeds through :mod:`repro.experiments`, then prints the comparative
report — the paper's headline metrics as deltas against the baseline,
plus overlaid weekly-variation panels.

Deliberately tiny (a few hundred users per cell) so it finishes in
seconds; scale ``--users`` / ``--preset`` up for real sweeps.  Pass a
directory as the first argument to persist the cells there: a second
invocation then *reuses* every cell instead of re-simulating and
prints a byte-identical report (see docs/SCENARIOS.md).

    python examples/scenario_grid.py            # in-memory grid
    python examples/scenario_grid.py runs/grid  # persistent cells
"""

import sys

from repro import api


def main(directory: str | None = None) -> None:
    def progress(scenario: str, seed: int, action: str) -> None:
        print(f"  {scenario} seed {seed}: {action}")

    print("running the grid (3 scenarios x 2 seeds, ~300 users) ...")
    result = api.experiment(
        ["no_intervention", "second_wave"],
        seeds=[1, 2],
        preset="tiny",
        num_users=300,
        directory=directory,
        progress=progress,
    )

    print()
    print(result.report())
    print()
    print(
        "Reading the delta table: the baseline column is absolute; "
        "every other column is that scenario minus the baseline.  "
        "Without any intervention mobility barely drops and the voice "
        "surge never happens; the second wave matches the baseline "
        "through April (its headline window), then re-diverges in the "
        "overlay panels' final weeks."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
