"""The §4.2 incident: voice surge vs the inter-MNO interconnect.

Compares three worlds:

1. **factual** — the voice surge congests the interconnect; operations
   detect the loss and upgrade capacity (the paper's story);
2. **no ops response** — nobody upgrades: loss stays high while the
   surge lasts;
3. **no pandemic** — the counterfactual baseline.

    python examples/voice_surge_interconnect.py
"""

from repro.core import CovidImpactStudy
from repro.core.report import render_series_block
from repro.datasets.scenarios import no_lockdown_config
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator


def run(name: str, config: SimulationConfig) -> CovidImpactStudy:
    print(f"simulating: {name} ...")
    return CovidImpactStudy(Simulator(config).run())


def main() -> None:
    base = SimulationConfig.small(seed=2020)
    factual = run("factual (with ops response)", base)
    no_ops = run(
        "no ops response",
        base.with_overrides(interconnect_detection_days=10_000),
    )
    no_pandemic = run("no pandemic", no_lockdown_config(base))

    print()
    for name, study in (
        ("factual", factual),
        ("no-ops", no_ops),
        ("no-pandemic", no_pandemic),
    ):
        fig9 = study.fig9()
        volume = fig9["voice_volume_mb"]
        loss = fig9["voice_dl_loss_rate"]
        print(
            render_series_block(
                f"[{name}] voice volume (% vs week 9)",
                volume.weeks, volume.values,
            )
        )
        print(
            render_series_block(
                f"[{name}] voice DL packet loss (% vs week 9)",
                loss.weeks, loss.values,
            )
        )
        upgrade = study.feeds.interconnect_upgrade_day
        if upgrade is not None:
            date = study.feeds.calendar.date_of(upgrade)
            print(f"capacity upgrade landed on {date} (week "
                  f"{date.isocalendar().week})")
        else:
            print("capacity upgrade never happened")
        print()

    factual_peak = factual.fig9()["voice_dl_loss_rate"].maximum("UK")[1]
    no_ops_late = no_ops.fig9()["voice_dl_loss_rate"].values["UK"][-1]
    factual_late = factual.fig9()["voice_dl_loss_rate"].values["UK"][-1]
    print("Takeaway")
    print("--------")
    print(
        f"* the surge more than doubled DL voice loss "
        f"(peak {factual_peak:+.0f}%); with the ops response the final "
        f"weeks sit at {factual_late:+.0f}% (below normal), without it "
        f"they stay at {no_ops_late:+.0f}%."
    )


if __name__ == "__main__":
    main()
