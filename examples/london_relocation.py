"""London under lockdown: relocation (Fig 7) and districts (Figs 11-12).

Detects Inner-London residents via the paper's nighttime home-detection
method, builds the county-level mobility matrix, and breaks network
performance down by London postal district and geodemographic cluster.

    python examples/london_relocation.py
"""

import numpy as np

from repro.core import CovidImpactStudy
from repro.core.report import render_series_block, sparkline
from repro.datasets import london_focus


def main() -> None:
    print("simulating a London-focused run ...")
    feeds = london_focus(seed=2020, num_users=12_000)
    study = CovidImpactStudy(feeds)
    calendar = feeds.calendar

    # ------------------------------------------------------------------
    # Fig 7 — the mobility matrix.
    matrix = study.fig7()
    weeks = calendar.weeks[matrix.days]
    print()
    print(
        f"Fig 7 — presence of {matrix.num_residents} detected "
        "Inner-London residents, weekly means (% change vs week 9)"
    )
    print("-" * 72)
    unique_weeks = sorted(set(weeks.tolist()))
    header = "".join(f"{week:>7d}" for week in unique_weeks)
    print(f"{'county':<18}{header}")
    for county in matrix.counties:
        series = matrix.county_series(county)
        weekly = [
            series[weeks == week].mean() for week in unique_weeks
        ]
        cells = "".join(f"{value:>7.0f}" for value in weekly)
        print(f"{county:<18}{cells}  {sparkline(np.array(weekly))}")

    away_lockdown = np.mean(
        [
            matrix.away_share(i)
            for i in range(matrix.days.size)
            if weeks[i] >= 14
        ]
    )
    print()
    print(
        f"sustained share of residents away from Inner London during "
        f"lockdown: {away_lockdown:.1%} (paper: ~10%)"
    )

    # ------------------------------------------------------------------
    # Fig 11 — postal districts.
    print()
    fig11 = study.fig11()
    for metric in ("dl_volume_mb", "dl_active_users", "connected_users"):
        series = fig11[metric]
        print(
            render_series_block(
                f"Fig 11 — Inner London {metric} (% vs week 9)",
                series.weeks,
                dict(sorted(series.values.items())),
            )
        )
        print()

    ec = fig11["dl_volume_mb"].minimum("EC")[1]
    wc = fig11["dl_volume_mb"].minimum("WC")[1]
    print(
        f"central districts collapse: EC {ec:.0f}%, WC {wc:.0f}% "
        "(paper: -70% and -80%); the residential N district detaches "
        "with stable volume and extra active users."
    )

    # ------------------------------------------------------------------
    # Fig 12 — London clusters.
    print()
    fig12 = study.fig12()
    for metric in ("dl_volume_mb", "ul_volume_mb"):
        series = fig12[metric]
        print(
            render_series_block(
                f"Fig 12 — London clusters {metric} (% vs week 9)",
                series.weeks,
                series.values,
            )
        )
        print()


if __name__ == "__main__":
    main()
