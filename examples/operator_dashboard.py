"""An operator's view: daily trend dashboard on the KPI feed.

Shows the time-series toolkit on the raw feeds the way a NOC dashboard
would use it: daily national downlink with a 7-day rolling trend, the
weekday seasonal pattern before and during lockdown, and a per-region
status board for the latest week.

    python examples/operator_dashboard.py
"""

import numpy as np

from repro.core import CovidImpactStudy
from repro.core.report import sparkline
from repro.frames import group_by
from repro.frames.timeseries import (
    deseasonalize,
    rolling_mean,
    weekly_seasonality,
)
from repro.simulation.config import SimulationConfig


def main() -> None:
    study = CovidImpactStudy.run(SimulationConfig.small(seed=2020))
    feeds = study.feeds
    calendar = feeds.calendar
    kpis = feeds.radio_kpis

    # Daily national downlink (sum over cells of the daily medians —
    # the dashboard's "network traffic" tile).
    per_day = group_by(kpis, ["day"]).agg(dl=("dl_volume_mb", "sum"))
    days = per_day["day"]
    dl = per_day["dl"]
    weekdays = calendar.weekdays[days]
    trend = rolling_mean(dl, 7)

    print("National downlink, daily total (MB) with 7-day trend")
    print("-" * 60)
    print(f"raw   {sparkline(dl)}")
    print(f"trend {sparkline(trend)}")
    trough_day = int(days[np.argmin(trend)])
    print(
        f"trend trough: {calendar.date_of(trough_day)} at "
        f"{trend.min() / trend[:7].mean() - 1:+.0%} vs the opening week"
    )

    # Weekly seasonal pattern, before vs during lockdown.
    lockdown_start = calendar.day_of(calendar.key_dates.lockdown)
    before = days < lockdown_start
    during = days >= lockdown_start
    names = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
    pattern_before = weekly_seasonality(dl[before], weekdays[before])
    pattern_during = weekly_seasonality(dl[during], weekdays[during])
    print("\nWeekday pattern (deviation from trend, MB)")
    print("-" * 60)
    print(f"{'':>10}" + "".join(f"{n:>9}" for n in names))
    print(
        f"{'before':>10}"
        + "".join(f"{v:>9.0f}" for v in pattern_before)
    )
    print(
        f"{'lockdown':>10}"
        + "".join(f"{v:>9.0f}" for v in pattern_during)
    )
    flattening = 1 - np.abs(pattern_during).sum() / max(
        np.abs(pattern_before).sum(), 1e-9
    )
    print(f"weekly rhythm flattened by {flattening:.0%} under lockdown")

    # Deseasonalized series makes the intervention steps crisp.
    flat = deseasonalize(dl, weekdays)
    print(f"\ndeseasonalized {sparkline(flat)}")

    # Regional status board, latest week vs week 9.
    fig8 = study.fig8()
    print("\nRegional status — latest week (% vs week 9)")
    print("-" * 60)
    print(f"{'region':<20}{'DL':>8}{'UL':>8}{'load':>8}{'users':>8}")
    for region in ("UK", "Inner London", "Outer London",
                   "Greater Manchester", "West Midlands",
                   "West Yorkshire"):
        row = [
            fig8[metric].values[region][-1]
            for metric in ("dl_volume_mb", "ul_volume_mb",
                           "radio_load_pct", "connected_users")
        ]
        print(
            f"{region:<20}" + "".join(f"{value:>8.1f}" for value in row)
        )


if __name__ == "__main__":
    main()
